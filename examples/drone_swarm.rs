//! Battlefield survey scenario (the paper's §1 military CPS example): a
//! drone swarm maintains a shared mission log and must survive the loss —
//! or active subversion — of its coordinator.
//!
//! The view-1 coordinator equivocates (reports two different survey states
//! to different drones); the swarm detects it from the conflicting signed
//! proposals, evicts it through a view change, and continues under the
//! next coordinator. We print the timeline as it unfolds.
//!
//! ```text
//! cargo run --example drone_swarm
//! ```

use std::sync::Arc;

use eesmr_core::{build_replicas, Config, FaultMode, Replica};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{NetConfig, SimDuration, SimNet};

fn snapshot(net: &SimNet<Replica>, label: &str) {
    let views: Vec<u64> =
        (1..net.actors().len() as u32).map(|id| net.actor(id).current_view()).collect();
    let heights: Vec<u64> =
        (1..net.actors().len() as u32).map(|id| net.actor(id).committed_height()).collect();
    println!("[{label}] views={views:?} heights={heights:?} (t = {})", net.now());
}

fn main() {
    const N: usize = 9;
    const K: usize = 3;

    let topology = ring_kcast(N, K);
    let net_cfg = NetConfig::ble(topology, 7);
    let delta = net_cfg.delta();
    let mut config = Config::new(N, delta);
    // The paper's testbed optimizations: quit on the equivocation proof
    // itself, lock-only status in the new view.
    config.opt_equivocation_speedup = true;
    config.opt_lock_only_status = true;

    let pki = Arc::new(KeyStore::generate(N, SigScheme::Rsa1024, 7));
    let replicas = build_replicas(&config, &pki, |id| {
        if id == 0 {
            FaultMode::Equivocate { in_view: 1 } // the subverted coordinator
        } else {
            FaultMode::Honest
        }
    });

    let mut net = SimNet::new(net_cfg, replicas);
    println!("swarm of {N} drones, coordinator 0 subverted, Δ = {delta}");

    net.run_for(SimDuration::from_millis(10));
    snapshot(&net, "mission start   ");

    // Run until the swarm has evicted the coordinator.
    let deadline = net.now() + SimDuration::from_millis(5_000);
    let evicted =
        net.run_until_pred(deadline, |drones| drones.iter().skip(1).all(|d| d.current_view() >= 2));
    assert!(evicted, "the swarm must evict the equivocator");
    snapshot(&net, "coordinator down");

    let detections: u64 =
        (1..N as u32).map(|id| net.actor(id).metrics().equivocations_detected).sum();
    println!("equivocation proofs observed by {detections} drone events; view change complete");

    // Mission continues under drone 1.
    net.run_for(SimDuration::from_millis(2_000));
    snapshot(&net, "mission resumed ");

    let survivors: Vec<u32> = (1..N as u32).collect();
    let reference = net.actor(1).committed();
    for &id in &survivors {
        let log = net.actor(id).committed();
        let common = log.len().min(reference.len());
        assert_eq!(&log[..common], &reference[..common], "drone {id} agrees");
    }
    println!(
        "all {} surviving drones agree on a {}-block mission log",
        survivors.len(),
        net.actor(1).committed().len()
    );
    let vc_energy = net.energy_of(survivors.iter().copied());
    println!("energy spent by survivors: {}", vc_energy);
}
