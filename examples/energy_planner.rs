//! The §4 deployment-planning workflow: "our analysis allows
//! administrators and protocol stake-holders and deployers to model
//! protocols and use the application details … to make energy-aware
//! protocol choices."
//!
//! Given a deployment (n nodes, payload size, media), this tool prints the
//! ψ cost table for every protocol, the ν_f break-even ratio between EESMR
//! and the alternatives, the energy-fault bound f_e (equation EB), and the
//! recommendation the feasible-region analysis implies.
//!
//! ```text
//! cargo run --example energy_planner [n] [payload_bytes]
//! ```

use eesmr_energy::psi::{break_even_nu, energy_fault_bound, PsiParams, PsiProtocol};
use eesmr_energy::FeasibleRegion;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let payload: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);

    let params = PsiParams::fig1(n, payload);
    println!(
        "deployment: n = {n}, payload = {payload} B, {} between nodes, {} to the trusted node, {}",
        params.node_medium, params.trusted_medium, params.scheme
    );

    println!("\nψ per consensus unit (system-wide, mJ):");
    println!("{:<18} {:>12} {:>12} {:>12}", "protocol", "ψ_B (best)", "ψ_V (VC)", "ψ_W (worst)");
    let protos = [
        PsiProtocol::Eesmr,
        PsiProtocol::SyncHotStuff,
        PsiProtocol::OptSync,
        PsiProtocol::TrustedBaseline,
    ];
    for p in protos {
        let best = p.psi_best(&params).total_mj();
        let vc = p.psi_view_change(&params).total_mj();
        println!("{:<18} {:>12.0} {:>12.0} {:>12.0}", format!("{p:?}"), best, vc, best + vc);
    }

    // Break-even view-change frequency vs each competitor (§4).
    println!("\nν_f break-even (max fraction of units with a view change for EESMR to win):");
    let e_best = PsiProtocol::Eesmr.psi_best(&params).total_mj();
    let e_vc = PsiProtocol::Eesmr.psi_view_change(&params).total_mj();
    for p in [PsiProtocol::SyncHotStuff, PsiProtocol::OptSync] {
        let b = p.psi_best(&params).total_mj();
        let v = p.psi_view_change(&params).total_mj();
        match break_even_nu(e_best, e_vc, b, v) {
            None => println!("  vs {p:?}: EESMR dominates at any view-change rate"),
            Some(0.0) => println!("  vs {p:?}: the competitor dominates"),
            Some(nu) => println!("  vs {p:?}: EESMR wins while ν_f ≤ {nu:.3}"),
        }
    }

    // Energy-fault bound vs the trusted baseline (equation EB).
    let bl = PsiProtocol::TrustedBaseline.psi_best(&params).total_mj();
    let fe = energy_fault_bound(bl, e_best, e_vc);
    println!("\nenergy-fault bound vs trusted baseline: f_e ≤ {fe:.2}");
    if fe >= 1.0 {
        println!("  -> EESMR stays ahead even if an adversary forces {} view change(s)", fe as u64);
    } else {
        println!("  -> the trusted baseline is the safer choice for this deployment");
    }

    // Where this deployment sits in the Fig. 1 region.
    let region = FeasibleRegion::compute(&[n], &[payload]);
    let cell = region.cell(n, payload).expect("on-grid");
    println!(
        "\nfeasible region: ψ_EESMR = {:.0} mJ, ψ_baseline = {:.0} mJ, Δ = {:+.0} mJ",
        cell.eesmr_mj, cell.baseline_mj, cell.delta_mj
    );
    println!(
        "recommendation: {}",
        if cell.eesmr_favoured() {
            "run EESMR among the CPS nodes"
        } else {
            "ship consensus to the trusted control node"
        }
    );
}
