//! Precision-agriculture scenario (the paper's §1 motivation, via the DHS
//! report on threats to precision agriculture): a field of soil-nutrient
//! sensors must agree on a tamper-evident log of readings even if some
//! sensors are compromised and inject rogue data.
//!
//! Ten battery-powered sensors run EESMR over BLE k-casts. Each submits
//! signed readings as client commands; a base station plays the client and
//! accepts results once f+1 sensors acknowledge identically. We estimate
//! battery life from the measured energy per consensus round.
//!
//! ```text
//! cargo run --example farm_sensors
//! ```

use std::sync::Arc;

use eesmr_core::client::{Ack, AckCollector};
use eesmr_core::{build_replicas, Command, Config, FaultMode};
use eesmr_crypto::{Digest, Hashable, KeyStore, SigScheme};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{NetConfig, SimDuration, SimNet};

fn main() {
    const N: usize = 10;
    const K: usize = 3;

    let topology = ring_kcast(N, K);
    let net_cfg = NetConfig::ble(topology, 2026);
    let config = Config::new(N, net_cfg.delta());
    let f = config.f;
    let pki = Arc::new(KeyStore::generate(N, SigScheme::Rsa1024, 2026));
    // Two compromised sensors go dark mid-season (view 2 onwards). The
    // field keeps operating: f = 4 tolerates them.
    let mut replicas = build_replicas(&config, &pki, |id| match id {
        7 | 8 => FaultMode::Silent { from_view: 2 },
        _ => FaultMode::Honest,
    });

    // Each sensor queues one soil reading per epoch as a client command.
    for (id, replica) in replicas.iter_mut().enumerate() {
        for epoch in 0..20u64 {
            let reading = format!(
                "sensor={id} epoch={epoch} nitrate_ppm={}",
                12 + (id as u64 * 7 + epoch) % 9
            );
            replica.submit(Command::new(reading.into_bytes()));
        }
    }

    let mut net = SimNet::new(net_cfg, replicas);
    net.run_for(SimDuration::from_millis(3_000));

    // The base station accepts a reading once f+1 sensors report the same
    // execution result (here: the digest of the committed command).
    let mut collector = AckCollector::new(f);
    let mut accepted = 0usize;
    for id in 0..N as u32 {
        if matches!(id, 7 | 8) {
            continue; // compromised sensors do not report
        }
        let r = net.actor(id);
        for block_id in r.committed() {
            let block = r.block(block_id).expect("committed");
            for cmd in &block.payload {
                let cmd_digest = cmd.digest();
                let result = Digest::of_parts(&[b"executed", cmd_digest.as_bytes()]);
                if collector.observe(Ack { replica: id, command: cmd_digest, result }).is_some() {
                    accepted += 1;
                }
            }
        }
    }

    let height = net.actor(0).committed_height();
    println!("field of {N} sensors, f = {f}, two compromised mid-season");
    println!("log height: {height}; readings accepted by the base station: {accepted}");

    // Energy budget: a CR2477 coin cell holds ~2900 J usable.
    let correct: Vec<u32> = (0..N as u32).filter(|id| !matches!(id, 7 | 8)).collect();
    let worst_node_mj = correct.iter().map(|&id| net.meter(id).total_mj()).fold(0.0f64, f64::max);
    let per_round_mj = worst_node_mj / height.max(1) as f64;
    let battery_mj = 2_900_000.0;
    let rounds = battery_mj / per_round_mj;
    println!(
        "worst-case node spent {:.0} mJ over {height} rounds ({:.0} mJ/round)",
        worst_node_mj, per_round_mj
    );
    println!(
        "a 2900 J coin cell sustains ~{:.0} consensus rounds (~{:.1} years at one round/hour)",
        rounds,
        rounds / (24.0 * 365.0)
    );

    assert!(accepted > 0, "the base station accepted readings");
}
