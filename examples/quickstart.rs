//! Quickstart: run EESMR on the paper's testbed topology and inspect the
//! replicated log and energy bill.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use eesmr_core::{build_replicas, Config, FaultMode};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{NetConfig, SimDuration, SimNet};

fn main() {
    // 1. Topology: 7 CPS nodes, each k-casting to its 3 ring successors.
    let topology = ring_kcast(7, 3);
    println!(
        "topology: n={}, k={:?}, diameter={:?}",
        topology.n(),
        topology.k(),
        topology.diameter()
    );
    println!("tolerates f = {} faults (Lemma A.6 bound)", topology.kcast_fault_bound());

    // 2. Network: BLE advertisements with 99.99% reliable k-casts.
    let net_cfg = NetConfig::ble(topology, 42);
    let delta = net_cfg.delta();
    println!("synchrony bound Δ = {delta}");

    // 3. Protocol: EESMR with RSA-1024 (the paper's pick) and 16 B blocks.
    let config = Config::new(7, delta);
    let pki = Arc::new(KeyStore::generate(7, SigScheme::Rsa1024, 42));
    let replicas = build_replicas(&config, &pki, |_| FaultMode::Honest);

    // 4. Run for one virtual second.
    let mut net = SimNet::new(net_cfg, replicas);
    net.run_for(SimDuration::from_millis(1_000));

    // 5. Inspect: the log, the agreement, and the energy bill.
    let r0 = net.actor(0);
    println!("\ncommitted {} blocks; all nodes agree:", r0.committed().len());
    for id in 1..7 {
        // Commit timers fire at slightly different instants per node, so
        // compare the common prefix (that is the SMR safety guarantee).
        let log = net.actor(id).committed();
        let common = log.len().min(r0.committed().len());
        assert_eq!(&log[..common], &r0.committed()[..common], "node {id} diverged");
    }
    for (i, block_id) in r0.committed().iter().take(5).enumerate() {
        let b = r0.block(block_id).expect("committed block");
        println!(
            "  #{i}: height {} ({} B payload) {}",
            b.height,
            b.payload_len(),
            block_id.short_hex()
        );
    }
    println!("  ...");

    println!("\nper-node energy:");
    for id in 0..7 {
        let role = if id == 0 { "leader " } else { "replica" };
        println!("  node {id} ({role}): {}", net.meter(id));
    }
    let total = net.energy_of(0..7);
    println!(
        "\ntotal: {:.1} mJ for {} blocks -> {:.1} mJ per consensus unit",
        total.total_mj(),
        r0.committed().len(),
        total.total_mj() / r0.committed().len() as f64
    );
}
