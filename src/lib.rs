//! Umbrella crate for the EESMR reproduction. See README.md.
pub use eesmr_core as core_protocol;

