//! Umbrella crate for the EESMR reproduction: one `use eesmr::prelude::*`
//! pulls in the protocol, the deterministic simulator, the energy model,
//! the k-cast topology builders, and the experiment harness. See README.md
//! for the crate map and how to regenerate each paper table and figure.
//!
//! The workspace layers, bottom to top:
//!
//! | crate | re-exported as | provides |
//! |-------|----------------|----------|
//! | `eesmr-crypto` | [`crypto`] | SHA-256, HMAC, simulated signatures, scheme energy catalogue |
//! | `eesmr-hypergraph` | [`hypergraph`] | directed hypergraphs of k-casts, connectivity analysis |
//! | `eesmr-energy` | [`energy`] | media costs, BLE reliability, meters, closed-form ψ |
//! | `eesmr-metrics` | [`metrics`] | deterministic time-series telemetry, Prometheus/JSON export, self-profiling |
//! | `eesmr-net` | [`net`] | deterministic discrete-event simulator + threaded transport |
//! | `eesmr-core` | [`core_protocol`] | the EESMR protocol itself |
//! | `eesmr-baselines` | [`baselines`] | Sync HotStuff, OptSync, trusted-node baseline |
//! | `eesmr-workload` | [`workload`] | deterministic client workloads: arrival processes, skew, open/closed loop |
//! | `eesmr-sim` | [`sim`] | scenario harness and run reports |
//! | `eesmr-driver` | [`driver`] | parallel multi-scenario driver: grids, worker pool, suite reports |
//! | `eesmr-bench` | [`mod@bench`] | CSV/table plumbing behind the figure binaries |
//!
//! # Quick example
//!
//! Run EESMR and Sync HotStuff on the same 6-node testbed and compare the
//! energy each spends per committed block:
//!
//! ```
//! use eesmr::prelude::*;
//!
//! let eesmr = Scenario::new(Protocol::Eesmr, 6, 3).stop(StopWhen::Blocks(5)).run();
//! let synchs = Scenario::new(Protocol::SyncHotStuff, 6, 3).stop(StopWhen::Blocks(5)).run();
//! assert!(eesmr.committed_height() >= 5);
//! assert!(eesmr.energy_per_block_mj() < synchs.energy_per_block_mj());
//! ```
//!
//! For driving the simulator directly (custom topologies, fault
//! injection, per-node meters) see the `quickstart` example and the
//! [`net::SimNet`] docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eesmr_baselines as baselines;
pub use eesmr_bench as bench;
pub use eesmr_core as core_protocol;
pub use eesmr_crypto as crypto;
pub use eesmr_driver as driver;
pub use eesmr_energy as energy;
pub use eesmr_hypergraph as hypergraph;
pub use eesmr_metrics as metrics;
pub use eesmr_net as net;
pub use eesmr_sim as sim;
pub use eesmr_workload as workload;

pub mod prelude {
    //! The one-line import for experiments: scenario harness, protocol
    //! config, simulator, topologies, and energy meters.

    pub use eesmr_core::{build_replicas, Config, FaultMode, LeaderPolicy, Pacing, Replica};
    pub use eesmr_crypto::{Digest, Hashable, KeyStore, SigScheme};
    pub use eesmr_driver::{Driver, DriverConfig, ScenarioGrid, SuiteReport};
    pub use eesmr_energy::psi::{PsiParams, PsiProtocol};
    pub use eesmr_energy::{
        BleKcastModel, EnergyAttribution, EnergyCategory, EnergyClass, EnergyMeter, EnergyPhase,
        FeasibleRegion, Medium,
    };
    pub use eesmr_hypergraph::topology::{
        complete, complete_unicast, random_kcast, random_resilient_kcast, ring_kcast, star,
    };
    pub use eesmr_hypergraph::Hypergraph;
    pub use eesmr_metrics::{MetricsConfig, MetricsSet};
    pub use eesmr_net::{
        NetConfig, SchedulerKind, SimDuration, SimNet, SimTime, ThreadNet, ThreadNetConfig,
    };
    pub use eesmr_sim::{
        BatchPolicy, CellKey, FaultPlan, NodeEnergy, NodeReport, Protocol, RunReport, Scenario,
        StopWhen, TxLatencyStats,
    };
    pub use eesmr_workload::{ArrivalProcess, Injection, PayloadDist, Skew, Workload};
}
