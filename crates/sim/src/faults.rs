//! Fault plans — declarative fault injection for scenarios.
//!
//! A [`FaultPlan`] names every adversarial behaviour a scenario can
//! inject and compiles it down to the per-protocol knobs: node-level
//! [`FaultMode`]/[`HsFault`]/[`TbFault`] assignments plus a link-level
//! [`LinkFaults`] schedule the network runtime enforces at transmit
//! time. [`FaultSpec`] is the sweepable axis on top: one tag per
//! canonical scenario (withholding, selective drop, storm,
//! partition-heal, churn, crash-recovery, …) that expands to a concrete
//! plan given the cluster size and the synchrony bound Δ.

use std::collections::BTreeMap;

use eesmr_baselines::trusted::TbFault;
use eesmr_baselines::HsFault;
use eesmr_core::FaultMode;
use eesmr_net::{LinkDrop, LinkFaults, NodeId, Partition};

/// Which nodes misbehave, and how.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Node → first view in which it is completely silent.
    pub silent_from_view: BTreeMap<NodeId, u64>,
    /// Node → view in which it equivocates when leading.
    pub equivocate_in_view: BTreeMap<NodeId, u64>,
    /// Node → first view from which it withholds its implicit vote
    /// (processes everything, relays nothing).
    pub withhold_from_view: BTreeMap<NodeId, u64>,
    /// Node → `(first view, extra copies)` of duplicate-storm flooding.
    pub storm_from_view: BTreeMap<NodeId, (u64, u32)>,
    /// Node → `(crash time µs, optional restart time µs)`.
    pub crash_at: BTreeMap<NodeId, (u64, Option<u64>)>,
    /// Link-level schedule: healing partitions and selective drops,
    /// enforced by the network runtime below the protocol.
    pub link_faults: LinkFaults,
}

impl FaultPlan {
    /// Everybody honest.
    pub fn none() -> Self {
        Self::default()
    }

    /// The view-1 leader (node 0 under round-robin) never speaks — the
    /// paper's "no progress" / stalling-leader scenario.
    pub fn silent_leader() -> Self {
        Self::default().with_silent(0, 1)
    }

    /// The view-1 leader proposes two conflicting blocks per round — the
    /// equivocation scenario.
    pub fn equivocating_leader() -> Self {
        Self::default().with_equivocator(0, 1)
    }

    /// The given (non-leader) nodes are silent from the start.
    pub fn silent_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut plan = Self::default();
        for n in nodes {
            plan.silent_from_view.insert(n, 1);
        }
        plan
    }

    /// Marks `node` silent starting at `view`.
    pub fn with_silent(mut self, node: NodeId, from_view: u64) -> Self {
        self.silent_from_view.insert(node, from_view);
        self
    }

    /// Marks `node` as an equivocator in `view`.
    pub fn with_equivocator(mut self, node: NodeId, in_view: u64) -> Self {
        self.equivocate_in_view.insert(node, in_view);
        self
    }

    /// Marks `node` as a vote withholder from `view` on.
    pub fn with_withholder(mut self, node: NodeId, from_view: u64) -> Self {
        self.withhold_from_view.insert(node, from_view);
        self
    }

    /// Marks `node` as a duplicate-storm flooder from `view` on, sending
    /// `repeats` extra copies of everything it relays.
    pub fn with_storm(mut self, node: NodeId, from_view: u64, repeats: u32) -> Self {
        self.storm_from_view.insert(node, (from_view, repeats));
        self
    }

    /// Crashes `node` at `at_us`; with a restart time the node comes
    /// back, repairs its log from its peers, and rejoins.
    pub fn with_crash(mut self, node: NodeId, at_us: u64, restart_at_us: Option<u64>) -> Self {
        self.crash_at.insert(node, (at_us, restart_at_us));
        self
    }

    /// Schedules a healing partition: during `[start_us, end_us)` the
    /// `island` nodes are cut off from everyone else.
    pub fn with_partition(
        mut self,
        start_us: u64,
        end_us: u64,
        island: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        self.link_faults.partitions.push(Partition {
            start_us,
            end_us,
            island: island.into_iter().collect(),
        });
        self
    }

    /// Schedules a selective drop rule on the `from → to` link (or all
    /// of `from`'s links when `to` is `None`).
    pub fn with_drop(
        mut self,
        from: NodeId,
        to: Option<NodeId>,
        permille: u16,
        start_us: u64,
        end_us: u64,
    ) -> Self {
        self.link_faults.drops.push(LinkDrop { from, to, permille, start_us, end_us });
        self
    }

    /// Whether `node` deviates from the protocol at any point.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.silent_from_view.contains_key(&node)
            || self.equivocate_in_view.contains_key(&node)
            || self.withhold_from_view.contains_key(&node)
            || self.storm_from_view.contains_key(&node)
            || self.crash_at.contains_key(&node)
    }

    /// Whether `node` is excused from the scenario's commit targets.
    /// Silent and equivocating nodes contribute nothing by design, and a
    /// node that crashes without a restart can never catch up — but a
    /// withholder, a flooder, or a crash-with-restart node still runs
    /// the protocol and **must** reach the targets like everyone else.
    pub fn is_excused(&self, node: NodeId) -> bool {
        self.silent_from_view.contains_key(&node)
            || self.equivocate_in_view.contains_key(&node)
            || matches!(self.crash_at.get(&node), Some((_, None)))
    }

    /// [`Self::is_excused`], evaluated against the trusted baseline's
    /// translation of the plan ([`Self::tb_fault`]): silence *and*
    /// withholding both become a permanently silent spoke there (the
    /// baseline has no views and no relaying), and a crash without a
    /// restart never rejoins — none of those can reach a commit target.
    pub fn tb_is_excused(&self, node: NodeId) -> bool {
        matches!(
            self.tb_fault(node),
            TbFault::Silent { .. } | TbFault::Crash { restart_at_us: None, .. }
        )
    }

    /// Number of faulty nodes (link-level faults afflict links, not
    /// nodes, and do not count here).
    pub fn count(&self) -> usize {
        let mut nodes: std::collections::BTreeSet<NodeId> =
            self.silent_from_view.keys().copied().collect();
        nodes.extend(self.equivocate_in_view.keys().copied());
        nodes.extend(self.withhold_from_view.keys().copied());
        nodes.extend(self.storm_from_view.keys().copied());
        nodes.extend(self.crash_at.keys().copied());
        nodes.len()
    }

    /// The link-level schedule to install into `NetConfig::link_faults`.
    pub fn link_faults(&self) -> LinkFaults {
        self.link_faults.clone()
    }

    /// The time (µs) after which every scheduled fault has healed: link
    /// windows closed, crashed nodes restarted (a crash with no restart
    /// never heals and reports `u64::MAX`). Node behaviours keyed to
    /// views (silence, withholding, storms) have no wall-clock end and
    /// do not extend this; they are excused or tolerated, not healed.
    pub fn heal_time_us(&self) -> u64 {
        let links = self.link_faults.heal_time_us();
        let crashes = self
            .crash_at
            .values()
            .map(|&(_, restart)| restart.unwrap_or(u64::MAX))
            .max()
            .unwrap_or(0);
        links.max(crashes)
    }

    /// The EESMR fault mode for `node`. A node in several maps takes the
    /// strongest behaviour: silence > equivocation > crash > withholding
    /// > storming.
    pub fn eesmr_mode(&self, node: NodeId) -> FaultMode {
        if let Some(&v) = self.silent_from_view.get(&node) {
            FaultMode::Silent { from_view: v }
        } else if let Some(&v) = self.equivocate_in_view.get(&node) {
            FaultMode::Equivocate { in_view: v }
        } else if let Some(&(at_us, restart_at_us)) = self.crash_at.get(&node) {
            FaultMode::Crash { at_us, restart_at_us }
        } else if let Some(&v) = self.withhold_from_view.get(&node) {
            FaultMode::Withhold { from_view: v }
        } else if let Some(&(v, repeats)) = self.storm_from_view.get(&node) {
            FaultMode::Storm { from_view: v, repeats }
        } else {
            FaultMode::Honest
        }
    }

    /// The Sync HotStuff fault mode for `node` (same precedence as
    /// [`Self::eesmr_mode`]).
    pub fn hs_mode(&self, node: NodeId) -> HsFault {
        if let Some(&v) = self.silent_from_view.get(&node) {
            HsFault::Silent { from_view: v }
        } else if let Some(&v) = self.equivocate_in_view.get(&node) {
            HsFault::Equivocate { in_view: v }
        } else if let Some(&(at_us, restart_at_us)) = self.crash_at.get(&node) {
            HsFault::Crash { at_us, restart_at_us }
        } else if let Some(&v) = self.withhold_from_view.get(&node) {
            HsFault::Withhold { from_view: v }
        } else if let Some(&(v, repeats)) = self.storm_from_view.get(&node) {
            HsFault::Storm { from_view: v, repeats }
        } else {
            HsFault::Honest
        }
    }

    /// The trusted-baseline fault for `node`. The baseline has no views,
    /// so view-keyed behaviours translate to their time-domain analogue:
    /// silence and withholding both become a spoke that stops
    /// contributing; equivocation has no meaning against a hub that
    /// signs the only chain and maps to honest.
    pub fn tb_fault(&self, node: NodeId) -> TbFault {
        if self.silent_from_view.contains_key(&node) || self.withhold_from_view.contains_key(&node)
        {
            TbFault::Silent { from_us: 0 }
        } else if let Some(&(at_us, restart_at_us)) = self.crash_at.get(&node) {
            TbFault::Crash { at_us, restart_at_us }
        } else if let Some(&(_, repeats)) = self.storm_from_view.get(&node) {
            TbFault::Storm { repeats }
        } else {
            TbFault::Honest
        }
    }
}

/// A sweepable fault axis: one tag per canonical adversarial scenario.
/// [`FaultSpec::plan`] expands the tag into a concrete [`FaultPlan`]
/// sized to the cluster (`n` nodes, synchrony bound Δ in µs), always
/// afflicting trailing non-leader nodes so view 1's leader (node 0)
/// stays honest except in the leader-fault scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSpec {
    /// Everybody honest.
    None,
    /// The view-1 leader is silent; the protocol must change views.
    SilentLeader,
    /// The view-1 leader equivocates; detection must trigger a blame.
    Equivocate,
    /// A follower withholds its implicit vote from view 1 on.
    Withhold,
    /// A lossy link: one node's transmissions to one peer drop half the
    /// time for the first 20Δ.
    SelectiveDrop,
    /// A follower duplicate-storms every relay (3 extra copies).
    Storm,
    /// The last node is partitioned away during `[5Δ, 25Δ)`, then the
    /// partition heals.
    PartitionHeal,
    /// Node churn: two followers crash and restart on staggered
    /// schedules (down during `[10Δ, 30Δ)` and `[20Δ, 40Δ)`).
    Churn,
    /// One follower crashes at 10Δ and restarts at 40Δ, repairing its
    /// log from its peers.
    CrashRecovery,
}

impl FaultSpec {
    /// Every axis value, honest first — the sweep order figures use.
    pub const ALL: [FaultSpec; 9] = [
        FaultSpec::None,
        FaultSpec::SilentLeader,
        FaultSpec::Equivocate,
        FaultSpec::Withhold,
        FaultSpec::SelectiveDrop,
        FaultSpec::Storm,
        FaultSpec::PartitionHeal,
        FaultSpec::Churn,
        FaultSpec::CrashRecovery,
    ];

    /// The adversarial axis values (everything but `None`).
    pub const ADVERSARIAL: [FaultSpec; 8] = [
        FaultSpec::SilentLeader,
        FaultSpec::Equivocate,
        FaultSpec::Withhold,
        FaultSpec::SelectiveDrop,
        FaultSpec::Storm,
        FaultSpec::PartitionHeal,
        FaultSpec::Churn,
        FaultSpec::CrashRecovery,
    ];

    /// Stable label used in cell keys, CSV columns, and filenames.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::None => "none",
            FaultSpec::SilentLeader => "silent-leader",
            FaultSpec::Equivocate => "equivocate",
            FaultSpec::Withhold => "withhold",
            FaultSpec::SelectiveDrop => "selective-drop",
            FaultSpec::Storm => "storm",
            FaultSpec::PartitionHeal => "partition-heal",
            FaultSpec::Churn => "churn",
            FaultSpec::CrashRecovery => "crash-recovery",
        }
    }

    /// Expands the tag into a concrete plan for an `n`-node cluster with
    /// synchrony bound `delta_us` (µs).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` — smaller clusters cannot absorb a fault.
    pub fn plan(&self, n: usize, delta_us: u64) -> FaultPlan {
        assert!(n >= 4, "fault scenarios need n >= 4, got {n}");
        let last = (n - 1) as NodeId;
        let d = delta_us.max(1);
        match self {
            FaultSpec::None => FaultPlan::none(),
            FaultSpec::SilentLeader => FaultPlan::silent_leader(),
            FaultSpec::Equivocate => FaultPlan::equivocating_leader(),
            FaultSpec::Withhold => FaultPlan::none().with_withholder(last, 1),
            FaultSpec::SelectiveDrop => {
                FaultPlan::none().with_drop(last, Some(last - 1), 500, 0, 20 * d)
            }
            FaultSpec::Storm => FaultPlan::none().with_storm(last, 1, 3),
            FaultSpec::PartitionHeal => FaultPlan::none().with_partition(5 * d, 25 * d, [last]),
            FaultSpec::Churn => FaultPlan::none()
                .with_crash(last, 10 * d, Some(30 * d))
                .with_crash(last - 1, 20 * d, Some(40 * d)),
            FaultSpec::CrashRecovery => FaultPlan::none().with_crash(last, 10 * d, Some(40 * d)),
        }
    }

    /// Parses a [`Self::label`] back into the tag (for CLI filters).
    pub fn parse(s: &str) -> Option<FaultSpec> {
        FaultSpec::ALL.into_iter().find(|f| f.label() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_mark_the_right_nodes() {
        assert_eq!(FaultPlan::none().count(), 0);
        let p = FaultPlan::silent_leader();
        assert!(p.is_faulty(0));
        assert!(!p.is_faulty(1));
        assert_eq!(p.eesmr_mode(0), FaultMode::Silent { from_view: 1 });
        assert_eq!(p.eesmr_mode(1), FaultMode::Honest);
        assert_eq!(p.hs_mode(0), HsFault::Silent { from_view: 1 });
    }

    #[test]
    fn equivocator_maps_to_both_protocols() {
        let p = FaultPlan::equivocating_leader();
        assert_eq!(p.eesmr_mode(0), FaultMode::Equivocate { in_view: 1 });
        assert_eq!(p.hs_mode(0), HsFault::Equivocate { in_view: 1 });
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn silent_nodes_and_chaining() {
        let p = FaultPlan::silent_nodes([3, 4]).with_equivocator(0, 2).with_silent(5, 7);
        assert_eq!(p.count(), 4);
        assert_eq!(p.eesmr_mode(5), FaultMode::Silent { from_view: 7 });
        assert_eq!(p.eesmr_mode(0), FaultMode::Equivocate { in_view: 2 });
    }

    #[test]
    fn a_node_in_both_maps_counts_once() {
        let p = FaultPlan::silent_nodes([1]).with_equivocator(1, 1);
        assert_eq!(p.count(), 1);
        // Silence wins (checked first) — a silent node cannot equivocate.
        assert_eq!(p.eesmr_mode(1), FaultMode::Silent { from_view: 1 });
    }

    #[test]
    fn adversarial_behaviours_map_across_protocols() {
        let p = FaultPlan::none().with_withholder(2, 3).with_storm(4, 1, 5).with_crash(
            5,
            10_000,
            Some(50_000),
        );
        assert_eq!(p.count(), 3);
        assert_eq!(p.eesmr_mode(2), FaultMode::Withhold { from_view: 3 });
        assert_eq!(p.hs_mode(4), HsFault::Storm { from_view: 1, repeats: 5 });
        assert_eq!(
            p.eesmr_mode(5),
            FaultMode::Crash { at_us: 10_000, restart_at_us: Some(50_000) }
        );
        assert_eq!(p.tb_fault(5), TbFault::Crash { at_us: 10_000, restart_at_us: Some(50_000) });
        assert_eq!(p.tb_fault(2), TbFault::Silent { from_us: 0 });
        assert_eq!(p.tb_fault(4), TbFault::Storm { repeats: 5 });
    }

    #[test]
    fn excused_vs_must_progress() {
        let p = FaultPlan::silent_leader()
            .with_withholder(1, 1)
            .with_storm(2, 1, 2)
            .with_crash(3, 1_000, Some(2_000))
            .with_crash(4, 1_000, None);
        assert!(p.is_excused(0), "silent nodes are excused");
        assert!(!p.is_excused(1), "withholders must still commit");
        assert!(!p.is_excused(2), "flooders must still commit");
        assert!(!p.is_excused(3), "a restarted node must catch up");
        assert!(p.is_excused(4), "a dead node never commits again");
        assert!(p.is_faulty(4));
    }

    #[test]
    fn heal_time_covers_links_and_restarts() {
        assert_eq!(FaultPlan::none().heal_time_us(), 0);
        let p =
            FaultPlan::none().with_partition(1_000, 9_000, [3]).with_crash(2, 500, Some(12_000));
        assert_eq!(p.heal_time_us(), 12_000);
        let dead = FaultPlan::none().with_crash(2, 500, None);
        assert_eq!(dead.heal_time_us(), u64::MAX, "a permanent crash never heals");
    }

    #[test]
    fn specs_expand_to_sized_plans() {
        let d = 2_000;
        for spec in FaultSpec::ALL {
            let p = spec.plan(8, d);
            assert!(FaultSpec::parse(spec.label()) == Some(spec), "label round-trips");
            if spec == FaultSpec::None {
                assert_eq!(p.count(), 0);
                assert!(p.link_faults.is_empty());
            } else {
                assert!(
                    p.count() > 0 || !p.link_faults.is_empty(),
                    "{} afflicts something",
                    spec.label()
                );
            }
        }
        let churn = FaultSpec::Churn.plan(8, d);
        assert_eq!(churn.count(), 2);
        assert_eq!(churn.heal_time_us(), 40 * d);
        let part = FaultSpec::PartitionHeal.plan(8, d);
        assert!(part.link_faults.severed(6 * d, 7, 0));
        assert!(!part.link_faults.severed(26 * d, 7, 0), "the partition heals");
        assert!(!part.is_faulty(7), "a partitioned node is a link fault, not a node fault");
    }
}
