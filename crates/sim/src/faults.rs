//! Fault plans — declarative fault injection for scenarios.

use std::collections::BTreeMap;

use eesmr_baselines::HsFault;
use eesmr_core::FaultMode;
use eesmr_net::NodeId;

/// Which nodes misbehave, and how.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Node → first view in which it is completely silent.
    pub silent_from_view: BTreeMap<NodeId, u64>,
    /// Node → view in which it equivocates when leading.
    pub equivocate_in_view: BTreeMap<NodeId, u64>,
}

impl FaultPlan {
    /// Everybody honest.
    pub fn none() -> Self {
        Self::default()
    }

    /// The view-1 leader (node 0 under round-robin) never speaks — the
    /// paper's "no progress" / stalling-leader scenario.
    pub fn silent_leader() -> Self {
        let mut plan = Self::default();
        plan.silent_from_view.insert(0, 1);
        plan
    }

    /// The view-1 leader proposes two conflicting blocks per round — the
    /// equivocation scenario.
    pub fn equivocating_leader() -> Self {
        let mut plan = Self::default();
        plan.equivocate_in_view.insert(0, 1);
        plan
    }

    /// The given (non-leader) nodes are silent from the start.
    pub fn silent_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut plan = Self::default();
        for n in nodes {
            plan.silent_from_view.insert(n, 1);
        }
        plan
    }

    /// Marks `node` silent starting at `view`.
    pub fn with_silent(mut self, node: NodeId, from_view: u64) -> Self {
        self.silent_from_view.insert(node, from_view);
        self
    }

    /// Marks `node` as an equivocator in `view`.
    pub fn with_equivocator(mut self, node: NodeId, in_view: u64) -> Self {
        self.equivocate_in_view.insert(node, in_view);
        self
    }

    /// Whether `node` deviates from the protocol at any point.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.silent_from_view.contains_key(&node) || self.equivocate_in_view.contains_key(&node)
    }

    /// Number of faulty nodes.
    pub fn count(&self) -> usize {
        let mut nodes: std::collections::BTreeSet<NodeId> =
            self.silent_from_view.keys().copied().collect();
        nodes.extend(self.equivocate_in_view.keys().copied());
        nodes.len()
    }

    /// The EESMR fault mode for `node`.
    pub fn eesmr_mode(&self, node: NodeId) -> FaultMode {
        if let Some(&v) = self.silent_from_view.get(&node) {
            FaultMode::Silent { from_view: v }
        } else if let Some(&v) = self.equivocate_in_view.get(&node) {
            FaultMode::Equivocate { in_view: v }
        } else {
            FaultMode::Honest
        }
    }

    /// The Sync HotStuff fault mode for `node`.
    pub fn hs_mode(&self, node: NodeId) -> HsFault {
        if let Some(&v) = self.silent_from_view.get(&node) {
            HsFault::Silent { from_view: v }
        } else if let Some(&v) = self.equivocate_in_view.get(&node) {
            HsFault::Equivocate { in_view: v }
        } else {
            HsFault::Honest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_mark_the_right_nodes() {
        assert_eq!(FaultPlan::none().count(), 0);
        let p = FaultPlan::silent_leader();
        assert!(p.is_faulty(0));
        assert!(!p.is_faulty(1));
        assert_eq!(p.eesmr_mode(0), FaultMode::Silent { from_view: 1 });
        assert_eq!(p.eesmr_mode(1), FaultMode::Honest);
        assert_eq!(p.hs_mode(0), HsFault::Silent { from_view: 1 });
    }

    #[test]
    fn equivocator_maps_to_both_protocols() {
        let p = FaultPlan::equivocating_leader();
        assert_eq!(p.eesmr_mode(0), FaultMode::Equivocate { in_view: 1 });
        assert_eq!(p.hs_mode(0), HsFault::Equivocate { in_view: 1 });
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn silent_nodes_and_chaining() {
        let p = FaultPlan::silent_nodes([3, 4]).with_equivocator(0, 2).with_silent(5, 7);
        assert_eq!(p.count(), 4);
        assert_eq!(p.eesmr_mode(5), FaultMode::Silent { from_view: 7 });
        assert_eq!(p.eesmr_mode(0), FaultMode::Equivocate { in_view: 2 });
    }

    #[test]
    fn a_node_in_both_maps_counts_once() {
        let p = FaultPlan::silent_nodes([1]).with_equivocator(1, 1);
        assert_eq!(p.count(), 1);
        // Silence wins (checked first) — a silent node cannot equivocate.
        assert_eq!(p.eesmr_mode(1), FaultMode::Silent { from_view: 1 });
    }
}
