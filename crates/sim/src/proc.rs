//! ProcNet execution: run a [`Scenario`] as real OS processes.
//!
//! [`Scenario::run_proc`] spawns one `proc_replica` child per node (the
//! `eesmr-sim` binary of that name), meshes them over TCP or Unix domain
//! sockets via `eesmr_net::proc`, drives them with the coordinator
//! control protocol, and reassembles the children's report blobs into
//! the same [`RunReport`] the simulator emits. Wall clock replaces
//! virtual time — `elapsed_us` and the latency figures are real — while
//! the energy figures come from the same channel model, priced on the
//! same encoded bytes.
//!
//! # Δ padding
//!
//! Child protocol configs run their timers on
//! `max(simulated Δ, DELTA_PAD_US)`: with the simulator's
//! millisecond-scale Δ, a leader preempted by the OS scheduler for a few
//! milliseconds would look silent and draw spurious blame. Padding Δ
//! changes timer spacing only, never block contents, which is what lets
//! the conformance suite assert bit-identical commit sequences between
//! the two backends (`tests/proc_conformance.rs`).

use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

use eesmr_baselines::sync_hotstuff::{HsConfig, HsVariant};
use eesmr_baselines::trusted::HUB;
use eesmr_core::Config;
use eesmr_crypto::SigScheme;
use eesmr_hypergraph::topology::{ring_kcast, star};
use eesmr_net::proc::{alloc_addrs, ChildOpts, ChildProc, Coordinator, ProcTransport};
use eesmr_net::{CodecError, NetConfig, NetStats, Reader, SimDuration};
use eesmr_trace::hist::LogHistogram;

use crate::report::{NodeEnergy, NodeReport, RunReport};
use crate::scenario::{Protocol, Scenario, StopWhen};

/// Floor on the Δ child processes run their timers with, µs (see the
/// module docs on Δ padding).
pub const DELTA_PAD_US: u64 = 25_000;

/// How long the coordinator waits for every child to reach its block
/// target before declaring the run wedged.
const RUN_TIMEOUT: Duration = Duration::from_secs(120);

/// How long the coordinator retries control connections while children
/// bind their listeners.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// The scenario cell a child must rebuild, as carried by its command
/// line: every knob that shapes replica construction, plus the padded Δ
/// so the whole mesh agrees on timer spacing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcCell {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Node count.
    pub n: usize,
    /// Ring k-cast degree (energy pricing; the mesh itself is full).
    pub k: usize,
    /// Payload bytes per block.
    pub payload_bytes: usize,
    /// Run seed (keys).
    pub seed: u64,
    /// Signature scheme.
    pub scheme: SigScheme,
    /// Synthetic offered load.
    pub offered_load: usize,
    /// Forward-batching threshold.
    pub forward_batch: usize,
    /// Streaming pacing.
    pub streaming: bool,
    /// EESMR crash-only variant.
    pub crash_only: bool,
    /// EESMR §3.5 equivocation speedup.
    pub opt_equivocation_speedup: bool,
    /// EESMR §5.6 lock-only status.
    pub opt_lock_only_status: bool,
    /// EESMR §3.5 checkpoint interval.
    pub checkpoint_interval: Option<u64>,
    /// Explicit protocol fault bound.
    pub fault_bound: Option<usize>,
    /// The (padded) Δ the child runs timers with, µs.
    pub delta_us: u64,
}

/// `--protocol` flag values, paired with [`parse_protocol`].
pub fn protocol_flag(p: Protocol) -> &'static str {
    match p {
        Protocol::Eesmr => "eesmr",
        Protocol::SyncHotStuff => "sync-hotstuff",
        Protocol::OptSync => "optsync",
        Protocol::TrustedBaseline => "trusted",
    }
}

/// Parses a [`protocol_flag`] value.
pub fn parse_protocol(s: &str) -> Option<Protocol> {
    match s {
        "eesmr" => Some(Protocol::Eesmr),
        "sync-hotstuff" => Some(Protocol::SyncHotStuff),
        "optsync" => Some(Protocol::OptSync),
        "trusted" => Some(Protocol::TrustedBaseline),
        _ => None,
    }
}

impl ProcCell {
    /// Renders the cell as `proc_replica` command-line arguments
    /// (everything except the per-child `--node-id`/`--listen`/`--peers`
    /// identity flags).
    pub fn args(&self) -> Vec<String> {
        let mut args = vec![
            "--protocol".into(),
            protocol_flag(self.protocol).into(),
            "--n".into(),
            self.n.to_string(),
            "--k".into(),
            self.k.to_string(),
            "--payload".into(),
            self.payload_bytes.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--scheme".into(),
            self.scheme.wire_tag().to_string(),
            "--offered-load".into(),
            self.offered_load.to_string(),
            "--forward-batch".into(),
            self.forward_batch.to_string(),
            "--delta-us".into(),
            self.delta_us.to_string(),
        ];
        if self.streaming {
            args.push("--streaming".into());
        }
        if self.crash_only {
            args.push("--crash-only".into());
        }
        if self.opt_equivocation_speedup {
            args.push("--opt-equivocation-speedup".into());
        }
        if self.opt_lock_only_status {
            args.push("--opt-lock-only-status".into());
        }
        if let Some(interval) = self.checkpoint_interval {
            args.push("--checkpoint".into());
            args.push(interval.to_string());
        }
        if let Some(f) = self.fault_bound {
            args.push("--fault-bound".into());
            args.push(f.to_string());
        }
        args
    }
}

/// Parses a `proc_replica` command line (the [`ProcCell::args`] flags
/// plus the per-child identity flags) back into the cell and the
/// transport options. Returns `None` on any unknown flag, missing
/// required flag, or malformed value.
pub fn parse_child_args(args: &[String]) -> Option<(ProcCell, ChildOpts)> {
    let mut protocol = None;
    let mut n = None;
    let mut k = None;
    let mut payload = None;
    let mut seed = None;
    let mut scheme = None;
    let mut offered_load = 1usize;
    let mut forward_batch = 1usize;
    let mut delta_us = None;
    let mut streaming = false;
    let mut crash_only = false;
    let mut opt_equivocation_speedup = false;
    let mut opt_lock_only_status = false;
    let mut checkpoint_interval = None;
    let mut fault_bound = None;
    let mut node_id = None;
    let mut transport = None;
    let mut listen = None;
    let mut peers = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--streaming" => streaming = true,
            "--crash-only" => crash_only = true,
            "--opt-equivocation-speedup" => opt_equivocation_speedup = true,
            "--opt-lock-only-status" => opt_lock_only_status = true,
            _ => {
                let value = it.next()?;
                match flag.as_str() {
                    "--protocol" => protocol = Some(parse_protocol(value)?),
                    "--n" => n = Some(value.parse().ok()?),
                    "--k" => k = Some(value.parse().ok()?),
                    "--payload" => payload = Some(value.parse().ok()?),
                    "--seed" => seed = Some(value.parse().ok()?),
                    "--scheme" => {
                        scheme = Some(SigScheme::from_wire_tag(value.parse().ok()?)?);
                    }
                    "--offered-load" => offered_load = value.parse().ok()?,
                    "--forward-batch" => forward_batch = value.parse().ok()?,
                    "--delta-us" => delta_us = Some(value.parse().ok()?),
                    "--checkpoint" => checkpoint_interval = Some(value.parse().ok()?),
                    "--fault-bound" => fault_bound = Some(value.parse().ok()?),
                    "--node-id" => node_id = Some(value.parse().ok()?),
                    "--transport" => transport = Some(ProcTransport::parse(value)?),
                    "--listen" => listen = Some(value.clone()),
                    "--peers" => peers = Some(ChildOpts::parse_peers(value)?),
                    _ => return None,
                }
            }
        }
    }
    let cell = ProcCell {
        protocol: protocol?,
        n: n?,
        k: k?,
        payload_bytes: payload?,
        seed: seed?,
        scheme: scheme?,
        offered_load,
        forward_batch,
        streaming,
        crash_only,
        opt_equivocation_speedup,
        opt_lock_only_status,
        checkpoint_interval,
        fault_bound,
        delta_us: delta_us?,
    };
    let opts =
        ChildOpts { node_id: node_id?, transport: transport?, listen: listen?, peers: peers? };
    Some((cell, opts))
}

/// Report-blob schema magic + version ("EESMR Proc Report, v1").
const REPORT_MAGIC: &[u8; 4] = b"EPR1";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Encodes one child's [`NodeReport`] plus its transport counters as the
/// opaque control-channel blob `run_proc` collects. The layout is an
/// internal coordinator↔child contract versioned by `REPORT_MAGIC` —
/// both ends always come from the same build, so it can evolve freely
/// (unlike the frozen v1 message wire format).
pub fn encode_node_report(node: &NodeReport, stats: &NetStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(REPORT_MAGIC);
    put_u32(&mut out, node.id);
    out.push(u8::from(node.faulty) | (u8::from(node.is_hub) << 1));
    put_f64(&mut out, node.energy.send_mj);
    put_f64(&mut out, node.energy.recv_mj);
    put_f64(&mut out, node.energy.sign_mj);
    put_f64(&mut out, node.energy.verify_mj);
    put_f64(&mut out, node.energy.hash_mj);
    put_u64(&mut out, node.committed_height);
    put_u64(&mut out, node.blocks_committed);
    put_u64(&mut out, node.view_changes);
    put_u64(&mut out, node.signs);
    put_u64(&mut out, node.verifies);
    match node.mean_commit_latency {
        Some(d) => {
            out.push(1);
            put_u64(&mut out, d.as_micros());
        }
        None => out.push(0),
    }
    put_u64(&mut out, node.tx_injected);
    put_u64(&mut out, node.tx_forwarded);
    put_u64(&mut out, node.forward_retries);
    put_u64(&mut out, node.peak_backlog);
    match node.mean_batch_fill_pct {
        Some(pct) => {
            out.push(1);
            put_f64(&mut out, pct);
        }
        None => out.push(0),
    }
    let (buckets, count, sum, min, max) = node.tx_latency_hist.raw_parts();
    put_u64(&mut out, count);
    put_u64(&mut out, sum as u64);
    put_u64(&mut out, (sum >> 64) as u64);
    put_u64(&mut out, min);
    put_u64(&mut out, max);
    put_u32(&mut out, buckets.len() as u32);
    for &b in buckets {
        put_u64(&mut out, b);
    }
    put_u32(&mut out, node.commit_fps.len() as u32);
    for &fp in &node.commit_fps {
        put_u64(&mut out, fp);
    }
    put_u32(&mut out, node.commit_txs.len() as u32);
    for &txs in &node.commit_txs {
        put_u32(&mut out, txs);
    }
    put_u64(&mut out, stats.kcasts);
    put_u64(&mut out, stats.deliveries);
    put_u64(&mut out, stats.loopbacks);
    put_u64(&mut out, stats.flood_relays);
    put_u64(&mut out, stats.bytes_on_air);
    put_u64(&mut out, stats.dropped);
    out
}

fn bad(err: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("report blob: {err}"))
}

fn read_f64(r: &mut Reader<'_>) -> io::Result<f64> {
    Ok(f64::from_bits(r.u64().map_err(bad)?))
}

/// Decodes a blob produced by [`encode_node_report`].
pub fn decode_node_report(blob: &[u8]) -> io::Result<(NodeReport, NetStats)> {
    let mut r = Reader::new(blob);
    if r.bytes(4).map_err(bad)? != REPORT_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "report blob: bad magic"));
    }
    let id = r.u32().map_err(bad)?;
    let flags = r.u8().map_err(bad)?;
    let energy = NodeEnergy {
        send_mj: read_f64(&mut r)?,
        recv_mj: read_f64(&mut r)?,
        sign_mj: read_f64(&mut r)?,
        verify_mj: read_f64(&mut r)?,
        hash_mj: read_f64(&mut r)?,
    };
    let committed_height = r.u64().map_err(bad)?;
    let blocks_committed = r.u64().map_err(bad)?;
    let view_changes = r.u64().map_err(bad)?;
    let signs = r.u64().map_err(bad)?;
    let verifies = r.u64().map_err(bad)?;
    let mean_commit_latency = match r.u8().map_err(bad)? {
        0 => None,
        _ => Some(SimDuration::from_micros(r.u64().map_err(bad)?)),
    };
    let tx_injected = r.u64().map_err(bad)?;
    let tx_forwarded = r.u64().map_err(bad)?;
    let forward_retries = r.u64().map_err(bad)?;
    let peak_backlog = r.u64().map_err(bad)?;
    let mean_batch_fill_pct = match r.u8().map_err(bad)? {
        0 => None,
        _ => Some(read_f64(&mut r)?),
    };
    let count = r.u64().map_err(bad)?;
    let sum_lo = r.u64().map_err(bad)?;
    let sum_hi = r.u64().map_err(bad)?;
    let min = r.u64().map_err(bad)?;
    let max = r.u64().map_err(bad)?;
    let n_buckets = r.u32().map_err(bad)? as usize;
    if n_buckets.saturating_mul(8) > r.remaining() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "report blob: bucket overrun"));
    }
    let mut buckets = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        buckets.push(r.u64().map_err(bad)?);
    }
    let sum = (sum_lo as u128) | ((sum_hi as u128) << 64);
    let tx_latency_hist = LogHistogram::from_raw_parts(buckets, count, sum, min, max);
    let n_fps = r.u32().map_err(bad)? as usize;
    if n_fps.saturating_mul(8) > r.remaining() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "report blob: fps overrun"));
    }
    let mut commit_fps = Vec::with_capacity(n_fps);
    for _ in 0..n_fps {
        commit_fps.push(r.u64().map_err(bad)?);
    }
    let n_txs = r.u32().map_err(bad)? as usize;
    if n_txs.saturating_mul(4) > r.remaining() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "report blob: txs overrun"));
    }
    let mut commit_txs = Vec::with_capacity(n_txs);
    for _ in 0..n_txs {
        commit_txs.push(r.u32().map_err(bad)?);
    }
    let stats = NetStats {
        kcasts: r.u64().map_err(bad)?,
        deliveries: r.u64().map_err(bad)?,
        loopbacks: r.u64().map_err(bad)?,
        flood_relays: r.u64().map_err(bad)?,
        bytes_on_air: r.u64().map_err(bad)?,
        dropped: r.u64().map_err(bad)?,
    };
    r.finish().map_err(bad)?;
    let node = NodeReport {
        id,
        faulty: flags & 1 != 0,
        is_hub: flags & 2 != 0,
        energy,
        committed_height,
        blocks_committed,
        view_changes,
        signs,
        verifies,
        mean_commit_latency,
        tx_injected,
        tx_forwarded,
        forward_retries,
        peak_backlog,
        mean_batch_fill_pct,
        tx_latency_hist,
        commit_fps,
        commit_txs,
    };
    Ok((node, stats))
}

fn unsupported(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("run_proc covers the happy-path cell only: {what} is not supported"),
    )
}

impl Scenario {
    /// The `(Δ, f)` this scenario's process run uses: the simulated
    /// topology's Δ padded to [`DELTA_PAD_US`] for wall-clock timer
    /// robustness, and the same protocol fault bound `run` would use.
    fn proc_delta_f(&self) -> (SimDuration, usize) {
        let net_cfg = match self.protocol {
            Protocol::TrustedBaseline => NetConfig::ble(star(self.n, HUB), self.seed),
            _ => NetConfig::ble(ring_kcast(self.n, self.k), self.seed),
        };
        let delta = net_cfg.delta().max(SimDuration::from_micros(DELTA_PAD_US));
        let f = match self.protocol {
            Protocol::Eesmr => self.fault_bound.unwrap_or(Config::new(self.n, delta).f),
            Protocol::SyncHotStuff | Protocol::OptSync => {
                self.fault_bound.unwrap_or(HsConfig::new(self.n, delta, HsVariant::SyncHotStuff).f)
            }
            Protocol::TrustedBaseline => 0,
        };
        (delta, f)
    }

    /// Runs this scenario's happy-path cell as real OS processes: one
    /// `proc_replica` child per node (spawned from `binary`), meshed
    /// over `transport`, stopped once every node reports the scenario's
    /// block target. Returns the same [`RunReport`] shape `run` does,
    /// with wall-clock `elapsed_us` and latencies.
    ///
    /// Supported cells: no fault plan, no client workload, no explicit
    /// batch policy, and a [`StopWhen::Blocks`] stop — the subset where
    /// commit sequences are timing-independent, so the conformance
    /// suite can compare backends bit for bit. Anything else returns
    /// `InvalidInput`.
    pub fn run_proc(&self, transport: ProcTransport, binary: &Path) -> io::Result<RunReport> {
        let blocks = match self.stop {
            StopWhen::Blocks(b) => b,
            _ => return Err(unsupported("a non-Blocks stop condition")),
        };
        if self.workload.is_some() {
            return Err(unsupported("a client workload"));
        }
        if self.fault_spec.is_some() || self.faults.count() > 0 {
            return Err(unsupported("a fault plan"));
        }
        if self.batch_policy.is_some() {
            return Err(unsupported("an explicit batch policy"));
        }
        if !binary.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not built — run `cargo build -p eesmr-sim --bins`", binary.display()),
            ));
        }

        let (delta, f) = self.proc_delta_f();
        let cell = ProcCell {
            protocol: self.protocol,
            n: self.n,
            k: self.k,
            payload_bytes: self.payload_bytes,
            seed: self.seed,
            scheme: self.scheme,
            offered_load: self.offered_load,
            forward_batch: self.forward_batch,
            streaming: self.streaming,
            crash_only: self.crash_only,
            opt_equivocation_speedup: self.opt_equivocation_speedup,
            opt_lock_only_status: self.opt_lock_only_status,
            checkpoint_interval: self.checkpoint_interval,
            fault_bound: self.fault_bound,
            delta_us: delta.as_micros(),
        };
        let addrs = alloc_addrs(transport, self.n)?;
        let mut children = Vec::with_capacity(self.n);
        for id in 0..self.n {
            let peers: Vec<(u32, String)> =
                (0..self.n).filter(|p| *p != id).map(|p| (p as u32, addrs[p].clone())).collect();
            let mut cmd = std::process::Command::new(binary);
            cmd.args(cell.args())
                .arg("--node-id")
                .arg(id.to_string())
                .arg("--transport")
                .arg(transport.flag())
                .arg("--listen")
                .arg(&addrs[id])
                .arg("--peers")
                .arg(ChildOpts::peers_flag(&peers))
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::null());
            children.push(ChildProc(cmd.spawn()?));
        }

        let started = Instant::now();
        let mut coord = Coordinator::connect(transport, &addrs, CONNECT_TIMEOUT)?;
        coord.start()?;
        coord.run_until(|statuses| statuses.iter().all(|h| *h >= blocks), RUN_TIMEOUT)?;
        let blobs = coord.stop_and_collect()?;
        let elapsed_us = started.elapsed().as_micros() as u64;
        drop(children); // all exited after CMD_STOP; kill-on-drop is a no-op

        let mut net = NetStats::default();
        let mut nodes = Vec::with_capacity(self.n);
        for (i, blob) in blobs.iter().enumerate() {
            let (node, stats) = decode_node_report(blob)?;
            if node.id as usize != i {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("child {i} reported as node {}", node.id),
                ));
            }
            net.absorb(&stats);
            nodes.push(node);
        }
        Ok(RunReport {
            protocol: self.protocol.name(),
            n: self.n,
            k: self.k,
            f,
            payload_bytes: self.payload_bytes,
            delta_us: delta.as_micros(),
            elapsed_us,
            nodes,
            net,
            commit_path: None,
            energy_attr: Vec::new(),
            metrics: eesmr_net::MetricsSet::default(),
            trace_dropped: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_args_roundtrip_through_the_child_parser() {
        let cell = ProcCell {
            protocol: Protocol::OptSync,
            n: 7,
            k: 3,
            payload_bytes: 64,
            seed: 9,
            scheme: SigScheme::Hmac,
            offered_load: 2,
            forward_batch: 4,
            streaming: true,
            crash_only: false,
            opt_equivocation_speedup: true,
            opt_lock_only_status: false,
            checkpoint_interval: Some(8),
            fault_bound: Some(2),
            delta_us: 30_000,
        };
        let mut args = cell.args();
        args.extend(
            ["--node-id", "3", "--transport", "uds", "--listen", "/tmp/x.sock", "--peers", "0@a"]
                .map(String::from),
        );
        let (back, opts) = parse_child_args(&args).expect("parses");
        assert_eq!(back, cell);
        assert_eq!(opts.node_id, 3);
        assert_eq!(opts.transport, ProcTransport::Uds);
        assert_eq!(opts.listen, "/tmp/x.sock");
        assert_eq!(opts.peers, vec![(0, "a".to_string())]);
        // Unknown flags and missing values are rejected, not ignored.
        assert!(parse_child_args(&["--bogus".into(), "1".into()]).is_none());
        assert!(parse_child_args(&["--n".into()]).is_none());
    }

    #[test]
    fn report_blob_roundtrip() {
        let mut hist = LogHistogram::new();
        for v in [5u64, 900, 77_000] {
            hist.record(v);
        }
        let node = NodeReport {
            id: 4,
            faulty: false,
            is_hub: true,
            energy: NodeEnergy {
                send_mj: 1.5,
                recv_mj: 2.25,
                sign_mj: 0.125,
                verify_mj: 3.0,
                hash_mj: 0.5,
            },
            committed_height: 20,
            blocks_committed: 21,
            view_changes: 1,
            signs: 40,
            verifies: 160,
            mean_commit_latency: Some(SimDuration::from_micros(123_456)),
            tx_injected: 7,
            tx_forwarded: 3,
            forward_retries: 1,
            peak_backlog: 9,
            mean_batch_fill_pct: Some(87.5),
            tx_latency_hist: hist,
            commit_fps: vec![1, u64::MAX, 42],
            commit_txs: vec![1, 1, 2],
        };
        let stats = NetStats {
            kcasts: 10,
            deliveries: 20,
            loopbacks: 5,
            flood_relays: 0,
            bytes_on_air: 12_345,
            dropped: 1,
        };
        let blob = encode_node_report(&node, &stats);
        let (node2, stats2) = decode_node_report(&blob).expect("decodes");
        assert_eq!(node2, node);
        assert_eq!(stats2, stats);
        // Corruption surfaces as an error, not a panic.
        assert!(decode_node_report(&blob[..blob.len() - 1]).is_err());
        assert!(decode_node_report(b"nope").is_err());
        let mut hostile = blob.clone();
        let fps_at = blob.len() - 6 * 8 - (3 * 4 + 4) - (3 * 8 + 4);
        hostile[fps_at..fps_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_node_report(&hostile).is_err(), "hostile count prefix rejected");
    }

    #[test]
    fn run_proc_rejects_cells_outside_the_happy_path() {
        let bin = Path::new("/nonexistent/proc_replica");
        let base = Scenario::new(Protocol::Eesmr, 4, 2).stop(StopWhen::Blocks(2));
        let err = |s: Scenario| s.run_proc(ProcTransport::Uds, bin).unwrap_err().kind();
        assert_eq!(
            err(base.clone().stop(StopWhen::Elapsed(SimDuration::from_millis(1)))),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            err(base.clone().faults(crate::faults::FaultPlan::silent_leader())),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            err(base
                .clone()
                .workload(crate::Workload::new(crate::ArrivalProcess::Poisson { rate: 10 }))),
            io::ErrorKind::InvalidInput
        );
        // A valid cell with a missing binary fails with NotFound (and a
        // build hint), not a spawn error.
        assert_eq!(err(base), io::ErrorKind::NotFound);
    }
}
