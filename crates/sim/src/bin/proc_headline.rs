//! EESMR vs Sync HotStuff as real OS processes.
//!
//! Runs the headline comparison cell twice per protocol: once on the
//! deterministic simulator (the energy numbers) and once as a mesh of
//! `proc_replica` child processes over Unix domain sockets or TCP (the
//! honest wall-clock numbers — real kernel scheduling, real sockets,
//! real bytes). Usage:
//!
//! ```text
//! cargo run --release -p eesmr-sim --bin proc_headline [-- uds|tcp]
//! ```
//!
//! `EESMR_QUICK=1` shrinks the cell for CI smoke runs.

use std::io;
use std::path::PathBuf;

use eesmr_net::ProcTransport;
use eesmr_sim::{Protocol, Scenario, StopWhen};

/// The sibling `proc_replica` binary in the same target directory.
fn replica_binary() -> io::Result<PathBuf> {
    let me = std::env::current_exe()?;
    let dir = me
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "current_exe has no parent"))?;
    Ok(dir.join("proc_replica"))
}

fn main() -> io::Result<()> {
    let transport = match std::env::args().nth(1).as_deref() {
        None => ProcTransport::Uds,
        Some(flag) => ProcTransport::parse(flag).unwrap_or_else(|| {
            eprintln!("proc_headline: unknown transport {flag:?} (expected uds|tcp)");
            std::process::exit(2);
        }),
    };
    let quick = std::env::var("EESMR_QUICK").is_ok_and(|v| !v.is_empty());
    let (n, k, blocks) = if quick { (4, 2, 4u64) } else { (7, 3, 12u64) };
    let binary = replica_binary()?;

    println!(
        "EESMR vs Sync HotStuff as {n} real processes over {} ({blocks}-block target)",
        transport.flag()
    );
    println!("wall clock from the process mesh; energy from the simulator's channel model\n");
    for protocol in [Protocol::Eesmr, Protocol::SyncHotStuff] {
        let scenario = Scenario::new(protocol, n, k).stop(StopWhen::Blocks(blocks));
        let sim = scenario.run();
        let proc = scenario.run_proc(transport, &binary)?;

        let secs = proc.elapsed_us as f64 / 1e6;
        let throughput = proc.committed_height() as f64 / secs;
        let latency = proc
            .mean_commit_latency()
            .map(|d| format!("{:.1} ms", d.as_micros() as f64 / 1e3))
            .unwrap_or_else(|| "n/a".into());
        let correct = sim.correct_nodes().count().max(1) as f64;
        println!("{}", proc.summary());
        println!(
            "  processes: {:.1} blocks/s wall, mean commit latency {latency}, \
             {} frames / {} KiB on the wire",
            throughput,
            proc.net.deliveries,
            proc.net.bytes_on_air / 1024,
        );
        println!(
            "  simulator: {:.2} mJ/node/block, {:.1} mJ total correct-node energy\n",
            sim.energy_per_block_mj() / correct,
            sim.total_correct_energy_mj(),
        );
    }
    Ok(())
}
