//! One replica process of a ProcNet run (see `eesmr_sim::proc`).
//!
//! `Scenario::run_proc` spawns `n` copies of this binary, each rebuilding
//! its protocol cell from the command line exactly as `Scenario::run`
//! would (same deterministic keys, same config knobs, padded Δ), then
//! handing its replica to `eesmr_net::proc::run_node` to mesh with its
//! peers over TCP or Unix domain sockets. The final report blob mirrors
//! the per-node `NodeReport` the simulator emits.

use std::io;
use std::sync::Arc;

use eesmr_baselines::sync_hotstuff::{build_hs_replicas, HsConfig, HsPacing, HsVariant};
use eesmr_baselines::trusted::{build_tb_nodes, TbConfig, HUB};
use eesmr_core::{build_replicas, Config, Pacing};
use eesmr_crypto::KeyStore;
use eesmr_energy::{EnergyCategory, Medium};
use eesmr_net::proc::{run_node, ChildOpts};
use eesmr_net::{ChannelCost, SimDuration};
use eesmr_sim::proc::{encode_node_report, parse_child_args, ProcCell};
use eesmr_sim::report::{commit_log_prefix, NodeEnergy};
use eesmr_sim::{FaultPlan, NodeReport, Protocol};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cell, opts)) = parse_child_args(&args) else {
        eprintln!("proc_replica: bad arguments: {args:?}");
        std::process::exit(2);
    };
    if let Err(err) = run(cell, opts) {
        eprintln!("proc_replica: {err}");
        std::process::exit(1);
    }
}

/// Renders the final report blob from any of the three replica types —
/// they expose the same metrics surface, so one stamp covers all.
macro_rules! report_closure {
    ($id:expr, $is_hub:expr, $view_changes:expr) => {
        move |r, meter: &eesmr_energy::EnergyMeter, stats: &eesmr_net::NetStats| {
            let (commit_fps, commit_txs) =
                commit_log_prefix(r.committed(), |d| r.block(d).map(|b| b.payload.len() as u32));
            let node = NodeReport {
                id: $id,
                faulty: false,
                is_hub: $is_hub,
                energy: NodeEnergy::from_meter(meter),
                committed_height: r.committed_height(),
                blocks_committed: r.metrics().blocks_committed,
                view_changes: if $view_changes { r.metrics().view_changes } else { 0 },
                signs: meter.count(EnergyCategory::Sign),
                verifies: meter.count(EnergyCategory::Verify),
                mean_commit_latency: r.metrics().mean_commit_latency(),
                tx_injected: r.metrics().tx_injected,
                tx_forwarded: r.metrics().tx_forwarded,
                forward_retries: r.metrics().forward_retries,
                peak_backlog: r.peak_backlog() as u64,
                mean_batch_fill_pct: r.metrics().mean_batch_fill_pct(),
                tx_latency_hist: r.tx_latencies().clone(),
                commit_fps,
                commit_txs,
            };
            encode_node_report(&node, stats)
        }
    };
}

fn run(cell: ProcCell, opts: ChildOpts) -> io::Result<()> {
    let delta = SimDuration::from_micros(cell.delta_us);
    let plan = FaultPlan::none();
    let pki = Arc::new(KeyStore::generate(cell.n, cell.scheme, cell.seed));
    let id = opts.node_id;
    match cell.protocol {
        Protocol::Eesmr => {
            let mut config = Config::new(cell.n, delta);
            config.offered_load = cell.offered_load;
            config.forward_batch = cell.forward_batch;
            if let Some(f) = cell.fault_bound {
                config.f = f;
            }
            config.payload_bytes = cell.payload_bytes;
            config.crash_only = cell.crash_only;
            config.opt_equivocation_speedup = cell.opt_equivocation_speedup;
            config.opt_lock_only_status = cell.opt_lock_only_status;
            config.checkpoint_interval = cell.checkpoint_interval;
            if cell.streaming {
                config.pacing = Pacing::Streaming { max_outstanding: 8 };
            }
            let mut replicas = build_replicas(&config, &pki, |id| plan.eesmr_mode(id));
            let actor = replicas.swap_remove(id as usize);
            run_node(
                opts,
                actor,
                ChannelCost::ble_four_nines(cell.k),
                |r| r.committed_height(),
                report_closure!(id, false, true),
            )?;
        }
        Protocol::SyncHotStuff | Protocol::OptSync => {
            let variant = match cell.protocol {
                Protocol::OptSync => HsVariant::OptSync,
                _ => HsVariant::SyncHotStuff,
            };
            let mut config = HsConfig::new(cell.n, delta, variant);
            config.offered_load = cell.offered_load;
            config.forward_batch = cell.forward_batch;
            if let Some(f) = cell.fault_bound {
                config.f = f;
            }
            config.payload_bytes = cell.payload_bytes;
            if cell.streaming {
                config.pacing = HsPacing::Streaming;
            }
            let mut replicas = build_hs_replicas(&config, &pki, |id| plan.hs_mode(id));
            let actor = replicas.swap_remove(id as usize);
            run_node(
                opts,
                actor,
                ChannelCost::ble_four_nines(cell.k),
                |r| r.committed_height(),
                report_closure!(id, false, true),
            )?;
        }
        Protocol::TrustedBaseline => {
            let mut config = TbConfig::new(cell.n, cell.payload_bytes, delta * 2);
            config.offered_load = cell.offered_load;
            let mut nodes = build_tb_nodes(&config, &pki, |id| plan.tb_fault(id));
            let actor = nodes.swap_remove(id as usize);
            run_node(
                opts,
                actor,
                ChannelCost::PerByte { medium: Medium::FourG },
                |r| r.committed_height(),
                report_closure!(id, id == HUB, false),
            )?;
        }
    }
    Ok(())
}
