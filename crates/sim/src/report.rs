//! Run reports: what a scenario measured.

use eesmr_energy::{EnergyCategory, EnergyMeter};
use eesmr_net::{NetStats, NodeId, SimDuration};

/// Energy breakdown for one node, in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeEnergy {
    /// Transmission.
    pub send_mj: f64,
    /// Reception.
    pub recv_mj: f64,
    /// Signature generation.
    pub sign_mj: f64,
    /// Signature verification.
    pub verify_mj: f64,
    /// Hashing.
    pub hash_mj: f64,
}

impl NodeEnergy {
    /// Builds a breakdown from a meter.
    pub fn from_meter(meter: &EnergyMeter) -> Self {
        NodeEnergy {
            send_mj: meter.mj(EnergyCategory::Send),
            recv_mj: meter.mj(EnergyCategory::Recv),
            sign_mj: meter.mj(EnergyCategory::Sign),
            verify_mj: meter.mj(EnergyCategory::Verify),
            hash_mj: meter.mj(EnergyCategory::Hash),
        }
    }

    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.send_mj + self.recv_mj + self.sign_mj + self.verify_mj + self.hash_mj
    }
}

/// Per-node results.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub id: NodeId,
    /// Whether this node was in the fault plan.
    pub faulty: bool,
    /// Whether this node is the externally-powered trusted hub (excluded
    /// from CPS energy totals, §5.1).
    pub is_hub: bool,
    /// Energy breakdown.
    pub energy: NodeEnergy,
    /// Highest committed height.
    pub committed_height: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Signature operations (from the meter's counters).
    pub signs: u64,
    /// Verification operations.
    pub verifies: u64,
    /// Mean commit latency, if measured.
    pub mean_commit_latency: Option<SimDuration>,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable protocol name.
    pub protocol: &'static str,
    /// Node count.
    pub n: usize,
    /// k-cast degree of the topology.
    pub k: usize,
    /// Fault bound used by the protocol.
    pub f: usize,
    /// Payload bytes per block.
    pub payload_bytes: usize,
    /// The Δ used, in microseconds.
    pub delta_us: u64,
    /// Virtual time elapsed, microseconds.
    pub elapsed_us: u64,
    /// Per-node results (index = node id).
    pub nodes: Vec<NodeReport>,
    /// Network counters.
    pub net: NetStats,
}

impl RunReport {
    /// Iterator over correct (non-faulty, non-hub) nodes.
    pub fn correct_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|n| !n.faulty && !n.is_hub)
    }

    /// Minimum committed height among correct nodes (the log length every
    /// correct node is guaranteed to have).
    pub fn committed_height(&self) -> u64 {
        self.correct_nodes().map(|n| n.committed_height).min().unwrap_or(0)
    }

    /// Total energy of the correct CPS nodes, mJ (the paper's Fig. 2f
    /// metric).
    pub fn total_correct_energy_mj(&self) -> f64 {
        self.correct_nodes().map(|n| n.energy.total_mj()).sum()
    }

    /// Total correct-node energy per committed block, mJ.
    pub fn energy_per_block_mj(&self) -> f64 {
        let blocks = self.committed_height().max(1) as f64;
        self.total_correct_energy_mj() / blocks
    }

    /// One node's energy, mJ.
    pub fn node_energy_mj(&self, id: NodeId) -> f64 {
        self.nodes[id as usize].energy.total_mj()
    }

    /// One node's energy per committed block, mJ (Fig. 2c/2d/3 metric).
    pub fn node_energy_per_block_mj(&self, id: NodeId) -> f64 {
        let blocks = self.nodes[id as usize].blocks_committed.max(1) as f64;
        self.node_energy_mj(id) / blocks
    }

    /// Maximum number of view changes any correct node completed.
    pub fn view_changes(&self) -> u64 {
        self.correct_nodes().map(|n| n.view_changes).max().unwrap_or(0)
    }

    /// Mean commit latency over correct nodes.
    pub fn mean_commit_latency(&self) -> Option<SimDuration> {
        let latencies: Vec<u64> = self
            .correct_nodes()
            .filter_map(|n| n.mean_commit_latency.map(|d| d.as_micros()))
            .collect();
        if latencies.is_empty() {
            return None;
        }
        Some(SimDuration::from_micros(latencies.iter().sum::<u64>() / latencies.len() as u64))
    }

    /// A one-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} k={} f={} |b|={}B — {} blocks, {} VCs, {:.1} mJ/node/block",
            self.protocol,
            self.n,
            self.k,
            self.f,
            self.payload_bytes,
            self.committed_height(),
            self.view_changes(),
            self.energy_per_block_mj() / self.correct_nodes().count().max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: NodeId, total_mj: f64, height: u64, faulty: bool) -> NodeReport {
        NodeReport {
            id,
            faulty,
            is_hub: false,
            energy: NodeEnergy { send_mj: total_mj, ..Default::default() },
            committed_height: height,
            blocks_committed: height,
            view_changes: 0,
            signs: 0,
            verifies: 0,
            mean_commit_latency: None,
        }
    }

    fn report(nodes: Vec<NodeReport>) -> RunReport {
        RunReport {
            protocol: "test",
            n: nodes.len(),
            k: 2,
            f: 1,
            payload_bytes: 16,
            delta_us: 1000,
            elapsed_us: 10_000,
            nodes,
            net: NetStats::default(),
        }
    }

    #[test]
    fn correct_nodes_excludes_faulty_and_hub() {
        let mut nodes =
            vec![node(0, 10.0, 5, true), node(1, 20.0, 5, false), node(2, 30.0, 4, false)];
        nodes[0].is_hub = false;
        let r = report(nodes);
        assert_eq!(r.correct_nodes().count(), 2);
        assert_eq!(r.total_correct_energy_mj(), 50.0);
        assert_eq!(r.committed_height(), 4, "minimum over correct nodes");
    }

    #[test]
    fn energy_per_block_divides_by_min_height() {
        let r = report(vec![node(0, 40.0, 4, false), node(1, 40.0, 4, false)]);
        assert_eq!(r.energy_per_block_mj(), 20.0);
    }

    #[test]
    fn per_node_energy_per_block() {
        let r = report(vec![node(0, 40.0, 8, false)]);
        assert_eq!(r.node_energy_per_block_mj(0), 5.0);
        // Zero blocks guard:
        let r0 = report(vec![node(0, 40.0, 0, false)]);
        assert_eq!(r0.node_energy_per_block_mj(0), 40.0);
    }

    #[test]
    fn summary_is_informative() {
        let r = report(vec![node(0, 10.0, 2, false)]);
        let s = r.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("2 blocks"));
    }
}
