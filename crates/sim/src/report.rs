//! Run reports: what a scenario measured.

use eesmr_energy::{EnergyCategory, EnergyMeter};
use eesmr_net::{NetStats, NodeId, SimDuration};

/// Energy breakdown for one node, in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeEnergy {
    /// Transmission.
    pub send_mj: f64,
    /// Reception.
    pub recv_mj: f64,
    /// Signature generation.
    pub sign_mj: f64,
    /// Signature verification.
    pub verify_mj: f64,
    /// Hashing.
    pub hash_mj: f64,
}

impl NodeEnergy {
    /// Builds a breakdown from a meter.
    pub fn from_meter(meter: &EnergyMeter) -> Self {
        NodeEnergy {
            send_mj: meter.mj(EnergyCategory::Send),
            recv_mj: meter.mj(EnergyCategory::Recv),
            sign_mj: meter.mj(EnergyCategory::Sign),
            verify_mj: meter.mj(EnergyCategory::Verify),
            hash_mj: meter.mj(EnergyCategory::Hash),
        }
    }

    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.send_mj + self.recv_mj + self.sign_mj + self.verify_mj + self.hash_mj
    }
}

/// Per-node results.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub id: NodeId,
    /// Whether this node was in the fault plan.
    pub faulty: bool,
    /// Whether this node is the externally-powered trusted hub (excluded
    /// from CPS energy totals, §5.1).
    pub is_hub: bool,
    /// Energy breakdown.
    pub energy: NodeEnergy,
    /// Highest committed height.
    pub committed_height: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Signature operations (from the meter's counters).
    pub signs: u64,
    /// Verification operations.
    pub verifies: u64,
    /// Mean commit latency, if measured.
    pub mean_commit_latency: Option<SimDuration>,
    /// Workload transactions injected at this node.
    pub tx_injected: u64,
    /// Client commands this node forwarded to a proposer (command
    /// forwarding from non-leading nodes; counts re-forwards after
    /// view changes too).
    pub tx_forwarded: u64,
    /// End-to-end (birth → local commit) latency of each workload
    /// transaction injected at this node, µs, in commit order. Empty when
    /// the scenario has no workload attached.
    pub tx_latencies_us: Vec<u64>,
}

/// End-to-end commit-latency statistics over a run's workload
/// transactions (all correct nodes pooled). Percentiles use the
/// nearest-rank definition on the sorted sample: the p-th percentile is
/// the value at (1-based) index `⌈p·count/100⌉` — see README's "Known
/// deviations" for how this relates to the paper's block-level numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxLatencyStats {
    /// Committed workload transactions measured.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_us: u64,
    /// Median (50th percentile, nearest rank), µs.
    pub p50_us: u64,
    /// 99th percentile (nearest rank), µs.
    pub p99_us: u64,
}

/// Nearest-rank percentile of a sorted, non-empty sample.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&p));
    let rank = (p as usize * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable protocol name.
    pub protocol: &'static str,
    /// Node count.
    pub n: usize,
    /// k-cast degree of the topology.
    pub k: usize,
    /// Fault bound used by the protocol.
    pub f: usize,
    /// Payload bytes per block.
    pub payload_bytes: usize,
    /// The Δ used, in microseconds.
    pub delta_us: u64,
    /// Virtual time elapsed, microseconds.
    pub elapsed_us: u64,
    /// Per-node results (index = node id).
    pub nodes: Vec<NodeReport>,
    /// Network counters.
    pub net: NetStats,
}

impl RunReport {
    /// Iterator over correct (non-faulty, non-hub) nodes.
    pub fn correct_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|n| !n.faulty && !n.is_hub)
    }

    /// Minimum committed height among correct nodes (the log length every
    /// correct node is guaranteed to have).
    pub fn committed_height(&self) -> u64 {
        self.correct_nodes().map(|n| n.committed_height).min().unwrap_or(0)
    }

    /// Total energy of the correct CPS nodes, mJ (the paper's Fig. 2f
    /// metric).
    pub fn total_correct_energy_mj(&self) -> f64 {
        self.correct_nodes().map(|n| n.energy.total_mj()).sum()
    }

    /// Total correct-node energy per committed block, mJ.
    pub fn energy_per_block_mj(&self) -> f64 {
        let blocks = self.committed_height().max(1) as f64;
        self.total_correct_energy_mj() / blocks
    }

    /// One node's energy, mJ.
    pub fn node_energy_mj(&self, id: NodeId) -> f64 {
        self.nodes[id as usize].energy.total_mj()
    }

    /// One node's energy per committed block, mJ (Fig. 2c/2d/3 metric).
    pub fn node_energy_per_block_mj(&self, id: NodeId) -> f64 {
        let blocks = self.nodes[id as usize].blocks_committed.max(1) as f64;
        self.node_energy_mj(id) / blocks
    }

    /// Maximum number of view changes any correct node completed.
    pub fn view_changes(&self) -> u64 {
        self.correct_nodes().map(|n| n.view_changes).max().unwrap_or(0)
    }

    /// Workload transactions injected across correct nodes.
    pub fn tx_injected(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_injected).sum()
    }

    /// Client commands forwarded to proposers across correct nodes —
    /// the traffic the command-forwarding path added (each forward is
    /// a targeted flood, so this is the knob to watch when weighing
    /// forwarding overhead against stranded transactions).
    pub fn tx_forwarded(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_forwarded).sum()
    }

    /// Workload transactions committed (with a measured end-to-end
    /// latency) across correct nodes.
    pub fn tx_committed(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_latencies_us.len() as u64).sum()
    }

    /// End-to-end commit-latency statistics over all correct nodes'
    /// workload transactions; `None` when nothing was measured (no
    /// workload attached, or nothing committed yet).
    pub fn tx_latency_stats(&self) -> Option<TxLatencyStats> {
        let mut all: Vec<u64> =
            self.correct_nodes().flat_map(|n| n.tx_latencies_us.iter().copied()).collect();
        if all.is_empty() {
            return None;
        }
        all.sort_unstable();
        let sum: u128 = all.iter().map(|&v| v as u128).sum();
        Some(TxLatencyStats {
            count: all.len(),
            mean_us: (sum / all.len() as u128) as u64,
            p50_us: percentile(&all, 50),
            p99_us: percentile(&all, 99),
        })
    }

    /// Mean commit latency over correct nodes.
    pub fn mean_commit_latency(&self) -> Option<SimDuration> {
        let latencies: Vec<u64> = self
            .correct_nodes()
            .filter_map(|n| n.mean_commit_latency.map(|d| d.as_micros()))
            .collect();
        if latencies.is_empty() {
            return None;
        }
        Some(SimDuration::from_micros(latencies.iter().sum::<u64>() / latencies.len() as u64))
    }

    /// A one-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} k={} f={} |b|={}B — {} blocks, {} VCs, {:.1} mJ/node/block",
            self.protocol,
            self.n,
            self.k,
            self.f,
            self.payload_bytes,
            self.committed_height(),
            self.view_changes(),
            self.energy_per_block_mj() / self.correct_nodes().count().max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: NodeId, total_mj: f64, height: u64, faulty: bool) -> NodeReport {
        NodeReport {
            id,
            faulty,
            is_hub: false,
            energy: NodeEnergy { send_mj: total_mj, ..Default::default() },
            committed_height: height,
            blocks_committed: height,
            view_changes: 0,
            signs: 0,
            verifies: 0,
            mean_commit_latency: None,
            tx_injected: 0,
            tx_forwarded: 0,
            tx_latencies_us: Vec::new(),
        }
    }

    fn report(nodes: Vec<NodeReport>) -> RunReport {
        RunReport {
            protocol: "test",
            n: nodes.len(),
            k: 2,
            f: 1,
            payload_bytes: 16,
            delta_us: 1000,
            elapsed_us: 10_000,
            nodes,
            net: NetStats::default(),
        }
    }

    #[test]
    fn correct_nodes_excludes_faulty_and_hub() {
        let mut nodes =
            vec![node(0, 10.0, 5, true), node(1, 20.0, 5, false), node(2, 30.0, 4, false)];
        nodes[0].is_hub = false;
        let r = report(nodes);
        assert_eq!(r.correct_nodes().count(), 2);
        assert_eq!(r.total_correct_energy_mj(), 50.0);
        assert_eq!(r.committed_height(), 4, "minimum over correct nodes");
    }

    #[test]
    fn energy_per_block_divides_by_min_height() {
        let r = report(vec![node(0, 40.0, 4, false), node(1, 40.0, 4, false)]);
        assert_eq!(r.energy_per_block_mj(), 20.0);
    }

    #[test]
    fn per_node_energy_per_block() {
        let r = report(vec![node(0, 40.0, 8, false)]);
        assert_eq!(r.node_energy_per_block_mj(0), 5.0);
        // Zero blocks guard:
        let r0 = report(vec![node(0, 40.0, 0, false)]);
        assert_eq!(r0.node_energy_per_block_mj(0), 40.0);
    }

    #[test]
    fn tx_latency_percentiles_use_nearest_rank() {
        let mut nodes = vec![node(0, 1.0, 4, false), node(1, 1.0, 4, true)];
        nodes[0].tx_injected = 120;
        nodes[0].tx_latencies_us = (1..=100).rev().collect(); // unsorted on purpose
        nodes[1].tx_injected = 50; // faulty: excluded
        nodes[1].tx_latencies_us = vec![1_000_000];
        let r = report(nodes);
        assert_eq!(r.tx_injected(), 120);
        assert_eq!(r.tx_committed(), 100);
        let stats = r.tx_latency_stats().unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.mean_us, 50); // (1+…+100)/100 = 50.5 truncated
        assert_eq!(stats.p50_us, 50, "nearest rank: ⌈50·100/100⌉ = 50th value");
        assert_eq!(stats.p99_us, 99, "nearest rank: ⌈99·100/100⌉ = 99th value");
        // Singleton sample: every percentile is the value itself.
        let mut one = vec![node(0, 1.0, 1, false)];
        one[0].tx_latencies_us = vec![7];
        let r1 = report(one);
        let s1 = r1.tx_latency_stats().unwrap();
        assert_eq!((s1.p50_us, s1.p99_us), (7, 7));
        // No measurements → None.
        assert_eq!(report(vec![node(0, 1.0, 1, false)]).tx_latency_stats(), None);
    }

    #[test]
    fn summary_is_informative() {
        let r = report(vec![node(0, 10.0, 2, false)]);
        let s = r.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("2 blocks"));
    }
}
