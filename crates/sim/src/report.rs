//! Run reports: what a scenario measured.

use eesmr_energy::{EnergyAttribution, EnergyCategory, EnergyClass, EnergyMeter, N_ENERGY_CLASS};
use eesmr_net::{MetricsSet, NetStats, NodeId, SimDuration};
use eesmr_trace::hist::LogHistogram;
use eesmr_trace::path::CommitPath;

/// Energy breakdown for one node, in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeEnergy {
    /// Transmission.
    pub send_mj: f64,
    /// Reception.
    pub recv_mj: f64,
    /// Signature generation.
    pub sign_mj: f64,
    /// Signature verification.
    pub verify_mj: f64,
    /// Hashing.
    pub hash_mj: f64,
}

impl NodeEnergy {
    /// Builds a breakdown from a meter.
    pub fn from_meter(meter: &EnergyMeter) -> Self {
        NodeEnergy {
            send_mj: meter.mj(EnergyCategory::Send),
            recv_mj: meter.mj(EnergyCategory::Recv),
            sign_mj: meter.mj(EnergyCategory::Sign),
            verify_mj: meter.mj(EnergyCategory::Verify),
            hash_mj: meter.mj(EnergyCategory::Hash),
        }
    }

    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.send_mj + self.recv_mj + self.sign_mj + self.verify_mj + self.hash_mj
    }
}

/// Per-node results.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub id: NodeId,
    /// Whether this node was in the fault plan.
    pub faulty: bool,
    /// Whether this node is the externally-powered trusted hub (excluded
    /// from CPS energy totals, §5.1).
    pub is_hub: bool,
    /// Energy breakdown.
    pub energy: NodeEnergy,
    /// Highest committed height.
    pub committed_height: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Signature operations (from the meter's counters).
    pub signs: u64,
    /// Verification operations.
    pub verifies: u64,
    /// Mean commit latency, if measured.
    pub mean_commit_latency: Option<SimDuration>,
    /// Workload transactions injected at this node.
    pub tx_injected: u64,
    /// Client commands this node forwarded to a proposer (command
    /// forwarding from non-leading nodes; counts re-forwards after
    /// view changes too).
    pub tx_forwarded: u64,
    /// Forward-retry rescues: times this node's stale-command timer
    /// found unresolved commands and re-forwarded (or re-proposed) them.
    pub forward_retries: u64,
    /// High-water mark of the node's pending-command backlog.
    pub peak_backlog: u64,
    /// Mean fill of this node's proposed batches, percent of the batch
    /// policy maximum; `None` if it never proposed.
    pub mean_batch_fill_pct: Option<f64>,
    /// End-to-end (birth → local commit) latency distribution of the
    /// workload transactions injected at this node, µs. A streaming
    /// log-bucket histogram — O(buckets) memory however long the run —
    /// empty when the scenario has no workload attached.
    pub tx_latency_hist: LogHistogram,
    /// Fingerprints of this node's committed block ids, in commit
    /// order, capped at [`COMMIT_LOG_CAP`] entries. Two nodes (or two
    /// backends) that agree on this prefix committed byte-identical
    /// blocks — the backend-conformance suite compares it between
    /// SimNet and ProcNet runs.
    pub commit_fps: Vec<u64>,
    /// Commands carried by each committed block in `commit_fps`
    /// (same order, same cap); an entry is 0 when the block body was
    /// no longer in the local store at report time.
    pub commit_txs: Vec<u32>,
}

/// Cap on the per-node committed-log prefix a [`NodeReport`] carries
/// (`commit_fps` / `commit_txs`). Long soak runs keep reports bounded;
/// conformance runs stop well under the cap.
pub const COMMIT_LOG_CAP: usize = 4096;

/// Builds the capped committed-log prefix for a [`NodeReport`] from a
/// replica's committed block ids plus a block lookup (commands per
/// block; 0 when a block body is no longer stored locally).
pub fn commit_log_prefix(
    log: &[eesmr_crypto::Digest],
    commands_of: impl Fn(&eesmr_crypto::Digest) -> Option<u32>,
) -> (Vec<u64>, Vec<u32>) {
    let prefix = &log[..log.len().min(COMMIT_LOG_CAP)];
    let fps = prefix.iter().map(eesmr_core::block::fingerprint).collect();
    let txs = prefix.iter().map(|id| commands_of(id).unwrap_or(0)).collect();
    (fps, txs)
}

/// End-to-end commit-latency statistics over a run's workload
/// transactions (all correct nodes pooled). Percentiles use the
/// nearest-rank definition on the pooled [`LogHistogram`]: the p-th
/// percentile is the value at (1-based) rank `⌈p·count/100⌉`, reported
/// at the histogram's bucket resolution (≤ ~3 % relative error above
/// the sub-millisecond range) — see README's "Known deviations".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxLatencyStats {
    /// Committed workload transactions measured.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_us: u64,
    /// Median (50th percentile, nearest rank), µs.
    pub p50_us: u64,
    /// 99th percentile (nearest rank), µs.
    pub p99_us: u64,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable protocol name.
    pub protocol: &'static str,
    /// Node count.
    pub n: usize,
    /// k-cast degree of the topology.
    pub k: usize,
    /// Fault bound used by the protocol.
    pub f: usize,
    /// Payload bytes per block.
    pub payload_bytes: usize,
    /// The Δ used, in microseconds.
    pub delta_us: u64,
    /// Virtual time elapsed, microseconds.
    pub elapsed_us: u64,
    /// Per-node results (index = node id).
    pub nodes: Vec<NodeReport>,
    /// Network counters.
    pub net: NetStats,
    /// The reconstructed commit path of the run's first committed
    /// workload transaction, when the scenario traced at
    /// [`TraceLevel::Commit`](eesmr_net::TraceLevel::Commit) or above.
    /// Diagnostic only — excluded from equality so traced and untraced
    /// runs of the same scenario still compare bit-identical.
    pub commit_path: Option<CommitPath>,
    /// Per-node energy attribution matrices (phase × class), index =
    /// node id. Observability surface — excluded from equality like
    /// `commit_path` (the determinism suite compares it explicitly).
    pub energy_attr: Vec<EnergyAttribution>,
    /// Sampled telemetry series, when the run had metrics enabled
    /// (empty otherwise). Excluded from equality so metrics-on and
    /// metrics-off runs of the same scenario compare bit-identical.
    pub metrics: MetricsSet,
    /// Trace events each node's `Tracer` dropped at its ring-capacity
    /// bound, index = node id. Depends on the trace level, so excluded
    /// from equality like `commit_path`.
    pub trace_dropped: Vec<u64>,
}

/// Equality covers the measured results — everything except the
/// diagnostic `commit_path`, `energy_attr`, `metrics`, and
/// `trace_dropped`, which depend on the observability configuration
/// (trace level, metrics cadence) rather than on what the run computed.
impl PartialEq for RunReport {
    fn eq(&self, other: &RunReport) -> bool {
        self.protocol == other.protocol
            && self.n == other.n
            && self.k == other.k
            && self.f == other.f
            && self.payload_bytes == other.payload_bytes
            && self.delta_us == other.delta_us
            && self.elapsed_us == other.elapsed_us
            && self.nodes == other.nodes
            && self.net == other.net
    }
}

impl RunReport {
    /// Iterator over correct (non-faulty, non-hub) nodes.
    pub fn correct_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|n| !n.faulty && !n.is_hub)
    }

    /// Minimum committed height among correct nodes (the log length every
    /// correct node is guaranteed to have).
    pub fn committed_height(&self) -> u64 {
        self.correct_nodes().map(|n| n.committed_height).min().unwrap_or(0)
    }

    /// Total energy of the correct CPS nodes, mJ (the paper's Fig. 2f
    /// metric).
    pub fn total_correct_energy_mj(&self) -> f64 {
        self.correct_nodes().map(|n| n.energy.total_mj()).sum()
    }

    /// Total correct-node energy per committed block, mJ.
    pub fn energy_per_block_mj(&self) -> f64 {
        let blocks = self.committed_height().max(1) as f64;
        self.total_correct_energy_mj() / blocks
    }

    /// One node's energy, mJ.
    pub fn node_energy_mj(&self, id: NodeId) -> f64 {
        self.nodes[id as usize].energy.total_mj()
    }

    /// One node's energy per committed block, mJ (Fig. 2c/2d/3 metric).
    pub fn node_energy_per_block_mj(&self, id: NodeId) -> f64 {
        let blocks = self.nodes[id as usize].blocks_committed.max(1) as f64;
        self.node_energy_mj(id) / blocks
    }

    /// Maximum number of view changes any correct node completed.
    pub fn view_changes(&self) -> u64 {
        self.correct_nodes().map(|n| n.view_changes).max().unwrap_or(0)
    }

    /// Workload transactions injected across correct nodes.
    pub fn tx_injected(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_injected).sum()
    }

    /// Client commands forwarded to proposers across correct nodes —
    /// the traffic the command-forwarding path added (each forward is
    /// a targeted flood, so this is the knob to watch when weighing
    /// forwarding overhead against stranded transactions).
    pub fn tx_forwarded(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_forwarded).sum()
    }

    /// Workload transactions committed (with a measured end-to-end
    /// latency) across correct nodes.
    pub fn tx_committed(&self) -> u64 {
        self.correct_nodes().map(|n| n.tx_latency_hist.count()).sum()
    }

    /// The pooled end-to-end latency histogram over all correct nodes'
    /// workload transactions (merge order cannot change the result).
    pub fn tx_latency_hist(&self) -> LogHistogram {
        let mut pooled = LogHistogram::new();
        for node in self.correct_nodes() {
            pooled.merge(&node.tx_latency_hist);
        }
        pooled
    }

    /// End-to-end commit-latency statistics over all correct nodes'
    /// workload transactions; `None` when nothing was measured (no
    /// workload attached, or nothing committed yet).
    pub fn tx_latency_stats(&self) -> Option<TxLatencyStats> {
        let pooled = self.tx_latency_hist();
        if pooled.is_empty() {
            return None;
        }
        Some(TxLatencyStats {
            count: pooled.count() as usize,
            mean_us: pooled.mean().unwrap_or(0),
            p50_us: pooled.percentile(50).unwrap_or(0),
            p99_us: pooled.percentile(99).unwrap_or(0),
        })
    }

    /// Maximum pending-command backlog any correct node reached.
    pub fn peak_backlog(&self) -> u64 {
        self.correct_nodes().map(|n| n.peak_backlog).max().unwrap_or(0)
    }

    /// Mean proposed-batch fill (percent of the policy max) across
    /// correct nodes that proposed at least once; `None` if none did.
    pub fn mean_batch_fill_pct(&self) -> Option<f64> {
        let fills: Vec<f64> = self.correct_nodes().filter_map(|n| n.mean_batch_fill_pct).collect();
        if fills.is_empty() {
            None
        } else {
            Some(fills.iter().sum::<f64>() / fills.len() as f64)
        }
    }

    /// Forward-retry rescues across correct nodes.
    pub fn forward_retries(&self) -> u64 {
        self.correct_nodes().map(|n| n.forward_retries).sum()
    }

    /// Trace events dropped at `Tracer` ring capacity, summed over all
    /// nodes (0 when tracing was off).
    pub fn trace_dropped_total(&self) -> u64 {
        self.trace_dropped.iter().sum()
    }

    /// Correct-node energy per attribution class, mJ, in
    /// [`EnergyClass::ALL`] order. Sums to
    /// [`total_correct_energy_mj`](Self::total_correct_energy_mj) by
    /// construction (each charge lands in exactly one class).
    pub fn energy_by_class_mj(&self) -> [f64; N_ENERGY_CLASS] {
        let mut out = [0.0; N_ENERGY_CLASS];
        for node in self.correct_nodes() {
            if let Some(attr) = self.energy_attr.get(node.id as usize) {
                for (i, class) in EnergyClass::ALL.into_iter().enumerate() {
                    out[i] += attr.class_mj(class);
                }
            }
        }
        out
    }

    /// Mean commit latency over correct nodes.
    pub fn mean_commit_latency(&self) -> Option<SimDuration> {
        let latencies: Vec<u64> = self
            .correct_nodes()
            .filter_map(|n| n.mean_commit_latency.map(|d| d.as_micros()))
            .collect();
        if latencies.is_empty() {
            return None;
        }
        Some(SimDuration::from_micros(latencies.iter().sum::<u64>() / latencies.len() as u64))
    }

    /// A one-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} k={} f={} |b|={}B — {} blocks, {} VCs, {:.1} mJ/node/block",
            self.protocol,
            self.n,
            self.k,
            self.f,
            self.payload_bytes,
            self.committed_height(),
            self.view_changes(),
            self.energy_per_block_mj() / self.correct_nodes().count().max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: NodeId, total_mj: f64, height: u64, faulty: bool) -> NodeReport {
        NodeReport {
            id,
            faulty,
            is_hub: false,
            energy: NodeEnergy { send_mj: total_mj, ..Default::default() },
            committed_height: height,
            blocks_committed: height,
            view_changes: 0,
            signs: 0,
            verifies: 0,
            mean_commit_latency: None,
            tx_injected: 0,
            tx_forwarded: 0,
            forward_retries: 0,
            peak_backlog: 0,
            mean_batch_fill_pct: None,
            tx_latency_hist: LogHistogram::new(),
            commit_fps: Vec::new(),
            commit_txs: Vec::new(),
        }
    }

    fn hist(samples: impl IntoIterator<Item = u64>) -> LogHistogram {
        let mut h = LogHistogram::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    fn report(nodes: Vec<NodeReport>) -> RunReport {
        RunReport {
            protocol: "test",
            n: nodes.len(),
            k: 2,
            f: 1,
            payload_bytes: 16,
            delta_us: 1000,
            elapsed_us: 10_000,
            nodes,
            net: NetStats::default(),
            commit_path: None,
            energy_attr: Vec::new(),
            metrics: MetricsSet::default(),
            trace_dropped: Vec::new(),
        }
    }

    #[test]
    fn correct_nodes_excludes_faulty_and_hub() {
        let mut nodes =
            vec![node(0, 10.0, 5, true), node(1, 20.0, 5, false), node(2, 30.0, 4, false)];
        nodes[0].is_hub = false;
        let r = report(nodes);
        assert_eq!(r.correct_nodes().count(), 2);
        assert_eq!(r.total_correct_energy_mj(), 50.0);
        assert_eq!(r.committed_height(), 4, "minimum over correct nodes");
    }

    #[test]
    fn energy_per_block_divides_by_min_height() {
        let r = report(vec![node(0, 40.0, 4, false), node(1, 40.0, 4, false)]);
        assert_eq!(r.energy_per_block_mj(), 20.0);
    }

    #[test]
    fn per_node_energy_per_block() {
        let r = report(vec![node(0, 40.0, 8, false)]);
        assert_eq!(r.node_energy_per_block_mj(0), 5.0);
        // Zero blocks guard:
        let r0 = report(vec![node(0, 40.0, 0, false)]);
        assert_eq!(r0.node_energy_per_block_mj(0), 40.0);
    }

    #[test]
    fn tx_latency_percentiles_use_nearest_rank() {
        let mut nodes = vec![node(0, 1.0, 4, false), node(1, 1.0, 4, true)];
        nodes[0].tx_injected = 120;
        nodes[0].tx_latency_hist = hist((1..=100).rev()); // unsorted on purpose
        nodes[1].tx_injected = 50; // faulty: excluded
        nodes[1].tx_latency_hist = hist([1_000_000]);
        let r = report(nodes);
        assert_eq!(r.tx_injected(), 120);
        assert_eq!(r.tx_committed(), 100);
        let stats = r.tx_latency_stats().unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.mean_us, 50); // (1+…+100)/100 = 50.5 truncated
        assert_eq!(stats.p50_us, 50, "nearest rank: ⌈50·100/100⌉ = 50th value");
        assert_eq!(stats.p99_us, 99, "nearest rank: ⌈99·100/100⌉ = 99th value");
        // Singleton sample: every percentile is the value itself.
        let mut one = vec![node(0, 1.0, 1, false)];
        one[0].tx_latency_hist = hist([7]);
        let r1 = report(one);
        let s1 = r1.tx_latency_stats().unwrap();
        assert_eq!((s1.p50_us, s1.p99_us), (7, 7));
        // No measurements → None.
        assert_eq!(report(vec![node(0, 1.0, 1, false)]).tx_latency_stats(), None);
    }

    #[test]
    fn pooled_hist_merges_per_node_populations() {
        let mut nodes = vec![node(0, 1.0, 4, false), node(1, 1.0, 4, false)];
        nodes[0].tx_latency_hist = hist(1..=50);
        nodes[1].tx_latency_hist = hist(51..=100);
        let r = report(nodes);
        let pooled = r.tx_latency_hist();
        assert_eq!(pooled, hist(1..=100), "grouping-invariant merge");
        assert_eq!(r.tx_committed(), 100);
    }

    #[test]
    fn equality_ignores_the_diagnostic_commit_path() {
        let a = report(vec![node(0, 1.0, 2, false)]);
        let mut b = a.clone();
        b.commit_path = Some(CommitPath { tx: 1, block: 2, stages: Vec::new() });
        assert_eq!(a, b, "commit_path is diagnostic, not a measured result");
    }

    #[test]
    fn summary_is_informative() {
        let r = report(vec![node(0, 10.0, 2, false)]);
        let s = r.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("2 blocks"));
    }
}
