//! Experiment harness: scenarios, fault injection, and run reports.
//!
//! This crate glues the protocol implementations, the simulated network,
//! and the energy model into the paper's experimental method: describe a
//! system (protocol, n, k, payload, faults, scheme), run it, and read off
//! per-node energy and protocol metrics. Every figure-regeneration binary
//! in `eesmr-bench` is a thin loop over [`Scenario`] runs.
//!
//! # Example: the Fig. 2f comparison at one point
//!
//! ```
//! use eesmr_sim::{Protocol, Scenario, StopWhen};
//!
//! let eesmr = Scenario::new(Protocol::Eesmr, 6, 3).stop(StopWhen::Blocks(5)).run();
//! let synchs = Scenario::new(Protocol::SyncHotStuff, 6, 3).stop(StopWhen::Blocks(5)).run();
//! assert!(eesmr.energy_per_block_mj() < synchs.energy_per_block_mj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod proc;
pub mod report;
pub mod scenario;

pub use faults::{FaultPlan, FaultSpec};
pub use proc::ProcCell;
pub use report::{NodeEnergy, NodeReport, RunReport, TxLatencyStats};
pub use scenario::{CellKey, Protocol, Scenario, StopWhen};

// Re-exported so sweep authors can set batch policies, schedulers, and
// client workloads without depending on the protocol crates directly.
pub use eesmr_core::BatchPolicy;
pub use eesmr_net::SchedulerKind;
pub use eesmr_workload::{ArrivalProcess, Injection, PayloadDist, Skew, Workload};
