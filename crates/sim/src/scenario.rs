//! Scenario builder and runner — the experiment driver for all protocols.
//!
//! A [`Scenario`] describes *what to run* (protocol, system size, topology
//! degree, payload, faults, signature scheme) and *when to stop* (a block
//! target, a view target for view-change measurements, or a time budget).
//! [`Scenario::run`] executes it on the discrete-event simulator and
//! returns a [`RunReport`] with per-node energy and
//! protocol metrics — the raw material for every figure in the paper's
//! evaluation.

use std::sync::Arc;

use eesmr_baselines::sync_hotstuff::{build_hs_replicas, HsConfig, HsPacing, HsVariant};
use eesmr_baselines::trusted::{build_tb_nodes, TbConfig, HUB};
use eesmr_core::{build_replicas, BatchPolicy, Config, Pacing};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_energy::Medium;
use eesmr_hypergraph::topology::{ring_kcast, star};
use eesmr_net::{
    ChannelCost, MetricsConfig, NetConfig, SchedulerKind, ShardedNet, SimDuration, SimTime,
    TraceClass, TraceLevel, TraceSet,
};
use eesmr_trace::path::CommitPath;
use eesmr_workload::Workload;

use crate::faults::{FaultPlan, FaultSpec};
use crate::report::{NodeEnergy, NodeReport, RunReport};

/// The protocols the harness can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's protocol.
    Eesmr,
    /// Sync HotStuff baseline.
    SyncHotStuff,
    /// OptSync baseline.
    OptSync,
    /// Trusted-control-node baseline (§5.1) on a star over 4G.
    TrustedBaseline,
}

impl Protocol {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Eesmr => "EESMR",
            Protocol::SyncHotStuff => "Sync HotStuff",
            Protocol::OptSync => "OptSync",
            Protocol::TrustedBaseline => "Trusted baseline",
        }
    }
}

/// Stop condition for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Every correct node has committed at least this many blocks.
    Blocks(u64),
    /// Every correct node has entered this view and resumed steady state
    /// (used for view-change energy measurements).
    ViewReached(u64),
    /// Run for a fixed span of virtual time.
    Elapsed(SimDuration),
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Node count (for the trusted baseline this includes the hub).
    pub n: usize,
    /// Ring k-cast degree (ignored by the trusted baseline's star).
    pub k: usize,
    /// Payload bytes per block (`|b_i|`).
    pub payload_bytes: usize,
    /// Run seed (keys, delays).
    pub seed: u64,
    /// Signature scheme (default RSA-1024, the paper's pick).
    pub scheme: SigScheme,
    /// Fault plan (used when no [`fault_spec`](Self::fault_spec) is set).
    pub faults: FaultPlan,
    /// Sweepable fault axis. When set, the tag expands to a canonical
    /// [`FaultPlan`] sized to `(n, Δ)` at run time — Δ depends on the
    /// topology, so the expansion cannot happen at build time — and
    /// overrides [`faults`](Self::faults).
    pub fault_spec: Option<FaultSpec>,
    /// Stop condition.
    pub stop: StopWhen,
    /// Hard deadline in virtual time.
    pub deadline: SimDuration,
    /// Streaming instead of blocking pacing.
    pub streaming: bool,
    /// EESMR: crash-only variant.
    pub crash_only: bool,
    /// EESMR: §3.5 equivocation speedup.
    pub opt_equivocation_speedup: bool,
    /// EESMR: §5.6 lock-only status.
    pub opt_lock_only_status: bool,
    /// Override the protocol fault bound `f` (default `⌈n/2⌉ − 1`). The
    /// paper's Fig. 2e/3 sweep `f` with `k = f + 1`.
    pub fault_bound: Option<usize>,
    /// EESMR: §3.5 checkpoint interval (optimistic pre-commit).
    pub checkpoint_interval: Option<u64>,
    /// How the proposer sizes each batch, if explicitly set. `None`
    /// keeps each protocol's historical default (`Fixed(64)`; the
    /// trusted baseline's spokes upload `Fixed(16)` batches).
    pub batch_policy: Option<BatchPolicy>,
    /// Synthetic offered load: commands available per proposal when no
    /// client commands are queued (the paper's workloads use 1). Ignored
    /// when a [`workload`](Self::workload) is attached.
    pub offered_load: usize,
    /// Forward-batching threshold at non-leading nodes: relay the local
    /// backlog once it holds this many commands (or after a Δ flush
    /// timer). `1` — the default — forwards on every arrival. Applies to
    /// EESMR and the HotStuff-family baselines; the trusted baseline's
    /// spokes batch through their upload schedule instead.
    pub forward_batch: usize,
    /// Client workload model: arrival process × per-node skew × payload
    /// distribution × injection discipline. When set, it replaces the
    /// synthetic `offered_load` feed and the run measures per-transaction
    /// end-to-end commit latency.
    pub workload: Option<Workload>,
    /// Which pending-event queue the simulator uses. Results are
    /// bit-identical under either kind; this only changes run speed.
    pub scheduler: SchedulerKind,
    /// How many shards (worker threads) the simulation is split across
    /// (see `eesmr_net::shard`). Results are bit-identical for any
    /// value; sharding only changes how fast a large-`n` scenario runs.
    /// Defaults to `EESMR_SHARDS` (or 1).
    pub shards: usize,
    /// Structured-event trace level (see `eesmr-trace`). An
    /// observability knob, not a sweep axis: traces are keyed to
    /// node-local state, so any level produces the same `RunReport`
    /// bit for bit. Defaults to `EESMR_TRACE` (or off).
    pub trace: TraceLevel,
    /// Time-series telemetry sampling (see `eesmr-metrics`). Like
    /// `trace`, an observability knob rather than a sweep axis: samples
    /// are taken from node-local state on each node's own event stream,
    /// so enabling them cannot change the `RunReport`. Defaults to
    /// `EESMR_METRICS` / `EESMR_METRICS_DT` / `EESMR_METRICS_CAP`
    /// (off unless set).
    pub metrics: MetricsConfig,
}

/// The sweep coordinates identifying one cell of an experiment grid: the
/// axes every figure in the paper varies. `Copy` + `Eq` + `Hash` so
/// drivers can key result tables by cell (see `eesmr-driver`).
///
/// A key covers the sweep axes only — not the fault plan, stop
/// condition, or optimization flags — so two explicitly-built scenarios
/// that differ only in those (e.g. an honest run and a view-change run
/// at the same `(protocol, n, k)`) share a key. Cells of one cartesian
/// sweep always have distinct keys; disambiguate explicit scenarios by
/// their label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Node count.
    pub n: usize,
    /// Ring k-cast degree.
    pub k: usize,
    /// Payload bytes per block.
    pub payload_bytes: usize,
    /// Signature scheme.
    pub scheme: SigScheme,
    /// Batch policy.
    pub batch: BatchPolicy,
    /// Synthetic offered load (commands available per proposal).
    pub offered_load: usize,
    /// Forward-batching threshold at non-leading nodes.
    pub forward_batch: usize,
    /// Client workload model, if any.
    pub workload: Option<Workload>,
    /// Simulation shard count. A *performance* axis: cells differing
    /// only in `shards` produce bit-identical `RunReport`s (the sharded
    /// determinism suite enforces it), so sweeping it measures speed,
    /// not results.
    pub shards: usize,
    /// Fault axis ([`FaultSpec::None`] when the scenario injects no
    /// swept fault; explicitly-built [`FaultPlan`]s do not key cells).
    pub fault: FaultSpec,
    /// Run seed.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the paper's defaults: BLE k-casts at 99.99 %
    /// reliability, RSA-1024, 16-byte payloads, 20-block target.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a valid ring degree for `n`.
    pub fn new(protocol: Protocol, n: usize, k: usize) -> Self {
        assert!(k >= 1 && k < n, "ring k-cast requires 1 ≤ k < n");
        Scenario {
            protocol,
            n,
            k,
            payload_bytes: 16,
            seed: 42,
            scheme: SigScheme::Rsa1024,
            faults: FaultPlan::none(),
            fault_spec: None,
            stop: StopWhen::Blocks(20),
            deadline: SimDuration::from_millis(120_000),
            streaming: false,
            crash_only: false,
            opt_equivocation_speedup: false,
            opt_lock_only_status: false,
            fault_bound: None,
            checkpoint_interval: None,
            batch_policy: None,
            offered_load: 1,
            forward_batch: 1,
            workload: None,
            scheduler: SchedulerKind::from_env(),
            shards: eesmr_net::shards_from_env(),
            trace: TraceLevel::from_env(),
            metrics: MetricsConfig::from_env(),
        }
    }

    /// Sets the batch policy (how proposers size each block's batch).
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch_policy = Some(policy);
        self
    }

    /// The batch policy this scenario actually runs with: the explicit
    /// setting if any, else the protocol's historical default.
    pub fn effective_batch_policy(&self) -> BatchPolicy {
        self.batch_policy.unwrap_or(match self.protocol {
            Protocol::TrustedBaseline => BatchPolicy::Fixed(16),
            _ => BatchPolicy::DEFAULT,
        })
    }

    /// Sets the synthetic offered load (commands available per proposal).
    pub fn offered_load(mut self, commands: usize) -> Self {
        self.offered_load = commands.max(1);
        self
    }

    /// Sets the forward-batching threshold: non-leading nodes relay
    /// their backlog once it holds `threshold` commands (or after a Δ
    /// flush timer), instead of on every arrival (clamped to at least 1).
    pub fn forward_batch(mut self, threshold: usize) -> Self {
        self.forward_batch = threshold.max(1);
        self
    }

    /// Attaches a client workload model (replaces the synthetic
    /// `offered_load` feed; see `eesmr-workload`).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Selects the simulator's event scheduler (results are identical
    /// under either; see `eesmr_net::sched`).
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Splits the simulation across `shards` worker threads (clamped to
    /// at least 1; see `eesmr_net::shard`). Results are bit-identical
    /// for any shard count — sharding is purely an intra-scenario
    /// speed knob for large `n`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the structured-event trace level (overriding `EESMR_TRACE`).
    /// Like [`shards`](Self::shards) this cannot change results — it only
    /// controls what [`run_traced`](Self::run_traced) captures.
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Sets the telemetry sampling configuration (overriding the
    /// `EESMR_METRICS*` environment). Pure observation: it fills
    /// [`RunReport::metrics`](RunReport) without changing any measured
    /// result.
    pub fn metrics(mut self, cfg: MetricsConfig) -> Self {
        self.metrics = cfg;
        self
    }

    /// Enables the §3.5 checkpoint optimization with the given interval.
    pub fn checkpoint_every(mut self, rounds: u64) -> Self {
        assert!(rounds > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = Some(rounds);
        self
    }

    /// Overrides the protocol fault bound `f` (must keep `f < n/2`).
    pub fn fault_bound(mut self, f: usize) -> Self {
        self.fault_bound = Some(f);
        self
    }

    /// Sets the payload size.
    pub fn payload(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the sweepable fault axis (overrides any explicit plan; the
    /// tag expands to a sized [`FaultPlan`] at run time).
    pub fn fault_spec(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// The fault plan this scenario actually runs with: the swept axis
    /// expanded against the given Δ, or the explicit plan.
    pub fn effective_faults(&self, delta: SimDuration) -> FaultPlan {
        match self.fault_spec {
            Some(spec) => spec.plan(self.n, delta.as_micros()),
            None => self.faults.clone(),
        }
    }

    /// Sets the stop condition.
    pub fn stop(mut self, stop: StopWhen) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the signature scheme.
    pub fn scheme(mut self, scheme: SigScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Switches to streaming pacing.
    pub fn streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Enables the §5.6 optimizations the paper's testbed runs used.
    pub fn with_paper_optimizations(mut self) -> Self {
        self.opt_equivocation_speedup = true;
        self.opt_lock_only_status = true;
        self
    }

    /// The cell-grid coordinates of this scenario.
    pub fn cell(&self) -> CellKey {
        CellKey {
            protocol: self.protocol,
            n: self.n,
            k: self.k,
            payload_bytes: self.payload_bytes,
            scheme: self.scheme,
            batch: self.effective_batch_policy(),
            offered_load: self.offered_load,
            forward_batch: self.forward_batch,
            workload: self.workload,
            shards: self.shards,
            fault: self.fault_spec.unwrap_or(FaultSpec::None),
            seed: self.seed,
        }
    }

    /// The non-default settings rendered as `key=value` label suffixes,
    /// in a fixed order (batch, load, workload, shards, faults). One
    /// place builds them so every axis renders consistently.
    fn label_suffixes(&self) -> Vec<(&'static str, String)> {
        let mut parts = Vec::new();
        if let Some(policy) = self.batch_policy {
            parts.push(("batch", policy.label()));
        }
        if self.offered_load != 1 {
            parts.push(("load", self.offered_load.to_string()));
        }
        if self.forward_batch != 1 {
            parts.push(("fwd", self.forward_batch.to_string()));
        }
        if let Some(workload) = &self.workload {
            parts.push(("wl", workload.label()));
        }
        if self.shards != 1 {
            parts.push(("shards", self.shards.to_string()));
        }
        if let Some(spec) = self.fault_spec {
            parts.push(("fault", spec.label().to_string()));
        } else if self.faults.count() > 0 {
            parts.push(("faults", self.faults.count().to_string()));
        }
        parts
    }

    /// A human-readable label for status lines and report rows, e.g.
    /// `EESMR n=6 k=3 |b|=16B RSA-1024 seed=42`, with a ` key=value`
    /// suffix per non-default axis (batch policy, offered load, workload,
    /// faults).
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} n={} k={} |b|={}B {} seed={}",
            self.protocol.name(),
            self.n,
            self.k,
            self.payload_bytes,
            self.scheme.name(),
            self.seed
        );
        for (key, value) in self.label_suffixes() {
            label.push_str(&format!(" {key}={value}"));
        }
        label
    }

    /// Runs the scenario to completion.
    pub fn run(&self) -> RunReport {
        self.run_traced().0
    }

    /// Runs the scenario and also returns the structured-event trace the
    /// run recorded (empty at [`TraceLevel::Off`]). When the level
    /// enables commit-class events, the report's
    /// [`commit_path`](RunReport::commit_path) is reconstructed from the
    /// merged trace; when `EESMR_TRACE_OUT` names a file, the trace is
    /// also exported there as Perfetto JSON.
    pub fn run_traced(&self) -> (RunReport, TraceSet) {
        let (mut report, traces) = match self.protocol {
            Protocol::Eesmr => self.run_eesmr(),
            Protocol::SyncHotStuff => self.run_hs(HsVariant::SyncHotStuff),
            Protocol::OptSync => self.run_hs(HsVariant::OptSync),
            Protocol::TrustedBaseline => self.run_trusted(),
        };
        if self.trace.enables(TraceClass::Commit) {
            report.commit_path = CommitPath::reconstruct(&traces.merged());
            if let Ok(path) = std::env::var(ENV_TRACE_OUT) {
                if !path.is_empty() {
                    write_trace_out(&path, &traces);
                }
            }
        }
        if self.metrics.enabled {
            if let Ok(path) = std::env::var(ENV_METRICS_OUT) {
                if !path.is_empty() {
                    write_metrics_out(&path, &report);
                }
            }
        }
        (report, traces)
    }

    fn deadline_time(&self) -> SimTime {
        SimTime::ZERO + self.deadline
    }

    fn run_eesmr(&self) -> (RunReport, TraceSet) {
        let mut net_cfg = NetConfig::ble(ring_kcast(self.n, self.k), self.seed);
        net_cfg.scheduler = self.scheduler;
        net_cfg.trace = self.trace;
        net_cfg.metrics = self.metrics;
        let delta = net_cfg.delta();
        let plan = self.effective_faults(delta);
        net_cfg.link_faults = plan.link_faults();
        let mut config = Config::new(self.n, delta);
        config.batch_policy = self.effective_batch_policy();
        config.offered_load = self.offered_load;
        config.forward_batch = self.forward_batch;
        if let Some(f) = self.fault_bound {
            config.f = f;
        }
        config.payload_bytes = self.payload_bytes;
        config.crash_only = self.crash_only;
        config.opt_equivocation_speedup = self.opt_equivocation_speedup;
        config.opt_lock_only_status = self.opt_lock_only_status;
        config.checkpoint_interval = self.checkpoint_interval;
        if self.streaming {
            config.pacing = Pacing::Streaming { max_outstanding: 8 };
        }
        let f = config.f;
        let pki = Arc::new(KeyStore::generate(self.n, self.scheme, self.seed));
        let mut replicas = build_replicas(&config, &pki, |id| plan.eesmr_mode(id));
        if let Some(workload) = &self.workload {
            for (i, replica) in replicas.iter_mut().enumerate() {
                let source = workload.node_source(i as u32, i, self.n, self.seed);
                replica.attach_workload(Box::new(source));
            }
        }
        let mut net = ShardedNet::new(net_cfg, replicas, self.shards);

        match self.stop {
            StopWhen::Elapsed(d) => net.run_until(SimTime::ZERO + d),
            StopWhen::Blocks(b) => {
                net.run_until_all(self.deadline_time(), |id, r| {
                    plan.is_excused(id) || r.committed_height() >= b
                });
            }
            StopWhen::ViewReached(v) => {
                net.run_until_all(self.deadline_time(), |id, r| {
                    plan.is_excused(id) || (r.current_view() >= v && r.current_round() >= 3)
                });
            }
        }

        let traces = net.take_traces();
        let metrics = net.take_metrics();
        let nodes = (0..self.n as u32)
            .map(|id| {
                let r = net.actor(id);
                let meter = net.meter(id);
                let (commit_fps, commit_txs) =
                    crate::report::commit_log_prefix(r.committed(), |d| {
                        r.block(d).map(|b| b.payload.len() as u32)
                    });
                NodeReport {
                    id,
                    faulty: plan.is_faulty(id),
                    is_hub: false,
                    energy: NodeEnergy::from_meter(meter),
                    committed_height: r.committed_height(),
                    blocks_committed: r.metrics().blocks_committed,
                    view_changes: r.metrics().view_changes,
                    signs: meter.count(eesmr_energy::EnergyCategory::Sign),
                    verifies: meter.count(eesmr_energy::EnergyCategory::Verify),
                    mean_commit_latency: r.metrics().mean_commit_latency(),
                    tx_injected: r.metrics().tx_injected,
                    tx_forwarded: r.metrics().tx_forwarded,
                    forward_retries: r.metrics().forward_retries,
                    peak_backlog: r.peak_backlog() as u64,
                    mean_batch_fill_pct: r.metrics().mean_batch_fill_pct(),
                    tx_latency_hist: r.tx_latencies().clone(),
                    commit_fps,
                    commit_txs,
                }
            })
            .collect();
        let mut report = self.report("EESMR", f, delta, &net.stats(), nodes, net.now());
        self.attach_observability(&mut report, metrics, &traces, |id| {
            net.meter(id).attribution().clone()
        });
        (report, traces)
    }

    fn run_hs(&self, variant: HsVariant) -> (RunReport, TraceSet) {
        let mut net_cfg = NetConfig::ble(ring_kcast(self.n, self.k), self.seed);
        net_cfg.scheduler = self.scheduler;
        net_cfg.trace = self.trace;
        net_cfg.metrics = self.metrics;
        let delta = net_cfg.delta();
        let plan = self.effective_faults(delta);
        net_cfg.link_faults = plan.link_faults();
        let mut config = HsConfig::new(self.n, delta, variant);
        config.batch_policy = self.effective_batch_policy();
        config.offered_load = self.offered_load;
        config.forward_batch = self.forward_batch;
        if let Some(f) = self.fault_bound {
            config.f = f;
        }
        config.payload_bytes = self.payload_bytes;
        if self.streaming {
            config.pacing = HsPacing::Streaming;
        }
        let f = config.f;
        let pki = Arc::new(KeyStore::generate(self.n, self.scheme, self.seed));
        let mut replicas = build_hs_replicas(&config, &pki, |id| plan.hs_mode(id));
        if let Some(workload) = &self.workload {
            for (i, replica) in replicas.iter_mut().enumerate() {
                let source = workload.node_source(i as u32, i, self.n, self.seed);
                replica.attach_workload(Box::new(source));
            }
        }
        let mut net = ShardedNet::new(net_cfg, replicas, self.shards);

        match self.stop {
            StopWhen::Elapsed(d) => net.run_until(SimTime::ZERO + d),
            StopWhen::Blocks(b) => {
                net.run_until_all(self.deadline_time(), |id, r| {
                    plan.is_excused(id) || r.committed_height() >= b
                });
            }
            StopWhen::ViewReached(v) => {
                net.run_until_all(self.deadline_time(), |id, r| {
                    plan.is_excused(id) || r.current_view() >= v
                });
            }
        }

        let traces = net.take_traces();
        let metrics = net.take_metrics();
        let nodes = (0..self.n as u32)
            .map(|id| {
                let r = net.actor(id);
                let meter = net.meter(id);
                let (commit_fps, commit_txs) =
                    crate::report::commit_log_prefix(r.committed(), |d| {
                        r.block(d).map(|b| b.payload.len() as u32)
                    });
                NodeReport {
                    id,
                    faulty: plan.is_faulty(id),
                    is_hub: false,
                    energy: NodeEnergy::from_meter(meter),
                    committed_height: r.committed_height(),
                    blocks_committed: r.metrics().blocks_committed,
                    view_changes: r.metrics().view_changes,
                    signs: meter.count(eesmr_energy::EnergyCategory::Sign),
                    verifies: meter.count(eesmr_energy::EnergyCategory::Verify),
                    mean_commit_latency: r.metrics().mean_commit_latency(),
                    tx_injected: r.metrics().tx_injected,
                    tx_forwarded: r.metrics().tx_forwarded,
                    forward_retries: r.metrics().forward_retries,
                    peak_backlog: r.peak_backlog() as u64,
                    mean_batch_fill_pct: r.metrics().mean_batch_fill_pct(),
                    tx_latency_hist: r.tx_latencies().clone(),
                    commit_fps,
                    commit_txs,
                }
            })
            .collect();
        let mut report =
            self.report(variant_name(variant), f, delta, &net.stats(), nodes, net.now());
        self.attach_observability(&mut report, metrics, &traces, |id| {
            net.meter(id).attribution().clone()
        });
        (report, traces)
    }

    fn run_trusted(&self) -> (RunReport, TraceSet) {
        // Star over the expensive medium; Δ is one hop to/from the hub.
        let mut net_cfg = NetConfig::ble(star(self.n, HUB), self.seed);
        net_cfg.channel = ChannelCost::PerByte { medium: Medium::FourG };
        net_cfg.scheduler = self.scheduler;
        net_cfg.trace = self.trace;
        net_cfg.metrics = self.metrics;
        let delta = net_cfg.delta();
        let plan = self.effective_faults(delta);
        net_cfg.link_faults = plan.link_faults();
        let mut config = TbConfig::new(self.n, self.payload_bytes, delta * 2);
        config.batch_policy = self.effective_batch_policy();
        config.offered_load = self.offered_load;
        let pki = Arc::new(KeyStore::generate(self.n, self.scheme, self.seed));
        let mut nodes_v = build_tb_nodes(&config, &pki, |id| plan.tb_fault(id));
        if let Some(workload) = &self.workload {
            // The externally powered hub (node 0) orders but never
            // originates: spokes 1..n map onto skew slots 0..n-1.
            for (i, node) in nodes_v.iter_mut().enumerate().skip(1) {
                let source = workload.node_source(i as u32, i - 1, self.n - 1, self.seed);
                node.attach_workload(Box::new(source));
            }
        }
        let mut net = ShardedNet::new(net_cfg, nodes_v, self.shards);

        // View-keyed behaviours translate to permanent silence in the
        // view-less baseline (see `FaultPlan::tb_fault`), so the excuse
        // set is computed from the translated fault, not the plan's.
        match self.stop {
            StopWhen::Elapsed(d) => net.run_until(SimTime::ZERO + d),
            StopWhen::Blocks(b) => {
                net.run_until_all(self.deadline_time(), |id, n| {
                    plan.tb_is_excused(id) || n.committed_height() >= b
                });
            }
            StopWhen::ViewReached(_) => {} // no views in the baseline
        }

        let traces = net.take_traces();
        let metrics = net.take_metrics();
        let nodes = (0..self.n as u32)
            .map(|id| {
                let r = net.actor(id);
                let meter = net.meter(id);
                let (commit_fps, commit_txs) =
                    crate::report::commit_log_prefix(r.committed(), |d| {
                        r.block(d).map(|b| b.payload.len() as u32)
                    });
                NodeReport {
                    id,
                    faulty: id != HUB && plan.is_faulty(id),
                    is_hub: id == HUB,
                    energy: NodeEnergy::from_meter(meter),
                    committed_height: r.committed_height(),
                    blocks_committed: r.metrics().blocks_committed,
                    view_changes: 0,
                    signs: meter.count(eesmr_energy::EnergyCategory::Sign),
                    verifies: meter.count(eesmr_energy::EnergyCategory::Verify),
                    mean_commit_latency: r.metrics().mean_commit_latency(),
                    tx_injected: r.metrics().tx_injected,
                    tx_forwarded: r.metrics().tx_forwarded,
                    forward_retries: r.metrics().forward_retries,
                    peak_backlog: r.peak_backlog() as u64,
                    mean_batch_fill_pct: r.metrics().mean_batch_fill_pct(),
                    tx_latency_hist: r.tx_latencies().clone(),
                    commit_fps,
                    commit_txs,
                }
            })
            .collect();
        let mut report = self.report("Trusted baseline", 0, delta, &net.stats(), nodes, net.now());
        self.attach_observability(&mut report, metrics, &traces, |id| {
            net.meter(id).attribution().clone()
        });
        (report, traces)
    }

    fn report(
        &self,
        protocol: &'static str,
        f: usize,
        delta: SimDuration,
        net: &eesmr_net::NetStats,
        nodes: Vec<NodeReport>,
        now: SimTime,
    ) -> RunReport {
        RunReport {
            protocol,
            n: self.n,
            k: self.k,
            f,
            payload_bytes: self.payload_bytes,
            delta_us: delta.as_micros(),
            elapsed_us: now.as_micros(),
            nodes,
            net: net.clone(),
            commit_path: None,
            energy_attr: Vec::new(),
            metrics: eesmr_net::MetricsSet::default(),
            trace_dropped: Vec::new(),
        }
    }

    /// Fills the report's observability surfaces: per-node energy
    /// attribution matrices, the sampled telemetry series, and the
    /// per-node trace-drop counters. All three are excluded from report
    /// equality, so this cannot perturb determinism comparisons.
    fn attach_observability(
        &self,
        report: &mut RunReport,
        metrics: eesmr_net::MetricsSet,
        traces: &TraceSet,
        mut attribution: impl FnMut(u32) -> eesmr_energy::EnergyAttribution,
    ) {
        report.energy_attr = (0..self.n as u32).map(&mut attribution).collect();
        report.metrics = metrics;
        report.trace_dropped = traces.nodes.iter().map(|t| t.dropped).collect();
    }
}

/// Env var naming a file each traced run exports its Perfetto JSON to
/// (level ≥ `commit`; a grid's runs overwrite it — last one wins).
pub const ENV_TRACE_OUT: &str = "EESMR_TRACE_OUT";

/// Writes the Perfetto export under a process-wide lock so concurrent
/// grid cells (the driver's worker pool) never interleave writes.
fn write_trace_out(path: &str, traces: &TraceSet) {
    use std::sync::Mutex;
    static GUARD: Mutex<()> = Mutex::new(());
    let _lock = GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Err(err) = std::fs::write(path, eesmr_trace::perfetto::render(traces)) {
        eprintln!("warning: failed to write trace export {path}: {err}");
    }
}

/// Env var naming a file each metrics-enabled run exports its sampled
/// telemetry to: Prometheus text format when the path ends in `.prom`
/// or `.txt`, JSON (`eesmr-metrics/v1`) otherwise. Like
/// [`ENV_TRACE_OUT`], a grid's runs overwrite it — last one wins.
pub const ENV_METRICS_OUT: &str = "EESMR_METRICS_OUT";

/// Writes the metrics export under a process-wide lock so concurrent
/// grid cells never interleave writes.
fn write_metrics_out(path: &str, report: &RunReport) {
    use std::sync::Mutex;
    static GUARD: Mutex<()> = Mutex::new(());
    let _lock = GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let energy: Vec<(eesmr_energy::EnergyAttribution, f64)> = report
        .energy_attr
        .iter()
        .zip(&report.nodes)
        .map(|(attr, node)| (attr.clone(), node.energy.total_mj()))
        .collect();
    let body = if path.ends_with(".prom") || path.ends_with(".txt") {
        eesmr_metrics::export::prometheus(&report.metrics, &energy)
    } else {
        eesmr_metrics::export::json(&report.metrics, &energy)
    };
    if let Err(err) = std::fs::write(path, body) {
        eprintln!("warning: failed to write metrics export {path}: {err}");
    }
}

fn variant_name(v: HsVariant) -> &'static str {
    match v {
        HsVariant::SyncHotStuff => "Sync HotStuff",
        HsVariant::OptSync => "OptSync",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    #[test]
    fn eesmr_scenario_reaches_block_target() {
        let report = Scenario::new(Protocol::Eesmr, 5, 2).stop(StopWhen::Blocks(5)).run();
        assert_eq!(report.protocol, "EESMR");
        assert!(report.committed_height() >= 5);
        assert_eq!(report.view_changes(), 0);
        assert!(report.total_correct_energy_mj() > 0.0);
    }

    #[test]
    fn synchs_scenario_runs() {
        let report = Scenario::new(Protocol::SyncHotStuff, 5, 2).stop(StopWhen::Blocks(5)).run();
        assert!(report.committed_height() >= 5);
        assert_eq!(report.protocol, "Sync HotStuff");
    }

    #[test]
    fn optsync_scenario_runs() {
        let report = Scenario::new(Protocol::OptSync, 8, 3).stop(StopWhen::Blocks(5)).run();
        assert!(report.committed_height() >= 5);
    }

    #[test]
    fn trusted_scenario_excludes_hub_energy() {
        let report = Scenario::new(Protocol::TrustedBaseline, 6, 2).stop(StopWhen::Blocks(5)).run();
        assert!(report.committed_height() >= 5);
        let hub = &report.nodes[0];
        assert!(hub.is_hub);
        assert!(hub.energy.total_mj() > 0.0);
        // Correct-node totals exclude the hub.
        let manual: f64 = report.nodes[1..].iter().map(|n| n.energy.total_mj()).sum();
        assert!((report.total_correct_energy_mj() - manual).abs() < 1e-9);
    }

    #[test]
    fn view_change_scenario_stops_after_vc() {
        let report = Scenario::new(Protocol::Eesmr, 5, 2)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::ViewReached(2))
            .run();
        assert!(report.view_changes() >= 1);
        // The faulty leader is excluded from correct-node aggregates.
        assert_eq!(report.correct_nodes().count(), 4);
    }

    #[test]
    fn eesmr_beats_synchs_total_energy_per_block() {
        // The headline comparison at small scale: same topology, payload,
        // and scheme — EESMR consumes less per committed block.
        let e = Scenario::new(Protocol::Eesmr, 7, 3).stop(StopWhen::Blocks(10)).run();
        let s = Scenario::new(Protocol::SyncHotStuff, 7, 3).stop(StopWhen::Blocks(10)).run();
        assert!(
            e.energy_per_block_mj() < s.energy_per_block_mj(),
            "EESMR {:.1} vs SyncHS {:.1} mJ/block",
            e.energy_per_block_mj(),
            s.energy_per_block_mj()
        );
    }

    #[test]
    fn label_and_cell_describe_the_sweep_axes() {
        let s = Scenario::new(Protocol::Eesmr, 6, 3).payload(128).seed(7);
        assert_eq!(s.cell().n, 6);
        assert_eq!(s.cell().seed, 7);
        assert_eq!(s.cell(), s.clone().cell(), "cell key is a pure function of the scenario");
        let label = s.label();
        assert!(label.contains("EESMR"), "{label}");
        assert!(label.contains("n=6"), "{label}");
        assert!(label.contains("|b|=128B"), "{label}");
        assert!(!label.contains("faults"), "{label}");
        let faulty = s.faults(FaultPlan::silent_leader()).label();
        assert!(faulty.contains("faults=1"), "{faulty}");
    }

    #[test]
    fn adaptive_batching_under_load_fills_bigger_blocks() {
        let adaptive = BatchPolicy::Adaptive { min: 1, max: 64, target_fill_pct: 100 };
        let loaded = Scenario::new(Protocol::Eesmr, 5, 2)
            .offered_load(32)
            .batch_policy(adaptive)
            .stop(StopWhen::Blocks(5))
            .run();
        assert!(loaded.committed_height() >= 5);
        let unit = Scenario::new(Protocol::Eesmr, 5, 2).stop(StopWhen::Blocks(5)).run();
        // Same block target, but the adaptive proposer drains the offered
        // load into each block: far more bytes cross the air per block.
        assert!(
            loaded.net.bytes_on_air > 2 * unit.net.bytes_on_air,
            "adaptive batches should carry the backlog ({} vs {} bytes)",
            loaded.net.bytes_on_air,
            unit.net.bytes_on_air
        );
        let label =
            Scenario::new(Protocol::Eesmr, 5, 2).offered_load(32).batch_policy(adaptive).label();
        assert!(label.contains("batch=adaptive1..64@100%"), "{label}");
        assert!(label.contains("load=32"), "{label}");
    }

    #[test]
    fn batch_policy_is_a_cell_axis() {
        let a = Scenario::new(Protocol::Eesmr, 5, 2);
        let b = a.clone().batch_policy(BatchPolicy::Fixed(8));
        assert_ne!(a.cell(), b.cell(), "batch policy distinguishes grid cells");
        assert_eq!(a.cell().batch, BatchPolicy::DEFAULT);
        let c = a.clone().offered_load(32);
        assert_ne!(a.cell(), c.cell(), "offered load distinguishes grid cells");
    }

    #[test]
    fn workload_scenario_measures_end_to_end_latency() {
        use eesmr_workload::{ArrivalProcess, Skew};
        // All load on node 0 — the view-1 leader — so arrivals flow
        // straight into proposals.
        let w =
            Workload::new(ArrivalProcess::Poisson { rate: 2_000 }).skew(Skew::Hotspot { pct: 100 });
        let report =
            Scenario::new(Protocol::Eesmr, 5, 2).workload(w).stop(StopWhen::Blocks(10)).run();
        assert!(report.committed_height() >= 10);
        assert!(report.tx_injected() > 0, "arrival events fired");
        assert!(report.tx_committed() > 0, "transactions rode committed blocks");
        let stats = report.tx_latency_stats().expect("latencies measured");
        assert!(stats.p50_us <= stats.p99_us);
        assert!(stats.mean_us > 0);
        let label = Scenario::new(Protocol::Eesmr, 5, 2).workload(w).label();
        assert!(label.contains("wl=poisson2000/hot100/open"), "{label}");
    }

    #[test]
    fn workload_runs_on_every_protocol() {
        use eesmr_workload::ArrivalProcess;
        let w = Workload::new(ArrivalProcess::Constant { rate: 3_000 });
        for protocol in
            [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
        {
            let report = Scenario::new(protocol, 5, 2).workload(w).stop(StopWhen::Blocks(5)).run();
            assert!(report.committed_height() >= 5, "{protocol:?}");
            assert!(report.tx_injected() > 0, "{protocol:?} injected nothing");
            assert!(
                report.tx_latency_stats().is_some(),
                "{protocol:?} committed no workload transactions"
            );
        }
    }

    #[test]
    fn closed_loop_bound_holds_end_to_end() {
        use eesmr_workload::{ArrivalProcess, Skew};
        let bound = 8;
        let w = Workload::new(ArrivalProcess::Poisson { rate: 20_000 })
            .skew(Skew::Hotspot { pct: 100 })
            .closed_loop(bound);
        let report =
            Scenario::new(Protocol::Eesmr, 5, 2).workload(w).stop(StopWhen::Blocks(8)).run();
        for node in report.nodes.iter() {
            let in_flight_at_end = node.tx_injected - node.tx_latency_hist.count();
            assert!(
                in_flight_at_end <= bound as u64,
                "node {} ended with {in_flight_at_end} in flight",
                node.id
            );
        }
        assert!(report.tx_committed() > 0);
    }

    #[test]
    fn forwarding_unstrands_transactions_at_non_leading_nodes() {
        use eesmr_workload::ArrivalProcess;
        // Uniform skew: every node injects, but (fault-free) only node 0
        // ever leads. Command forwarding relays the other nodes' commands
        // to the proposer, so every node's transactions commit — they
        // used to strand in the local pools forever.
        let w = Workload::new(ArrivalProcess::Poisson { rate: 4_000 }).closed_loop(4);
        for protocol in [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync] {
            let report = Scenario::new(protocol, 5, 2).workload(w).stop(StopWhen::Blocks(12)).run();
            assert!(report.committed_height() >= 12, "{protocol:?}");
            assert!(report.tx_forwarded() > 0, "{protocol:?} reported no forwards");
            for node in &report.nodes {
                assert!(node.tx_injected > 0, "{protocol:?} node {} injected nothing", node.id);
                assert!(
                    !node.tx_latency_hist.is_empty(),
                    "{protocol:?} node {}: its transactions stranded — forwarding broken",
                    node.id
                );
            }
        }
    }

    #[test]
    fn partitioned_follower_reforwards_its_queue_after_heal() {
        use eesmr_workload::ArrivalProcess;
        // Node 4 injects client commands like everyone else, but a
        // partition cuts it off from the (healthy, never-deposed) leader
        // mid-run, so its forward floods vanish into severed links and
        // no view change ever fires `requeue_unresolved` for it. The
        // forward-retry timer is the only rescue: after the heal it must
        // re-forward the partition-era queue so the commands commit and
        // the closed loop resumes injecting.
        let w = Workload::new(ArrivalProcess::Poisson { rate: 4_000 }).closed_loop(4);
        // Blocks(16) leaves enough healthy run after the heal for the
        // retry window (32Δ from each command's birth) to elapse and
        // the resumed loop to cycle a few more waves through commit.
        let base = Scenario::new(Protocol::Eesmr, 5, 2)
            .workload(w)
            .faults(FaultPlan::none().with_partition(5_000, 60_000, [4]))
            .stop(StopWhen::Blocks(16));
        let report = base.clone().run();
        assert!(report.committed_height() >= 16, "{}", report.summary());
        assert!(report.net.dropped > 0, "the partition severed real traffic");
        let islanded = &report.nodes[4];
        assert!(!islanded.faulty, "a partitioned node is a link fault, not a node fault");
        assert!(
            islanded.tx_forwarded > islanded.tx_injected,
            "retries re-forward stranded commands, so forwards ({}) must exceed \
             injections ({}) — without the retry each command is forwarded at most once",
            islanded.tx_forwarded,
            islanded.tx_injected
        );
        assert!(
            islanded.tx_injected >= 10,
            "only {} injections: the closed loop froze on stranded commands \
             instead of resuming after the heal",
            islanded.tx_injected
        );
        assert!(
            islanded.tx_latency_hist.count() + 4 >= islanded.tx_injected,
            "{} of {} injected commands never committed — re-forwarding after \
             the heal is broken",
            islanded.tx_injected - islanded.tx_latency_hist.count(),
            islanded.tx_injected
        );
        // The whole heal-and-reforward path is keyed to node-local state:
        // sharding the run must reproduce it bit for bit.
        let sharded = base.shards(2).run();
        assert_eq!(report, sharded, "partition re-forwarding broke shard determinism");
    }

    #[test]
    fn forward_batching_cuts_forward_traffic_without_perturbing_determinism() {
        use eesmr_workload::ArrivalProcess;
        // Uniform skew, closed loop, and a silent first leader: every
        // node queues commands for a proposer that dies, so the batch=1
        // baseline forwards each command on arrival and re-forwards
        // whole backlogs around the view change. With a threshold, the
        // sub-threshold backlog a node holds when it becomes (or gains
        // a live) leader is proposed or relayed once instead.
        let w = Workload::new(ArrivalProcess::Poisson { rate: 4_000 }).closed_loop(4);
        let base = Scenario::new(Protocol::Eesmr, 5, 2)
            .workload(w)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::Blocks(12));
        let unbatched = base.clone().run();
        let batched = base.clone().forward_batch(8).run();
        assert!(batched.committed_height() >= 12);
        assert!(batched.view_changes() >= 1);
        assert!(batched.tx_forwarded() > 0, "forwarding still happens, just batched");
        assert!(
            batched.tx_forwarded() < unbatched.tx_forwarded(),
            "batching should cut forward traffic ({} vs {})",
            batched.tx_forwarded(),
            unbatched.tx_forwarded()
        );
        // Batching is keyed to node-local state only: sharding the
        // batched run must reproduce it bit for bit.
        let sharded = base.clone().forward_batch(8).shards(2).run();
        assert_eq!(batched, sharded, "forward batching broke shard determinism");
        // The threshold is a sweep axis with a label suffix.
        let s = base.clone().forward_batch(8);
        assert_ne!(s.cell(), base.cell(), "forward_batch distinguishes grid cells");
        assert!(s.label().contains("fwd=8"), "{}", s.label());
        assert!(!base.label().contains("fwd="), "{}", base.label());
    }

    #[test]
    fn workload_survives_a_view_change() {
        use eesmr_workload::ArrivalProcess;
        // A silent view-1 leader forces a view change while client
        // traffic keeps arriving; the run must still complete, keep
        // injecting, and commit transactions under the new leader.
        let w = Workload::new(ArrivalProcess::Poisson { rate: 4_000 }).closed_loop(16);
        let report = Scenario::new(Protocol::Eesmr, 5, 2)
            .workload(w)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::Blocks(5))
            .run();
        assert!(report.view_changes() >= 1);
        assert!(report.committed_height() >= 5);
        assert!(report.tx_injected() > 0);
        assert!(report.tx_committed() > 0, "the new leader commits client traffic");
    }

    #[test]
    fn workload_is_a_cell_axis() {
        use eesmr_workload::ArrivalProcess;
        let a = Scenario::new(Protocol::Eesmr, 5, 2);
        let b = a.clone().workload(Workload::new(ArrivalProcess::Poisson { rate: 500 }));
        assert_ne!(a.cell(), b.cell(), "workload distinguishes grid cells");
        assert_eq!(a.cell().workload, None);
    }

    #[test]
    fn sharded_scenarios_match_single_threaded_bit_for_bit() {
        for protocol in
            [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
        {
            let base = Scenario::new(protocol, 6, 3).stop(StopWhen::Blocks(4));
            let reference = base.clone().shards(1).run();
            assert!(reference.committed_height() >= 4, "{protocol:?}");
            for shards in [2, 3, 6] {
                let sharded = base.clone().shards(shards).run();
                assert_eq!(reference, sharded, "{protocol:?} diverged with {shards} shards");
            }
        }
    }

    #[test]
    fn shards_are_a_cell_axis_and_label_suffix() {
        let a = Scenario::new(Protocol::Eesmr, 6, 3).shards(1);
        let b = a.clone().shards(4);
        assert_ne!(a.cell(), b.cell(), "shard count distinguishes grid cells");
        assert_eq!(b.cell().shards, 4);
        assert!(!a.label().contains("shards"), "{}", a.label());
        assert!(b.label().contains("shards=4"), "{}", b.label());
        assert_eq!(a.clone().shards(0).shards, 1, "clamped to at least one");
    }

    #[test]
    fn traced_workload_run_reconstructs_the_commit_path() {
        use eesmr_workload::ArrivalProcess;
        let w = Workload::new(ArrivalProcess::Poisson { rate: 2_000 });
        let base = Scenario::new(Protocol::Eesmr, 5, 2).workload(w).stop(StopWhen::Blocks(5));
        let (report, traces) = base.clone().trace(TraceLevel::Commit).run_traced();
        assert!(traces.total_events() > 0, "commit-level tracing recorded events");
        let path = report.commit_path.as_ref().expect("commit path reconstructed");
        assert_eq!(path.stages.first().map(|s| s.stage), Some("inject"));
        assert_eq!(path.stages.last().map(|s| s.stage), Some("commit"));
        assert!(path.total_us() > 0);
        // Tracing is pure observation: the untraced run is bit-identical
        // (commit_path itself is diagnostic and excluded from equality).
        let (untraced, empty) = base.clone().trace(TraceLevel::Off).run_traced();
        assert_eq!(empty.total_events(), 0);
        assert_eq!(untraced.commit_path, None);
        assert_eq!(report, untraced, "tracing perturbed the run");
        // Not a sweep axis: same cell, same label.
        assert_eq!(base.clone().trace(TraceLevel::All).cell(), base.cell());
        assert_eq!(base.clone().trace(TraceLevel::All).label(), base.label());
    }

    #[test]
    fn fault_axis_is_a_cell_axis_and_label_suffix() {
        let a = Scenario::new(Protocol::Eesmr, 6, 3);
        let b = a.clone().fault_spec(FaultSpec::Withhold);
        assert_ne!(a.cell(), b.cell(), "the fault axis distinguishes grid cells");
        assert_eq!(a.cell().fault, FaultSpec::None);
        assert_eq!(b.cell().fault, FaultSpec::Withhold);
        assert!(b.label().contains("fault=withhold"), "{}", b.label());
        assert!(!a.label().contains("fault="), "{}", a.label());
    }

    #[test]
    fn partition_heals_and_the_islanded_node_catches_up() {
        let report = Scenario::new(Protocol::Eesmr, 5, 2)
            .fault_spec(FaultSpec::PartitionHeal)
            .stop(StopWhen::Blocks(6))
            .run();
        // The partitioned node is a link fault, not a node fault: it is
        // not excused, so reaching the stop target proves it caught up
        // after the heal.
        for node in &report.nodes {
            assert!(!node.faulty, "partitions do not mark nodes faulty");
            assert!(
                node.committed_height >= 6,
                "node {} stuck at {}",
                node.id,
                node.committed_height
            );
        }
        assert!(report.net.dropped > 0, "the partition severed real deliveries");
    }

    #[test]
    fn crash_recovery_spec_commits_on_every_protocol() {
        for protocol in
            [Protocol::Eesmr, Protocol::SyncHotStuff, Protocol::OptSync, Protocol::TrustedBaseline]
        {
            let report = Scenario::new(protocol, 5, 2)
                .fault_spec(FaultSpec::CrashRecovery)
                .stop(StopWhen::Blocks(3))
                .run();
            let crashed = &report.nodes[4];
            assert!(crashed.faulty, "{protocol:?} marks the crashed node");
            assert!(
                crashed.committed_height >= 3,
                "{protocol:?}: the restarted node only reached {}",
                crashed.committed_height
            );
        }
    }

    #[test]
    fn elapsed_stop_runs_exact_time() {
        let report = Scenario::new(Protocol::Eesmr, 4, 2)
            .stop(StopWhen::Elapsed(SimDuration::from_millis(50)))
            .run();
        assert_eq!(report.elapsed_us, 50_000);
    }
}
