//! Backend conformance: SimNet and ProcNet commit the same log.
//!
//! The same happy-path scenario cell runs once on the deterministic
//! simulator and once as real OS processes over Unix domain sockets
//! (`Scenario::run_proc`, Δ-padded timers). The replicas are supposed to
//! be transport-agnostic: with no faults and the synthetic unit load,
//! block contents are a pure function of the protocol state machine, so
//! every node's committed block-id fingerprints and per-block command
//! counts must match bit for bit. Wall-clock fields (elapsed time,
//! latency, energy magnitudes) are excluded — those are exactly what the
//! backends legitimately disagree on.
//!
//! The trusted baseline is excluded from the grid: its hub batches spoke
//! uploads in arrival order, which is timing-dependent by design (see
//! README "Known deviations").

use std::path::Path;

use eesmr_net::ProcTransport;
use eesmr_sim::{Protocol, Scenario, StopWhen};

const BLOCKS: u64 = 5;

fn assert_conformance(scenario: Scenario) {
    let label = scenario.label();
    let sim = scenario.run();
    let proc = scenario
        .run_proc(ProcTransport::Uds, Path::new(env!("CARGO_BIN_EXE_proc_replica")))
        .unwrap_or_else(|e| panic!("{label}: proc run failed: {e}"));

    assert!(sim.committed_height() >= BLOCKS, "{label}: sim reached the target");
    assert!(proc.committed_height() >= BLOCKS, "{label}: proc reached the target");
    assert_eq!(sim.nodes.len(), proc.nodes.len(), "{label}");
    for (s, p) in sim.nodes.iter().zip(&proc.nodes) {
        // Both backends overshoot the block target by different amounts
        // (the simulator stops between events, the coordinator between
        // polls), so conformance is on the guaranteed common prefix.
        let prefix = BLOCKS as usize;
        assert!(
            s.commit_fps.len() >= prefix && p.commit_fps.len() >= prefix,
            "{label}: node {} committed {} (sim) / {} (proc) blocks",
            s.id,
            s.commit_fps.len(),
            p.commit_fps.len(),
        );
        assert_eq!(
            s.commit_fps[..prefix],
            p.commit_fps[..prefix],
            "{label}: node {} commit sequence diverged between backends",
            s.id
        );
        assert_eq!(
            s.commit_txs[..prefix],
            p.commit_txs[..prefix],
            "{label}: node {} per-block tx counts diverged between backends",
            s.id
        );
        assert!(
            p.commit_txs[..prefix].iter().all(|&c| c > 0),
            "{label}: node {} committed an empty block in the unit-load cell",
            s.id
        );
    }
    // Every node agrees with node 0 within each backend too (safety,
    // cheap to pin while we have the logs).
    for report in [&sim, &proc] {
        let first = &report.nodes[0].commit_fps[..BLOCKS as usize];
        for node in &report.nodes[1..] {
            assert_eq!(&node.commit_fps[..BLOCKS as usize], first, "{label}: fork");
        }
    }
}

#[test]
fn eesmr_commits_identically_on_simnet_and_procnet() {
    assert_conformance(Scenario::new(Protocol::Eesmr, 5, 2).stop(StopWhen::Blocks(BLOCKS)));
}

#[test]
fn eesmr_larger_ring_and_payload_conform() {
    assert_conformance(
        Scenario::new(Protocol::Eesmr, 6, 3).payload(128).stop(StopWhen::Blocks(BLOCKS)),
    );
}

#[test]
fn sync_hotstuff_commits_identically_on_simnet_and_procnet() {
    assert_conformance(Scenario::new(Protocol::SyncHotStuff, 5, 2).stop(StopWhen::Blocks(BLOCKS)));
}

#[test]
fn optsync_commits_identically_on_simnet_and_procnet() {
    assert_conformance(Scenario::new(Protocol::OptSync, 5, 2).stop(StopWhen::Blocks(BLOCKS)));
}
