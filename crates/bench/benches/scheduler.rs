//! Criterion benchmarks of the simulator's event schedulers: the
//! calendar queue (`eesmr_net::sched::CalendarQueue`, the default)
//! against the reference binary heap, on raw queue operations and on
//! full broadcast-heavy simulations.
//!
//! The acceptance bar for the calendar queue: parity or better at n = 4,
//! and ≥ 1.5× event throughput on an n = 128 broadcast-heavy scenario.
//! Both backends pop in the identical `(time, seq)` order (enforced by
//! `crates/net/tests/sched_prop.rs`), so this is purely a speed
//! comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{
    Actor, Context, EventQueue, Message, NetConfig, NodeId, SchedulerKind, SimDuration, SimNet,
};

/// Classic hold-model workload on the raw queues: keep a fixed working
/// set, pop the minimum, schedule a replacement a pseudo-random delay in
/// the future. This is exactly the simulator's steady-state access
/// pattern, with zero protocol work to dilute the measurement.
fn bench_raw_hold(c: &mut Criterion) {
    const WORKING_SET: usize = 4_096;
    const OPS: u64 = 100_000;
    let mut group = c.benchmark_group("sched_raw_hold");
    group.throughput(Throughput::Elements(OPS));
    group.sample_size(1);
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut queue = EventQueue::new(kind);
                let mut seq = 0u64;
                let mut state = 0x9E37_79B9u64;
                let mut rand = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..WORKING_SET {
                    queue.push(rand() % 1_000, seq, seq);
                    seq += 1;
                }
                for _ in 0..OPS {
                    let (now, _, _) = queue.pop().expect("working set never drains");
                    // 1-in-16 events are far-future timers; the rest are
                    // message hops within the ring horizon.
                    let delay =
                        if rand() % 16 == 0 { 50_000 + rand() % 200_000 } else { rand() % 1_500 };
                    queue.push(now + delay, seq, seq);
                    seq += 1;
                }
                black_box(queue.len())
            })
        });
    }
    group.finish();
}

/// A broadcast-heavy protocol: every node floods a fresh message on
/// every delivery wave, saturating the event queue with relay and
/// delivery events — the regime where queue costs dominate.
#[derive(Debug, Clone)]
struct Wave(u64);

impl Message for Wave {
    fn wire_size(&self) -> usize {
        64
    }
    fn flood_key(&self) -> u64 {
        self.0
    }
}

struct Flooder {
    id: u64,
    sent: u64,
    budget: u64,
    heard: u64,
}

impl Actor for Flooder {
    type Msg = Wave;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Context<'_, Wave, ()>) {
        self.sent += 1;
        ctx.flood(Wave(self.id << 32));
    }

    fn on_message(&mut self, _from: NodeId, _msg: Wave, ctx: &mut Context<'_, Wave, ()>) {
        self.heard += 1;
        if self.sent < self.budget {
            self.sent += 1;
            ctx.flood(Wave((self.id << 32) | self.sent));
        }
    }

    fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Wave, ()>) {}
}

/// Runs the flood storm and returns the number of deliveries processed
/// (the throughput denominator).
fn flood_storm(n: usize, k: usize, budget: u64, kind: SchedulerKind) -> u64 {
    let mut cfg = NetConfig::ble(ring_kcast(n, k), 7);
    cfg.scheduler = kind;
    let actors =
        (0..n).map(|id| Flooder { id: id as u64, sent: 0, budget, heard: 0 }).collect::<Vec<_>>();
    let mut net = SimNet::new(cfg, actors);
    net.run_for(SimDuration::from_millis(10_000));
    net.stats().deliveries
}

fn bench_broadcast_storm(c: &mut Criterion) {
    // Small system: the queues barely matter — the bar is parity.
    {
        let deliveries = flood_storm(4, 2, 8, SchedulerKind::Heap);
        let mut group = c.benchmark_group("sched_storm_n4");
        group.throughput(Throughput::Elements(deliveries));
        group.sample_size(10);
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            group.bench_function(kind.name(), |b| b.iter(|| black_box(flood_storm(4, 2, 8, kind))));
        }
        group.finish();
    }
    // Large broadcast-heavy system: tens of thousands of concurrent
    // events — the calendar queue's O(1) lanes vs the heap's O(log N).
    {
        let deliveries = flood_storm(128, 4, 6, SchedulerKind::Heap);
        let mut group = c.benchmark_group("sched_storm_n128");
        group.throughput(Throughput::Elements(deliveries));
        group.sample_size(3);
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            group.bench_function(kind.name(), |b| {
                b.iter(|| black_box(flood_storm(128, 4, 6, kind)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_raw_hold, bench_broadcast_storm);
criterion_main!(benches);
