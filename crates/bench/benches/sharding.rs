//! Criterion benchmarks of the sharded simulation runtime
//! (`eesmr_net::ShardedNet`): how event throughput on one large scenario
//! scales when the node set is split across worker threads.
//!
//! The acceptance bar: parity or better with 1 shard on a small system
//! (the window loop must not tax the default path), and — on a machine
//! with at least 4 physical cores — ≥ 1.5× event throughput on an
//! n = 128 broadcast-heavy storm with 4 shards. Every shard count
//! produces a bit-identical trace (asserted below and enforced by
//! `tests/determinism.rs`), so this is purely a speed comparison; on a
//! single-core machine the sharded numbers only measure barrier
//! overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{Actor, Context, Message, NetConfig, NodeId, ShardedNet, SimDuration};

/// The scheduler bench's broadcast-heavy protocol: every node floods a
/// fresh message on every delivery wave and re-floods from a timer, so
/// all shards stay busy for the whole run.
#[derive(Debug, Clone)]
struct Wave(u64);

impl Message for Wave {
    fn wire_size(&self) -> usize {
        64
    }
    fn flood_key(&self) -> u64 {
        self.0
    }
}

struct Flooder {
    id: u64,
    sent: u64,
    budget: u64,
    heard: u64,
}

impl Actor for Flooder {
    type Msg = Wave;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Context<'_, Wave, ()>) {
        self.sent += 1;
        ctx.flood(Wave(self.id << 32));
    }

    fn on_message(&mut self, _from: NodeId, _msg: Wave, ctx: &mut Context<'_, Wave, ()>) {
        self.heard += 1;
        if self.sent < self.budget {
            self.sent += 1;
            ctx.flood(Wave((self.id << 32) | self.sent));
        }
    }

    fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Wave, ()>) {}
}

/// Runs the storm across `shards` shards and returns `(deliveries,
/// total heard)` — the throughput denominator plus a trace fingerprint.
fn sharded_storm(n: usize, k: usize, budget: u64, shards: usize) -> (u64, u64) {
    let cfg = NetConfig::ble(ring_kcast(n, k), 7);
    let actors =
        (0..n).map(|id| Flooder { id: id as u64, sent: 0, budget, heard: 0 }).collect::<Vec<_>>();
    let mut net = ShardedNet::new(cfg, actors, shards);
    net.run_for(SimDuration::from_millis(10_000));
    let heard = (0..n as NodeId).map(|id| net.actor(id).heard).sum();
    (net.stats().deliveries, heard)
}

fn bench_shard_scaling(c: &mut Criterion) {
    // Small system: sharding cannot help (too little work per window to
    // amortize a barrier crossing), so this group quantifies the
    // overhead floor: the 1-shard window loop should match the
    // historical per-event loop, and the 2-shard number is the price of
    // the lockstep machinery when it buys nothing. Shard small systems
    // only by accident, never on purpose — fan scenarios out across
    // EESMR_WORKERS instead.
    {
        let (deliveries, _) = sharded_storm(8, 2, 16, 1);
        let mut group = c.benchmark_group("shard_storm_n8");
        group.throughput(Throughput::Elements(deliveries));
        group.sample_size(10);
        for shards in [1usize, 2] {
            group.bench_function(format!("shards{shards}"), |b| {
                b.iter(|| black_box(sharded_storm(8, 2, 16, shards)))
            });
        }
        group.finish();
    }
    // Large broadcast-heavy system: n = 128 nodes all flooding — enough
    // per-window work for the shard workers to amortize the barriers.
    // The determinism contract lets us assert the traces match before
    // timing them.
    {
        let reference = sharded_storm(128, 4, 6, 1);
        for shards in [2usize, 4] {
            assert_eq!(reference, sharded_storm(128, 4, 6, shards), "{shards} shards diverged");
        }
        let mut group = c.benchmark_group("shard_storm_n128");
        group.throughput(Throughput::Elements(reference.0));
        group.sample_size(3);
        for shards in [1usize, 2, 4] {
            group.bench_function(format!("shards{shards}"), |b| {
                b.iter(|| black_box(sharded_storm(128, 4, 6, shards)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
