//! Criterion micro-benchmarks for the crypto substrate (wall-clock
//! performance of the from-scratch primitives; energy is modelled, but
//! simulation speed depends on these).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eesmr_crypto::{hmac::hmac_sha256, sha256::Sha256, KeyStore, SigScheme};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 64];
    let msg = vec![1u8; 256];
    c.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| hmac_sha256(black_box(&key), black_box(&msg)))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let pki = KeyStore::generate(4, SigScheme::Rsa1024, 1);
    let msg = vec![2u8; 200];
    let sig = pki.keypair(0).sign(&msg);
    c.bench_function("sign_200B", |b| b.iter(|| pki.keypair(0).sign(black_box(&msg))));
    c.bench_function("verify_200B", |b| b.iter(|| pki.verify(black_box(&msg), black_box(&sig))));
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_signatures);
criterion_main!(benches);
