//! Criterion profile of the zero-copy message spine
//! (`eesmr_core::Commands`): the broadcast storm from
//! `eesmr_bench::hotpath` timed with the Arc spine against the
//! deep-clone baseline, swept over commands per block, payload bytes,
//! and shard counts.
//!
//! The acceptance bar: ≥ 1.5× event throughput on the n = 128
//! broadcast storm with 16 commands per block, Arc spine vs deep-clone
//! baseline. Every cell pair is asserted bit-identical (same
//! fingerprint) before timing — the spine modes differ only in cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eesmr_bench::hotpath::{run_storm, StormSpec};
use eesmr_net::{MetricsConfig, TraceLevel};

fn bench_spine_headline(c: &mut Criterion) {
    let arc = StormSpec::headline(false);
    let deep = StormSpec::headline(true);
    let reference = run_storm(&arc);
    assert_eq!(
        reference.fingerprint(),
        run_storm(&deep).fingerprint(),
        "spine modes must be observationally identical"
    );
    let mut group = c.benchmark_group("hotpath_spine_n128");
    group.throughput(Throughput::Elements(reference.deliveries));
    group.sample_size(3);
    for spec in [arc, deep] {
        group.bench_function(spec.label(), |b| b.iter(|| black_box(run_storm(&spec))));
    }
    group.finish();
}

fn bench_commands_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_commands");
    group.sample_size(10);
    for commands in [1usize, 16, 64] {
        for deep_clone in [false, true] {
            let spec = StormSpec {
                n: 32,
                k: 4,
                commands,
                payload_bytes: 32,
                budget: 4,
                shards: 1,
                deep_clone,
                trace: TraceLevel::Off,
                metrics: MetricsConfig::off(),
            };
            group.bench_function(spec.label(), |b| b.iter(|| black_box(run_storm(&spec))));
        }
    }
    group.finish();
}

fn bench_payload_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_payload");
    group.sample_size(10);
    for payload_bytes in [16usize, 256, 1024] {
        for deep_clone in [false, true] {
            let spec = StormSpec {
                n: 32,
                k: 4,
                commands: 16,
                payload_bytes,
                budget: 4,
                shards: 1,
                deep_clone,
                trace: TraceLevel::Off,
                metrics: MetricsConfig::off(),
            };
            group.bench_function(spec.label(), |b| b.iter(|| black_box(run_storm(&spec))));
        }
    }
    group.finish();
}

fn bench_shard_sweep(c: &mut Criterion) {
    let reference = run_storm(&StormSpec::headline(false));
    let mut group = c.benchmark_group("hotpath_shards_n128");
    group.throughput(Throughput::Elements(reference.deliveries));
    group.sample_size(3);
    for shards in [1usize, 2, 4] {
        let spec = StormSpec { shards, ..StormSpec::headline(false) };
        assert_eq!(
            reference.fingerprint(),
            run_storm(&spec).fingerprint(),
            "{shards} shards diverged"
        );
        group.bench_function(spec.label(), |b| b.iter(|| black_box(run_storm(&spec))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spine_headline,
    bench_commands_sweep,
    bench_payload_sweep,
    bench_shard_sweep
);
criterion_main!(benches);
