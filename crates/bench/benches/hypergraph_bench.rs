//! Criterion benchmarks for hypergraph analysis (partition resistance is
//! combinatorial; these keep its cost visible).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eesmr_hypergraph::topology::ring_kcast;

fn bench_partition_resistance(c: &mut Criterion) {
    let h = ring_kcast(12, 3);
    c.bench_function("partition_resistant_n12_f2", |b| {
        b.iter(|| black_box(&h).is_partition_resistant(2))
    });
}

fn bench_diameter(c: &mut Criterion) {
    let h = ring_kcast(64, 4);
    c.bench_function("diameter_n64_k4", |b| b.iter(|| black_box(&h).diameter()));
}

criterion_group!(benches, bench_partition_resistance, bench_diameter);
criterion_main!(benches);
