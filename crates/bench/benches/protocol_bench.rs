//! Criterion benchmarks of full protocol runs in the simulator — how fast
//! the reproduction executes one consensus unit (wall-clock), for each
//! protocol on the paper's testbed topology.

use criterion::{criterion_group, criterion_main, Criterion};
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn bench_block_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_10_blocks");
    group.sample_size(10);
    for (proto, name) in [
        (Protocol::Eesmr, "eesmr_n7_k3"),
        (Protocol::SyncHotStuff, "synchs_n7_k3"),
        (Protocol::OptSync, "optsync_n7_k3"),
        (Protocol::TrustedBaseline, "trusted_n7"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Scenario::new(proto, 7, 3).stop(StopWhen::Blocks(10)).run())
        });
    }
    group.finish();
}

fn bench_view_change(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_change");
    group.sample_size(10);
    group.bench_function("eesmr_n7_silent_leader", |b| {
        b.iter(|| {
            Scenario::new(Protocol::Eesmr, 7, 3)
                .faults(eesmr_sim::FaultPlan::silent_leader())
                .stop(StopWhen::ViewReached(2))
                .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_block_commit, bench_view_change);
criterion_main!(benches);
