//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation: it prints a human-readable table to stdout and
//! writes a CSV series under `target/experiments/` for plotting. See
//! EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File};
use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (`target/experiments/`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// A CSV series writer.
pub struct Csv {
    file: File,
    path: PathBuf,
}

impl Csv {
    /// Creates `target/experiments/<name>.csv` with the given header.
    pub fn create(name: &str, header: &[&str]) -> Csv {
        let path = out_dir().join(format!("{name}.csv"));
        let mut file = File::create(&path).expect("can create CSV");
        writeln!(file, "{}", header.join(",")).expect("can write header");
        Csv { file, path }
    }

    /// Appends one row.
    pub fn row(&mut self, values: &[String]) {
        writeln!(self.file, "{}", values.join(",")).expect("can write row");
    }

    /// Convenience for mixed display values.
    pub fn rowd(&mut self, values: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.row(&cells);
    }

    /// Where the series was written.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:<w$}")).collect();
    println!("{}", line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_rows() {
        let mut csv = Csv::create("selftest", &["a", "b"]);
        csv.row(&["1".into(), "2".into()]);
        csv.rowd(&[&3, &4.5]);
        let content = std::fs::read_to_string(csv.path()).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4.5\n");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["x", "longer"], &[vec!["1".into(), "2".into()]]);
    }
}
