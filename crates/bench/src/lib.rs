//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation: it prints a human-readable table to stdout and
//! writes a CSV series under the experiment output directory for
//! plotting. Scenario sweeps run through the parallel driver in
//! `eesmr-driver` (worker count via `EESMR_WORKERS`, smoke-test sizing
//! via `EESMR_QUICK=1`); this crate keeps the presentation layer — the
//! aligned-table printer and the [`Emit`] table+CSV sink the binaries
//! share. See EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

pub mod hotpath;

// The sinks live in `eesmr-driver` (its `SuiteReport` writes through
// them); re-exported here so the binaries and external callers keep the
// historical `eesmr_bench::{out_dir, Csv}` paths. `out_dir()` honors the
// `EESMR_OUT_DIR` override.
pub use eesmr_driver::sink::{out_dir, Csv};

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:<w$}")).collect();
    println!("{}", line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    }
}

/// The "print a table and write the CSV series" sink every binary ends
/// with, deduplicated: collect rows (display-formatted for the table,
/// raw for the CSV), then [`finish`](Emit::finish) prints the aligned
/// table, flushes the CSV, and reports where it was written.
pub struct Emit {
    title: String,
    table_headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: Csv,
}

impl Emit {
    /// A sink titled `title`, writing `<csv_name>.csv` with `csv_headers`
    /// and printing a table with `table_headers`. The two header sets may
    /// differ: tables show formatted values, series keep full precision.
    pub fn new(title: &str, csv_name: &str, table_headers: &[&str], csv_headers: &[&str]) -> Emit {
        Emit {
            title: title.to_string(),
            table_headers: table_headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            csv: Csv::create(csv_name, csv_headers),
        }
    }

    /// A sink whose table and CSV share one header set.
    pub fn new_uniform(title: &str, csv_name: &str, headers: &[&str]) -> Emit {
        Emit::new(title, csv_name, headers, headers)
    }

    /// Appends a row with separate table and CSV cells.
    pub fn row(&mut self, table_cells: Vec<String>, csv_cells: Vec<String>) {
        self.rows.push(table_cells);
        self.csv.row(&csv_cells);
    }

    /// Appends one row to both the table and the CSV.
    pub fn row_uniform(&mut self, cells: Vec<String>) {
        self.csv.row(&cells);
        self.rows.push(cells);
    }

    /// Prints the table and a `wrote <path>` line; returns the CSV path.
    pub fn finish(self) -> PathBuf {
        let headers: Vec<&str> = self.table_headers.iter().map(String::as_str).collect();
        print_table(&self.title, &headers, &self.rows);
        let path = self.csv.path().clone();
        println!("wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_rows() {
        let mut csv = Csv::create("selftest", &["a", "b"]);
        csv.row(&["1".into(), "2".into()]);
        csv.rowd(&[&3, &4.5]);
        let content = std::fs::read_to_string(csv.path()).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4.5\n");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["x", "longer"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn emit_writes_csv_and_table_rows() {
        let mut emit = Emit::new("t", "emit_selftest", &["Col"], &["col_raw"]);
        emit.row(vec!["1.0".into()], vec!["1.0000001".into()]);
        let mut uniform = Emit::new_uniform("u", "emit_selftest_uniform", &["x", "y"]);
        uniform.row_uniform(vec!["3".into(), "4".into()]);
        let path = emit.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "col_raw\n1.0000001\n");
        let content = std::fs::read_to_string(uniform.finish()).unwrap();
        assert_eq!(content, "x,y\n3,4\n");
    }
}
