//! The zero-copy message-spine hot-path harness: a broadcast storm whose
//! messages carry real protocol payloads ([`Block`]s full of
//! [`Command`]s), so every per-hop `msg.clone()` inside the simulator
//! exercises the [`Commands`](eesmr_core::Commands) spine.
//!
//! With the Arc spine (the default) a hop clone is a refcount bump;
//! with [`set_deep_clone_spine`] enabled each hop rebuilds every
//! command — the pre-change semantics, kept as a measurable baseline.
//! Both modes are observationally identical (asserted by
//! [`StormResult::fingerprint`] and the byte-identity proptest), so the
//! harness isolates allocation cost from behavior.
//!
//! Shared between `benches/hotpath.rs` (criterion profile) and the
//! `bench_trajectory` binary (the `BENCH_<short-sha>.json` emitter CI
//! gates on).

use std::time::Instant;

use eesmr_core::{set_deep_clone_spine, Block, Command};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{
    Actor, Context, Message, MetricsConfig, NetConfig, NodeId, ShardedNet, SimDuration, TraceLevel,
};

/// A flooded proposal: a block of commands plus a dedup key. Cloned by
/// the runtime once per receiver per hop — the spine's hot path.
#[derive(Debug, Clone)]
pub struct Prop {
    key: u64,
    block: Block,
}

impl Message for Prop {
    fn wire_size(&self) -> usize {
        16 + self.block.wire_size()
    }
    fn flood_key(&self) -> u64 {
        self.key
    }
}

/// A storm node: floods one proposal at start and a fresh one per
/// delivery wave until its budget is spent, like the sharding bench's
/// `Flooder` but with payload-bearing messages.
pub struct StormNode {
    id: u64,
    sent: u64,
    budget: u64,
    heard: u64,
    commands_heard: u64,
    template: Block,
}

impl Actor for StormNode {
    type Msg = Prop;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Context<'_, Prop, ()>) {
        self.sent += 1;
        ctx.flood(Prop { key: self.id << 32, block: self.template.clone() });
    }

    fn on_message(&mut self, _from: NodeId, msg: Prop, ctx: &mut Context<'_, Prop, ()>) {
        self.heard += 1;
        self.commands_heard += msg.block.payload_len() as u64;
        if self.sent < self.budget {
            self.sent += 1;
            ctx.flood(Prop { key: (self.id << 32) | self.sent, block: self.template.clone() });
        }
    }

    fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Prop, ()>) {}
}

/// One storm configuration cell.
#[derive(Debug, Clone, Copy)]
pub struct StormSpec {
    /// System size (number of nodes).
    pub n: usize,
    /// Ring k-cast fan-out.
    pub k: usize,
    /// Commands per proposal block.
    pub commands: usize,
    /// Bytes per command.
    pub payload_bytes: usize,
    /// Proposals each node floods before going quiet.
    pub budget: u64,
    /// Shard count for the sharded runtime.
    pub shards: usize,
    /// Run with the deep-clone (pre-Arc) spine semantics.
    pub deep_clone: bool,
    /// Structured-event trace level the runtime records at, so the
    /// trajectory can price tracing against the untraced hot path.
    pub trace: TraceLevel,
    /// Time-series sampling config, so the trajectory can price the
    /// `eesmr-metrics` gauge sampler against the unsampled hot path.
    pub metrics: MetricsConfig,
}

impl StormSpec {
    /// The acceptance-bar cell: an n = 128 broadcast storm with
    /// 16 commands per block.
    pub fn headline(deep_clone: bool) -> StormSpec {
        StormSpec {
            n: 128,
            k: 4,
            commands: 16,
            payload_bytes: 32,
            budget: 6,
            shards: 1,
            deep_clone,
            trace: TraceLevel::Off,
            metrics: MetricsConfig::off(),
        }
    }

    /// A short label naming the cell, e.g. `n128_c16_p32_s1_arc`
    /// (`_tr<level>` marks traced cells, `_m` metrics-sampled ones).
    pub fn label(&self) -> String {
        let mut label = format!(
            "n{}_c{}_p{}_s{}_{}",
            self.n,
            self.commands,
            self.payload_bytes,
            self.shards,
            if self.deep_clone { "deep" } else { "arc" }
        );
        if self.trace != TraceLevel::Off {
            label.push_str(&format!("_tr{}", self.trace.name()));
        }
        if self.metrics.enabled {
            label.push_str("_m");
        }
        label
    }
}

/// What one storm run produced: the throughput denominator plus a trace
/// fingerprint for the bit-identity assertions.
#[derive(Debug, Clone, Copy)]
pub struct StormResult {
    /// Simulator deliveries — the event count timing is normalized by.
    pub deliveries: u64,
    /// Sum of per-node messages heard.
    pub heard: u64,
    /// Sum of per-node commands received (payloads survived the hops).
    pub commands_heard: u64,
    /// Wall-clock seconds for the run (setup excluded).
    pub elapsed_secs: f64,
}

impl StormResult {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.deliveries as f64 / self.elapsed_secs
    }

    /// The behavioral trace fingerprint: everything except timing.
    /// Equal fingerprints across spine modes / shard counts mean the
    /// runs were observationally identical.
    pub fn fingerprint(&self) -> (u64, u64, u64) {
        (self.deliveries, self.heard, self.commands_heard)
    }
}

/// Runs one storm cell and measures it. The deep-clone flag is global;
/// it is restored to the Arc default before returning.
pub fn run_storm(spec: &StormSpec) -> StormResult {
    let payload: Vec<Command> =
        (0..spec.commands).map(|i| Command::synthetic(i as u64, spec.payload_bytes)).collect();
    let template = Block::extending(&Block::genesis(), 1, 1, payload);
    let actors = (0..spec.n)
        .map(|id| StormNode {
            id: id as u64,
            sent: 0,
            budget: spec.budget,
            heard: 0,
            commands_heard: 0,
            template: template.clone(),
        })
        .collect::<Vec<_>>();
    let mut cfg = NetConfig::ble(ring_kcast(spec.n, spec.k), 7);
    cfg.trace = spec.trace;
    cfg.metrics = spec.metrics;
    set_deep_clone_spine(spec.deep_clone);
    let mut net = ShardedNet::new(cfg, actors, spec.shards);
    let started = Instant::now();
    net.run_for(SimDuration::from_millis(10_000));
    let elapsed_secs = started.elapsed().as_secs_f64();
    set_deep_clone_spine(false);
    let (mut heard, mut commands_heard) = (0u64, 0u64);
    for id in 0..spec.n as NodeId {
        heard += net.actor(id).heard;
        commands_heard += net.actor(id).commands_heard;
    }
    StormResult { deliveries: net.stats().deliveries, heard, commands_heard, elapsed_secs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_mode_shard_and_trace_invariant() {
        let base = StormSpec {
            n: 12,
            k: 3,
            commands: 4,
            payload_bytes: 16,
            budget: 3,
            shards: 1,
            deep_clone: false,
            trace: TraceLevel::Off,
            metrics: MetricsConfig::off(),
        };
        let arc = run_storm(&base);
        let deep = run_storm(&StormSpec { deep_clone: true, ..base });
        let sharded = run_storm(&StormSpec { shards: 2, ..base });
        let traced = run_storm(&StormSpec { trace: TraceLevel::All, ..base });
        let sampled = run_storm(&StormSpec { metrics: MetricsConfig::on(), ..base });
        assert_eq!(arc.fingerprint(), deep.fingerprint(), "spine mode changed behavior");
        assert_eq!(arc.fingerprint(), sharded.fingerprint(), "sharding changed behavior");
        assert_eq!(arc.fingerprint(), traced.fingerprint(), "tracing changed behavior");
        assert_eq!(arc.fingerprint(), sampled.fingerprint(), "metrics sampling changed behavior");
        assert!(arc.deliveries > 0, "the storm actually ran");
        assert!(arc.commands_heard >= 4 * arc.heard, "payloads survived the hops");
        let traced_spec = StormSpec { trace: TraceLevel::All, ..base };
        assert!(traced_spec.label().ends_with("_trall"), "{}", traced_spec.label());
        let sampled_spec = StormSpec { metrics: MetricsConfig::on(), ..base };
        assert!(sampled_spec.label().ends_with("_m"), "{}", sampled_spec.label());
    }
}
