//! Checks the paper's **headline claims** end to end:
//!
//! * §5.7: Sync HotStuff is ≈2.85× more energy-hungry than EESMR with a
//!   correct leader, and EESMR's view change costs ≈2.05× Sync HotStuff's.
//! * Conclusion: 33–64 % steady-state energy reduction vs Sync HotStuff
//!   (the 64 % figure is the n = 10 BLE setting from the abstract).

use eesmr_bench::Csv;
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

fn main() {
    let mut csv = Csv::create("headline", &["metric", "paper", "measured"]);

    // Steady state, n = 13, k = f+1 = 7 (the Fig. 3 midpoint the §5.7
    // prose quotes).
    let f = 6usize;
    let silent: Vec<u32> = (2u32..2 + f as u32).collect();
    let eesmr = Scenario::new(Protocol::Eesmr, 13, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_nodes(silent.clone()))
        .stop(StopWhen::Blocks(15))
        .run();
    let synchs = Scenario::new(Protocol::SyncHotStuff, 13, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_nodes(silent))
        .stop(StopWhen::Blocks(15))
        .run();
    let steady_ratio = synchs.node_energy_per_block_mj(0) / eesmr.node_energy_per_block_mj(0);
    println!(
        "steady state (leader, n=13, f=6): SyncHS / EESMR = {steady_ratio:.2}x (paper: 2.85x)"
    );
    csv.rowd(&[&"steady_state_leader_ratio", &"2.85", &format!("{steady_ratio:.3}")]);

    // View change ratio (EESMR / SyncHS — EESMR is the more expensive one).
    let e_vc = Scenario::new(Protocol::Eesmr, 13, 7)
        .fault_bound(6)
        .faults(FaultPlan::silent_leader())
        .with_paper_optimizations()
        .stop(StopWhen::ViewReached(2))
        .run()
        .node_energy_mj(1);
    let s_vc = Scenario::new(Protocol::SyncHotStuff, 13, 7)
        .fault_bound(6)
        .faults(FaultPlan::silent_leader())
        .stop(StopWhen::ViewReached(2))
        .run()
        .node_energy_mj(1);
    let vc_ratio = e_vc / s_vc;
    println!("view change (new leader):         EESMR / SyncHS = {vc_ratio:.2}x (paper: 2.05x)");
    csv.rowd(&[&"view_change_leader_ratio", &"2.05", &format!("{vc_ratio:.3}")]);

    // Savings across the Fig. 2f range (total correct-node energy/SMR).
    let mut min_saving = f64::MAX;
    let mut max_saving: f64 = 0.0;
    for n in 4..=10usize {
        for k in [3usize, 5] {
            if k >= n {
                continue;
            }
            let e = Scenario::new(Protocol::Eesmr, n, k).stop(StopWhen::Blocks(15)).run();
            let s = Scenario::new(Protocol::SyncHotStuff, n, k).stop(StopWhen::Blocks(15)).run();
            let saving = 1.0 - e.energy_per_block_mj() / s.energy_per_block_mj();
            min_saving = min_saving.min(saving);
            max_saving = max_saving.max(saving);
        }
    }
    println!(
        "steady-state savings vs SyncHS over n=4..10: {:.0}%..{:.0}% (paper: 33-64%)",
        min_saving * 100.0,
        max_saving * 100.0
    );
    csv.rowd(&[
        &"steady_state_savings_range_pct",
        &"33-64",
        &format!("{:.1}-{:.1}", min_saving * 100.0, max_saving * 100.0),
    ]);
    println!("wrote {}", csv.path().display());
}
