//! Checks the paper's **headline claims** end to end:
//!
//! * §5.7: Sync HotStuff is ≈2.85× more energy-hungry than EESMR with a
//!   correct leader, and EESMR's view change costs ≈2.05× Sync HotStuff's.
//! * Conclusion: 33–64 % steady-state energy reduction vs Sync HotStuff
//!   (the 64 % figure is the n = 10 BLE setting from the abstract).
//!
//! All scenarios run through the `eesmr-driver` grid: the ratio pairs as
//! explicit scenarios, the savings range as a cartesian sweep — so
//! `EESMR_WORKERS` parallelises the whole binary and `EESMR_QUICK=1`
//! shrinks it to smoke size. Measured-vs-paper context lives in the
//! README's "Known deviations" subsection.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_energy::EnergyClass;
use eesmr_net::{MetricsConfig, TraceClass, TraceLevel};
use eesmr_sim::{ArrivalProcess, FaultPlan, Protocol, Scenario, StopWhen, Workload};

fn main() {
    let mut csv = Csv::create("headline", &["metric", "paper", "measured"]);
    let driver = Driver::from_env();

    // Steady state, n = 13, k = f+1 = 7 (the Fig. 3 midpoint the §5.7
    // prose quotes), plus the view-change pair — four explicit scenarios
    // on one grid.
    let f = 6usize;
    let silent: Vec<u32> = (2u32..2 + f as u32).collect();
    let steady = |protocol| {
        Scenario::new(protocol, 13, f + 1)
            .fault_bound(f)
            .faults(FaultPlan::silent_nodes(silent.clone()))
            .stop(StopWhen::Blocks(15))
    };
    let vc = |protocol| {
        Scenario::new(protocol, 13, 7)
            .fault_bound(6)
            .faults(FaultPlan::silent_leader())
            .stop(StopWhen::ViewReached(2))
    };
    let grid = ScenarioGrid::named("headline")
        .scenario("steady-eesmr", steady(Protocol::Eesmr))
        .scenario("steady-synchs", steady(Protocol::SyncHotStuff))
        .scenario("vc-eesmr", vc(Protocol::Eesmr).with_paper_optimizations())
        .scenario("vc-synchs", vc(Protocol::SyncHotStuff));
    let suite = driver.run_grid(&grid);
    let leader_per_block = |label: &str| {
        suite.by_label(label).expect("explicit cell ran").report().node_energy_per_block_mj(0)
    };

    let steady_ratio = leader_per_block("steady-synchs") / leader_per_block("steady-eesmr");
    println!(
        "steady state (leader, n=13, f=6): SyncHS / EESMR = {steady_ratio:.2}x (paper: 2.85x)"
    );
    csv.rowd(&[&"steady_state_leader_ratio", &"2.85", &format!("{steady_ratio:.3}")]);

    // View change ratio (EESMR / SyncHS — EESMR is the more expensive
    // one). Node 1 is the new leader after the silent leader is blamed.
    let vc_energy =
        |label: &str| suite.by_label(label).expect("explicit cell ran").report().node_energy_mj(1);
    let vc_ratio = vc_energy("vc-eesmr") / vc_energy("vc-synchs");
    println!("view change (new leader):         EESMR / SyncHS = {vc_ratio:.2}x (paper: 2.05x)");
    csv.rowd(&[&"view_change_leader_ratio", &"2.05", &format!("{vc_ratio:.3}")]);

    // Savings across the Fig. 2f range (total correct-node energy/SMR):
    // a plain cartesian sweep, invalid (n, k) cells skipped by the grid.
    let sweep = ScenarioGrid::named("headline_savings")
        .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
        .nodes(4..=10)
        .degrees([3, 5])
        .stop(StopWhen::Blocks(15));
    let sweep_suite = driver.run_grid(&sweep);
    let mut min_saving = f64::MAX;
    let mut max_saving: f64 = 0.0;
    for cell in &sweep_suite.cells {
        if cell.key.protocol != Protocol::Eesmr {
            continue;
        }
        let synchs = sweep_suite
            .find(|c| {
                c.protocol == Protocol::SyncHotStuff && c.n == cell.key.n && c.k == cell.key.k
            })
            .expect("matching Sync HotStuff cell");
        let saving =
            1.0 - cell.stats.energy_per_block_mj.mean / synchs.stats.energy_per_block_mj.mean;
        min_saving = min_saving.min(saving);
        max_saving = max_saving.max(saving);
    }
    println!(
        "steady-state savings vs SyncHS over n=4..10: {:.0}%..{:.0}% (paper: 33-64%)",
        min_saving * 100.0,
        max_saving * 100.0
    );
    csv.rowd(&[
        &"steady_state_savings_range_pct",
        &"33-64",
        &format!("{:.1}-{:.1}", min_saving * 100.0, max_saving * 100.0),
    ]);
    println!("wrote {}", csv.path().display());

    // With EESMR_TRACE=commit (or higher) set, also trace a small
    // workload run and print the per-hop breakdown of its first
    // committed transaction (exported to EESMR_TRACE_OUT when set).
    let trace = TraceLevel::from_env();
    if trace.enables(TraceClass::Commit) {
        let w = Workload::new(ArrivalProcess::Poisson { rate: 2_000 });
        let (report, traces) = Scenario::new(Protocol::Eesmr, 5, 2)
            .workload(w)
            .trace(trace)
            .metrics(MetricsConfig::from_env())
            .stop(StopWhen::Blocks(5))
            .run_traced();
        println!(
            "\ntraced workload run ({}): {} events, {} dropped",
            trace.name(),
            traces.total_events(),
            traces.total_dropped()
        );
        if report.trace_dropped_total() > 0 {
            eprintln!(
                "WARNING: {} trace events were dropped by full per-node rings; \
                 lower the trace level or widen the ring to keep full coverage",
                report.trace_dropped_total()
            );
        }
        match &report.commit_path {
            Some(path) => print!("{}", path.render()),
            None => println!("no committed workload transaction to trace"),
        }
        print_energy_by_class(&report);
    }
}

/// The §5.7-style per-node energy breakdown: every mJ the attribution
/// ledger tagged by [`EnergyClass`], one row per node. Each row's class
/// cells sum to the node's meter total to the µJ (the determinism suite
/// pins this), so the table is an exact decomposition, not an estimate.
fn print_energy_by_class(report: &eesmr_sim::RunReport) {
    if report.energy_attr.iter().all(|attr| attr.is_empty()) {
        return;
    }
    let mut headers: Vec<String> = vec!["node".into()];
    headers.extend(EnergyClass::ALL.iter().map(|c| format!("{} (mJ)", c.as_str())));
    headers.push("total (mJ)".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = report
        .nodes
        .iter()
        .filter_map(|node| {
            let attr = report.energy_attr.get(node.id as usize)?;
            let mut row = vec![format!("{}", node.id)];
            row.extend(EnergyClass::ALL.iter().map(|&c| format!("{:.3}", attr.class_mj(c))));
            row.push(format!("{:.3}", node.energy.total_mj()));
            Some(row)
        })
        .collect();
    print_table("per-node energy by class (§5.7 breakdown)", &header_refs, &rows);
}
