//! Regenerates **Fig. 2f**: total energy consumed by the correct nodes per
//! SMR in EESMR vs Sync HotStuff, for k ∈ {3, 5} and n ∈ 4..9.

use eesmr_bench::{print_table, Csv};
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn total_per_smr(protocol: Protocol, n: usize, k: usize) -> f64 {
    Scenario::new(protocol, n, k).payload(16).stop(StopWhen::Blocks(20)).run().energy_per_block_mj()
}

fn main() {
    let mut csv = Csv::create("fig2f_total_energy", &["n", "k", "eesmr_mj", "synchs_mj"]);
    let mut rows = Vec::new();
    for n in 4..=9usize {
        for k in [3usize, 5] {
            if k >= n {
                continue; // ring k-cast needs k < n
            }
            let e = total_per_smr(Protocol::Eesmr, n, k);
            let s = total_per_smr(Protocol::SyncHotStuff, n, k);
            csv.rowd(&[&n, &k, &e, &s]);
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                format!("{e:.0}"),
                format!("{s:.0}"),
                format!("{:.2}x", s / e),
            ]);
        }
    }
    print_table(
        "Fig. 2f: total correct-node energy per SMR (mJ)",
        &["n", "k", "EESMR", "Sync HotStuff", "SyncHS/EESMR"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
