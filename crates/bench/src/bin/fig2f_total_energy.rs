//! Regenerates **Fig. 2f**: total energy consumed by the correct nodes per
//! SMR in EESMR vs Sync HotStuff, for k ∈ {3, 5} and n ∈ 4..9. The
//! 2 × 6 × 2 sweep runs as one grid on the parallel driver.

use eesmr_bench::Emit;
use eesmr_driver::{progress, Driver, ScenarioGrid};
use eesmr_sim::{Protocol, StopWhen};

fn main() {
    let grid = ScenarioGrid::named("fig2f_total_energy")
        .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
        .nodes(4..=9)
        .degrees([3, 5])
        .stop(StopWhen::Blocks(20));
    let suite = Driver::from_env().run_grid_with_progress(&grid, progress::stderr_status());

    let mut emit = Emit::new(
        "Fig. 2f: total correct-node energy per SMR (mJ)",
        "fig2f_total_energy",
        &["n", "k", "EESMR", "Sync HotStuff", "SyncHS/EESMR"],
        &["n", "k", "eesmr_mj", "synchs_mj"],
    );
    for n in 4..=9usize {
        for k in [3usize, 5] {
            if k >= n {
                continue; // ring k-cast needs k < n (skipped by the grid too)
            }
            let per_smr = |protocol| {
                suite
                    .find(|c| c.protocol == protocol && c.n == n && c.k == k)
                    .expect("cell on the grid")
                    .stats
                    .energy_per_block_mj
                    .mean
            };
            let e = per_smr(Protocol::Eesmr);
            let s = per_smr(Protocol::SyncHotStuff);
            emit.row(
                vec![
                    n.to_string(),
                    k.to_string(),
                    format!("{e:.0}"),
                    format!("{s:.0}"),
                    format!("{:.2}x", s / e),
                ],
                vec![n.to_string(), k.to_string(), e.to_string(), s.to_string()],
            );
        }
    }
    emit.finish();
    let paths = suite.write();
    println!("wrote {} and {}", paths.csv.display(), paths.json.display());
}
