//! Ablation: the energy cost of the k-cast reliability target (the paper
//! fixes 99.99 %; §5.4 notes applications may need more).
//!
//! The sweep is closed-form (no scenarios), but it runs through the
//! `eesmr-driver` pool like every other figure: `EESMR_WORKERS`
//! parallelises the (k, target) points and `EESMR_QUICK=1` shrinks the
//! target list to smoke size.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::Driver;
use eesmr_energy::BleKcastModel;

fn main() {
    let driver = Driver::from_env();
    let targets: &[f64] = if driver.config().quick_mode {
        &[0.99, 0.9999]
    } else {
        &[0.99, 0.999, 0.9999, 0.99999, 0.999999]
    };
    let points: Vec<(usize, f64)> =
        [3usize, 7].iter().flat_map(|&k| targets.iter().map(move |&t| (k, t))).collect();

    let model = BleKcastModel::default();
    let rows_raw = driver.map(&points, |&(k, t)| {
        let r = model.redundancy_for(k, t);
        (k, t, r, model.kcast_send_mj(25, r))
    });

    let mut csv =
        Csv::create("ablation_reliability", &["k", "reliability", "redundancy", "sender_mj_25b"]);
    let mut rows = Vec::new();
    for (k, t, r, mj) in rows_raw {
        csv.rowd(&[&k, &t, &r, &mj]);
        rows.push(vec![
            k.to_string(),
            format!("{:.4}%", t * 100.0),
            r.to_string(),
            format!("{mj:.2}"),
        ]);
    }
    print_table(
        "Ablation: redundancy & sender energy per 25 B k-cast vs reliability target",
        &["k", "Reliability", "Redundancy", "Sender mJ"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
