//! Ablation: the energy cost of the k-cast reliability target (the paper
//! fixes 99.99 %; §5.4 notes applications may need more).

use eesmr_bench::{print_table, Csv};
use eesmr_energy::BleKcastModel;

fn main() {
    let model = BleKcastModel::default();
    let targets = [0.99, 0.999, 0.9999, 0.99999, 0.999999];
    let mut csv =
        Csv::create("ablation_reliability", &["k", "reliability", "redundancy", "sender_mj_25b"]);
    let mut rows = Vec::new();
    for k in [3usize, 7] {
        for &t in &targets {
            let r = model.redundancy_for(k, t);
            let mj = model.kcast_send_mj(25, r);
            csv.rowd(&[&k, &t, &r, &mj]);
            rows.push(vec![
                k.to_string(),
                format!("{:.4}%", t * 100.0),
                r.to_string(),
                format!("{mj:.2}"),
            ]);
        }
    }
    print_table(
        "Ablation: redundancy & sender energy per 25 B k-cast vs reliability target",
        &["k", "Reliability", "Redundancy", "Sender mJ"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
