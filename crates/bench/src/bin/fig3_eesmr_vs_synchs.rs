//! Regenerates **Fig. 3**: leader energy in EESMR vs Sync HotStuff to
//! tolerate f Byzantine faults in an n = 13 system (k = f + 1), for both
//! the honest-leader (per-SMR) and faulty-leader (per view change) cases.

use eesmr_bench::{print_table, Csv};
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

const N: usize = 13;

/// Honest SMR: leader correct, f mid-ring nodes silent (away from the
/// leader's in-neighbourhood so the leader still receives relays); energy
/// per block at the leader.
fn honest_leader_mj(protocol: Protocol, f: usize) -> f64 {
    let silent = (2u32..2 + f as u32).collect::<Vec<_>>();
    Scenario::new(protocol, N, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_nodes(silent))
        .payload(16)
        .stop(StopWhen::Blocks(15))
        .run()
        .node_energy_per_block_mj(0)
}

/// View change: view-1 leader silent; energy at the incoming leader for
/// the whole change.
fn vc_leader_mj(protocol: Protocol, f: usize) -> f64 {
    let mut scenario = Scenario::new(protocol, N, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_leader())
        .payload(16)
        .stop(StopWhen::ViewReached(2));
    if protocol == Protocol::Eesmr {
        scenario = scenario.with_paper_optimizations();
    }
    scenario.run().node_energy_mj(1)
}

fn main() {
    let mut csv = Csv::create(
        "fig3_eesmr_vs_synchs",
        &["f", "k", "eesmr_honest_mj", "synchs_honest_mj", "eesmr_vc_mj", "synchs_vc_mj"],
    );
    let mut rows = Vec::new();
    for f in 1..=6usize {
        let eh = honest_leader_mj(Protocol::Eesmr, f);
        let sh = honest_leader_mj(Protocol::SyncHotStuff, f);
        let ev = vc_leader_mj(Protocol::Eesmr, f);
        let sv = vc_leader_mj(Protocol::SyncHotStuff, f);
        csv.rowd(&[&f, &(f + 1), &eh, &sh, &ev, &sv]);
        rows.push(vec![
            f.to_string(),
            (f + 1).to_string(),
            format!("{eh:.0}"),
            format!("{sh:.0}"),
            format!("{ev:.0}"),
            format!("{sv:.0}"),
        ]);
    }
    print_table(
        "Fig. 3: leader energy, n=13 (mJ)",
        &["f", "k", "EESMR honest SMR", "SyncHS honest SMR", "EESMR VC", "SyncHS VC"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
