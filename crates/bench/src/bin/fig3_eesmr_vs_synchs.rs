//! Regenerates **Fig. 3**: leader energy in EESMR vs Sync HotStuff to
//! tolerate f Byzantine faults in an n = 13 system (k = f + 1), for both
//! the honest-leader (per-SMR) and faulty-leader (per view change) cases.
//! The 24 scenarios are declared as an explicit list on one grid and run
//! in parallel.

use eesmr_bench::Emit;
use eesmr_driver::{progress, Driver, ScenarioGrid, SuiteReport};
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

const N: usize = 13;

/// Honest SMR: leader correct, f mid-ring nodes silent (away from the
/// leader's in-neighbourhood so the leader still receives relays); energy
/// per block is read at the leader.
fn honest_scenario(protocol: Protocol, f: usize) -> Scenario {
    let silent = (2u32..2 + f as u32).collect::<Vec<_>>();
    Scenario::new(protocol, N, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_nodes(silent))
        .payload(16)
        .stop(StopWhen::Blocks(15))
}

/// View change: view-1 leader silent; energy is read at the incoming
/// leader for the whole change.
fn vc_scenario(protocol: Protocol, f: usize) -> Scenario {
    let mut scenario = Scenario::new(protocol, N, f + 1)
        .fault_bound(f)
        .faults(FaultPlan::silent_leader())
        .payload(16)
        .stop(StopWhen::ViewReached(2));
    if protocol == Protocol::Eesmr {
        scenario = scenario.with_paper_optimizations();
    }
    scenario
}

fn label(case: &str, protocol: Protocol, f: usize) -> String {
    format!("{case}/{}/f={f}", protocol.name())
}

fn honest_leader_mj(suite: &SuiteReport, protocol: Protocol, f: usize) -> f64 {
    suite
        .by_label(&label("honest", protocol, f))
        .expect("honest cell")
        .report()
        .node_energy_per_block_mj(0)
}

fn vc_leader_mj(suite: &SuiteReport, protocol: Protocol, f: usize) -> f64 {
    suite.by_label(&label("vc", protocol, f)).expect("vc cell").report().node_energy_mj(1)
}

fn main() {
    let mut grid = ScenarioGrid::named("fig3_eesmr_vs_synchs");
    for f in 1..=6usize {
        for protocol in [Protocol::Eesmr, Protocol::SyncHotStuff] {
            grid = grid
                .scenario(label("honest", protocol, f), honest_scenario(protocol, f))
                .scenario(label("vc", protocol, f), vc_scenario(protocol, f));
        }
    }
    let suite = Driver::from_env().run_grid_with_progress(&grid, progress::stderr_status());

    let mut emit = Emit::new(
        "Fig. 3: leader energy, n=13 (mJ)",
        "fig3_eesmr_vs_synchs",
        &["f", "k", "EESMR honest SMR", "SyncHS honest SMR", "EESMR VC", "SyncHS VC"],
        &["f", "k", "eesmr_honest_mj", "synchs_honest_mj", "eesmr_vc_mj", "synchs_vc_mj"],
    );
    for f in 1..=6usize {
        let eh = honest_leader_mj(&suite, Protocol::Eesmr, f);
        let sh = honest_leader_mj(&suite, Protocol::SyncHotStuff, f);
        let ev = vc_leader_mj(&suite, Protocol::Eesmr, f);
        let sv = vc_leader_mj(&suite, Protocol::SyncHotStuff, f);
        emit.row(
            vec![
                f.to_string(),
                (f + 1).to_string(),
                format!("{eh:.0}"),
                format!("{sh:.0}"),
                format!("{ev:.0}"),
                format!("{sv:.0}"),
            ],
            vec![
                f.to_string(),
                (f + 1).to_string(),
                eh.to_string(),
                sh.to_string(),
                ev.to_string(),
                sv.to_string(),
            ],
        );
    }
    emit.finish();
    let paths = suite.write();
    println!("wrote {} and {}", paths.csv.display(), paths.json.display());
}
