//! Ablation: vote-in-the-head vs explicit voting. EESMR's steady state
//! (implicit votes) against Sync HotStuff (explicit votes + certificates)
//! on identical topology/payload — isolating the paper's core design
//! choice.

use eesmr_bench::{print_table, Csv};
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn main() {
    let mut csv = Csv::create(
        "ablation_votes",
        &[
            "protocol",
            "signs_per_block",
            "verifies_per_block",
            "kcasts_per_block",
            "total_mj_per_block",
        ],
    );
    let mut rows = Vec::new();
    for (proto, label) in [
        (Protocol::Eesmr, "EESMR (implicit votes)"),
        (Protocol::SyncHotStuff, "Sync HotStuff (explicit votes)"),
        (Protocol::OptSync, "OptSync (explicit votes, fast path)"),
    ] {
        let report = Scenario::new(proto, 9, 3).stop(StopWhen::Blocks(20)).run();
        let blocks = report.committed_height().max(1) as f64;
        let signs: u64 = report.correct_nodes().map(|n| n.signs).sum();
        let verifies: u64 = report.correct_nodes().map(|n| n.verifies).sum();
        let kcasts = report.net.kcasts as f64 / blocks;
        let mj = report.energy_per_block_mj();
        csv.rowd(&[&label, &(signs as f64 / blocks), &(verifies as f64 / blocks), &kcasts, &mj]);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", signs as f64 / blocks),
            format!("{:.1}", verifies as f64 / blocks),
            format!("{kcasts:.1}"),
            format!("{mj:.0}"),
        ]);
    }
    print_table(
        "Ablation: implicit vs explicit voting (per committed block, n=9 k=3)",
        &["Protocol", "Signs", "Verifies", "k-casts", "Total mJ"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
