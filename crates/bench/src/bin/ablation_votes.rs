//! Ablation: vote-in-the-head vs explicit voting. EESMR's steady state
//! (implicit votes) against Sync HotStuff (explicit votes + certificates)
//! on identical topology/payload — isolating the paper's core design
//! choice. The protocol axis runs as one grid on the parallel driver
//! (`EESMR_WORKERS` for threads, `EESMR_QUICK=1` for smoke-test sizing).

use eesmr_bench::Emit;
use eesmr_driver::{progress, Driver, ScenarioGrid};
use eesmr_sim::{Protocol, StopWhen};

const PROTOCOLS: [(Protocol, &str); 3] = [
    (Protocol::Eesmr, "EESMR (implicit votes)"),
    (Protocol::SyncHotStuff, "Sync HotStuff (explicit votes)"),
    (Protocol::OptSync, "OptSync (explicit votes, fast path)"),
];

fn main() {
    let grid = ScenarioGrid::named("ablation_votes")
        .protocols(PROTOCOLS.map(|(proto, _)| proto))
        .nodes([9])
        .degrees([3])
        .stop(StopWhen::Blocks(20));
    let suite = Driver::from_env().run_grid_with_progress(&grid, progress::stderr_status());

    let mut emit = Emit::new(
        "Ablation: implicit vs explicit voting (per committed block, n=9 k=3)",
        "ablation_votes",
        &["Protocol", "Signs", "Verifies", "k-casts", "Total mJ"],
        &[
            "protocol",
            "signs_per_block",
            "verifies_per_block",
            "kcasts_per_block",
            "total_mj_per_block",
        ],
    );
    for (proto, label) in PROTOCOLS {
        let report = suite.find(|c| c.protocol == proto).expect("protocol on the grid").report();
        let blocks = report.committed_height().max(1) as f64;
        let signs: u64 = report.correct_nodes().map(|n| n.signs).sum();
        let verifies: u64 = report.correct_nodes().map(|n| n.verifies).sum();
        let kcasts = report.net.kcasts as f64 / blocks;
        let mj = report.energy_per_block_mj();
        emit.row(
            vec![
                label.to_string(),
                format!("{:.1}", signs as f64 / blocks),
                format!("{:.1}", verifies as f64 / blocks),
                format!("{kcasts:.1}"),
                format!("{mj:.0}"),
            ],
            vec![
                label.to_string(),
                (signs as f64 / blocks).to_string(),
                (verifies as f64 / blocks).to_string(),
                kcasts.to_string(),
                mj.to_string(),
            ],
        );
    }
    emit.finish();
    let paths = suite.write();
    println!("wrote {} and {}", paths.csv.display(), paths.json.display());
}
