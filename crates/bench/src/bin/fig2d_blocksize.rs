//! Regenerates **Fig. 2d**: EESMR leader energy per SMR for block payloads
//! of 16, 128 and 256 B, as a function of the k-cast degree k (n = 10).

use eesmr_bench::{print_table, Csv};
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn main() {
    let n = 10;
    let payloads = [16usize, 128, 256];
    let mut csv = Csv::create("fig2d_blocksize", &["k", "payload_bytes", "leader_mj_per_smr"]);
    let mut rows = Vec::new();
    for k in 2..=7usize {
        let mut row = vec![k.to_string()];
        for &payload in &payloads {
            let report = Scenario::new(Protocol::Eesmr, n, k)
                .payload(payload)
                .stop(StopWhen::Blocks(30))
                .run();
            let leader = report.node_energy_per_block_mj(0);
            csv.rowd(&[&k, &payload, &leader]);
            row.push(format!("{leader:.1}"));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 2d: EESMR leader energy per SMR by payload (mJ), n=10",
        &["k", "16 B", "128 B", "256 B"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
