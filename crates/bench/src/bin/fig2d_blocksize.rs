//! Regenerates **Fig. 2d**: EESMR leader energy per SMR for block payloads
//! of 16, 128 and 256 B, as a function of the k-cast degree k (n = 10) —
//! plus a batch-policy ablation the paper's fixed-`|b_i|` setup could not
//! run: fixed caps vs adaptive batching under offered load.
//!
//! Both sweeps run through the `eesmr-driver` grid, so `EESMR_WORKERS`
//! parallelises them and `EESMR_QUICK=1` shrinks them to smoke size.

use eesmr_bench::{print_table, Csv, Emit};
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_sim::{BatchPolicy, StopWhen};

fn main() {
    let n = 10;
    let payloads = [16usize, 128, 256];
    let ks = 2..=7usize;

    // The paper's sweep: payload × k at the default batch policy.
    let grid = ScenarioGrid::named("fig2d_blocksize")
        .nodes([n])
        .degrees(ks.clone())
        .payloads(payloads)
        .stop(StopWhen::Blocks(30));
    let suite = Driver::from_env().run_grid(&grid);

    let mut csv = Csv::create("fig2d_blocksize", &["k", "payload_bytes", "leader_mj_per_smr"]);
    let mut rows = Vec::new();
    for k in ks {
        let mut row = vec![k.to_string()];
        for &payload in &payloads {
            let cell = suite
                .find(|c| c.k == k && c.payload_bytes == payload)
                .expect("every (k, payload) cell ran");
            let leader = cell.report().node_energy_per_block_mj(0);
            csv.rowd(&[&k, &payload, &leader]);
            row.push(format!("{leader:.1}"));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 2d: EESMR leader energy per SMR by payload (mJ), n=10",
        &["k", "16 B", "128 B", "256 B"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
    suite.write();

    // Batch-policy ablation: under a 64-command offered load, how does
    // the proposer's sizing policy move the leader's cost per block?
    let policies = [
        BatchPolicy::Fixed(1),
        BatchPolicy::Fixed(16),
        BatchPolicy::Fixed(64),
        BatchPolicy::Adaptive { min: 1, max: 64, target_fill_pct: 50 },
        BatchPolicy::Adaptive { min: 1, max: 64, target_fill_pct: 100 },
    ];
    let grid = ScenarioGrid::named("fig2d_batch_policy")
        .nodes([n])
        .degrees([3])
        .batch_policies(policies)
        .configure(|s| s.offered_load(64))
        .stop(StopWhen::Blocks(30));
    let suite = Driver::from_env().run_grid(&grid);

    let mut emit = Emit::new(
        "Fig. 2d ablation: batch policy under 64-command offered load, n=10 k=3",
        "fig2d_batch_policy",
        &["policy", "leader mJ/SMR", "total mJ/SMR", "bytes on air"],
        &["policy", "leader_mj_per_smr", "total_mj_per_smr", "bytes_on_air"],
    );
    for cell in &suite.cells {
        let report = cell.report();
        emit.row_uniform(vec![
            cell.key.batch.label(),
            format!("{:.1}", report.node_energy_per_block_mj(0)),
            format!("{:.1}", report.energy_per_block_mj()),
            report.net.bytes_on_air.to_string(),
        ]);
    }
    emit.finish();
    suite.write();
}
