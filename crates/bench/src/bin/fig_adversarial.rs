//! **Adversarial sweep**: every [`FaultSpec`] axis value × every
//! protocol, each cell run with commit-level tracing and replayed
//! through the trace auditor. The sweep demonstrates the full fault
//! model — vote withholding, selective link drops, duplicate storms,
//! healing partitions, node churn, and crash-recovery with log repair —
//! and the auditor proves every cell upheld safety (no forks, no height
//! rewinds) and liveness (every honest node commits after the last
//! fault heals). Any violation fails the process, so CI can gate on it.
//!
//! `EESMR_WORKERS` parallelises the sweep through the shared driver
//! pool; `EESMR_QUICK=1` shrinks the block targets to smoke size.

use std::collections::BTreeSet;

use eesmr_bench::Emit;
use eesmr_driver::{CellResult, CellStats, Driver, ScenarioGrid, SuiteReport};
use eesmr_sim::{FaultSpec, Protocol, RunReport, StopWhen};
use eesmr_trace::audit::{audit, AuditConfig, AuditReport};
use eesmr_trace::TraceLevel;

fn main() {
    let n = 6;
    let quick = std::env::var("EESMR_QUICK").map(|v| v == "1").unwrap_or(false);
    let blocks = if quick { 4 } else { 12 };

    let grid = ScenarioGrid::named("fig_adversarial")
        .protocols([
            Protocol::Eesmr,
            Protocol::SyncHotStuff,
            Protocol::OptSync,
            Protocol::TrustedBaseline,
        ])
        .nodes([n])
        .degrees([3])
        .faults(FaultSpec::ALL)
        .stop(StopWhen::Blocks(blocks));
    let cells = grid.build();

    // The driver pool only keeps reports; the auditor needs the traces,
    // so each cell is run here (traced) and audited on the worker that
    // ran it — `Driver::map` still gives ordered parallel execution.
    let driver = Driver::from_env();
    let results: Vec<(RunReport, AuditReport)> = driver.map(&cells, |cell| {
        let scenario = cell.scenario.clone().trace(TraceLevel::Commit);
        let (report, traces) = scenario.run_traced();

        let key = cell.scenario.cell();
        let plan = key.fault.plan(key.n, report.delta_us);
        let excused = |id: u32| {
            if key.protocol == Protocol::TrustedBaseline {
                plan.tb_is_excused(id)
            } else {
                plan.is_excused(id)
            }
        };
        let honest: BTreeSet<u32> = (0..key.n as u32).filter(|&id| !excused(id)).collect();

        let heal_us = plan.heal_time_us();
        // The stop predicate halts the run the instant the last lagging
        // node catches up — for crash-recovery that is the heal instant
        // itself (the restarted node repairs its whole log at once), so
        // honest peers' final commits legitimately sit a few pipeline
        // latencies before the heal. Open the window that much early.
        let grace_us = 5 * report.delta_us;
        let config = if heal_us == u64::MAX {
            // A fault that never heals bounds nothing; safety still holds.
            AuditConfig::safety_only()
        } else if heal_us >= report.elapsed_us {
            // The run hit its targets before the schedule's nominal heal
            // point (quick mode): still demand every honest node
            // committed at some point during the run.
            AuditConfig::new(honest, 0, report.elapsed_us)
        } else {
            AuditConfig::new(honest, heal_us.saturating_sub(grace_us), report.elapsed_us)
        };
        (report, audit(&traces, &config))
    });

    let mut emit = Emit::new(
        "Adversarial sweep: fault axis x protocol, every cell trace-audited, n=6 k=3",
        "fig_adversarial",
        &["protocol", "fault", "height", "VCs", "net drops", "commits", "audit"],
        &[
            "protocol",
            "fault",
            "committed_height",
            "view_changes",
            "net_dropped",
            "trace_commits",
            "violations",
        ],
    );
    let mut suite_cells = Vec::with_capacity(cells.len());
    let mut violations: Vec<String> = Vec::new();
    for (cell, (report, verdict)) in cells.iter().zip(&results) {
        let fault = cell.scenario.cell().fault.label();
        emit.row(
            vec![
                report.protocol.to_string(),
                fault.to_string(),
                report.committed_height().to_string(),
                report.view_changes().to_string(),
                report.net.dropped.to_string(),
                verdict.commits.to_string(),
                if verdict.is_clean() {
                    "clean".into()
                } else {
                    format!("{} VIOLATION(S)", verdict.violations.len())
                },
            ],
            vec![
                report.protocol.to_string(),
                fault.to_string(),
                report.committed_height().to_string(),
                report.view_changes().to_string(),
                report.net.dropped.to_string(),
                verdict.commits.to_string(),
                verdict.violations.len().to_string(),
            ],
        );
        for v in &verdict.violations {
            violations.push(format!("{} fault={fault}: {v}", report.protocol));
        }
        suite_cells.push(CellResult {
            label: cell.label.clone(),
            key: cell.scenario.cell(),
            stats: CellStats::from_runs(std::slice::from_ref(report)),
            runs: vec![report.clone()],
        });
    }
    emit.finish();

    let suite = SuiteReport { name: grid.name().to_string(), cells: suite_cells };
    let paths = suite.write();
    println!("wrote {}", paths.json.display());

    if !violations.is_empty() {
        eprintln!("trace audit failed: {} violation(s)", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("trace audit: all {} cells clean", results.len());
}
