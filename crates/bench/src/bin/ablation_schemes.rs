//! Ablation: EESMR energy per SMR under different signature schemes
//! (design choice in §5.5 — RSA-1024's cheap verification suits the
//! one-signer/many-verifiers pattern). The scheme axis runs as one grid
//! on the parallel driver.

use eesmr_bench::Emit;
use eesmr_crypto::SigScheme;
use eesmr_driver::{progress, Driver, ScenarioGrid};
use eesmr_sim::StopWhen;

const SCHEMES: [SigScheme; 6] = [
    SigScheme::Rsa1024,
    SigScheme::Rsa2048,
    SigScheme::EcdsaSecp192R1,
    SigScheme::EcdsaSecp256K1,
    SigScheme::EcdsaBp160R1,
    SigScheme::Hmac,
];

fn main() {
    let grid = ScenarioGrid::named("ablation_schemes")
        .nodes([10])
        .degrees([3])
        .schemes(SCHEMES)
        .stop(StopWhen::Blocks(20));
    let suite = Driver::from_env().run_grid_with_progress(&grid, progress::stderr_status());

    let mut emit = Emit::new(
        "Ablation: EESMR energy per SMR by signature scheme (mJ), n=10 k=3",
        "ablation_schemes",
        &["Scheme", "Leader", "Replica (avg)"],
        &["scheme", "leader_mj_per_smr", "replica_mj_per_smr"],
    );
    for scheme in SCHEMES {
        let report = suite.find(|c| c.scheme == scheme).expect("scheme on the grid").report();
        let leader = report.node_energy_per_block_mj(0);
        let replica: f64 = (1..10).map(|id| report.node_energy_per_block_mj(id)).sum::<f64>() / 9.0;
        emit.row(
            vec![scheme.name().to_string(), format!("{leader:.0}"), format!("{replica:.0}")],
            vec![scheme.name().to_string(), leader.to_string(), replica.to_string()],
        );
    }
    emit.finish();
    let paths = suite.write();
    println!("wrote {} and {}", paths.csv.display(), paths.json.display());
}
