//! Ablation: EESMR energy per SMR under different signature schemes
//! (design choice in §5.5 — RSA-1024's cheap verification suits the
//! one-signer/many-verifiers pattern).

use eesmr_bench::{print_table, Csv};
use eesmr_crypto::SigScheme;
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn main() {
    let schemes = [
        SigScheme::Rsa1024,
        SigScheme::Rsa2048,
        SigScheme::EcdsaSecp192R1,
        SigScheme::EcdsaSecp256K1,
        SigScheme::EcdsaBp160R1,
        SigScheme::Hmac,
    ];
    let mut csv =
        Csv::create("ablation_schemes", &["scheme", "leader_mj_per_smr", "replica_mj_per_smr"]);
    let mut rows = Vec::new();
    for scheme in schemes {
        let report =
            Scenario::new(Protocol::Eesmr, 10, 3).scheme(scheme).stop(StopWhen::Blocks(20)).run();
        let leader = report.node_energy_per_block_mj(0);
        let replica: f64 = (1..10).map(|id| report.node_energy_per_block_mj(id)).sum::<f64>() / 9.0;
        csv.rowd(&[&scheme.name(), &leader, &replica]);
        rows.push(vec![scheme.name().to_string(), format!("{leader:.0}"), format!("{replica:.0}")]);
    }
    print_table(
        "Ablation: EESMR energy per SMR by signature scheme (mJ), n=10 k=3",
        &["Scheme", "Leader", "Replica (avg)"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
