//! Runs every table/figure regeneration binary by invoking the sibling
//! binaries through the parallel driver's worker pool (`EESMR_WORKERS`
//! children at a time; children inherit `EESMR_QUICK` / `EESMR_OUT_DIR`,
//! and run single-worker unless `EESMR_WORKERS` is set explicitly). Each
//! child's output is captured and replayed in the fixed target order, so
//! stdout (tables, results) is identical no matter how the children are
//! scheduled; only the live `[done]`/`[FAIL]` status lines on stderr
//! follow completion order. Writes all CSV series under the experiment
//! output directory.

use std::process::Command;

use eesmr_driver::Driver;

const TARGETS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1_feasible_region",
    "fig2a_kcast_reliability",
    "fig2b_unicast_vs_multicast",
    "fig2c_leader_replica",
    "fig2d_blocksize",
    "fig2e_viewchange",
    "fig2f_total_energy",
    "fig3_eesmr_vs_synchs",
    "fig_workload",
    "headline",
    "ablation_schemes",
    "ablation_reliability",
    "ablation_votes",
    "ablation_checkpoint",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();

    let driver = Driver::from_env();
    // Parallelism lives at the process level here: when EESMR_WORKERS is
    // unset, each child would otherwise also default to one worker per
    // core, and N parallel children × N workers each oversubscribes the
    // CPU. An explicit EESMR_WORKERS is inherited untouched (CI's
    // EESMR_WORKERS=2 exercises multi-worker grids inside the children).
    let child_workers = std::env::var(eesmr_driver::config::ENV_WORKERS)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(|| "1".to_string(), |w| w.max(1).to_string());
    eprintln!(
        "running {} experiment binaries across {} workers ({} per child)",
        TARGETS.len(),
        driver.config().workers,
        child_workers
    );
    let outputs = driver.map(TARGETS, |&target| {
        let output = Command::new(dir.join(target))
            .env(eesmr_driver::config::ENV_WORKERS, &child_workers)
            .output();
        match &output {
            Ok(o) if o.status.success() => eprintln!("[done] {target}"),
            _ => eprintln!("[FAIL] {target}"),
        }
        output
    });

    let mut failures = Vec::new();
    for (target, output) in TARGETS.iter().zip(outputs) {
        println!("\n=== {target} ===");
        match output {
            Ok(o) => {
                print!("{}", String::from_utf8_lossy(&o.stdout));
                // Replay the child's stderr (progress lines, warnings)
                // even on success — it was captured, not inherited.
                eprint!("{}", String::from_utf8_lossy(&o.stderr));
                if !o.status.success() {
                    eprintln!("{target} failed: {:?}", o.status);
                    failures.push(*target);
                }
            }
            Err(e) => {
                eprintln!("{target} failed to spawn: {e}");
                failures.push(*target);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in {}", eesmr_driver::out_dir().display());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
