//! Runs every table/figure regeneration binary's logic in sequence by
//! invoking the sibling binaries. Writes all CSV series under
//! `target/experiments/`.

use std::process::Command;

const TARGETS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1_feasible_region",
    "fig2a_kcast_reliability",
    "fig2b_unicast_vs_multicast",
    "fig2c_leader_replica",
    "fig2d_blocksize",
    "fig2e_viewchange",
    "fig2f_total_energy",
    "fig3_eesmr_vs_synchs",
    "headline",
    "ablation_schemes",
    "ablation_reliability",
    "ablation_votes",
    "ablation_checkpoint",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for target in TARGETS {
        println!("\n=== {target} ===");
        let status = Command::new(dir.join(target)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{target} failed: {other:?}");
                failures.push(*target);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in target/experiments/");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
