//! Regenerates **Fig. 2a**: k-cast failure rate (%) against the energy
//! spent by sender and receiver, for k ∈ {1, 3, 7}, sweeping the
//! redundancy factor of BLE advertisement transmissions.
//!
//! The sweep is closed-form (no scenarios), but it runs through the
//! `eesmr-driver` pool like every other figure: `EESMR_WORKERS`
//! parallelises the (k, redundancy) points and `EESMR_QUICK=1` shrinks
//! the redundancy range to smoke size.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::Driver;
use eesmr_energy::BleKcastModel;

fn main() {
    let driver = Driver::from_env();
    let max_redundancy = if driver.config().quick_mode { 3 } else { 10 };
    let points: Vec<(usize, u32)> =
        [1usize, 3, 7].iter().flat_map(|&k| (1..=max_redundancy).map(move |r| (k, r))).collect();

    let model = BleKcastModel::default();
    let rows_raw = driver.map(&points, |&(k, r)| {
        (
            k,
            r,
            model.kcast_send_mj(25, r),
            model.kcast_recv_mj(25, r),
            model.fragment_failure_prob(k, r) * 100.0,
        )
    });

    let mut csv = Csv::create(
        "fig2a_kcast_reliability",
        &["k", "redundancy", "sender_mj", "receiver_mj", "failure_pct"],
    );
    let mut rows = Vec::new();
    for (k, r, send, recv, fail) in rows_raw {
        csv.rowd(&[&k, &r, &send, &recv, &fail]);
        if r <= 8 {
            rows.push(vec![
                k.to_string(),
                r.to_string(),
                format!("{send:.2}"),
                format!("{recv:.2}"),
                format!("{fail:.4}"),
            ]);
        }
    }
    print_table(
        "Fig. 2a: 25 B k-cast failure rate vs energy",
        &["k", "redundancy", "sender mJ", "receiver mJ", "failure %"],
        &rows,
    );
    for k in [1usize, 3, 7] {
        let r = model.redundancy_for(k, 0.9999);
        println!(
            "k={k}: four-nines at redundancy {r} -> {:.2} mJ sender / {:.2} mJ receiver",
            model.kcast_send_mj(25, r),
            model.kcast_recv_mj(25, r)
        );
    }
    println!("wrote {}", csv.path().display());
}
