//! Regenerates **Fig. 2a**: k-cast failure rate (%) against the energy
//! spent by sender and receiver, for k ∈ {1, 3, 7}, sweeping the
//! redundancy factor of BLE advertisement transmissions.

use eesmr_bench::{print_table, Csv};
use eesmr_energy::BleKcastModel;

fn main() {
    let model = BleKcastModel::default();
    let mut csv = Csv::create(
        "fig2a_kcast_reliability",
        &["k", "redundancy", "sender_mj", "receiver_mj", "failure_pct"],
    );
    let mut rows = Vec::new();
    for k in [1usize, 3, 7] {
        for r in 1..=10u32 {
            let send = model.kcast_send_mj(25, r);
            let recv = model.kcast_recv_mj(25, r);
            let fail = model.fragment_failure_prob(k, r) * 100.0;
            csv.rowd(&[&k, &r, &send, &recv, &fail]);
            if r <= 8 {
                rows.push(vec![
                    k.to_string(),
                    r.to_string(),
                    format!("{send:.2}"),
                    format!("{recv:.2}"),
                    format!("{fail:.4}"),
                ]);
            }
        }
    }
    print_table(
        "Fig. 2a: 25 B k-cast failure rate vs energy",
        &["k", "redundancy", "sender mJ", "receiver mJ", "failure %"],
        &rows,
    );
    for k in [1usize, 3, 7] {
        let r = model.redundancy_for(k, 0.9999);
        println!(
            "k={k}: four-nines at redundancy {r} -> {:.2} mJ sender / {:.2} mJ receiver",
            model.kcast_send_mj(25, r),
            model.kcast_recv_mj(25, r)
        );
    }
    println!("wrote {}", csv.path().display());
}
