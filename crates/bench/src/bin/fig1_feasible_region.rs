//! Regenerates **Fig. 1**: the feasible region ψ^EESMR − ψ^Baseline over a
//! grid of node counts and message sizes (RSA-1024, WiFi between nodes, 4G
//! to the trusted node). Negative values mean EESMR is the more
//! energy-efficient choice. Each n-row of the region is computed through
//! the driver's ordered worker pool, then reassembled into a
//! `FeasibleRegion` for the canonical frontier analysis. (The CSV is
//! row-per-cell while the table is row-per-n, so this binary drives
//! `Csv`/`print_table` directly instead of the shared `Emit` sink.)

use eesmr_bench::{print_table, Csv};
use eesmr_driver::Driver;
use eesmr_energy::{FeasibleCell, FeasibleRegion};

fn main() {
    let n_values: Vec<usize> = (3..=16).collect();
    let m_values: Vec<usize> = vec![64, 128, 256, 512, 1024, 1536, 2048];

    // One task per n: the closed-form ψ row over every payload size.
    let row_cells: Vec<Vec<FeasibleCell>> = Driver::from_env()
        .map(&n_values, |&n| FeasibleRegion::compute(&[n], &m_values).cells().to_vec());
    let region =
        FeasibleRegion::from_rows(&n_values, &m_values, row_cells.into_iter().flatten().collect());

    let mut csv = Csv::create(
        "fig1_feasible_region",
        &["n", "payload_bytes", "eesmr_mj", "baseline_mj", "delta_mj"],
    );
    for c in region.cells() {
        csv.rowd(&[&c.n, &c.payload, &c.eesmr_mj, &c.baseline_mj, &c.delta_mj]);
    }

    // Compact view: sign of the delta per cell.
    let mut rows = Vec::new();
    for &n in &n_values {
        let mut row = vec![format!("n={n}")];
        for &m in &m_values {
            let cell = region.cell(n, m).expect("on-grid");
            row.push(if cell.eesmr_favoured() { "EESMR".into() } else { "BL".into() });
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(m_values.iter().map(|m| format!("m={m}B")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Fig. 1: who wins per (n, m) cell", &headers_ref, &rows);

    println!("\nEESMR favoured on {:.0}% of the grid", region.favoured_fraction() * 100.0);
    for (m, crossover) in region.crossover_frontier() {
        match crossover {
            Some(n) => println!("  m={m:>5}B: EESMR up to n={n}"),
            None => println!("  m={m:>5}B: baseline always wins"),
        }
    }
    println!("wrote {}", csv.path().display());
}
