//! **Workload sweep** (beyond the paper's fixed-`|b_i|` setup): arrival
//! process × per-node skew × protocol on the driver grid, reporting
//! per-transaction end-to-end commit-latency p50/p99 alongside energy
//! per block — the scenario family where adaptive batching has to track
//! bursty, skewed client traffic instead of a uniform synthetic feed.
//!
//! Runs through `eesmr-driver`, so `EESMR_WORKERS` parallelises the grid
//! and `EESMR_QUICK=1` shrinks it to smoke size.

use eesmr_bench::Emit;
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_sim::{ArrivalProcess, BatchPolicy, Protocol, Skew, StopWhen, Workload};

fn main() {
    let arrivals = [
        ArrivalProcess::Constant { rate: 2_000 },
        ArrivalProcess::Poisson { rate: 2_000 },
        ArrivalProcess::Bursty { rate: 6_000, on_ms: 40, off_ms: 80 },
        ArrivalProcess::Diurnal { base: 2_000, amplitude: 1_500, period_ms: 400 },
    ];
    let skews = [Skew::Uniform, Skew::Zipf, Skew::Hotspot { pct: 90 }];
    let workloads = arrivals
        .iter()
        .flat_map(|&arrival| skews.iter().map(move |&skew| Workload::new(arrival).skew(skew)));

    // Adaptive batching so the proposer has to track the offered load.
    let adaptive = BatchPolicy::Adaptive { min: 1, max: 64, target_fill_pct: 100 };
    let grid = ScenarioGrid::named("fig_workload")
        .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
        .nodes([6])
        .degrees([3])
        .batch_policies([adaptive])
        .workloads(workloads)
        .stop(StopWhen::Blocks(30));
    let suite = Driver::from_env().run_grid(&grid);

    let mut emit = Emit::new(
        "Workload sweep: commit latency and energy under client traffic, n=6 k=3",
        "fig_workload",
        &["protocol", "workload", "tx in", "tx done", "p50 ms", "p99 ms", "mJ/block"],
        &[
            "protocol",
            "workload",
            "tx_injected",
            "tx_committed",
            "tx_latency_p50_us",
            "tx_latency_p99_us",
            "energy_per_block_mj",
        ],
    );
    for cell in &suite.cells {
        let report = cell.report();
        let stats = report.tx_latency_stats();
        let workload = cell.key.workload.expect("every cell sweeps a workload").label();
        emit.row(
            vec![
                report.protocol.to_string(),
                workload.clone(),
                report.tx_injected().to_string(),
                report.tx_committed().to_string(),
                stats.map_or_else(|| "-".into(), |s| format!("{:.1}", s.p50_us as f64 / 1e3)),
                stats.map_or_else(|| "-".into(), |s| format!("{:.1}", s.p99_us as f64 / 1e3)),
                format!("{:.1}", report.energy_per_block_mj()),
            ],
            vec![
                report.protocol.to_string(),
                workload,
                report.tx_injected().to_string(),
                report.tx_committed().to_string(),
                stats.map_or_else(String::new, |s| s.p50_us.to_string()),
                stats.map_or_else(String::new, |s| s.p99_us.to_string()),
                report.energy_per_block_mj().to_string(),
            ],
        );
    }
    emit.finish();
    let paths = suite.write();
    println!("wrote {}", paths.json.display());
}
