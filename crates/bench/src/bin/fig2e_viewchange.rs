//! Regenerates **Fig. 2e**: energy consumed by the EESMR leader per view
//! change for varying fault bound f (k = f + 1, n = 15), for the
//! equivocation and no-progress scenarios, compared with an honest SMR.
//!
//! Like the paper's measurement, the view-change runs use the §5.6
//! optimizations of the blocking variant (equivocation speedup +
//! lock-only status).

use eesmr_bench::{print_table, Csv};
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

fn main() {
    let n = 15;
    let mut csv = Csv::create(
        "fig2e_viewchange",
        &["k", "f", "equivocation_vc_mj", "no_progress_vc_mj", "honest_smr_mj"],
    );
    let mut rows = Vec::new();
    for f in 1..=6usize {
        let k = f + 1;
        // Equivocation VC: view-1 leader equivocates; measure the NEW
        // leader's energy for the whole view change.
        let equiv = Scenario::new(Protocol::Eesmr, n, k)
            .fault_bound(f)
            .faults(FaultPlan::equivocating_leader())
            .with_paper_optimizations()
            .stop(StopWhen::ViewReached(2))
            .run();
        let equiv_mj = equiv.node_energy_mj(1);

        // No-progress VC: view-1 leader is silent.
        let stall = Scenario::new(Protocol::Eesmr, n, k)
            .fault_bound(f)
            .faults(FaultPlan::silent_leader())
            .with_paper_optimizations()
            .stop(StopWhen::ViewReached(2))
            .run();
        let stall_mj = stall.node_energy_mj(1);

        // Honest SMR for comparison: leader energy per committed block.
        let honest =
            Scenario::new(Protocol::Eesmr, n, k).fault_bound(f).stop(StopWhen::Blocks(20)).run();
        let honest_mj = honest.node_energy_per_block_mj(0);

        csv.rowd(&[&k, &f, &equiv_mj, &stall_mj, &honest_mj]);
        rows.push(vec![
            k.to_string(),
            f.to_string(),
            format!("{equiv_mj:.0}"),
            format!("{stall_mj:.0}"),
            format!("{honest_mj:.0}"),
        ]);
    }
    print_table(
        "Fig. 2e: EESMR leader energy per view change, n=15 (mJ)",
        &["k", "f", "Equivocation VC", "No-progress VC", "Honest SMR"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
