//! Regenerates **Fig. 2e**: energy consumed by the EESMR leader per view
//! change for varying fault bound f (k = f + 1, n = 15), for the
//! equivocation and no-progress scenarios, compared with an honest SMR.
//!
//! Like the paper's measurement, the view-change runs use the §5.6
//! optimizations of the blocking variant (equivocation speedup +
//! lock-only status). The three scenarios per f run as explicit cells of
//! one `eesmr-driver` grid, so `EESMR_WORKERS` parallelises them and
//! `EESMR_QUICK=1` shrinks the honest runs' block targets.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_sim::{FaultPlan, Protocol, Scenario, StopWhen};

fn main() {
    let n = 15;
    let fs = 1..=6usize;

    let mut grid = ScenarioGrid::named("fig2e_viewchange");
    for f in fs.clone() {
        let k = f + 1;
        // Equivocation VC: view-1 leader equivocates; measure the NEW
        // leader's energy for the whole view change.
        grid = grid.scenario(
            format!("equivocation f={f}"),
            Scenario::new(Protocol::Eesmr, n, k)
                .fault_bound(f)
                .faults(FaultPlan::equivocating_leader())
                .with_paper_optimizations()
                .stop(StopWhen::ViewReached(2)),
        );
        // No-progress VC: view-1 leader is silent.
        grid = grid.scenario(
            format!("no-progress f={f}"),
            Scenario::new(Protocol::Eesmr, n, k)
                .fault_bound(f)
                .faults(FaultPlan::silent_leader())
                .with_paper_optimizations()
                .stop(StopWhen::ViewReached(2)),
        );
        // Honest SMR for comparison: leader energy per committed block.
        grid = grid.scenario(
            format!("honest f={f}"),
            Scenario::new(Protocol::Eesmr, n, k).fault_bound(f).stop(StopWhen::Blocks(20)),
        );
    }
    let suite = Driver::from_env().run_grid(&grid);

    let mut csv = Csv::create(
        "fig2e_viewchange",
        &["k", "f", "equivocation_vc_mj", "no_progress_vc_mj", "honest_smr_mj"],
    );
    let mut rows = Vec::new();
    for f in fs {
        let k = f + 1;
        let by = |label: String| suite.by_label(&label).expect("cell ran").report();
        let equiv_mj = by(format!("equivocation f={f}")).node_energy_mj(1);
        let stall_mj = by(format!("no-progress f={f}")).node_energy_mj(1);
        let honest_mj = by(format!("honest f={f}")).node_energy_per_block_mj(0);
        csv.rowd(&[&k, &f, &equiv_mj, &stall_mj, &honest_mj]);
        rows.push(vec![
            k.to_string(),
            f.to_string(),
            format!("{equiv_mj:.0}"),
            format!("{stall_mj:.0}"),
            format!("{honest_mj:.0}"),
        ]);
    }
    print_table(
        "Fig. 2e: EESMR leader energy per view change, n=15 (mJ)",
        &["k", "f", "Equivocation VC", "No-progress VC", "Honest SMR"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
    suite.write();
}
