//! Regenerates **Table 1**: energy consumption per message for BLE, 4G LTE
//! and WiFi at 256 B – 2 kB (mJ). The per-size rows are computed through
//! the driver's ordered worker pool.

use eesmr_bench::Emit;
use eesmr_driver::Driver;
use eesmr_energy::medium::{Medium, ANCHOR_SIZES};

fn main() {
    let rows = Driver::from_env().map(&ANCHOR_SIZES, |&size| {
        let cells = [
            Medium::Ble.send_mj(size),
            Medium::Ble.recv_mj(size),
            Medium::Ble.multicast_send_mj(size),
            Medium::FourG.send_mj(size),
            Medium::FourG.recv_mj(size),
            Medium::Wifi.send_mj(size),
            Medium::Wifi.recv_mj(size),
        ];
        (size, cells)
    });

    let mut emit = Emit::new(
        "Table 1: energy per message (mJ)",
        "table1_media",
        &[
            "Size",
            "BLE send",
            "BLE recv",
            "BLE mcast",
            "4G send",
            "4G recv",
            "WiFi send",
            "WiFi recv",
        ],
        &[
            "size_bytes",
            "ble_send",
            "ble_recv",
            "ble_multicast",
            "fourg_send",
            "fourg_recv",
            "wifi_send",
            "wifi_recv",
        ],
    );
    for (size, cells) in rows {
        let mut table_row = vec![format!("{size} B")];
        table_row.extend(cells.iter().map(|c| format!("{c:.2}")));
        let mut csv_row = vec![size.to_string()];
        csv_row.extend(cells.iter().map(|c| format!("{c}")));
        emit.row(table_row, csv_row);
    }
    emit.finish();
}
