//! Regenerates **Table 1**: energy consumption per message for BLE, 4G LTE
//! and WiFi at 256 B – 2 kB (mJ).

use eesmr_bench::{print_table, Csv};
use eesmr_energy::medium::{Medium, ANCHOR_SIZES};

fn main() {
    let mut csv = Csv::create(
        "table1_media",
        &[
            "size_bytes",
            "ble_send",
            "ble_recv",
            "ble_multicast",
            "fourg_send",
            "fourg_recv",
            "wifi_send",
            "wifi_recv",
        ],
    );
    let mut rows = Vec::new();
    for &size in &ANCHOR_SIZES {
        let cells = [
            Medium::Ble.send_mj(size),
            Medium::Ble.recv_mj(size),
            Medium::Ble.multicast_send_mj(size),
            Medium::FourG.send_mj(size),
            Medium::FourG.recv_mj(size),
            Medium::Wifi.send_mj(size),
            Medium::Wifi.recv_mj(size),
        ];
        let mut row = vec![format!("{size} B")];
        row.extend(cells.iter().map(|c| format!("{c:.2}")));
        rows.push(row);
        let mut csv_row = vec![size.to_string()];
        csv_row.extend(cells.iter().map(|c| format!("{c}")));
        csv.row(&csv_row);
    }
    print_table(
        "Table 1: energy per message (mJ)",
        &[
            "Size",
            "BLE send",
            "BLE recv",
            "BLE mcast",
            "4G send",
            "4G recv",
            "WiFi send",
            "WiFi recv",
        ],
        &rows,
    );
    println!("\nwrote {}", csv.path().display());
}
