//! The perf-trajectory emitter: measures the zero-copy message-spine
//! hot path (the `eesmr_bench::hotpath` broadcast storm) and writes a
//! `BENCH_<short-sha>.json` snapshot so throughput can be tracked
//! commit over commit.
//!
//! Modes:
//!
//! * `bench_trajectory` — measure, then write `BENCH_<short-sha>.json`
//!   in the current directory (the committed baselines live at the repo
//!   root).
//! * `bench_trajectory --check [FILE]` — measure, compare against the
//!   baseline `FILE` (default: the newest `BENCH_*.json` here by its
//!   `recorded_unix` stamp), and exit non-zero if Arc-spine event
//!   throughput regressed by more than the tolerance (10%, or
//!   `EESMR_BENCH_TOLERANCE`) or the Arc-vs-deep speedup fell below
//!   1.5×.
//!
//! `EESMR_QUICK=1` shrinks the storm budget and repetition count for
//! the CI smoke run. Each cell is measured several times and the best
//! run kept, damping scheduler noise.
//!
//! Besides the spine cells, the snapshot prices the observability
//! surfaces: the headline cell re-runs with full tracing and with
//! `eesmr-metrics` gauge sampling on, and a final self-profiled pass
//! (excluded from all throughput numbers) records where the simulator's
//! wall clock goes (`profile_pct` in the JSON; `EESMR_PROFILE=1` also
//! writes the folded-stacks rendering next to it).

use std::fs;
use std::process::Command as Shell;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use eesmr_bench::hotpath::{run_storm, StormSpec};
use eesmr_core::{Block, Command, Commands, Payload, SignedMsg};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_metrics::{profile_reset, profile_snapshot, set_profiling, ProfPhase, ProfileSnapshot};
use eesmr_net::{MetricsConfig, TraceLevel, WireCodec};

/// The floor the acceptance bar sets for Arc-vs-deep speedup.
const MIN_SPEEDUP: f64 = 1.5;

fn quick() -> bool {
    std::env::var("EESMR_QUICK").is_ok_and(|v| v == "1")
}

fn short_sha() -> String {
    Shell::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "worktree".to_string())
}

/// Best-of-`reps` measurement of one cell (max events/sec).
fn measure(spec: &StormSpec, reps: usize) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut deliveries = 0;
    for _ in 0..reps {
        let result = run_storm(spec);
        deliveries = result.deliveries;
        best = best.max(result.events_per_sec());
    }
    (best, deliveries)
}

/// A representative mix of `SignedMsg` frames for the codec cell: the
/// steady-state proposal, a forwarded command batch, and the small
/// control messages that dominate frame counts.
fn codec_sample() -> Vec<SignedMsg> {
    let pki = KeyStore::generate(4, SigScheme::Hmac, 7);
    let genesis = Block::genesis();
    let commands: Vec<Command> = (0..64).map(|seq| Command::synthetic(seq, 128)).collect();
    let block = Block::extending(&genesis, 1, 3, commands.clone());
    vec![
        SignedMsg::new(
            Payload::Propose { block: block.clone(), round: 3, justify: None },
            1,
            pki.keypair(0),
        ),
        SignedMsg::new(Payload::Forward { commands: Commands::from(commands) }, 1, pki.keypair(1)),
        SignedMsg::new(Payload::Certify { block_id: block.id(), height: 1 }, 1, pki.keypair(2)),
        SignedMsg::new(Payload::Repair { from_height: 9 }, 1, pki.keypair(3)),
    ]
}

/// Measures the v1 wire codec's round-trip throughput in MB/s: every
/// sample frame is encoded and decoded back, and each direction counts
/// the frame's bytes (a frame both written and parsed moves 2× its
/// length through the codec).
fn measure_codec(quick: bool, reps: usize) -> f64 {
    let sample = codec_sample();
    let frames: Vec<Vec<u8>> = sample.iter().map(WireCodec::encode).collect();
    let frame_bytes: usize = frames.iter().map(Vec::len).sum();
    let iters = if quick { 400 } else { 2000 };
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            for (msg, bytes) in sample.iter().zip(&frames) {
                let encoded = msg.encode();
                sink += encoded.len();
                let back = SignedMsg::decode(bytes).expect("sample frame decodes");
                sink += back.wire_size();
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(sink, 2 * frame_bytes * iters, "codec cell processed every byte");
        best = best.max((sink as f64 / 1e6) / secs);
    }
    best
}

struct Snapshot {
    sha: String,
    recorded_unix: u64,
    quick: bool,
    arc_events_per_sec: f64,
    deep_events_per_sec: f64,
    trace_all_events_per_sec: f64,
    metrics_on_events_per_sec: f64,
    codec_mb_per_sec: f64,
    profile: ProfileSnapshot,
    cells: Vec<(StormSpec, f64, u64)>,
}

impl Snapshot {
    fn speedup(&self) -> f64 {
        self.arc_events_per_sec / self.deep_events_per_sec
    }

    /// Fractional slowdown of the headline cell with full tracing on:
    /// `(off - all) / off`. Negative values are scheduler noise.
    fn trace_overhead(&self) -> f64 {
        (self.arc_events_per_sec - self.trace_all_events_per_sec) / self.arc_events_per_sec
    }

    /// Fractional slowdown of the headline cell with gauge sampling on,
    /// same convention as [`trace_overhead`](Snapshot::trace_overhead).
    fn metrics_overhead(&self) -> f64 {
        (self.arc_events_per_sec - self.metrics_on_events_per_sec) / self.arc_events_per_sec
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"eesmr-bench-trajectory/v1\",\n");
        out.push_str(&format!("  \"sha\": \"{}\",\n", self.sha));
        out.push_str(&format!("  \"recorded_unix\": {},\n", self.recorded_unix));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"headline\": {\n");
        out.push_str(&format!("    \"arc_events_per_sec\": {:.1},\n", self.arc_events_per_sec));
        out.push_str(&format!("    \"deep_events_per_sec\": {:.1},\n", self.deep_events_per_sec));
        out.push_str(&format!("    \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!(
            "    \"trace_off_events_per_sec\": {:.1},\n",
            self.arc_events_per_sec
        ));
        out.push_str(&format!(
            "    \"trace_all_events_per_sec\": {:.1},\n",
            self.trace_all_events_per_sec
        ));
        out.push_str(&format!("    \"trace_overhead\": {:.3},\n", self.trace_overhead()));
        out.push_str(&format!(
            "    \"metrics_off_events_per_sec\": {:.1},\n",
            self.arc_events_per_sec
        ));
        out.push_str(&format!(
            "    \"metrics_on_events_per_sec\": {:.1},\n",
            self.metrics_on_events_per_sec
        ));
        out.push_str(&format!("    \"metrics_overhead\": {:.3},\n", self.metrics_overhead()));
        out.push_str(&format!("    \"codec_mb_per_sec\": {:.1}\n", self.codec_mb_per_sec));
        out.push_str("  },\n");
        out.push_str("  \"profile_pct\": {\n");
        let phases: Vec<String> = ProfPhase::ALL
            .iter()
            .map(|&p| format!("    \"{}\": {:.1}", p.as_str(), self.profile.pct(p)))
            .collect();
        out.push_str(&phases.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|(spec, eps, deliveries)| {
                format!(
                    "    {{\"name\": \"{}\", \"n\": {}, \"commands\": {}, \"payload_bytes\": {}, \
                     \"shards\": {}, \"deep_clone\": {}, \"deliveries\": {}, \
                     \"events_per_sec\": {:.1}}}",
                    spec.label(),
                    spec.n,
                    spec.commands,
                    spec.payload_bytes,
                    spec.shards,
                    spec.deep_clone,
                    deliveries,
                    eps
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Runs the trajectory workload: the headline n = 128 cell in both
/// spine modes, an Arc-spine shard sweep, and the headline cell with
/// full tracing on (pricing the `eesmr-trace` hot path).
fn take_snapshot() -> Snapshot {
    let quick = quick();
    let (budget, reps) = if quick { (3, 2) } else { (6, 3) };
    let mut cells = Vec::new();
    let mut arc_eps = 0.0;
    let mut deep_eps = 0.0;
    for deep_clone in [false, true] {
        let spec = StormSpec { budget, ..StormSpec::headline(deep_clone) };
        eprintln!("measuring {} (reps={reps})...", spec.label());
        let (eps, deliveries) = measure(&spec, reps);
        if deep_clone {
            deep_eps = eps;
        } else {
            arc_eps = eps;
        }
        cells.push((spec, eps, deliveries));
    }
    for shards in [2usize, 4] {
        let spec = StormSpec { budget, shards, ..StormSpec::headline(false) };
        eprintln!("measuring {} (reps={reps})...", spec.label());
        let (eps, deliveries) = measure(&spec, reps);
        cells.push((spec, eps, deliveries));
    }
    let traced_spec = StormSpec { budget, trace: TraceLevel::All, ..StormSpec::headline(false) };
    eprintln!("measuring {} (reps={reps})...", traced_spec.label());
    let (trace_all_eps, deliveries) = measure(&traced_spec, reps);
    cells.push((traced_spec, trace_all_eps, deliveries));
    let sampled_spec =
        StormSpec { budget, metrics: MetricsConfig::on(), ..StormSpec::headline(false) };
    eprintln!("measuring {} (reps={reps})...", sampled_spec.label());
    let (metrics_on_eps, deliveries) = measure(&sampled_spec, reps);
    cells.push((sampled_spec, metrics_on_eps, deliveries));
    eprintln!("measuring codec roundtrip (reps={reps})...");
    let codec_mb_per_sec = measure_codec(quick, reps);
    // One extra self-profiled pass, excluded from every throughput
    // number above (the phase timers themselves cost a few percent):
    // it only feeds the `profile_pct` breakdown and the folded stacks.
    eprintln!("profiling {}...", StormSpec::headline(false).label());
    set_profiling(true);
    profile_reset();
    run_storm(&StormSpec { budget, ..StormSpec::headline(false) });
    let profile = profile_snapshot();
    set_profiling(false);
    let recorded_unix =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    Snapshot {
        sha: short_sha(),
        recorded_unix,
        quick,
        arc_events_per_sec: arc_eps,
        deep_events_per_sec: deep_eps,
        trace_all_events_per_sec: trace_all_eps,
        metrics_on_events_per_sec: metrics_on_eps,
        codec_mb_per_sec,
        profile,
        cells,
    }
}

/// Pulls the number following `"key":` out of our own JSON dialect.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The newest committed baseline in the current directory, by its
/// `recorded_unix` stamp.
fn latest_baseline() -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let Ok(text) = fs::read_to_string(entry.path()) else { continue };
        let stamp = json_f64(&text, "recorded_unix").unwrap_or(0.0) as u64;
        if best.as_ref().is_none_or(|(s, _)| stamp > *s) {
            best = Some((stamp, name));
        }
    }
    best.map(|(_, name)| name)
}

fn check(baseline_path: Option<String>) -> i32 {
    let Some(path) = baseline_path.or_else(latest_baseline) else {
        eprintln!("bench_trajectory --check: no BENCH_*.json baseline found");
        return 2;
    };
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench_trajectory --check: cannot read {path}: {err}");
            return 2;
        }
    };
    let Some(baseline_eps) = json_f64(&text, "arc_events_per_sec") else {
        eprintln!("bench_trajectory --check: {path} has no arc_events_per_sec");
        return 2;
    };
    // Baselines recorded before the codec cell existed simply skip that
    // comparison — the key is absent, not zero.
    let baseline_codec = json_f64(&text, "codec_mb_per_sec");
    let tolerance = std::env::var("EESMR_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    let floor = baseline_eps * (1.0 - tolerance);
    let codec_floor = baseline_codec.map(|mb| mb * (1.0 - tolerance));
    // A shared runner can dip any single measurement well past the
    // tolerance; a true regression fails persistently. Debounce by
    // keeping the best of up to three snapshots.
    let (mut best_eps, mut best_speedup, mut best_codec) = (0.0f64, 0.0f64, 0.0f64);
    for attempt in 1..=3 {
        let snap = take_snapshot();
        best_eps = best_eps.max(snap.arc_events_per_sec);
        best_speedup = best_speedup.max(snap.speedup());
        best_codec = best_codec.max(snap.codec_mb_per_sec);
        if best_eps >= floor
            && best_speedup >= MIN_SPEEDUP
            && codec_floor.is_none_or(|f| best_codec >= f)
        {
            break;
        }
        eprintln!("attempt {attempt} below the bar ({:.0} events/s); retrying", best_eps);
    }
    println!(
        "baseline {path}: {:.0} events/s; current: {:.0} events/s (floor {:.0}, tolerance {:.0}%)",
        baseline_eps,
        best_eps,
        floor,
        tolerance * 100.0
    );
    println!(
        "spine speedup (arc vs deep-clone): {best_speedup:.2}x (required >= {MIN_SPEEDUP:.1}x)"
    );
    match (baseline_codec, codec_floor) {
        (Some(mb), Some(f)) => println!(
            "codec roundtrip: baseline {mb:.0} MB/s; current {best_codec:.0} MB/s (floor {f:.0})"
        ),
        _ => println!(
            "codec roundtrip: {best_codec:.0} MB/s (baseline predates codec_mb_per_sec; skipped)"
        ),
    }
    let mut status = 0;
    if best_eps < floor {
        eprintln!("FAIL: event throughput regressed more than {:.0}%", tolerance * 100.0);
        status = 1;
    }
    if best_speedup < MIN_SPEEDUP {
        eprintln!("FAIL: Arc spine no longer >= {MIN_SPEEDUP:.1}x over deep-clone baseline");
        status = 1;
    }
    if let Some(f) = codec_floor {
        if best_codec < f {
            eprintln!("FAIL: codec throughput regressed more than {:.0}%", tolerance * 100.0);
            status = 1;
        }
    }
    if status == 0 {
        println!("OK: throughput within tolerance of the committed baseline");
    }
    status
}

fn emit() -> i32 {
    let snap = take_snapshot();
    let path = format!("BENCH_{}.json", snap.sha);
    println!(
        "arc: {:.0} events/s  deep-clone: {:.0} events/s  speedup: {:.2}x  \
         trace-all: {:.0} events/s  trace overhead: {:.1}%  metrics overhead: {:.1}%",
        snap.arc_events_per_sec,
        snap.deep_events_per_sec,
        snap.speedup(),
        snap.trace_all_events_per_sec,
        snap.trace_overhead() * 100.0,
        snap.metrics_overhead() * 100.0
    );
    println!("codec roundtrip: {:.0} MB/s", snap.codec_mb_per_sec);
    println!("profile: {}", snap.profile.summary());
    // EESMR_PROFILE also asks for the flamegraph-ready rendering of the
    // profiled pass, next to the JSON.
    if matches!(
        std::env::var("EESMR_PROFILE").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    ) {
        let folded_path = format!("BENCH_{}.folded", snap.sha);
        match fs::write(&folded_path, snap.profile.folded()) {
            Ok(()) => println!("wrote {folded_path}"),
            Err(err) => eprintln!("bench_trajectory: cannot write {folded_path}: {err}"),
        }
    }
    match fs::write(&path, snap.to_json()) {
        Ok(()) => {
            println!("wrote {path}");
            0
        }
        Err(err) => {
            eprintln!("bench_trajectory: cannot write {path}: {err}");
            1
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let status = match args.next().as_deref() {
        Some("--check") => check(args.next()),
        Some(other) => {
            eprintln!("bench_trajectory: unknown argument {other} (try --check [FILE])");
            2
        }
        None => emit(),
    };
    std::process::exit(status);
}
