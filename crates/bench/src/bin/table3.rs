//! Regenerates **Table 3**: best/worst-case complexity comparison, plus an
//! *empirical* check of the headline scaling claims (EESMR transmissions
//! grow O(nd) per block while Sync HotStuff grows O(n²d)). The empirical
//! protocol × n sweep runs as one grid on the parallel driver
//! (`EESMR_WORKERS` for threads, `EESMR_QUICK=1` for smoke-test sizing).

use eesmr_bench::{print_table, Emit};
use eesmr_driver::{progress, Driver, ScenarioGrid};
use eesmr_energy::complexity::table3_rows;
use eesmr_sim::{Protocol, StopWhen};

fn main() {
    let mut rows = Vec::new();
    for r in table3_rows() {
        rows.push(vec![
            r.name.to_string(),
            r.best.communication.to_string(),
            r.best.signs.to_string(),
            r.best.verifies.to_string(),
            r.best.period.to_string(),
            r.worst.communication.to_string(),
            r.worst.signs.to_string(),
            r.worst.verifies.to_string(),
            r.worst.period.to_string(),
        ]);
    }
    print_table(
        "Table 3: best-case vs worst-case comparison",
        &[
            "Protocol",
            "Comm (best)",
            "Sign",
            "Verify",
            "Period",
            "Comm (worst)",
            "Sign",
            "Verify",
            "Period",
        ],
        &rows,
    );

    // Empirical scaling: double n, fixed k — EESMR per-block transmissions
    // should ~double (O(nd)); Sync HotStuff should ~quadruple (O(n^2 d)).
    let grid = ScenarioGrid::named("table3_empirical")
        .protocols([Protocol::Eesmr, Protocol::SyncHotStuff])
        .nodes([6, 12])
        .degrees([3])
        .stop(StopWhen::Blocks(10));
    let suite = Driver::from_env().run_grid_with_progress(&grid, progress::stderr_status());
    let kcasts_per_block = |protocol: Protocol, n: usize| -> f64 {
        let report =
            suite.find(|c| c.protocol == protocol && c.n == n).expect("cell on the grid").report();
        report.net.kcasts as f64 / report.committed_height().max(1) as f64
    };

    let mut emit = Emit::new(
        "Empirical k-casts per committed block (k = 3)",
        "table3_empirical",
        &["Protocol", "n", "k-casts/block"],
        &["protocol", "n", "k", "kcasts_per_block"],
    );
    for (proto, name) in [(Protocol::Eesmr, "EESMR"), (Protocol::SyncHotStuff, "Sync HotStuff")] {
        for n in [6usize, 12] {
            let v = kcasts_per_block(proto, n);
            emit.row(
                vec![name.to_string(), n.to_string(), format!("{v:.1}")],
                vec![name.to_string(), n.to_string(), "3".to_string(), v.to_string()],
            );
        }
    }
    emit.finish();

    let e_ratio = kcasts_per_block(Protocol::Eesmr, 12) / kcasts_per_block(Protocol::Eesmr, 6);
    let s_ratio =
        kcasts_per_block(Protocol::SyncHotStuff, 12) / kcasts_per_block(Protocol::SyncHotStuff, 6);
    println!("\nscaling when n doubles (6 -> 12): EESMR x{e_ratio:.2} (expect ~2), SyncHS x{s_ratio:.2} (expect ~4)");
}
