//! Regenerates **Table 3**: best/worst-case complexity comparison, plus an
//! *empirical* check of the headline scaling claims (EESMR transmissions
//! grow O(nd) per block while Sync HotStuff grows O(n²d)).

use eesmr_bench::{print_table, Csv};
use eesmr_energy::complexity::table3_rows;
use eesmr_sim::{Protocol, Scenario, StopWhen};

fn kcasts_per_block(protocol: Protocol, n: usize, k: usize) -> f64 {
    let report = Scenario::new(protocol, n, k).stop(StopWhen::Blocks(10)).run();
    report.net.kcasts as f64 / report.committed_height().max(1) as f64
}

fn main() {
    let mut rows = Vec::new();
    for r in table3_rows() {
        rows.push(vec![
            r.name.to_string(),
            r.best.communication.to_string(),
            r.best.signs.to_string(),
            r.best.verifies.to_string(),
            r.best.period.to_string(),
            r.worst.communication.to_string(),
            r.worst.signs.to_string(),
            r.worst.verifies.to_string(),
            r.worst.period.to_string(),
        ]);
    }
    print_table(
        "Table 3: best-case vs worst-case comparison",
        &[
            "Protocol",
            "Comm (best)",
            "Sign",
            "Verify",
            "Period",
            "Comm (worst)",
            "Sign",
            "Verify",
            "Period",
        ],
        &rows,
    );

    // Empirical scaling: double n, fixed k — EESMR per-block transmissions
    // should ~double (O(nd)); Sync HotStuff should ~quadruple (O(n^2 d)).
    let mut csv = Csv::create("table3_empirical", &["protocol", "n", "k", "kcasts_per_block"]);
    let mut erows = Vec::new();
    for (proto, name) in [(Protocol::Eesmr, "EESMR"), (Protocol::SyncHotStuff, "Sync HotStuff")] {
        for n in [6usize, 12] {
            let v = kcasts_per_block(proto, n, 3);
            csv.rowd(&[&name, &n, &3, &v]);
            erows.push(vec![name.to_string(), n.to_string(), format!("{v:.1}")]);
        }
    }
    print_table(
        "Empirical k-casts per committed block (k = 3)",
        &["Protocol", "n", "k-casts/block"],
        &erows,
    );

    let e_ratio =
        kcasts_per_block(Protocol::Eesmr, 12, 3) / kcasts_per_block(Protocol::Eesmr, 6, 3);
    let s_ratio = kcasts_per_block(Protocol::SyncHotStuff, 12, 3)
        / kcasts_per_block(Protocol::SyncHotStuff, 6, 3);
    println!("\nscaling when n doubles (6 -> 12): EESMR x{e_ratio:.2} (expect ~2), SyncHS x{s_ratio:.2} (expect ~4)");
    println!("wrote {}", csv.path().display());
}
