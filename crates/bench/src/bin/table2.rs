//! Regenerates **Table 2**: signing/verification energy (J) for ECDSA
//! curves, RSA moduli and HMAC, plus the scheme sizes the wire model
//! uses. The per-scheme rows are computed through the driver's ordered
//! worker pool.

use eesmr_bench::Emit;
use eesmr_crypto::SigScheme;
use eesmr_driver::Driver;

fn main() {
    let rows = Driver::from_env().map(&SigScheme::ALL, |scheme| {
        (
            vec![
                scheme.name().to_string(),
                format!("{:.2}", scheme.sign_energy_j()),
                format!("{:.2}", scheme.verify_energy_j()),
                scheme.signature_size().to_string(),
                scheme.public_key_size().to_string(),
                scheme.security_bits().to_string(),
            ],
            vec![
                scheme.name().to_string(),
                scheme.sign_energy_j().to_string(),
                scheme.verify_energy_j().to_string(),
                scheme.signature_size().to_string(),
                scheme.public_key_size().to_string(),
                scheme.security_bits().to_string(),
            ],
        )
    });

    let mut emit = Emit::new(
        "Table 2: signature scheme energy (J) and sizes",
        "table2_signatures",
        &["Scheme", "Sign (J)", "Verify (J)", "Sig (B)", "PK (B)", "Security"],
        &["scheme", "sign_j", "verify_j", "sig_bytes", "pk_bytes", "security_bits"],
    );
    for (table_row, csv_row) in rows {
        emit.row(table_row, csv_row);
    }
    emit.finish();
    println!("\nThe paper's pick for CPS: RSA-1024 (cheap verification fits one-signer/many-verifiers SMR).");
}
