//! Regenerates **Table 2**: signing/verification energy (J) for ECDSA
//! curves, RSA moduli and HMAC, plus the scheme sizes the wire model uses.

use eesmr_bench::{print_table, Csv};
use eesmr_crypto::SigScheme;

fn main() {
    let mut csv = Csv::create(
        "table2_signatures",
        &["scheme", "sign_j", "verify_j", "sig_bytes", "pk_bytes", "security_bits"],
    );
    let mut rows = Vec::new();
    for scheme in SigScheme::ALL {
        rows.push(vec![
            scheme.name().to_string(),
            format!("{:.2}", scheme.sign_energy_j()),
            format!("{:.2}", scheme.verify_energy_j()),
            scheme.signature_size().to_string(),
            scheme.public_key_size().to_string(),
            scheme.security_bits().to_string(),
        ]);
        csv.rowd(&[
            &scheme.name(),
            &scheme.sign_energy_j(),
            &scheme.verify_energy_j(),
            &scheme.signature_size(),
            &scheme.public_key_size(),
            &scheme.security_bits(),
        ]);
    }
    print_table(
        "Table 2: signature scheme energy (J) and sizes",
        &["Scheme", "Sign (J)", "Verify (J)", "Sig (B)", "PK (B)", "Security"],
        &rows,
    );
    println!("\nThe paper's pick for CPS: RSA-1024 (cheap verification fits one-signer/many-verifiers SMR).");
    println!("wrote {}", csv.path().display());
}
