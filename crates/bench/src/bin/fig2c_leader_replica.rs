//! Regenerates **Fig. 2c**: average energy per SMR (committed block)
//! consumed by a correct EESMR leader and by the other replicas, as a
//! function of the k-cast degree k (|b_i| = 16 B, n = 10).
//!
//! The k sweep runs through the `eesmr-driver` grid, so `EESMR_WORKERS`
//! parallelises it and `EESMR_QUICK=1` shrinks it to smoke size.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_sim::StopWhen;

fn main() {
    let n = 10;
    let ks = 2..=7usize;
    let grid = ScenarioGrid::named("fig2c_leader_replica")
        .nodes([n])
        .degrees(ks.clone())
        .stop(StopWhen::Blocks(30));
    let suite = Driver::from_env().run_grid(&grid);

    let mut csv =
        Csv::create("fig2c_leader_replica", &["k", "leader_mj_per_smr", "replica_mj_per_smr"]);
    let mut rows = Vec::new();
    for k in ks {
        let report = suite.find(|c| c.k == k).expect("every k cell ran").report();
        let leader = report.node_energy_per_block_mj(0); // node 0 leads view 1
        let replicas: Vec<f64> =
            (1..n as u32).map(|id| report.node_energy_per_block_mj(id)).collect();
        let replica_avg = replicas.iter().sum::<f64>() / replicas.len() as f64;
        csv.rowd(&[&k, &leader, &replica_avg]);
        rows.push(vec![k.to_string(), format!("{leader:.1}"), format!("{replica_avg:.1}")]);
    }
    print_table(
        "Fig. 2c: EESMR energy per SMR, |b|=16 B, n=10 (mJ)",
        &["k", "leader", "replica (avg)"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
    suite.write();
}
