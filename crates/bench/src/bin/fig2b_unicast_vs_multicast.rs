//! Regenerates **Fig. 2b**: energy to deliver payloads of 25–500 B via
//! GATT unicasts (d = 1 and d = 7) versus a 99.99 %-reliable k-cast with
//! k = 7, for sender (S) and receiver (R).
//!
//! Closed-form like Fig. 2a, but routed through the `eesmr-driver` pool:
//! `EESMR_WORKERS` parallelises the payload points and `EESMR_QUICK=1`
//! coarsens the payload grid to smoke size.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::Driver;
use eesmr_energy::{BleGattModel, BleKcastModel};

fn main() {
    let driver = Driver::from_env();
    let step = if driver.config().quick_mode { 125 } else { 25 };
    let payloads: Vec<usize> = (25..=500).step_by(step).collect();

    let kcast = BleKcastModel::default();
    let gatt = BleGattModel::default();
    let series = driver.map(&payloads, |&payload| {
        (
            payload,
            [
                gatt.unicast_send_mj(payload, 1),
                gatt.unicast_recv_mj(payload, 1),
                gatt.unicast_send_mj(payload, 7),
                gatt.unicast_recv_mj(payload, 7),
                kcast.reliable_kcast_send_mj(payload, 7, 0.9999),
                kcast.reliable_kcast_recv_mj(payload, 7, 0.9999),
            ],
        )
    });

    let mut csv = Csv::create(
        "fig2b_unicast_vs_multicast",
        &["payload_bytes", "uc_s_d1", "uc_r_d1", "uc_s_d7", "uc_r_d7", "kcast_s_k7", "kcast_r_k7"],
    );
    let mut rows = Vec::new();
    for (payload, cells) in series {
        let mut csv_row = vec![payload.to_string()];
        csv_row.extend(cells.iter().map(|c| c.to_string()));
        csv.row(&csv_row);
        if payload % 100 == 0 || payload == 25 {
            let mut row = vec![format!("{payload} B")];
            row.extend(cells.iter().map(|c| format!("{c:.1}")));
            rows.push(row);
        }
    }
    print_table(
        "Fig. 2b: unicast vs multicast energy (mJ)",
        &["Payload", "UC S d=1", "UC R d=1", "UC S d=7", "UC R d=7", "kcast S k=7", "kcast R k=7"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
