//! Ablation: the §3.5 batching/checkpoint optimization — optimistic
//! pre-commit without per-round signature checks, full verification every
//! c rounds. Measures the replica-side verification energy saved with a
//! correct leader.
//!
//! The intervals run as explicit scenarios on one `eesmr-driver` grid,
//! so `EESMR_WORKERS` parallelises the sweep and `EESMR_QUICK=1`
//! shrinks every cell to smoke size.

use eesmr_bench::{print_table, Csv};
use eesmr_driver::{Driver, ScenarioGrid};
use eesmr_sim::{Protocol, Scenario, StopWhen};

const INTERVALS: [u64; 5] = [0, 2, 4, 8, 16];

fn main() {
    let driver = Driver::from_env();
    let mut grid = ScenarioGrid::named("ablation_checkpoint");
    for interval in INTERVALS {
        let mut s = Scenario::new(Protocol::Eesmr, 10, 3).stop(StopWhen::Blocks(32));
        if interval > 0 {
            s = s.checkpoint_every(interval);
        }
        grid = grid.scenario(format!("c{interval}"), s);
    }
    let suite = driver.run_grid(&grid);

    let mut csv = Csv::create(
        "ablation_checkpoint",
        &["checkpoint_interval", "replica_mj_per_smr", "replica_verifies_per_smr"],
    );
    let mut rows = Vec::new();
    for interval in INTERVALS {
        let report = suite.by_label(&format!("c{interval}")).expect("cell ran").report();
        let blocks = report.committed_height().max(1) as f64;
        let replica: f64 = (1..10).map(|id| report.node_energy_per_block_mj(id)).sum::<f64>() / 9.0;
        let verifies: f64 =
            report.nodes[1..].iter().map(|n| n.verifies as f64).sum::<f64>() / (9.0 * blocks);
        let label = if interval == 0 { "off".to_string() } else { format!("c={interval}") };
        csv.rowd(&[&interval, &replica, &verifies]);
        rows.push(vec![label, format!("{replica:.0}"), format!("{verifies:.2}")]);
    }
    print_table(
        "Ablation: checkpoint optimization (replica mJ & verifies per SMR, n=10 k=3)",
        &["Checkpoint", "Replica mJ/SMR", "Verifies/SMR"],
        &rows,
    );
    println!("wrote {}", csv.path().display());
}
