//! Property tests for the workload subsystem's determinism contract:
//! same-seed bit-identity, mean-rate convergence of the stochastic
//! arrival processes, and the closed-loop in-flight bound.

use eesmr_core::{Block, Command, TxPool, WorkloadSource};
use eesmr_net::SimTime;
use eesmr_workload::{ArrivalProcess, ArrivalSampler, Skew, Workload};
use proptest::prelude::*;

/// The first `count` arrival times of one sampler stream.
fn trace(process: ArrivalProcess, weight_ppm: u64, seed: u64, count: usize) -> Vec<u64> {
    let mut sampler = ArrivalSampler::new(process, weight_ppm, seed);
    let mut t = 0;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match sampler.next_after(t) {
            Some(next) => {
                t = next;
                out.push(next);
            }
            None => break,
        }
    }
    out
}

/// A process drawn from one of the four families, parameterized by raw
/// test inputs.
fn make_process(kind: u8, rate: u32, a: u32, b: u32) -> ArrivalProcess {
    match kind % 4 {
        0 => ArrivalProcess::Constant { rate },
        1 => ArrivalProcess::Poisson { rate },
        2 => ArrivalProcess::Bursty { rate, on_ms: 1 + a % 200, off_ms: 1 + b % 200 },
        _ => ArrivalProcess::Diurnal {
            base: rate,
            amplitude: a % (rate / 2 + 1),
            period_ms: 50 + b % 2_000,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same parameters → bit-identical arrival traces; a
    /// different seed moves at least one arrival for the stochastic
    /// families.
    #[test]
    fn same_seed_streams_are_bit_identical(
        kind in 0u8..4,
        rate in 200u32..20_000,
        a in any::<u32>(),
        b in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let process = make_process(kind, rate, a, b);
        let first = trace(process, 1_000_000, seed, 300);
        let second = trace(process, 1_000_000, seed, 300);
        prop_assert_eq!(&first, &second, "same-seed traces diverged for {:?}", process);
        if kind % 4 != 0 {
            let other = trace(process, 1_000_000, seed ^ 0xD1CE, 300);
            prop_assert_ne!(&first, &other, "seed ignored by {:?}", process);
        }
    }

    /// Poisson mean rate converges: over a long horizon the arrival
    /// count is within 15 % of rate × time.
    #[test]
    fn poisson_mean_rate_converges(rate in 500u32..20_000, seed in any::<u64>()) {
        let process = ArrivalProcess::Poisson { rate };
        let times = trace(process, 1_000_000, seed, 4_000);
        let horizon_us = *times.last().unwrap() as f64;
        let measured = times.len() as f64 / (horizon_us / 1e6);
        let expect = rate as f64;
        prop_assert!(
            (measured - expect).abs() < 0.15 * expect,
            "Poisson rate {expect} tx/s measured {measured:.1}"
        );
    }

    /// Bursty (on/off MMPP) mean rate converges to
    /// `rate · on/(on + off)`. Duty-cycle averaging needs many on/off
    /// cycles, so this measures over a fixed horizon of ~80 cycles
    /// rather than a fixed arrival count.
    #[test]
    fn bursty_mean_rate_converges(
        rate in 2_000u32..8_000,
        on_ms in 10u32..60,
        off_ms in 10u32..60,
        seed in any::<u64>(),
    ) {
        let process = ArrivalProcess::Bursty { rate, on_ms, off_ms };
        let horizon_us = 80 * (on_ms + off_ms) as u64 * 1_000;
        let mut sampler = ArrivalSampler::new(process, 1_000_000, seed);
        let mut t = 0;
        let mut count = 0u64;
        loop {
            match sampler.next_after(t) {
                Some(next) if next <= horizon_us => {
                    t = next;
                    count += 1;
                }
                _ => break,
            }
        }
        let measured = count as f64 / (horizon_us as f64 / 1e6);
        let expect = process.mean_rate_milli(1_000_000) as f64 / 1_000.0;
        prop_assert!(
            (measured - expect).abs() < 0.3 * expect,
            "MMPP duty-cycled rate {expect:.1} tx/s measured {measured:.1} \
             (rate {rate}, on {on_ms} ms, off {off_ms} ms)"
        );
    }

    /// Driving a closed-loop source against a TxPool with an arbitrary
    /// commit pattern never pushes the in-flight count past the bound.
    #[test]
    fn closed_loop_in_flight_never_exceeds_bound(
        bound in 1usize..24,
        commits in prop::collection::vec(any::<u8>(), 20..200),
        seed in any::<u64>(),
    ) {
        let workload = Workload::new(ArrivalProcess::Poisson { rate: 50_000 })
            .closed_loop(bound);
        let mut source = workload.node_source(0, 0, 1, seed);
        let mut pool = TxPool::new();
        pool.client_only();
        let mut now = 0u64;
        let mut parent = Block::genesis();
        for (step, commit) in commits.iter().enumerate() {
            let Some(delay) = source.next_arrival_in(now) else { break };
            now += delay;
            if let Some(cmd) = source.arrival(now, pool.in_flight()) {
                pool.submit_at(cmd, now);
            }
            prop_assert!(
                pool.in_flight() <= bound,
                "in-flight {} exceeded bound {bound} at step {step}",
                pool.in_flight()
            );
            // Commit a batch of pending commands every few arrivals.
            if commit % 3 == 0 {
                let batch: Vec<Command> = pool.next_batch(1 + (*commit as usize) % 8);
                if !batch.is_empty() {
                    let block = Block::extending(&parent, 1, 3 + step as u64, batch);
                    pool.remove_committed(&block, SimTime::from_micros(now));
                    parent = block;
                }
            }
        }
        prop_assert_eq!(
            pool.in_flight() + pool.tx_latencies().count() as usize,
            source.injected() as usize,
            "every injected transaction is either in flight or settled"
        );
    }

    /// Per-node skew splitting preserves the stream: a node at weight w
    /// sees ≈ w × the full-rate arrival count over the same horizon.
    #[test]
    fn skewed_node_rate_scales_with_weight(seed in any::<u64>(), slot in 0usize..6) {
        let process = ArrivalProcess::Poisson { rate: 24_000 };
        let weight = Skew::Zipf.weight_ppm(slot, 6);
        let times = trace(process, weight, seed, 2_000);
        prop_assert!(!times.is_empty());
        let horizon_us = *times.last().unwrap() as f64;
        let measured = times.len() as f64 / (horizon_us / 1e6);
        let expect = 24_000.0 * weight as f64 / 1e6;
        prop_assert!(
            (measured - expect).abs() < 0.2 * expect,
            "slot {slot} (weight {weight} ppm): expected {expect:.1} tx/s, measured {measured:.1}"
        );
    }
}

/// Diurnal arrivals actually follow the sinusoid: the peak half-cycle
/// carries measurably more arrivals than the trough half-cycle.
#[test]
fn diurnal_rate_tracks_the_sinusoid() {
    let period_ms = 1_000u32;
    let process = ArrivalProcess::Diurnal { base: 10_000, amplitude: 8_000, period_ms };
    let times = trace(process, 1_000_000, 42, 30_000);
    let period_us = period_ms as u64 * 1_000;
    // First half-cycle of each period (sin ≥ 0) vs second (sin ≤ 0).
    let (mut peak, mut trough) = (0u64, 0u64);
    for t in &times {
        if t % period_us < period_us / 2 {
            peak += 1;
        } else {
            trough += 1;
        }
    }
    assert!(peak > trough * 2, "peak half-cycles should dominate: {peak} vs {trough} arrivals");
}

/// NodeWorkload streams are reproducible end to end (arrival command
/// bytes included), and independent across nodes.
#[test]
fn node_sources_are_reproducible() {
    let w = Workload::new(ArrivalProcess::Bursty { rate: 9_000, on_ms: 40, off_ms: 80 })
        .skew(Skew::Hotspot { pct: 70 });
    let drive = |node: u32, slot: usize| {
        let mut src = w.node_source(node, slot, 4, 7);
        let mut now = 0;
        let mut out = Vec::new();
        for _ in 0..200 {
            let Some(delay) = src.next_arrival_in(now) else { break };
            now += delay;
            if let Some(cmd) = src.arrival(now, 0) {
                out.push((now, cmd));
            }
        }
        out
    };
    assert_eq!(drive(0, 0), drive(0, 0), "same node replays identically");
    let a = drive(0, 0);
    let b = drive(1, 1);
    assert!(!a.is_empty() && !b.is_empty());
    assert_ne!(
        a.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
        b.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
        "per-node streams are decorrelated"
    );
}
