//! Deterministic client-workload generation for EESMR experiments.
//!
//! The paper evaluates EESMR under sustained client traffic; this crate
//! models that traffic instead of the uniform synthetic `offered_load`
//! knob: a [`Workload`] combines an [`ArrivalProcess`] (constant,
//! Poisson, bursty on/off, diurnal), a per-node [`Skew`] (uniform, Zipf,
//! hotspot), a [`PayloadDist`] for transaction sizes, and an
//! [`Injection`] discipline (open loop, or closed loop with a bounded
//! number of in-flight transactions per node).
//!
//! [`Workload::node_source`] materializes one node's share as a
//! [`NodeWorkload`] implementing
//! [`eesmr_core::WorkloadSource`] — the protocol crates drive it from
//! arrival timer events and stamp each injected transaction with its
//! birth time, so run reports can attribute end-to-end commit latency
//! per transaction.
//!
//! **Determinism contract:** all sampling is integer/fixed-point off the
//! vendored `rand` (see [`process`]), and each node's stream is seeded
//! only by `(seed, node)` — a workload trace is bit-identical across
//! worker counts, scheduler backends, and platforms.
//!
//! ```
//! use eesmr_workload::{ArrivalProcess, Skew, Workload};
//!
//! let w = Workload::new(ArrivalProcess::Poisson { rate: 2_000 })
//!     .skew(Skew::Hotspot { pct: 80 })
//!     .closed_loop(32);
//! assert_eq!(w.label(), "poisson2000/hot80/closed32");
//! // Node 0 carries 80 % of the load; the rest split the remainder.
//! assert_eq!(w.skew.weight_ppm(0, 5), 800_000);
//! assert_eq!(w.skew.weight_ppm(1, 5), 50_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;

use eesmr_core::{Command, WorkloadSource};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub use process::{ArrivalProcess, ArrivalSampler};

/// How the system-wide arrival rate splits across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Skew {
    /// Every node carries an equal share.
    Uniform,
    /// Node `i` carries a share proportional to `1/(i+1)` (Zipf with
    /// exponent 1 over node rank).
    Zipf,
    /// The first node carries `pct` percent of the load; the rest split
    /// the remainder evenly.
    Hotspot {
        /// Percent of the total load on the hot node (clamped to 100).
        pct: u32,
    },
}

impl Skew {
    /// The load share of `slot` among `slots` nodes, in parts per
    /// million. Shares sum to ≤ 10⁶ (integer rounding loses at most
    /// `slots` ppm).
    pub fn weight_ppm(&self, slot: usize, slots: usize) -> u64 {
        assert!(slot < slots, "slot {slot} out of range for {slots} slots");
        const ONE: u64 = 1_000_000;
        match *self {
            Skew::Uniform => {
                let base = ONE / slots as u64;
                let rem = (ONE % slots as u64) as usize;
                base + u64::from(slot < rem)
            }
            Skew::Zipf => {
                let raw = |i: usize| 1_000_000_000u64 / (i as u64 + 1);
                let total: u64 = (0..slots).map(raw).sum();
                raw(slot) * ONE / total
            }
            Skew::Hotspot { pct } => {
                let pct = pct.min(100) as u64;
                if slot == 0 || slots == 1 {
                    if slots == 1 {
                        ONE
                    } else {
                        pct * 10_000
                    }
                } else {
                    (ONE - pct * 10_000) / (slots as u64 - 1)
                }
            }
        }
    }

    /// Short label for scenario names, e.g. `zipf` or `hot90`.
    pub fn label(&self) -> String {
        match self {
            Skew::Uniform => "uniform".to_string(),
            Skew::Zipf => "zipf".to_string(),
            Skew::Hotspot { pct } => format!("hot{}", (*pct).min(100)),
        }
    }
}

/// Transaction payload sizes.
///
/// Sampled sizes are floored at 12 bytes: every generated command
/// carries a node-id + sequence-number header so commands are globally
/// unique, and the header sets the minimum wire size. Distributions
/// whose support lies below 12 B therefore all produce 12-byte
/// transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadDist {
    /// Every transaction is exactly this many bytes.
    Fixed(usize),
    /// Uniform between `min` and `max` bytes inclusive.
    Uniform {
        /// Smallest payload.
        min: usize,
        /// Largest payload.
        max: usize,
    },
    /// Mostly `small`-byte transactions with `large_pct` percent
    /// `large`-byte ones (a point-of-sale / firmware-blob mix).
    Bimodal {
        /// Common payload size.
        small: usize,
        /// Rare payload size.
        large: usize,
        /// Percent of transactions at the large size (clamped to 100).
        large_pct: u32,
    },
}

impl PayloadDist {
    /// Samples one payload size.
    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            PayloadDist::Fixed(len) => len,
            PayloadDist::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), min.max(max));
                lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
            }
            PayloadDist::Bimodal { small, large, large_pct } => {
                if rng.next_u64() % 100 < large_pct.min(100) as u64 {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// Short label, e.g. `16B` or `16..256B`.
    pub fn label(&self) -> String {
        match self {
            PayloadDist::Fixed(len) => format!("{len}B"),
            PayloadDist::Uniform { min, max } => format!("{min}..{max}B"),
            PayloadDist::Bimodal { small, large, large_pct } => {
                format!("{small}B+{large_pct}%x{large}B")
            }
        }
    }
}

/// Open- vs closed-loop injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Injection {
    /// Arrivals inject unconditionally (an open system).
    Open,
    /// A node injects only while it has fewer than `max_in_flight`
    /// uncommitted transactions of its own — the classic closed-loop
    /// client that waits for completions before issuing more.
    Closed {
        /// In-flight bound per node.
        max_in_flight: usize,
    },
}

/// A complete client-workload description: what arrives, where, how big,
/// and under which loop discipline. `Copy + Eq + Hash` so workloads can
/// serve as a grid-cell axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The system-wide arrival process.
    pub arrival: ArrivalProcess,
    /// Per-node load split.
    pub skew: Skew,
    /// Transaction payload sizes.
    pub payload: PayloadDist,
    /// Injection discipline.
    pub injection: Injection,
}

impl Workload {
    /// A workload with the given arrival process, uniform skew, 16-byte
    /// payloads, and open-loop injection.
    pub fn new(arrival: ArrivalProcess) -> Self {
        Workload {
            arrival,
            skew: Skew::Uniform,
            payload: PayloadDist::Fixed(16),
            injection: Injection::Open,
        }
    }

    /// Sets the per-node skew.
    pub fn skew(mut self, skew: Skew) -> Self {
        self.skew = skew;
        self
    }

    /// Sets the payload-size distribution.
    pub fn payload(mut self, payload: PayloadDist) -> Self {
        self.payload = payload;
        self
    }

    /// Switches to closed-loop injection with the given per-node
    /// in-flight bound (clamped to ≥ 1).
    pub fn closed_loop(mut self, max_in_flight: usize) -> Self {
        self.injection = Injection::Closed { max_in_flight: max_in_flight.max(1) };
        self
    }

    /// Label used in scenario names and the `workload` report column,
    /// e.g. `poisson2000/zipf/open` (payload is appended only when it
    /// differs from the 16-byte default).
    pub fn label(&self) -> String {
        let mut label = format!("{}/{}", self.arrival.label(), self.skew.label());
        match self.injection {
            Injection::Open => label.push_str("/open"),
            Injection::Closed { max_in_flight } => {
                label.push_str(&format!("/closed{max_in_flight}"));
            }
        }
        if self.payload != PayloadDist::Fixed(16) {
            label.push_str(&format!("/{}", self.payload.label()));
        }
        label
    }

    /// Materializes one node's share of this workload. `node` namespaces
    /// the generated commands (so two nodes never fabricate identical
    /// bytes); `slot`/`slots` index into the skew (protocols whose node 0
    /// is infrastructure — the trusted hub — map spokes to slots
    /// `0..n-1`); `seed` is the scenario seed.
    pub fn node_source(&self, node: u32, slot: usize, slots: usize, seed: u64) -> NodeWorkload {
        let weight = self.skew.weight_ppm(slot, slots);
        NodeWorkload {
            node,
            sampler: ArrivalSampler::new(self.arrival, weight, mix(seed, node as u64, 0xA11C)),
            payload: self.payload,
            injection: self.injection,
            payload_rng: StdRng::seed_from_u64(mix(seed, node as u64, 0x9A10)),
            seq: 0,
            injected: 0,
            suppressed: 0,
        }
    }
}

/// SplitMix64-style seed derivation: decorrelates per-node RNG streams
/// from the scenario seed and from each other.
fn mix(seed: u64, node: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(node.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One node's live workload stream: the [`WorkloadSource`] the protocol
/// crates drive from arrival timer events.
#[derive(Debug)]
pub struct NodeWorkload {
    node: u32,
    sampler: ArrivalSampler,
    payload: PayloadDist,
    injection: Injection,
    payload_rng: StdRng,
    seq: u64,
    injected: u64,
    suppressed: u64,
}

impl NodeWorkload {
    /// Transactions injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Arrivals suppressed by the closed-loop bound.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Builds the next transaction: node id and sequence number in the
    /// first 12 bytes (so commands are globally unique), zero-padded to
    /// the sampled payload size.
    fn build_command(&mut self, len: usize) -> Command {
        let seq = self.seq;
        self.seq += 1;
        let mut bytes = vec![0u8; len.max(12)];
        bytes[..4].copy_from_slice(&self.node.to_le_bytes());
        bytes[4..12].copy_from_slice(&seq.to_le_bytes());
        Command::new(bytes)
    }
}

impl WorkloadSource for NodeWorkload {
    fn next_arrival_in(&mut self, now_us: u64) -> Option<u64> {
        // ≥ 1 µs keeps arrival events strictly advancing virtual time
        // (caps one node at 10⁶ arrivals per virtual second).
        self.sampler.next_after(now_us).map(|at| at.saturating_sub(now_us).max(1))
    }

    fn arrival(&mut self, _now_us: u64, in_flight: usize) -> Option<Command> {
        if let Injection::Closed { max_in_flight } = self.injection {
            if in_flight >= max_in_flight {
                self.suppressed += 1;
                return None;
            }
        }
        let len = self.payload.sample(&mut self.payload_rng);
        self.injected += 1;
        Some(self.build_command(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_weights_sum_close_to_one() {
        for skew in [Skew::Uniform, Skew::Zipf, Skew::Hotspot { pct: 90 }] {
            for slots in [1usize, 2, 5, 16] {
                let sum: u64 = (0..slots).map(|s| skew.weight_ppm(s, slots)).sum();
                assert!(
                    sum <= 1_000_000 && sum >= 1_000_000 - slots as u64,
                    "{skew:?} over {slots} slots summed to {sum} ppm"
                );
            }
        }
    }

    #[test]
    fn zipf_is_rank_decreasing_and_hotspot_concentrates() {
        let w: Vec<u64> = (0..6).map(|s| Skew::Zipf.weight_ppm(s, 6)).collect();
        assert!(w.windows(2).all(|p| p[0] >= p[1]), "{w:?}");
        assert!(w[0] > 2 * w[5], "rank 0 dominates rank 5: {w:?}");
        assert_eq!(Skew::Hotspot { pct: 100 }.weight_ppm(1, 4), 0);
        assert_eq!(Skew::Hotspot { pct: 50 }.weight_ppm(0, 3), 500_000);
    }

    #[test]
    fn payload_dist_samples_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = PayloadDist::Uniform { min: 16, max: 64 };
        for _ in 0..200 {
            let len = d.sample(&mut rng);
            assert!((16..=64).contains(&len));
        }
        let b = PayloadDist::Bimodal { small: 16, large: 256, large_pct: 25 };
        let large = (0..400).filter(|_| b.sample(&mut rng) == 256).count();
        assert!((40..160).contains(&large), "~25% large, got {large}/400");
    }

    #[test]
    fn commands_are_namespaced_per_node() {
        let w = Workload::new(ArrivalProcess::Constant { rate: 100 });
        let mut a = w.node_source(0, 0, 2, 42);
        let mut b = w.node_source(1, 1, 2, 42);
        let ca = a.arrival(0, 0).unwrap();
        let cb = b.arrival(0, 0).unwrap();
        assert_ne!(ca, cb, "same seq on different nodes must differ");
        assert_eq!(ca.len(), 16);
    }

    #[test]
    fn closed_loop_suppresses_at_the_bound() {
        let w = Workload::new(ArrivalProcess::Poisson { rate: 100 }).closed_loop(4);
        let mut src = w.node_source(0, 0, 1, 1);
        assert!(src.arrival(0, 3).is_some(), "below the bound injects");
        assert!(src.arrival(0, 4).is_none(), "at the bound suppresses");
        assert!(src.arrival(0, 9).is_none(), "above the bound suppresses");
        assert_eq!(src.injected(), 1);
        assert_eq!(src.suppressed(), 2);
    }

    #[test]
    fn labels_are_compact_and_csv_safe() {
        let w = Workload::new(ArrivalProcess::Bursty { rate: 3_000, on_ms: 50, off_ms: 150 })
            .skew(Skew::Zipf)
            .payload(PayloadDist::Uniform { min: 16, max: 128 });
        let label = w.label();
        assert_eq!(label, "bursty3000on50off150/zipf/open/16..128B");
        assert!(!label.contains(',') && !label.contains(' '));
    }
}
