//! Arrival processes and their deterministic fixed-point samplers.
//!
//! Every sampler draws from the vendored xoshiro-based `StdRng` and does
//! *all* arithmetic in integers (Q32 fixed point for logarithms, Q16 for
//! the sine table), so an arrival trace is a pure function of
//! `(process, weight, seed)` — bit-identical across platforms, worker
//! counts, and event-scheduler backends. Times are virtual microseconds,
//! matching `eesmr_net::SimTime`; rates are transactions per second.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How client transactions arrive over virtual time.
///
/// Rates are *system-wide* transactions per second; a
/// [`Skew`](crate::Skew) splits them across nodes. All variants are plain
/// integers so a process can sit on grid-cell keys (`Copy + Eq + Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals at `rate` tx/s (deterministic spacing, no
    /// randomness).
    Constant {
        /// Transactions per second.
        rate: u32,
    },
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1/rate`.
    Poisson {
        /// Mean transactions per second.
        rate: u32,
    },
    /// An on/off Markov-modulated Poisson process: Poisson arrivals at
    /// `rate` while ON, silence while OFF, with exponentially distributed
    /// state holding times. Mean rate is `rate · on/(on + off)`.
    Bursty {
        /// Transactions per second during ON periods.
        rate: u32,
        /// Mean ON-period length, milliseconds.
        on_ms: u32,
        /// Mean OFF-period length, milliseconds.
        off_ms: u32,
    },
    /// A sinusoidal rate over sim time — the diurnal load curve:
    /// `rate(t) = base + amplitude · sin(2πt / period)`. Sampled by
    /// thinning a Poisson stream at the peak rate. The amplitude is
    /// clamped to `base` so the rate never clips at zero and the
    /// long-run mean stays exactly `base`.
    Diurnal {
        /// Mean transactions per second.
        base: u32,
        /// Swing around the mean, tx/s (effective value ≤ `base`).
        amplitude: u32,
        /// Cycle length, milliseconds.
        period_ms: u32,
    },
}

impl ArrivalProcess {
    /// Short label for scenario names and report rows, e.g. `poisson2000`.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Constant { rate } => format!("const{rate}"),
            ArrivalProcess::Poisson { rate } => format!("poisson{rate}"),
            ArrivalProcess::Bursty { rate, on_ms, off_ms } => {
                format!("bursty{rate}on{on_ms}off{off_ms}")
            }
            ArrivalProcess::Diurnal { base, amplitude, period_ms } => {
                format!("diurnal{base}a{amplitude}p{period_ms}")
            }
        }
    }

    /// The long-run mean rate in milli-transactions per second at weight
    /// `weight_ppm` parts-per-million of the system rate (used by tests
    /// to check convergence).
    pub fn mean_rate_milli(&self, weight_ppm: u64) -> u64 {
        let scale = |rate: u32| (rate as u64).saturating_mul(weight_ppm) / 1_000;
        match *self {
            ArrivalProcess::Constant { rate } | ArrivalProcess::Poisson { rate } => scale(rate),
            ArrivalProcess::Bursty { rate, on_ms, off_ms } => {
                let total = (on_ms as u64) + (off_ms as u64);
                scale(rate)
                    .saturating_mul(on_ms as u64)
                    .checked_div(total)
                    .unwrap_or_else(|| scale(rate))
            }
            ArrivalProcess::Diurnal { base, .. } => scale(base),
        }
    }
}

/// ln(2) in Q32 fixed point.
const LN2_Q32: u64 = 2_977_044_472;

/// `ln(1 + i/64) · 2³²` for `i = 0..=64` — the mantissa-log table behind
/// the fixed-point exponential sampler.
const LN_Q32: [u64; 65] = [
    0,
    66_589_974,
    132_163_268,
    196_750_459,
    260_380_768,
    323_082_134,
    384_881_291,
    445_803_834,
    505_874_286,
    565_116_154,
    623_551_984,
    681_203_418,
    738_091_233,
    794_235_396,
    849_655_098,
    904_368_797,
    958_394_255,
    1_011_748_572,
    1_064_448_219,
    1_116_509_066,
    1_167_946_415,
    1_218_775_023,
    1_269_009_132,
    1_318_662_486,
    1_367_748_360,
    1_416_279_581,
    1_464_268_541,
    1_511_727_226,
    1_558_667_227,
    1_605_099_758,
    1_651_035_675,
    1_696_485_489,
    1_741_459_379,
    1_785_967_210,
    1_830_018_543,
    1_873_622_647,
    1_916_788_510,
    1_959_524_856,
    2_001_840_147,
    2_043_742_599,
    2_085_240_191,
    2_126_340_670,
    2_167_051_565,
    2_207_380_193,
    2_247_333_665,
    2_286_918_897,
    2_326_142_616,
    2_365_011_363,
    2_403_531_508,
    2_441_709_246,
    2_479_550_612,
    2_517_061_482,
    2_554_247_578,
    2_591_114_477,
    2_627_667_611,
    2_663_912_276,
    2_699_853_634,
    2_735_496_721,
    2_770_846_446,
    2_805_907_598,
    2_840_684_851,
    2_875_182_766,
    2_909_405_794,
    2_943_358_281,
    2_977_044_472,
];

/// `sin(iπ/32) · 2¹⁶` for `i = 0..=16` — a quarter-wave sine table in Q16.
const SIN_Q16: [i64; 17] = [
    0, 6_424, 12_785, 19_024, 25_080, 30_893, 36_410, 41_576, 46_341, 50_660, 54_491, 57_798,
    60_547, 62_714, 64_277, 65_220, 65_536,
];

/// One sample of the unit-mean exponential distribution in Q32 fixed
/// point: `-ln(U)` for `U` uniform in `(0, 1]`, computed entirely in
/// integers (leading-zero count + mantissa-log table with linear
/// interpolation).
pub fn exp_q32(rng: &mut StdRng) -> u64 {
    let u = rng.next_u64() | 1; // avoid ln(0)
    let msb = 63 - u.leading_zeros() as u64;
    // Normalize the mantissa to Q32 in [1, 2).
    let m_q32 = if msb >= 32 { u >> (msb - 32) } else { u << (32 - msb) };
    let frac = m_q32 - (1u64 << 32); // Q32 fraction in [0, 1)
    let i = (frac >> 26) as usize; // 64 table cells
    let rem = frac & ((1 << 26) - 1);
    let ln_m = LN_Q32[i] + (((LN_Q32[i + 1] - LN_Q32[i]) * rem) >> 26);
    let ln_u = msb * LN2_Q32 + ln_m; // ln(u) for the integer u ∈ [1, 2⁶⁴)
    64 * LN2_Q32 - ln_u // -ln(u / 2⁶⁴)
}

/// An exponential inter-arrival sample in microseconds for a process at
/// `rate_milli` milli-transactions per second (mean `10⁹ / rate_milli`
/// µs), clamped to at least 1 µs.
fn exp_interarrival_us(rng: &mut StdRng, rate_milli: u64) -> u64 {
    debug_assert!(rate_milli > 0);
    let mean_us = 1_000_000_000u64 / rate_milli.max(1);
    let sample = (exp_q32(rng) as u128 * mean_us.max(1) as u128) >> 32;
    (sample as u64).max(1)
}

/// `sin(2π · pos/2¹⁶)` in Q16, from the quarter-wave table with linear
/// interpolation. `pos` is the phase in 1/65536ths of a full cycle.
fn sin_cycle_q16(pos: u64) -> i64 {
    let pos = pos & 0xFFFF; // one cycle = 2^16 phase units
    let idx = pos >> 10; // 64 coarse steps per cycle
    let rem = (pos & 0x3FF) as i64; // Q10 within a step
    let step = |i: u64| -> i64 {
        let p = i % 64;
        let (quad, off) = (p / 16, (p % 16) as usize);
        match quad {
            0 => SIN_Q16[off],
            1 => SIN_Q16[16 - off],
            2 => -SIN_Q16[off],
            _ => -SIN_Q16[16 - off],
        }
    };
    let a = step(idx);
    let b = step(idx + 1);
    a + (((b - a) * rem) >> 10)
}

/// A deterministic arrival-time stream for one node: the node's share
/// (`weight_ppm` parts-per-million) of an [`ArrivalProcess`], advanced by
/// [`next_after`](ArrivalSampler::next_after).
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    weight_ppm: u64,
    rng: StdRng,
    /// Arrivals produced so far (drives the drift-free constant stream).
    count: u64,
    /// Bursty: whether the MMPP is currently in the ON state.
    state_on: bool,
    /// Bursty: absolute µs at which the current state ends (0 = not yet
    /// initialized).
    state_until_us: u64,
}

impl ArrivalSampler {
    /// A sampler for `weight_ppm` parts-per-million of `process`, with
    /// its own RNG stream derived from `seed`.
    pub fn new(process: ArrivalProcess, weight_ppm: u64, seed: u64) -> Self {
        ArrivalSampler {
            process,
            weight_ppm,
            rng: StdRng::seed_from_u64(seed),
            count: 0,
            state_on: false,
            state_until_us: 0,
        }
    }

    /// This node's share of `rate`, in milli-transactions per second.
    fn scaled_milli(&self, rate: u32) -> u64 {
        (rate as u64).saturating_mul(self.weight_ppm) / 1_000
    }

    /// The absolute time (µs) of the next arrival strictly from `now_us`
    /// onwards, or `None` if this node's share of the process is silent
    /// (zero effective rate). Each call advances the stream by exactly
    /// one arrival.
    pub fn next_after(&mut self, now_us: u64) -> Option<u64> {
        let at = match self.process {
            ArrivalProcess::Constant { rate } => {
                let rate_m = self.scaled_milli(rate);
                if rate_m == 0 {
                    return None;
                }
                // Arrival k sits at k·10⁹/rate_m µs exactly: integer
                // rounding never accumulates into rate drift.
                let k = self.count + 1;
                let t = (k as u128 * 1_000_000_000u128 / rate_m as u128) as u64;
                t.max(now_us)
            }
            ArrivalProcess::Poisson { rate } => {
                let rate_m = self.scaled_milli(rate);
                if rate_m == 0 {
                    return None;
                }
                now_us + exp_interarrival_us(&mut self.rng, rate_m)
            }
            ArrivalProcess::Bursty { rate, on_ms, off_ms } => {
                let rate_m = self.scaled_milli(rate);
                if rate_m == 0 {
                    return None;
                }
                let on_mean_us = (on_ms as u64).saturating_mul(1_000).max(1);
                let off_mean_us = (off_ms as u64).saturating_mul(1_000).max(1);
                if self.state_until_us == 0 && !self.state_on {
                    // Streams start ON so short runs still see traffic.
                    self.state_on = true;
                    self.state_until_us = hold_us(&mut self.rng, on_mean_us);
                }
                let mut t = now_us;
                loop {
                    if self.state_on {
                        // Memorylessness makes re-sampling after a state
                        // switch exact, not an approximation.
                        let candidate = t + exp_interarrival_us(&mut self.rng, rate_m);
                        if candidate <= self.state_until_us {
                            break candidate;
                        }
                        t = self.state_until_us;
                        self.state_on = false;
                        self.state_until_us = t + hold_us(&mut self.rng, off_mean_us);
                    } else {
                        t = t.max(self.state_until_us);
                        self.state_on = true;
                        self.state_until_us = t + hold_us(&mut self.rng, on_mean_us);
                    }
                }
            }
            ArrivalProcess::Diurnal { base, amplitude, period_ms } => {
                // Clamp so rate(t) never clips at 0 — the long-run mean
                // is then exactly `base`, matching `mean_rate_milli`.
                let amplitude = amplitude.min(base);
                let peak_m = self.scaled_milli(base.saturating_add(amplitude));
                if peak_m == 0 {
                    return None;
                }
                let base_m = self.scaled_milli(base) as i64;
                let amp_m = self.scaled_milli(amplitude) as i64;
                let period_us = (period_ms as u64).saturating_mul(1_000).max(1);
                // Thinning: candidates at the peak rate, accepted with
                // probability rate(t)/peak.
                let mut t = now_us;
                loop {
                    t += exp_interarrival_us(&mut self.rng, peak_m);
                    let phase = ((t % period_us) as u128 * 65_536 / period_us as u128) as u64;
                    let rate_m = (base_m + ((amp_m * sin_cycle_q16(phase)) >> 16)).max(0) as u64;
                    debug_assert!(rate_m <= peak_m, "clamped sinusoid stays within its peak");
                    let threshold = ((rate_m as u128) << 32) / peak_m as u128;
                    if ((self.rng.next_u64() >> 32) as u128) < threshold {
                        break t;
                    }
                }
            }
        };
        self.count += 1;
        Some(at)
    }

    /// Arrivals produced so far.
    pub fn arrivals(&self) -> u64 {
        self.count
    }
}

/// An exponentially distributed state-holding time with the given mean.
fn hold_us(rng: &mut StdRng, mean_us: u64) -> u64 {
    let sample = (exp_q32(rng) as u128 * mean_us as u128) >> 32;
    (sample as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_q32_has_unit_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000u64;
        let sum: u128 = (0..n).map(|_| exp_q32(&mut rng) as u128).sum();
        let mean = (sum / n as u128) as f64 / (1u64 << 32) as f64;
        assert!((mean - 1.0).abs() < 0.05, "Exp(1) sample mean was {mean}");
    }

    #[test]
    fn sine_table_hits_the_cardinal_points() {
        assert_eq!(sin_cycle_q16(0), 0);
        assert_eq!(sin_cycle_q16(16_384), 65_536); // 2π/4
        assert_eq!(sin_cycle_q16(32_768), 0); // π
        assert_eq!(sin_cycle_q16(49_152), -65_536); // 3π/2
                                                    // Interpolation is monotone on the rising quarter.
        let q: Vec<i64> = (0..=64).map(|i| sin_cycle_q16(i * 256)).collect();
        assert!(q.windows(2).all(|w| w[0] <= w[1]), "rising quarter must be monotone");
    }

    #[test]
    fn constant_stream_is_evenly_spaced_and_drift_free() {
        let mut s = ArrivalSampler::new(ArrivalProcess::Constant { rate: 1_000 }, 1_000_000, 1);
        let mut t = 0;
        for k in 1..=1_000u64 {
            t = s.next_after(t).unwrap();
            assert_eq!(t, k * 1_000, "arrival {k}");
        }
    }

    #[test]
    fn zero_weight_makes_the_stream_silent() {
        for process in [
            ArrivalProcess::Constant { rate: 100 },
            ArrivalProcess::Poisson { rate: 100 },
            ArrivalProcess::Bursty { rate: 100, on_ms: 10, off_ms: 10 },
            ArrivalProcess::Diurnal { base: 100, amplitude: 50, period_ms: 1_000 },
        ] {
            let mut s = ArrivalSampler::new(process, 0, 3);
            assert_eq!(s.next_after(0), None, "{process:?}");
        }
    }

    #[test]
    fn diurnal_amplitude_is_clamped_so_the_mean_stays_base() {
        // amplitude > base would clip the sinusoid at zero and push the
        // long-run mean above base; the sampler clamps amplitude to base
        // so `mean_rate_milli` stays exact.
        let process = ArrivalProcess::Diurnal { base: 4_000, amplitude: 40_000, period_ms: 200 };
        let mut s = ArrivalSampler::new(process, 1_000_000, 9);
        let horizon_us = 4_000_000; // 20 full cycles
        let (mut t, mut count) = (0u64, 0u64);
        loop {
            match s.next_after(t) {
                Some(next) if next <= horizon_us => {
                    t = next;
                    count += 1;
                }
                _ => break,
            }
        }
        let measured = count as f64 / (horizon_us as f64 / 1e6);
        let expect = process.mean_rate_milli(1_000_000) as f64 / 1_000.0;
        assert_eq!(expect, 4_000.0);
        assert!(
            (measured - expect).abs() < 0.15 * expect,
            "clamped diurnal mean should be ~{expect}, measured {measured:.1}"
        );
    }

    #[test]
    fn arrivals_are_strictly_ordered_in_time() {
        for process in [
            ArrivalProcess::Poisson { rate: 5_000 },
            ArrivalProcess::Bursty { rate: 8_000, on_ms: 20, off_ms: 30 },
            ArrivalProcess::Diurnal { base: 4_000, amplitude: 3_000, period_ms: 200 },
        ] {
            let mut s = ArrivalSampler::new(process, 1_000_000, 11);
            let mut t = 0;
            for _ in 0..500 {
                let next = s.next_after(t).unwrap();
                assert!(next > t, "{process:?} produced a non-advancing arrival");
                t = next;
            }
        }
    }
}
