//! Renders (or validates) a run's telemetry export.
//!
//! ```text
//! metrics_report <metrics.json>            # per-node sparkline/table summary
//! metrics_report --validate <metrics.prom> # CI: parse Prometheus text and
//!                                          # check class sums == totals
//! ```
//!
//! The JSON reader is dependency-free: it scans the line-oriented
//! `eesmr-metrics/v1` layout written by `eesmr_metrics::export::json`.

use std::fs;
use std::process::ExitCode;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Gauges shown in the table, in order.
const GAUGES: [&str; 7] = [
    "tx_in_flight",
    "pool_backlog",
    "forward_retries",
    "batch_fill_pct",
    "queue_events",
    "energy_rate_mj_per_s",
    "view",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--validate" => validate_prometheus(path),
        [path] => render_json(path),
        _ => {
            eprintln!(
                "usage: metrics_report <metrics.json> | metrics_report --validate <metrics.prom>"
            );
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Option<String> {
    match fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("metrics_report: cannot read {path}: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------- JSON view

fn render_json(path: &str) -> ExitCode {
    let Some(text) = read(path) else {
        return ExitCode::FAILURE;
    };
    if !text.contains("eesmr-metrics/v1") {
        eprintln!("metrics_report: {path} is not an eesmr-metrics/v1 export");
        return ExitCode::FAILURE;
    }
    let dt_us = extract_num(&text, "dt_us").unwrap_or(0.0);
    println!("metrics export {path} (dt = {} µs)", dt_us as u64);
    let mut nodes = 0usize;
    for chunk in node_chunks(&text) {
        let Some(node) = extract_num(chunk, "node") else {
            continue;
        };
        nodes += 1;
        let dropped = extract_num(chunk, "dropped").unwrap_or(0.0) as u64;
        let samples = extract_array(chunk, "t_us").len();
        println!("\nnode {} — {samples} samples, {dropped} dropped", node as u64);
        println!("  {:<22} {:>12} {:>12}  trend", "gauge", "last", "peak");
        for gauge in GAUGES {
            let series = extract_array(chunk, gauge);
            if series.is_empty() {
                continue;
            }
            let last = *series.last().unwrap();
            let peak = series.iter().cloned().fold(f64::MIN, f64::max);
            println!("  {:<22} {:>12.2} {:>12.2}  {}", gauge, last, peak, sparkline(&series));
        }
        if let Some(energy) = object_slice(chunk, "by_class") {
            let total = extract_num(chunk, "total_mj").unwrap_or(0.0);
            let mut parts = Vec::new();
            for (name, mj) in object_pairs(energy) {
                if mj > 0.0 {
                    parts.push(format!("{name} {mj:.2}"));
                }
            }
            println!("  energy {total:.2} mJ = {}", parts.join(" + "));
        }
    }
    if nodes == 0 {
        eprintln!("metrics_report: no node series in {path} (was EESMR_METRICS=1 set?)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn sparkline(series: &[f64]) -> String {
    // Downsample long series to a terminal-friendly width.
    const WIDTH: usize = 48;
    let lo = series.iter().cloned().fold(f64::MAX, f64::min);
    let hi = series.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(f64::EPSILON);
    let step = series.len().div_ceil(WIDTH).max(1);
    series
        .chunks(step)
        .map(|chunk| {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let idx = ((mean - lo) / span * (SPARK.len() - 1) as f64).round() as usize;
            SPARK[idx.min(SPARK.len() - 1)]
        })
        .collect()
}

/// Splits the export into per-node chunks (everything from one `"node":`
/// key to the next).
fn node_chunks(text: &str) -> Vec<&str> {
    let mut chunks = Vec::new();
    let mut starts: Vec<usize> = text.match_indices("\"node\":").map(|(i, _)| i).collect();
    starts.push(text.len());
    for w in starts.windows(2) {
        chunks.push(&text[w[0]..w[1]]);
    }
    chunks
}

/// First `"key": <number>` occurrence in `chunk`.
fn extract_num(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = chunk.find(&pat)? + pat.len();
    let rest = chunk[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First `"key": [ ... ]` array in `chunk`, parsed as numbers.
fn extract_array(chunk: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\": [");
    let Some(at) = chunk.find(&pat) else {
        return Vec::new();
    };
    let rest = &chunk[at + pat.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end].split(',').filter_map(|v| v.trim().parse().ok()).collect()
}

/// The `{ ... }` body following `"key":`, if present.
fn object_slice<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": {{");
    let at = chunk.find(&pat)? + pat.len();
    let rest = &chunk[at..];
    Some(&rest[..rest.find('}')?])
}

/// `"name": number` pairs inside an object body.
fn object_pairs(body: &str) -> Vec<(String, f64)> {
    body.split(',')
        .filter_map(|pair| {
            let (name, value) = pair.split_once(':')?;
            let name = name.trim().trim_matches('"').to_string();
            let value = value.trim().parse().ok()?;
            Some((name, value))
        })
        .collect()
}

// ------------------------------------------------------- Prometheus checker

fn validate_prometheus(path: &str) -> ExitCode {
    let Some(text) = read(path) else {
        return ExitCode::FAILURE;
    };
    // node -> (sum of class cells, total)
    let mut class_sums: Vec<(String, f64)> = Vec::new();
    let mut totals: Vec<(String, f64)> = Vec::new();
    let mut metric_lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Exposition format: `name{labels} value` or `name value`.
        let Some((series, value)) = line.rsplit_once(' ') else {
            eprintln!("metrics_report: line {}: no value: {line}", lineno + 1);
            return ExitCode::FAILURE;
        };
        let Ok(value) = value.parse::<f64>() else {
            eprintln!("metrics_report: line {}: non-numeric value: {line}", lineno + 1);
            return ExitCode::FAILURE;
        };
        let name = series.split('{').next().unwrap_or(series);
        if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            eprintln!("metrics_report: line {}: bad metric name: {name}", lineno + 1);
            return ExitCode::FAILURE;
        }
        metric_lines += 1;
        let node = label_value(series, "node").unwrap_or_default();
        if name == "eesmr_energy_class_mj" {
            match class_sums.iter_mut().find(|(n, _)| *n == node) {
                Some((_, sum)) => *sum += value,
                None => class_sums.push((node, value)),
            }
        } else if name == "eesmr_energy_total_mj" {
            totals.push((node, value));
        }
    }
    if metric_lines == 0 {
        eprintln!("metrics_report: {path} contains no metric samples");
        return ExitCode::FAILURE;
    }
    if totals.is_empty() {
        eprintln!("metrics_report: {path} has no eesmr_energy_total_mj series");
        return ExitCode::FAILURE;
    }
    // The breakdown must reconstruct the ledger to the µJ (1e-3 mJ).
    for (node, total) in &totals {
        let sum = class_sums.iter().find(|(n, _)| n == node).map(|(_, s)| *s).unwrap_or(0.0);
        if (sum - total).abs() > 1e-3 {
            eprintln!("metrics_report: node {node}: class sum {sum} mJ != total {total} mJ");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "metrics_report: {path} OK — {metric_lines} samples, {} nodes, class sums match totals to the µJ",
        totals.len()
    );
    ExitCode::SUCCESS
}

/// Value of `label="..."` inside a series name, if present.
fn label_value(series: &str, label: &str) -> Option<String> {
    let pat = format!("{label}=\"");
    let at = series.find(&pat)? + pat.len();
    let rest = &series[at..];
    Some(rest[..rest.find('"')?].to_string())
}
