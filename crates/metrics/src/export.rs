//! Prometheus text-format and JSON renderers for a run's telemetry.
//!
//! Both renderers take the sampled [`MetricsSet`] plus the per-node
//! energy attribution (matrix, total) pairs from the run's meters, so a
//! single `EESMR_METRICS_OUT` file carries the time series *and* the
//! energy-by-class ledger. The extension picks the format: `.prom`/`.txt`
//! renders Prometheus text (final gauge values — Prometheus is a
//! point-in-time exposition format), anything else renders JSON with the
//! full series (consumed by the `metrics_report` binary).

use std::fmt::Write as _;

use eesmr_energy::{EnergyAttribution, EnergyClass, EnergyPhase};

use crate::series::{GaugeKind, MetricsSet};

/// Schema tag stamped into the JSON export.
pub const JSON_SCHEMA: &str = "eesmr-metrics/v1";

/// Renders the final gauge values and the energy ledger in Prometheus
/// text exposition format. `energy[i]` is node `i`'s `(attribution,
/// total_mj)`; the class marginals of each matrix sum to the total, which
/// the `metrics_report --validate` CI step re-checks after a round-trip.
pub fn prometheus(set: &MetricsSet, energy: &[(EnergyAttribution, f64)]) -> String {
    let mut out = String::new();
    for gauge in GaugeKind::ALL {
        let name = format!("eesmr_{}", gauge.as_str());
        let _ = writeln!(out, "# HELP {name} Final sampled value per node.");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (node, series) in set.nodes.iter().enumerate() {
            if let Some(sample) = series.last() {
                let _ = writeln!(out, "{name}{{node=\"{node}\"}} {}", sample.value(gauge));
            }
        }
    }
    let _ =
        writeln!(out, "# HELP eesmr_metrics_dropped_samples Samples evicted by the per-node ring.");
    let _ = writeln!(out, "# TYPE eesmr_metrics_dropped_samples counter");
    for (node, series) in set.nodes.iter().enumerate() {
        let _ =
            writeln!(out, "eesmr_metrics_dropped_samples{{node=\"{node}\"}} {}", series.dropped());
    }

    let _ = writeln!(out, "# HELP eesmr_energy_class_mj Energy attributed per class, mJ.");
    let _ = writeln!(out, "# TYPE eesmr_energy_class_mj gauge");
    for (node, (attr, _)) in energy.iter().enumerate() {
        for class in EnergyClass::ALL {
            let _ = writeln!(
                out,
                "eesmr_energy_class_mj{{node=\"{node}\",class=\"{class}\"}} {}",
                attr.class_mj(class)
            );
        }
    }
    let _ = writeln!(out, "# HELP eesmr_energy_phase_mj Energy attributed per protocol phase, mJ.");
    let _ = writeln!(out, "# TYPE eesmr_energy_phase_mj gauge");
    for (node, (attr, _)) in energy.iter().enumerate() {
        for phase in EnergyPhase::ALL {
            let _ = writeln!(
                out,
                "eesmr_energy_phase_mj{{node=\"{node}\",phase=\"{phase}\"}} {}",
                attr.phase_mj(phase)
            );
        }
    }
    let _ = writeln!(out, "# HELP eesmr_energy_total_mj Total node energy, mJ.");
    let _ = writeln!(out, "# TYPE eesmr_energy_total_mj gauge");
    for (node, (_, total)) in energy.iter().enumerate() {
        let _ = writeln!(out, "eesmr_energy_total_mj{{node=\"{node}\"}} {total}");
    }
    out
}

/// Renders the full series plus the energy ledger as JSON
/// (`eesmr-metrics/v1`). Arrays stay on one line so the dependency-free
/// reader in `metrics_report` can scan them.
pub fn json(set: &MetricsSet, energy: &[(EnergyAttribution, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{JSON_SCHEMA}\",");
    let _ = writeln!(out, "  \"dt_us\": {},", set.dt_us);
    let _ = writeln!(out, "  \"nodes\": [");
    let n = set.nodes.len();
    for (node, series) in set.nodes.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"node\": {node},");
        let _ = writeln!(out, "      \"dropped\": {},", series.dropped());
        let t: Vec<String> = series.samples().map(|s| s.t_us.to_string()).collect();
        let _ = writeln!(out, "      \"t_us\": [{}],", t.join(","));
        let _ = writeln!(out, "      \"series\": {{");
        for (gi, gauge) in GaugeKind::ALL.iter().enumerate() {
            let vals: Vec<String> =
                series.samples().map(|s| format!("{}", s.value(*gauge))).collect();
            let comma = if gi + 1 < GaugeKind::ALL.len() { "," } else { "" };
            let _ = writeln!(out, "        \"{}\": [{}]{comma}", gauge.as_str(), vals.join(","));
        }
        let _ = writeln!(out, "      }},");
        if let Some((attr, total)) = energy.get(node) {
            let by_class: Vec<String> = EnergyClass::ALL
                .iter()
                .map(|&c| format!("\"{c}\": {}", attr.class_mj(c)))
                .collect();
            let by_phase: Vec<String> = EnergyPhase::ALL
                .iter()
                .map(|&p| format!("\"{p}\": {}", attr.phase_mj(p)))
                .collect();
            let _ = writeln!(
                out,
                "      \"energy\": {{ \"total_mj\": {total}, \"by_class\": {{ {} }}, \"by_phase\": {{ {} }} }}",
                by_class.join(", "),
                by_phase.join(", ")
            );
        } else {
            let _ = writeln!(out, "      \"energy\": null");
        }
        let comma = if node + 1 < n { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetricsConfig;
    use crate::series::{ActorGauges, MetricsRecorder};
    use eesmr_energy::{EnergyCategory, EnergyMeter};

    fn sampled_set() -> (MetricsSet, Vec<(EnergyAttribution, f64)>) {
        let cfg = MetricsConfig::on();
        let mut nodes = Vec::new();
        let mut energy = Vec::new();
        for node in 0..2u64 {
            let mut rec = MetricsRecorder::new(&cfg);
            let gauges = ActorGauges { pool_backlog: node + 1, view: 1, ..ActorGauges::default() };
            rec.sample_up_to(cfg.dt_us * 2, &gauges, 3.0);
            nodes.push(rec.finish());
            let mut meter = EnergyMeter::new();
            meter.charge(EnergyCategory::Send, 1.5 * (node + 1) as f64);
            meter.charge_hash(10);
            energy.push((meter.attribution().clone(), meter.total_mj()));
        }
        (MetricsSet { dt_us: cfg.dt_us, nodes }, energy)
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let (set, energy) = sampled_set();
        let text = prometheus(&set, &energy);
        assert!(text.contains("# TYPE eesmr_pool_backlog gauge"));
        assert!(text.contains("eesmr_pool_backlog{node=\"1\"} 2"));
        assert!(text.contains("eesmr_energy_class_mj{node=\"0\",class=\"send\"} 1.5"));
        assert!(text.contains("eesmr_energy_total_mj{node=\"0\"}"));
        // Every non-comment line is `name{labels} value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses");
        }
    }

    #[test]
    fn json_round_trips_class_sums() {
        let (set, energy) = sampled_set();
        let text = json(&set, &energy);
        assert!(text.contains("\"schema\": \"eesmr-metrics/v1\""));
        assert!(text.contains("\"pool_backlog\": [1,1]"));
        // Class marginals in the export sum to the exported total.
        let (attr, total) = &energy[0];
        let class_sum: f64 = EnergyClass::ALL.iter().map(|&c| attr.class_mj(c)).sum();
        assert!((class_sum - total).abs() < 1e-9);
    }
}
