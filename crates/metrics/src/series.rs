//! Fixed-cadence per-node gauge series with drop-oldest ring storage.
//!
//! # Determinism contract
//!
//! Samples are recorded lazily by the simulator: when the next event a
//! node processes carries a timestamp at or past the node's next sampling
//! boundary, the runtime records one sample per elapsed boundary *before*
//! dispatching the event. Because each node's event stream (timestamps and
//! order) is identical for every shard count, worker count, and scheduler
//! backend — the PR-5 determinism contract — the boundary crossings, and
//! therefore every sampled value, are bit-identical too.
//!
//! The one gauge that needs care is queue occupancy: the *global*
//! scheduler queue length at a sampling instant depends on how events are
//! partitioned across shards, so it is not shard-safe. The shard-safe
//! proxy recorded here is `queue_events` — the number of events this node
//! processed in the elapsed sampling window — which measures the same
//! congestion from node-local state only. See ARCHITECTURE.md
//! ("Observability") for the rule new gauges must satisfy.

use std::collections::VecDeque;

use crate::config::MetricsConfig;

/// Gauges sampled per node per cadence tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GaugeKind {
    /// Transactions injected at this node and not yet committed.
    TxInFlight,
    /// Commands queued in this node's pool awaiting batching.
    PoolBacklog,
    /// Cumulative forward-retry floods sent by this node.
    ForwardRetries,
    /// Fill of the most recent proposed batch, percent of the policy max.
    BatchFillPct,
    /// Events this node processed during the elapsed sampling window —
    /// the shard-safe proxy for scheduler queue occupancy.
    QueueEvents,
    /// Energy drawn during the elapsed window, scaled to mJ/s.
    EnergyRateMjPerS,
    /// The node's current view number.
    View,
}

/// Number of gauges in a [`Sample`].
pub const N_GAUGE: usize = 7;

impl GaugeKind {
    /// All gauges, in sample-vector order.
    pub const ALL: [GaugeKind; N_GAUGE] = [
        GaugeKind::TxInFlight,
        GaugeKind::PoolBacklog,
        GaugeKind::ForwardRetries,
        GaugeKind::BatchFillPct,
        GaugeKind::QueueEvents,
        GaugeKind::EnergyRateMjPerS,
        GaugeKind::View,
    ];

    /// Index of this gauge in a sample vector.
    pub fn index(self) -> usize {
        match self {
            GaugeKind::TxInFlight => 0,
            GaugeKind::PoolBacklog => 1,
            GaugeKind::ForwardRetries => 2,
            GaugeKind::BatchFillPct => 3,
            GaugeKind::QueueEvents => 4,
            GaugeKind::EnergyRateMjPerS => 5,
            GaugeKind::View => 6,
        }
    }

    /// Stable snake_case name (Prometheus metric stem, JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            GaugeKind::TxInFlight => "tx_in_flight",
            GaugeKind::PoolBacklog => "pool_backlog",
            GaugeKind::ForwardRetries => "forward_retries",
            GaugeKind::BatchFillPct => "batch_fill_pct",
            GaugeKind::QueueEvents => "queue_events",
            GaugeKind::EnergyRateMjPerS => "energy_rate_mj_per_s",
            GaugeKind::View => "view",
        }
    }
}

/// Gauge values an actor exposes for sampling, read via
/// `Actor::gauges()` in `eesmr-net`. All values come from the actor's own
/// state — never from the scheduler or another shard.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActorGauges {
    /// Transactions injected here and not yet committed.
    pub tx_in_flight: u64,
    /// Commands pooled here awaiting batching.
    pub pool_backlog: u64,
    /// Cumulative forward-retry floods sent.
    pub forward_retries: u64,
    /// Fill of the most recent proposed batch, percent of the policy max.
    pub batch_fill_pct: f64,
    /// Current view number.
    pub view: u64,
}

/// One sampled point: a simulated timestamp plus all gauge values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time of the sampling boundary, µs.
    pub t_us: u64,
    values: [f64; N_GAUGE],
}

impl Sample {
    /// Value of `gauge` at this sample.
    pub fn value(&self, gauge: GaugeKind) -> f64 {
        self.values[gauge.index()]
    }
}

/// A node's sampled series: a drop-oldest ring plus a dropped counter, the
/// same loss model as `eesmr-trace`'s per-node rings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeSeries {
    samples: VecDeque<Sample>,
    dropped: u64,
    cap: usize,
}

impl NodeSeries {
    fn with_cap(cap: usize) -> Self {
        Self { samples: VecDeque::new(), dropped: 0, cap }
    }

    fn push(&mut self, s: Sample) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was sampled (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Oldest samples evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Peak value of `gauge` across retained samples.
    pub fn peak(&self, gauge: GaugeKind) -> f64 {
        self.samples.iter().map(|s| s.value(gauge)).fold(0.0, f64::max)
    }

    /// Mean value of `gauge` across retained samples (0 when empty).
    pub fn mean(&self, gauge: GaugeKind) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.value(gauge)).sum::<f64>() / self.samples.len() as f64
    }
}

/// All nodes' series from one run, plus the cadence they share.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSet {
    /// Sampling cadence, simulated µs.
    pub dt_us: u64,
    /// Per-node series, indexed by node id.
    pub nodes: Vec<NodeSeries>,
}

impl MetricsSet {
    /// True if no node retained any samples (metrics were off or the run
    /// ended before the first boundary).
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.is_empty())
    }
}

/// Per-node sampling state driven by the simulator's event loop.
///
/// The runtime calls [`MetricsRecorder::due`] once per event (a single
/// compare when enabled, a constant `false` when not) and, when a
/// boundary has been crossed, [`MetricsRecorder::sample_up_to`] with the
/// actor's gauges and the meter total *before* dispatching the event.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    enabled: bool,
    dt_us: u64,
    next_us: u64,
    last_total_mj: f64,
    window_events: u64,
    series: NodeSeries,
}

impl MetricsRecorder {
    /// A recorder for one node under `cfg`. Disabled recorders never
    /// sample and cost one branch per event.
    pub fn new(cfg: &MetricsConfig) -> Self {
        Self {
            enabled: cfg.enabled,
            dt_us: cfg.dt_us.max(1),
            next_us: cfg.dt_us.max(1),
            last_total_mj: 0.0,
            window_events: 0,
            series: NodeSeries::with_cap(cfg.cap),
        }
    }

    /// True when `now_us` has reached the node's next sampling boundary.
    #[inline]
    pub fn due(&self, now_us: u64) -> bool {
        self.enabled && now_us >= self.next_us
    }

    /// Counts one processed event into the current window.
    #[inline]
    pub fn note_event(&mut self) {
        if self.enabled {
            self.window_events += 1;
        }
    }

    /// Records one sample per elapsed boundary up to `now_us`. The first
    /// catch-up boundary receives the whole energy delta and the window's
    /// event count; later boundaries (idle stretches) record zero rate and
    /// zero events, so an idle node's series honestly reads idle.
    pub fn sample_up_to(&mut self, now_us: u64, gauges: &ActorGauges, total_mj: f64) {
        while self.next_us <= now_us {
            let window_s = self.dt_us as f64 / 1e6;
            let rate = (total_mj - self.last_total_mj) / window_s;
            let mut values = [0.0; N_GAUGE];
            values[GaugeKind::TxInFlight.index()] = gauges.tx_in_flight as f64;
            values[GaugeKind::PoolBacklog.index()] = gauges.pool_backlog as f64;
            values[GaugeKind::ForwardRetries.index()] = gauges.forward_retries as f64;
            values[GaugeKind::BatchFillPct.index()] = gauges.batch_fill_pct;
            values[GaugeKind::QueueEvents.index()] = self.window_events as f64;
            values[GaugeKind::EnergyRateMjPerS.index()] = rate;
            values[GaugeKind::View.index()] = gauges.view as f64;
            self.series.push(Sample { t_us: self.next_us, values });
            self.last_total_mj = total_mj;
            self.window_events = 0;
            self.next_us += self.dt_us;
        }
    }

    /// Consumes the recorder, returning the node's series.
    pub fn finish(self) -> NodeSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dt_us: u64, cap: usize) -> MetricsConfig {
        MetricsConfig { enabled: true, dt_us, cap }
    }

    #[test]
    fn disabled_recorder_never_samples() {
        let mut r = MetricsRecorder::new(&MetricsConfig::off());
        assert!(!r.due(u64::MAX));
        r.note_event();
        assert!(r.finish().is_empty());
    }

    #[test]
    fn samples_land_on_every_elapsed_boundary() {
        let mut r = MetricsRecorder::new(&cfg(10, 64));
        let g = ActorGauges { pool_backlog: 5, ..ActorGauges::default() };
        r.note_event();
        r.note_event();
        assert!(r.due(10));
        // Event at t=35 crosses boundaries 10, 20, 30.
        r.sample_up_to(35, &g, 2.0);
        let s = r.finish();
        assert_eq!(s.len(), 3);
        let t: Vec<u64> = s.samples().map(|x| x.t_us).collect();
        assert_eq!(t, vec![10, 20, 30]);
        let first = s.samples().next().unwrap();
        assert_eq!(first.value(GaugeKind::PoolBacklog), 5.0);
        assert_eq!(first.value(GaugeKind::QueueEvents), 2.0);
        // Whole 2.0 mJ delta lands in the first 10 µs window: 2e5 mJ/s.
        assert!((first.value(GaugeKind::EnergyRateMjPerS) - 2.0e5).abs() < 1e-6);
        // Later catch-up boundaries are honest zeros.
        let last = s.last().unwrap();
        assert_eq!(last.value(GaugeKind::EnergyRateMjPerS), 0.0);
        assert_eq!(last.value(GaugeKind::QueueEvents), 0.0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = MetricsRecorder::new(&cfg(1, 2));
        r.sample_up_to(5, &ActorGauges::default(), 0.0);
        let s = r.finish();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let t: Vec<u64> = s.samples().map(|x| x.t_us).collect();
        assert_eq!(t, vec![4, 5]);
    }

    #[test]
    fn peak_and_mean_summaries() {
        let mut r = MetricsRecorder::new(&cfg(10, 64));
        r.sample_up_to(10, &ActorGauges { pool_backlog: 4, ..ActorGauges::default() }, 0.0);
        r.sample_up_to(20, &ActorGauges { pool_backlog: 8, ..ActorGauges::default() }, 0.0);
        let s = r.finish();
        assert_eq!(s.peak(GaugeKind::PoolBacklog), 8.0);
        assert_eq!(s.mean(GaugeKind::PoolBacklog), 6.0);
    }
}
