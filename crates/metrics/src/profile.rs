//! Wall-clock self-profiling for the simulator's own hot loop.
//!
//! Four phases cover where a storm run spends real time: popping the
//! scheduler, stepping replicas, expanding transmissions, and (sharded
//! runs) waiting at the window barrier. Timers are RAII guards around
//! those regions in `eesmr-net`; when profiling is off (the default) a
//! guard is a `None` and costs one branch.
//!
//! Accumulators are process-global atomics so shard worker threads charge
//! the same ledger without plumbing state through the runtime. Profiling
//! output is wall-clock and therefore **never** part of any report
//! equality — it exists for humans and the perf-trajectory JSON.
//!
//! Enable with `EESMR_PROFILE=1` (or [`set_profiling`] from a harness),
//! then render [`ProfileSnapshot::folded`] to a `*.folded` file that
//! `flamegraph.pl --flamechart` or speedscope load directly.

use std::env;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Simulator phases timed by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfPhase {
    /// Popping the next event from the scheduler queue.
    SchedPop,
    /// Running an actor handler (`on_start`/`on_message`/`on_timer`).
    ReplicaStep,
    /// Expanding an effect into per-edge deliveries and energy charges.
    Transmit,
    /// Blocked on the sharded runtime's window barrier.
    BarrierWait,
}

/// Number of profiled phases.
pub const N_PROF_PHASE: usize = 4;

impl ProfPhase {
    /// All phases, in display order.
    pub const ALL: [ProfPhase; N_PROF_PHASE] =
        [ProfPhase::SchedPop, ProfPhase::ReplicaStep, ProfPhase::Transmit, ProfPhase::BarrierWait];

    fn index(self) -> usize {
        match self {
            ProfPhase::SchedPop => 0,
            ProfPhase::ReplicaStep => 1,
            ProfPhase::Transmit => 2,
            ProfPhase::BarrierWait => 3,
        }
    }

    /// Stable snake_case name (folded-stack frame, JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            ProfPhase::SchedPop => "sched_pop",
            ProfPhase::ReplicaStep => "replica_step",
            ProfPhase::Transmit => "transmit",
            ProfPhase::BarrierWait => "barrier_wait",
        }
    }
}

static NANOS: [AtomicU64; N_PROF_PHASE] = [const { AtomicU64::new(0) }; N_PROF_PHASE];
static COUNTS: [AtomicU64; N_PROF_PHASE] = [const { AtomicU64::new(0) }; N_PROF_PHASE];

// 0 = not yet read from env, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when phase timers are live. First call reads `EESMR_PROFILE`
/// (truthy: `1`/`true`/`on`); [`set_profiling`] overrides it.
#[inline]
pub fn profiling_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = matches!(
                env::var("EESMR_PROFILE").as_deref().map(str::trim),
                Ok("1") | Ok("true") | Ok("on")
            );
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Forces profiling on or off, overriding `EESMR_PROFILE` (used by
/// harnesses like `bench_trajectory` that profile programmatically).
pub fn set_profiling(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Zeroes all accumulators (start of a measured region).
pub fn profile_reset() {
    for i in 0..N_PROF_PHASE {
        NANOS[i].store(0, Ordering::Relaxed);
        COUNTS[i].store(0, Ordering::Relaxed);
    }
}

/// Reads the accumulators without clearing them.
pub fn profile_snapshot() -> ProfileSnapshot {
    let mut s = ProfileSnapshot::default();
    for i in 0..N_PROF_PHASE {
        s.nanos[i] = NANOS[i].load(Ordering::Relaxed);
        s.counts[i] = COUNTS[i].load(Ordering::Relaxed);
    }
    s
}

/// RAII timer: created at region entry, charges its phase on drop.
/// Disabled profiling makes construction and drop branch-only.
#[must_use = "the timer charges its phase when dropped"]
pub struct ProfTimer {
    live: Option<(ProfPhase, Instant)>,
}

impl ProfTimer {
    /// Starts timing `phase` if profiling is enabled.
    #[inline]
    pub fn start(phase: ProfPhase) -> Self {
        Self { live: profiling_enabled().then(|| (phase, Instant::now())) }
    }
}

impl Drop for ProfTimer {
    fn drop(&mut self) {
        if let Some((phase, started)) = self.live.take() {
            let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            NANOS[phase.index()].fetch_add(ns, Ordering::Relaxed);
            COUNTS[phase.index()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Accumulated wall-clock time and entry counts per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Nanoseconds accumulated per phase (ProfPhase::ALL order).
    pub nanos: [u64; N_PROF_PHASE],
    /// Region entries per phase.
    pub counts: [u64; N_PROF_PHASE],
}

impl ProfileSnapshot {
    /// Total profiled nanoseconds across phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Share of profiled time spent in `phase`, percent (0 when nothing
    /// was profiled).
    pub fn pct(&self, phase: ProfPhase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            return 0.0;
        }
        self.nanos[phase.index()] as f64 * 100.0 / total as f64
    }

    /// True if no phase accumulated any time.
    pub fn is_empty(&self) -> bool {
        self.total_nanos() == 0
    }

    /// Folded-stacks rendering (`frame;frame count` per line, counts in
    /// microseconds) — load with `flamegraph.pl` or speedscope.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for phase in ProfPhase::ALL {
            let us = self.nanos[phase.index()] / 1_000;
            let _ = writeln!(out, "eesmr;{} {}", phase.as_str(), us);
        }
        out
    }

    /// One-line human summary: `sched_pop 12.3% | replica_step 60.1% | …`.
    pub fn summary(&self) -> String {
        ProfPhase::ALL
            .iter()
            .map(|&p| format!("{} {:.1}%", p.as_str(), self.pct(p)))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_only_when_enabled() {
        set_profiling(false);
        profile_reset();
        drop(ProfTimer::start(ProfPhase::SchedPop));
        assert!(profile_snapshot().is_empty());

        set_profiling(true);
        {
            let _t = ProfTimer::start(ProfPhase::ReplicaStep);
            std::hint::black_box(0u64);
        }
        let snap = profile_snapshot();
        assert_eq!(snap.counts[ProfPhase::ReplicaStep.index()], 1);
        set_profiling(false);
        profile_reset();
    }

    #[test]
    fn folded_output_names_every_phase() {
        let snap = ProfileSnapshot { nanos: [1_000, 2_000, 3_000, 4_000], counts: [1, 1, 1, 1] };
        let folded = snap.folded();
        for phase in ProfPhase::ALL {
            assert!(folded.contains(&format!("eesmr;{}", phase.as_str())));
        }
        assert!((snap.pct(ProfPhase::BarrierWait) - 40.0).abs() < 1e-9);
        assert!(snap.summary().contains("barrier_wait 40.0%"));
    }
}
