//! Metrics runtime configuration (`EESMR_METRICS*` knobs).

use std::env;

/// Default sampling cadence: one sample per node every 10 ms of simulated
/// time.
pub const DEFAULT_DT_US: u64 = 10_000;

/// Default ring capacity per node (drop-oldest beyond this).
pub const DEFAULT_CAP: usize = 1024;

/// Configuration for deterministic time-series sampling.
///
/// Sampling is **off by default**: the hot path pays only a per-event
/// branch when disabled (the CI off-path gate pins this below 2%).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Master switch (`EESMR_METRICS=1`).
    pub enabled: bool,
    /// Sampling cadence in simulated microseconds (`EESMR_METRICS_DT`).
    pub dt_us: u64,
    /// Ring capacity per node (`EESMR_METRICS_CAP`); oldest samples are
    /// dropped beyond this, counted per node.
    pub cap: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl MetricsConfig {
    /// Sampling disabled.
    pub fn off() -> Self {
        Self { enabled: false, dt_us: DEFAULT_DT_US, cap: DEFAULT_CAP }
    }

    /// Sampling enabled at the default cadence and capacity.
    pub fn on() -> Self {
        Self { enabled: true, ..Self::off() }
    }

    /// Reads `EESMR_METRICS` (truthy: `1`/`true`/`on`), `EESMR_METRICS_DT`
    /// (simulated µs per sample, default 10 000) and `EESMR_METRICS_CAP`
    /// (ring slots per node, default 1024). Invalid values panic — a
    /// mis-typed knob should fail loudly, not silently sample nothing.
    pub fn from_env() -> Self {
        let enabled = match env::var("EESMR_METRICS") {
            Ok(v) => matches!(v.trim(), "1" | "true" | "on"),
            Err(_) => false,
        };
        let dt_us = match env::var("EESMR_METRICS_DT") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) if n > 0 => n,
                _ => panic!("EESMR_METRICS_DT must be a positive integer (µs), got {v:?}"),
            },
            Err(_) => DEFAULT_DT_US,
        };
        let cap = match env::var("EESMR_METRICS_CAP") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => panic!("EESMR_METRICS_CAP must be a positive integer, got {v:?}"),
            },
            Err(_) => DEFAULT_CAP,
        };
        Self { enabled, dt_us, cap }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_with_documented_cadence() {
        let c = MetricsConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.dt_us, DEFAULT_DT_US);
        assert_eq!(c.cap, DEFAULT_CAP);
        assert!(MetricsConfig::on().enabled);
    }
}
