//! Deterministic telemetry for the EESMR reproduction.
//!
//! Three pillars, mirroring what real SMR deployments ship with:
//!
//! * [`series`] — typed per-node gauges sampled on a fixed simulated-time
//!   cadence (`EESMR_METRICS_DT`) into fixed-capacity ring series. Every
//!   sample is stamped from node-local state only, so series are
//!   bit-identical across shard counts, worker counts, and scheduler
//!   backends — the same contract as `eesmr-trace` events.
//! * [`export`] — Prometheus text format and JSON renderers for a whole
//!   run's series plus the per-node energy-by-class attribution matrix
//!   (`EESMR_METRICS_OUT`), consumed by the `metrics_report` binary.
//! * [`profile`] — cheap wall-clock phase timers for the simulator itself
//!   (sched pop, replica step, transmit, barrier wait) behind
//!   `EESMR_PROFILE=1`, emitting folded-stacks output that `flamegraph.pl`
//!   and speedscope load directly.
//!
//! # Example
//!
//! ```
//! use eesmr_metrics::{ActorGauges, MetricsConfig, MetricsRecorder};
//!
//! let cfg = MetricsConfig::on();
//! let mut rec = MetricsRecorder::new(&cfg);
//! // The runtime calls this as simulated time crosses each dt boundary.
//! let gauges = ActorGauges { pool_backlog: 3, ..ActorGauges::default() };
//! rec.sample_up_to(cfg.dt_us, &gauges, 1.5);
//! let series = rec.finish();
//! assert_eq!(series.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod profile;
pub mod series;

pub use config::MetricsConfig;
pub use profile::{
    profile_reset, profile_snapshot, profiling_enabled, set_profiling, ProfPhase, ProfTimer,
    ProfileSnapshot, N_PROF_PHASE,
};
pub use series::{
    ActorGauges, GaugeKind, MetricsRecorder, MetricsSet, NodeSeries, Sample, N_GAUGE,
};
