//! A fixed-point log-bucket streaming histogram.
//!
//! Replaces per-sample `Vec` hoarding for latency populations: O(buckets)
//! memory no matter how many samples are recorded, exact `count`/`sum`/
//! `min`/`max`, and a deterministic [`merge`](LogHistogram::merge) so
//! per-node (or per-shard) histograms combine into the same pooled
//! distribution in any order.
//!
//! Bucket scheme: values below [`LINEAR_MAX`] get one exact bucket each;
//! larger values are bucketed by their binary exponent with
//! 2^[`SUB_BITS`] = 32 sub-buckets per octave, so the relative
//! quantization error is bounded by 1/32 ≈ 3%. A percentile's reported
//! value is the **upper bound** of its bucket (clamped to the observed
//! max), which makes every value up to `2 * LINEAR_MAX - 1` — and every
//! bucket boundary — exact. With microsecond latencies the exact range
//! covers the sub-millisecond regime and everything else rounds within
//! 3%, which is far below run-to-run scenario variance.

/// Values below this get one exact bucket each.
pub const LINEAR_MAX: u64 = 32;

/// Sub-bucket resolution bits per octave above the linear range.
pub const SUB_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Streaming log-bucket histogram over `u64` samples (microseconds, in
/// this workspace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Bucket counts, grown on demand so empty histograms stay tiny.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // ≥ 5 since v ≥ 32
        let sub = (v >> (e - SUB_BITS)) & (SUB_BUCKETS - 1);
        LINEAR_MAX as usize + ((e - SUB_BITS) as usize * SUB_BUCKETS as usize) + sub as usize
    }
}

/// Largest value mapping to `index` (the bucket's representative).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let off = i - LINEAR_MAX;
        let e = off / SUB_BUCKETS + SUB_BITS as u64;
        let sub = off % SUB_BUCKETS;
        let width = 1u64 << (e - SUB_BITS as u64);
        ((1u64 << e) | (sub * width)) + (width - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let index = bucket_index(v);
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact integer mean (`sum / count`).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| (self.sum / self.count as u128) as u64)
    }

    /// Nearest-rank percentile (`p` in 1..=100): the value at rank
    /// `max(1, ceil(p·count/100))` of the sorted population, reported as
    /// its bucket's upper bound clamped to the observed max. Matches the
    /// exact-sample convention the workspace has always used, up to
    /// bucket resolution (see module docs).
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.saturating_mul(self.count)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(index).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The histogram's internal state — bucket counts plus the exact
    /// `(count, sum, min, max)` tuple — for serializers that ship a
    /// histogram across a process boundary. Pair with
    /// [`from_raw_parts`](Self::from_raw_parts).
    pub fn raw_parts(&self) -> (&[u64], u64, u128, u64, u64) {
        (&self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuilds a histogram from [`raw_parts`](Self::raw_parts) output.
    /// Trailing zero buckets are trimmed so a decoded histogram compares
    /// equal to the original regardless of how the encoder padded it.
    pub fn from_raw_parts(buckets: Vec<u64>, count: u64, sum: u128, min: u64, max: u64) -> Self {
        let mut buckets = buckets;
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        LogHistogram { buckets, count, sum, min, max }
    }

    /// Absorbs `other` into `self`. Merging per-node histograms in any
    /// grouping yields the identical pooled histogram — the property the
    /// sharded runtime relies on.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        for p in 1..=100u64 {
            let rank = (p * h.count()).div_ceil(100).max(1);
            assert_eq!(h.percentile(p), Some(rank - 1), "p{p}");
        }
    }

    #[test]
    fn one_to_hundred_matches_the_exact_nearest_rank() {
        // The population the report-layer percentile test has always
        // used: 1..=100 must give mean 50, p50 50, p99 99 exactly.
        let mut h = LogHistogram::new();
        for v in (1..=100u64).rev() {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Some(50));
        assert_eq!(h.percentile(50), Some(50));
        assert_eq!(h.percentile(99), Some(99));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn singleton_and_empty() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(50), None);
        assert_eq!(h.mean(), None);
        h.record(7);
        assert_eq!(h.percentile(50), Some(7));
        assert_eq!(h.percentile(99), Some(7));
        assert_eq!(h.mean(), Some(7));
        // A large singleton is clamped to the observed max, not its
        // bucket's upper bound.
        let mut big = LogHistogram::new();
        big.record(1_000_000);
        assert_eq!(big.percentile(99), Some(1_000_000));
    }

    #[test]
    fn relative_error_is_bounded_by_the_sub_bucket_width() {
        for v in [33u64, 100, 999, 12_345, 1 << 20, u64::MAX / 2] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v, "upper bound covers the value");
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "value {v}: error {err}");
        }
    }

    #[test]
    fn bucket_upper_inverts_bucket_index_on_boundaries() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1023, 1024, u64::MAX] {
            let index = bucket_index(v);
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(upper), index, "value {v}");
            assert!(upper >= v);
        }
    }

    #[test]
    fn merge_is_grouping_invariant() {
        let samples: Vec<u64> = (0..500u64).map(|i| i * i % 7919 + i).collect();
        let mut pooled = LogHistogram::new();
        for &s in &samples {
            pooled.record(s);
        }
        // Split into 3 uneven parts, merge in a scrambled order.
        let mut parts = [LogHistogram::new(), LogHistogram::new(), LogHistogram::new()];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].record(s);
        }
        let mut merged = LogHistogram::new();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, pooled);
        assert_eq!(merged.sum(), samples.iter().map(|&s| s as u128).sum());
    }

    #[test]
    fn raw_parts_roundtrip_reproduces_the_histogram() {
        let mut h = LogHistogram::new();
        for v in [0u64, 7, 31, 32, 1000, 1 << 30] {
            h.record(v);
        }
        let (buckets, count, sum, min, max) = h.raw_parts();
        let back = LogHistogram::from_raw_parts(buckets.to_vec(), count, sum, min, max);
        assert_eq!(back, h);
        // Zero padding from an encoder is trimmed away.
        let mut padded = buckets.to_vec();
        padded.extend_from_slice(&[0, 0, 0]);
        assert_eq!(LogHistogram::from_raw_parts(padded, count, sum, min, max), h);
        // Empty histograms roundtrip too.
        let e = LogHistogram::new();
        let (b, c, s, lo, hi) = e.raw_parts();
        assert_eq!(LogHistogram::from_raw_parts(b.to_vec(), c, s, lo, hi), e);
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut a = LogHistogram::new();
        a.record(42);
        let mut b = LogHistogram::new();
        b.merge(&a);
        assert_eq!(b, a);
        b.merge(&LogHistogram::new());
        assert_eq!(b, a);
    }
}
