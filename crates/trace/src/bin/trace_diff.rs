//! Diff two exported trace files and pinpoint the first divergent event.
//!
//! The Perfetto exporter writes one event per line in the canonical
//! merged order, so a determinism failure shows up as a first differing
//! line — this tool turns "two 50 MB traces differ somewhere" into the
//! exact event where the executions forked.
//!
//! ```text
//! trace_diff A.json B.json       # first divergent event, exit 1 if any
//! trace_diff --validate F.json   # structural JSON check, exit 1 if bad
//! ```

use std::process::ExitCode;

use eesmr_trace::perfetto::is_well_formed_json;

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lines of context printed around the first divergence.
const CONTEXT: usize = 3;

fn diff(path_a: &str, path_b: &str) -> ExitCode {
    let (text_a, text_b) = (read(path_a), read(path_b));
    let lines_a: Vec<&str> = text_a.lines().collect();
    let lines_b: Vec<&str> = text_b.lines().collect();
    let common = lines_a.len().min(lines_b.len());
    for i in 0..common {
        if lines_a[i] != lines_b[i] {
            println!("traces diverge at line {} (first difference):", i + 1);
            for line in &lines_a[i.saturating_sub(CONTEXT)..i] {
                println!("  = {line}");
            }
            println!("  A {}", lines_a[i]);
            println!("  B {}", lines_b[i]);
            return ExitCode::FAILURE;
        }
    }
    if lines_a.len() != lines_b.len() {
        println!(
            "traces agree on the first {common} lines but differ in length: {} has {} lines, {} has {}",
            path_a,
            lines_a.len(),
            path_b,
            lines_b.len()
        );
        let (longer, lines) =
            if lines_a.len() > lines_b.len() { (path_a, &lines_a) } else { (path_b, &lines_b) };
        println!("  first extra line in {}: {}", longer, lines[common]);
        return ExitCode::FAILURE;
    }
    println!("traces are identical ({} lines)", lines_a.len());
    ExitCode::SUCCESS
}

fn validate(path: &str) -> ExitCode {
    let text = read(path);
    if !text.starts_with("{\"traceEvents\":[") {
        println!("{path}: not a trace-event document (missing traceEvents header)");
        return ExitCode::FAILURE;
    }
    if !is_well_formed_json(&text) {
        println!("{path}: malformed JSON");
        return ExitCode::FAILURE;
    }
    println!("{path}: well-formed trace ({} lines)", text.lines().count());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--validate" => validate(path),
        [a, b] => diff(a, b),
        _ => {
            println!("usage: trace_diff A.json B.json | trace_diff --validate F.json");
            ExitCode::FAILURE
        }
    }
}
