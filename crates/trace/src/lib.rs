//! Deterministic structured event tracing for the EESMR simulator.
//!
//! Every replica and the network runtime emit typed [`EventKind`]s into a
//! per-node fixed-capacity ring buffer ([`Tracer`]). Events are stamped
//! with **node-local** state only — the node's simulated clock and a
//! per-node monotone sequence number — so a merged trace is bit-identical
//! no matter how the run was executed (`EESMR_WORKERS`, `EESMR_SHARDS`,
//! `EESMR_SCHED`), exactly like every other observable in the workspace.
//!
//! The [`TraceLevel`] gate (`EESMR_TRACE=off|commit|proto|all`) compiles
//! down to one ordered-enum comparison per candidate event, so the `off`
//! path stays within noise on the hot-path bench. Levels nest: `commit`
//! ⊂ `proto` ⊂ `all` (see [`TraceClass`]).
//!
//! On top of the raw stream:
//! * [`audit`] — replays a merged trace and checks SMR safety (no
//!   same-height forks, monotone per-node heights) and post-heal
//!   liveness; the adversarial suites and CI gate on its verdict.
//! * [`path::CommitPath`] — follows one transaction
//!   birth→forward→batch→propose→relay→commit through a merged trace and
//!   reports the per-hop latency breakdown.
//! * [`perfetto`] — a Chrome-trace/Perfetto JSON exporter (one track per
//!   node, spans for views), written one event per line so two exports
//!   diff cleanly.
//! * [`hist::LogHistogram`] — a fixed-point log-bucket streaming
//!   histogram replacing per-sample hoarding (O(buckets) memory,
//!   deterministic merge across nodes and shards).
//! * the `trace_diff` binary — diffs two exported traces and pinpoints
//!   the first divergent event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

pub mod audit;
pub mod hist;
pub mod path;
pub mod perfetto;

/// Environment variable selecting the [`TraceLevel`].
pub const ENV_TRACE: &str = "EESMR_TRACE";

/// How much of the event taxonomy is recorded. Levels nest: everything
/// enabled at `commit` is also enabled at `proto` and `all`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Record nothing (the default). The per-event cost is one enum
    /// comparison.
    #[default]
    Off,
    /// Commit-path events only: tx inject/forward/batch, propose, relay,
    /// commit.
    Commit,
    /// `commit` plus protocol-control events: votes, blames,
    /// equivocations, view-change phases.
    Proto,
    /// Everything, including per-message send/deliver and timer fires.
    All,
}

impl TraceLevel {
    /// Reads `EESMR_TRACE` (`off`, `commit`, `proto`, `all`; unset means
    /// `off`). Panics on an unrecognized value, mirroring
    /// `shards_from_env`.
    pub fn from_env() -> TraceLevel {
        match std::env::var(ENV_TRACE) {
            Err(_) => TraceLevel::Off,
            Ok(raw) => match raw.trim() {
                "" | "off" => TraceLevel::Off,
                "commit" => TraceLevel::Commit,
                "proto" => TraceLevel::Proto,
                "all" => TraceLevel::All,
                other => panic!("{ENV_TRACE} must be off|commit|proto|all, got {other:?}"),
            },
        }
    }

    /// Whether events of `class` are recorded at this level.
    #[inline]
    pub fn enables(self, class: TraceClass) -> bool {
        self >= class.min_level()
    }

    /// The level's `EESMR_TRACE` spelling.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Commit => "commit",
            TraceLevel::Proto => "proto",
            TraceLevel::All => "all",
        }
    }
}

/// The three event families, by the cheapest [`TraceLevel`] that records
/// them. Call sites that must compute an event's fields (digest
/// fingerprints, wire sizes) gate on
/// [`enables`](TraceLevel::enables) (via `Context::traces` in the net
/// runtime) first so the
/// `off` path never pays for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceClass {
    /// The transaction commit path (recorded from `commit` up).
    Commit,
    /// Protocol control flow (recorded from `proto` up).
    Proto,
    /// The wire and timer layer (recorded at `all` only).
    Wire,
}

impl TraceClass {
    /// The cheapest level that records this class.
    #[inline]
    pub fn min_level(self) -> TraceLevel {
        match self {
            TraceClass::Commit => TraceLevel::Commit,
            TraceClass::Proto => TraceLevel::Proto,
            TraceClass::Wire => TraceLevel::All,
        }
    }
}

/// The typed event taxonomy. `tx` and `block` fields are 64-bit digest
/// fingerprints (the first 8 bytes of the SHA-256 digest, little-endian)
/// — stable identifiers that cost nothing to copy once the digest
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A workload transaction was born (injected) at this node.
    TxInject {
        /// Fingerprint of the injected command.
        tx: u64,
    },
    /// A pending transaction was forwarded to the current proposer.
    TxForward {
        /// Fingerprint of the forwarded command.
        tx: u64,
        /// The proposer it was forwarded to.
        leader: u32,
    },
    /// The proposer batched a transaction into a block.
    TxBatched {
        /// Fingerprint of the batched command.
        tx: u64,
        /// Fingerprint of the carrying block.
        block: u64,
    },
    /// This node proposed a block.
    Propose {
        /// Fingerprint of the proposed block.
        block: u64,
        /// Proposing view.
        view: u64,
        /// Proposing round (0 for protocols without rounds).
        round: u64,
    },
    /// This node relayed a proposal it accepted (EESMR's re-multicast,
    /// or a baseline's certificate-forming broadcast).
    Relay {
        /// Fingerprint of the relayed block.
        block: u64,
    },
    /// This node voted for a block (baselines; EESMR has no votes).
    Vote {
        /// Fingerprint of the voted block.
        block: u64,
        /// Voting view.
        view: u64,
    },
    /// This node committed a block.
    Commit {
        /// Fingerprint of the committed block.
        block: u64,
        /// The block's height.
        height: u64,
    },
    /// This node multicast a blame against the current leader.
    Blame {
        /// The blamed view.
        view: u64,
    },
    /// This node detected leader equivocation.
    Equivocation {
        /// The view the equivocation was detected in.
        view: u64,
    },
    /// View-change phase entered: the node quit the old view (blame
    /// certificate or equivocation proof in hand).
    VcQuit {
        /// The view being quit.
        view: u64,
    },
    /// View-change phase exited: the node entered the new view.
    ViewEnter {
        /// The view being entered.
        view: u64,
    },
    /// A protocol timer fired at this node.
    TimerFire {
        /// The runtime timer id.
        id: u64,
    },
    /// This node transmitted a message (one event per k-cast, not per
    /// receiver).
    MsgSend {
        /// Serialized size in bytes.
        bytes: u64,
        /// Whether this was a flood (re)transmission.
        flood: bool,
    },
    /// A message was delivered to this node's actor.
    MsgDeliver {
        /// The sending node.
        from: u32,
        /// Serialized size in bytes.
        bytes: u64,
        /// Whether it arrived via the flood layer.
        flood: bool,
    },
}

impl EventKind {
    /// The event's family (which decides the recording level).
    #[inline]
    pub fn class(&self) -> TraceClass {
        match self {
            EventKind::TxInject { .. }
            | EventKind::TxForward { .. }
            | EventKind::TxBatched { .. }
            | EventKind::Propose { .. }
            | EventKind::Relay { .. }
            | EventKind::Commit { .. } => TraceClass::Commit,
            EventKind::Vote { .. }
            | EventKind::Blame { .. }
            | EventKind::Equivocation { .. }
            | EventKind::VcQuit { .. }
            | EventKind::ViewEnter { .. } => TraceClass::Proto,
            EventKind::TimerFire { .. }
            | EventKind::MsgSend { .. }
            | EventKind::MsgDeliver { .. } => TraceClass::Wire,
        }
    }

    /// A short stable name (used by the Perfetto exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxInject { .. } => "tx_inject",
            EventKind::TxForward { .. } => "tx_forward",
            EventKind::TxBatched { .. } => "tx_batched",
            EventKind::Propose { .. } => "propose",
            EventKind::Relay { .. } => "relay",
            EventKind::Vote { .. } => "vote",
            EventKind::Commit { .. } => "commit",
            EventKind::Blame { .. } => "blame",
            EventKind::Equivocation { .. } => "equivocation",
            EventKind::VcQuit { .. } => "vc_quit",
            EventKind::ViewEnter { .. } => "view_enter",
            EventKind::TimerFire { .. } => "timer_fire",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgDeliver { .. } => "msg_deliver",
        }
    }
}

/// One recorded event. `time_us` is the node's simulated clock; `seq` is
/// the node's monotone emission counter. `(time_us, node, seq)` totally
/// orders a merged trace, and every component is node-local state, so
/// the order is independent of worker/shard/scheduler choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Simulated time of emission, microseconds.
    pub time_us: u64,
    /// The emitting node.
    pub node: u32,
    /// Per-node monotone sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A per-node fixed-capacity ring buffer of [`TraceEvent`]s. When full,
/// the oldest event is dropped (and counted), so memory is bounded for
/// arbitrarily long runs while the tail — where debugging happens — is
/// always intact.
#[derive(Debug, Clone)]
pub struct Tracer {
    level: TraceLevel,
    node: u32,
    cap: usize,
    events: VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
}

impl Tracer {
    /// Default ring capacity (events per node).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A tracer for `node` recording at `level` with the default
    /// capacity.
    pub fn new(level: TraceLevel, node: u32) -> Tracer {
        Tracer::with_capacity(level, node, Tracer::DEFAULT_CAPACITY)
    }

    /// A tracer with an explicit ring capacity (clamped to ≥ 1).
    pub fn with_capacity(level: TraceLevel, node: u32, cap: usize) -> Tracer {
        Tracer { level, node, cap: cap.max(1), events: VecDeque::new(), seq: 0, dropped: 0 }
    }

    /// A tracer that records nothing (level [`TraceLevel::Off`]).
    pub fn disabled(node: u32) -> Tracer {
        Tracer::with_capacity(TraceLevel::Off, node, 1)
    }

    /// The active level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether events of `class` would be recorded. Check this before
    /// computing expensive event fields (fingerprints, wire sizes).
    #[inline]
    pub fn enabled(&self, class: TraceClass) -> bool {
        self.level.enables(class)
    }

    /// Records `kind` at `time_us` if the level admits its class. This
    /// is the whole hot-path cost when tracing is off: one comparison.
    #[inline]
    pub fn record(&mut self, time_us: u64, kind: EventKind) {
        if !self.level.enables(kind.class()) {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push_back(TraceEvent { time_us, node: self.node, seq, kind });
    }

    /// The node this tracer belongs to.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes the buffered stream out of the tracer, leaving it empty
    /// (sequence numbers keep counting).
    pub fn drain(&mut self) -> NodeTrace {
        NodeTrace {
            node: self.node,
            dropped: self.dropped,
            events: std::mem::take(&mut self.events).into(),
        }
    }
}

/// One node's drained event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeTrace {
    /// The emitting node.
    pub node: u32,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow before these.
    pub dropped: u64,
}

/// Every node's stream from one run, in node-id order. Comparing two
/// `TraceSet`s (`==`) is the bit-identity check the determinism suite
/// uses across shard counts, worker counts, and schedulers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSet {
    /// Per-node streams, indexed by node id.
    pub nodes: Vec<NodeTrace>,
}

impl TraceSet {
    /// All events of the run merged into the canonical total order
    /// `(time_us, node, seq)`.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> =
            self.nodes.iter().flat_map(|n| n.events.iter().copied()).collect();
        all.sort_by_key(|e| (e.time_us, e.node, e.seq));
        all
    }

    /// Total buffered events across nodes.
    pub fn total_events(&self) -> usize {
        self.nodes.iter().map(|n| n.events.len()).sum()
    }

    /// Total ring-overflow drops across nodes.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_nest() {
        assert!(!TraceLevel::Off.enables(TraceClass::Commit));
        assert!(TraceLevel::Commit.enables(TraceClass::Commit));
        assert!(!TraceLevel::Commit.enables(TraceClass::Proto));
        assert!(TraceLevel::Proto.enables(TraceClass::Commit));
        assert!(TraceLevel::Proto.enables(TraceClass::Proto));
        assert!(!TraceLevel::Proto.enables(TraceClass::Wire));
        assert!(TraceLevel::All.enables(TraceClass::Wire));
    }

    #[test]
    fn off_records_nothing() {
        let mut t = Tracer::new(TraceLevel::Off, 3);
        t.record(5, EventKind::Commit { block: 1, height: 1 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn level_filters_by_class() {
        let mut t = Tracer::new(TraceLevel::Commit, 0);
        t.record(1, EventKind::Propose { block: 9, view: 1, round: 1 });
        t.record(2, EventKind::Blame { view: 1 });
        t.record(3, EventKind::TimerFire { id: 7 });
        let trace = t.drain();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].kind, EventKind::Propose { block: 9, view: 1, round: 1 });
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Tracer::with_capacity(TraceLevel::All, 2, 2);
        for i in 0..5u64 {
            t.record(i, EventKind::TimerFire { id: i });
        }
        let trace = t.drain();
        assert_eq!(trace.dropped, 3);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, EventKind::TimerFire { id: 3 });
        assert_eq!(trace.events[1].kind, EventKind::TimerFire { id: 4 });
        // Sequence numbers are emission-global, not buffer positions.
        assert_eq!(trace.events[0].seq, 3);
    }

    #[test]
    fn merge_orders_by_time_then_node_then_seq() {
        let mut a = Tracer::new(TraceLevel::All, 1);
        let mut b = Tracer::new(TraceLevel::All, 0);
        a.record(10, EventKind::TimerFire { id: 1 });
        a.record(10, EventKind::TimerFire { id: 2 });
        b.record(10, EventKind::TimerFire { id: 3 });
        b.record(5, EventKind::TimerFire { id: 4 });
        let set = TraceSet { nodes: vec![b.drain(), a.drain()] };
        let merged = set.merged();
        let ids: Vec<u64> = merged
            .iter()
            .map(|e| match e.kind {
                EventKind::TimerFire { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![4, 3, 1, 2]);
    }

    #[test]
    fn env_parsing_accepts_the_documented_values() {
        // from_env reads the live environment; exercise the match arms
        // via the name() round trip instead of mutating process env.
        for level in [TraceLevel::Off, TraceLevel::Commit, TraceLevel::Proto, TraceLevel::All] {
            assert!(matches!(level.name(), "off" | "commit" | "proto" | "all"));
        }
    }
}
