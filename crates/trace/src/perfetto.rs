//! Chrome-trace / Perfetto JSON export.
//!
//! Renders a [`TraceSet`] in the Trace Event Format that
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly: one
//! track (`tid`) per node, a complete-span (`ph:"X"`) per view derived
//! from `ViewEnter` events, and an instant (`ph:"i"`) per recorded
//! event. The output is rendered **one event per line** in the canonical
//! merged order, so two exports of equivalent runs are line-identical
//! and the `trace_diff` binary can pinpoint the first divergence.

use crate::{EventKind, TraceEvent, TraceSet};

fn args_json(kind: &EventKind) -> String {
    match *kind {
        EventKind::TxInject { tx } => format!(r#"{{"tx":"{tx:016x}"}}"#),
        EventKind::TxForward { tx, leader } => {
            format!(r#"{{"tx":"{tx:016x}","leader":{leader}}}"#)
        }
        EventKind::TxBatched { tx, block } => {
            format!(r#"{{"tx":"{tx:016x}","block":"{block:016x}"}}"#)
        }
        EventKind::Propose { block, view, round } => {
            format!(r#"{{"block":"{block:016x}","view":{view},"round":{round}}}"#)
        }
        EventKind::Relay { block } => format!(r#"{{"block":"{block:016x}"}}"#),
        EventKind::Vote { block, view } => {
            format!(r#"{{"block":"{block:016x}","view":{view}}}"#)
        }
        EventKind::Commit { block, height } => {
            format!(r#"{{"block":"{block:016x}","height":{height}}}"#)
        }
        EventKind::Blame { view }
        | EventKind::Equivocation { view }
        | EventKind::VcQuit { view }
        | EventKind::ViewEnter { view } => format!(r#"{{"view":{view}}}"#),
        EventKind::TimerFire { id } => format!(r#"{{"id":{id}}}"#),
        EventKind::MsgSend { bytes, flood } => {
            format!(r#"{{"bytes":{bytes},"flood":{flood}}}"#)
        }
        EventKind::MsgDeliver { from, bytes, flood } => {
            format!(r#"{{"from":{from},"bytes":{bytes},"flood":{flood}}}"#)
        }
    }
}

fn class_name(kind: &EventKind) -> &'static str {
    match kind.class() {
        crate::TraceClass::Commit => "commit",
        crate::TraceClass::Proto => "proto",
        crate::TraceClass::Wire => "wire",
    }
}

fn instant_json(ev: &TraceEvent) -> String {
    format!(
        r#"{{"name":"{}","ph":"i","s":"t","pid":0,"tid":{},"ts":{},"cat":"{}","args":{}}}"#,
        ev.kind.name(),
        ev.node,
        ev.time_us,
        class_name(&ev.kind),
        args_json(&ev.kind)
    )
}

/// Renders the trace as a Trace Event Format JSON document, one event
/// per line, deterministically ordered.
pub fn render(set: &TraceSet) -> String {
    let mut lines: Vec<String> = Vec::new();
    // Track metadata: name each node's track.
    for node in &set.nodes {
        lines.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"node {}"}}}}"#,
            node.node, node.node
        ));
    }
    // View spans per node: ViewEnter marks a span boundary; the last
    // span extends to the node's final event.
    for node in &set.nodes {
        let enters: Vec<&TraceEvent> =
            node.events.iter().filter(|e| matches!(e.kind, EventKind::ViewEnter { .. })).collect();
        let last_us = node.events.last().map_or(0, |e| e.time_us);
        for (i, enter) in enters.iter().enumerate() {
            let EventKind::ViewEnter { view } = enter.kind else { unreachable!() };
            let end = enters.get(i + 1).map_or(last_us, |next| next.time_us);
            let dur = end.saturating_sub(enter.time_us).max(1);
            lines.push(format!(
                r#"{{"name":"view {}","ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"cat":"view"}}"#,
                view, node.node, enter.time_us, dur
            ));
        }
    }
    for ev in set.merged() {
        lines.push(instant_json(&ev));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// A minimal structural JSON validator: balanced braces and brackets
/// outside strings, legal string escapes, and no trailing garbage. Not
/// a full parser — just enough for CI to assert an exported trace is
/// well-formed without external tooling.
pub fn is_well_formed_json(text: &str) -> bool {
    let mut stack: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut saw_value = false;
    for b in text.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => {
                in_string = true;
                saw_value = true;
            }
            b'{' => stack.push(b'}'),
            b'[' => stack.push(b']'),
            b'}' | b']' => {
                if stack.pop() != Some(b) {
                    return false;
                }
                saw_value = true;
            }
            _ => {}
        }
    }
    saw_value && !in_string && stack.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeTrace, TraceLevel, Tracer};

    fn sample_set() -> TraceSet {
        let mut t0 = Tracer::new(TraceLevel::All, 0);
        let mut t1 = Tracer::new(TraceLevel::All, 1);
        t0.record(0, EventKind::ViewEnter { view: 1 });
        t0.record(10, EventKind::Propose { block: 0xB0, view: 1, round: 1 });
        t1.record(20, EventKind::Relay { block: 0xB0 });
        t1.record(50, EventKind::ViewEnter { view: 2 });
        t0.record(60, EventKind::Commit { block: 0xB0, height: 1 });
        TraceSet { nodes: vec![t0.drain(), t1.drain()] }
    }

    #[test]
    fn render_is_well_formed_and_one_event_per_line() {
        let doc = render(&sample_set());
        assert!(is_well_formed_json(&doc), "exported trace parses");
        assert!(doc.starts_with("{\"traceEvents\":[\n"));
        assert!(doc.contains(r#""name":"node 0""#));
        assert!(doc.contains(r#""name":"view 1""#));
        assert!(doc.contains(r#""name":"propose""#));
        // One JSON object per line between the wrapper lines.
        for line in doc.lines().skip(1) {
            if line == "]}" {
                break;
            }
            assert!(line.starts_with('{'), "line is one event: {line}");
        }
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample_set()), render(&sample_set()));
    }

    #[test]
    fn empty_trace_still_renders_valid_json() {
        let doc = render(&TraceSet { nodes: vec![NodeTrace::default()] });
        assert!(is_well_formed_json(&doc));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(!is_well_formed_json(""));
        assert!(!is_well_formed_json("{\"a\":["));
        assert!(!is_well_formed_json("{\"a\":1]}"));
        assert!(!is_well_formed_json("{\"a\":\"unterminated"));
        assert!(is_well_formed_json("{\"a\":[1,2,{\"b\":\"c\"}]}"));
    }
}
