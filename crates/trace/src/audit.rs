//! Trace auditing: replay a merged trace and check SMR invariants.
//!
//! The auditor consumes the canonical merged event order of a
//! [`TraceSet`] (recorded at [`crate::TraceLevel::Commit`] or above) and
//! checks the two properties every state-machine-replication run must
//! uphold, no matter which faults were injected:
//!
//! * **Safety** — no two nodes commit different blocks at the same
//!   height, and each node's committed heights are strictly increasing.
//!   Together these imply commit-ancestry consistency: if every pair of
//!   nodes agrees at every height and no node ever rewinds, all
//!   committed logs are prefixes of one chain.
//! * **Liveness** — after the last injected fault heals, every honest
//!   node commits at least one block within a bounded window.
//!
//! The auditor is pure replay: it never re-executes the protocol, so it
//! can gate CI on any traced run — honest, adversarial, sharded — at the
//! cost of one pass over the event stream.

use std::collections::{BTreeMap, BTreeSet};

use crate::{EventKind, TraceSet};

/// What the auditor should check, beyond the always-on safety pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditConfig {
    /// Nodes that must satisfy the liveness check. Empty means safety
    /// only (e.g. when every node is excused or the run is too short to
    /// bound liveness).
    pub honest: BTreeSet<u32>,
    /// The time (µs) by which every injected fault has healed. Commits
    /// are only demanded after this point; `u64::MAX` (a fault that
    /// never heals) disables the liveness check.
    pub heal_us: u64,
    /// How long (µs) after `heal_us` each honest node has to commit.
    pub window_us: u64,
}

impl AuditConfig {
    /// Safety checks only — no liveness demands.
    pub fn safety_only() -> AuditConfig {
        AuditConfig::default()
    }

    /// Safety plus liveness: every node in `honest` must commit within
    /// `window_us` after `heal_us`.
    pub fn new(honest: impl IntoIterator<Item = u32>, heal_us: u64, window_us: u64) -> AuditConfig {
        AuditConfig { honest: honest.into_iter().collect(), heal_us, window_us }
    }
}

/// One invariant breach found during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two nodes committed different blocks at the same height — a fork.
    ConflictingCommit {
        /// The disputed height.
        height: u64,
        /// Fingerprint of the block committed first at this height.
        first: u64,
        /// The node that committed `first`.
        first_node: u32,
        /// The conflicting fingerprint committed later.
        second: u64,
        /// The node that committed `second`.
        second_node: u32,
    },
    /// A node committed a height at or below one it already committed.
    NonMonotonicHeight {
        /// The offending node.
        node: u32,
        /// The height it had already reached.
        prev: u64,
        /// The height it then committed.
        next: u64,
        /// When (µs).
        time_us: u64,
    },
    /// An honest node failed to commit inside the post-heal window.
    Stalled {
        /// The silent node.
        node: u32,
        /// Its last commit time, if it ever committed.
        last_commit_us: Option<u64>,
        /// The deadline it missed (`heal_us + window_us`).
        deadline_us: u64,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::ConflictingCommit { height, first, first_node, second, second_node } => {
                write!(
                    f,
                    "safety: height {height} forked — node {first_node} committed \
                     {first:#018x}, node {second_node} committed {second:#018x}"
                )
            }
            Violation::NonMonotonicHeight { node, prev, next, time_us } => write!(
                f,
                "safety: node {node} committed height {next} after height {prev} at {time_us}µs"
            ),
            Violation::Stalled { node, last_commit_us, deadline_us } => match last_commit_us {
                Some(t) => write!(
                    f,
                    "liveness: node {node} last committed at {t}µs, nothing by {deadline_us}µs"
                ),
                None => {
                    write!(f, "liveness: node {node} never committed (deadline {deadline_us}µs)")
                }
            },
        }
    }
}

/// The auditor's verdict over one traced run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Commit events replayed.
    pub commits: u64,
    /// Distinct nodes that committed at least once.
    pub committing_nodes: usize,
    /// Every invariant breach, in replay order (safety first, then
    /// liveness, each in the canonical merged-event order).
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the run upheld every checked invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line summary for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "{} commits across {} nodes, {} violation(s)",
            self.commits,
            self.committing_nodes,
            self.violations.len()
        )
    }
}

/// Replays `traces` and checks safety (always) and liveness (when
/// `config.honest` is non-empty and `config.heal_us` is finite).
pub fn audit(traces: &TraceSet, config: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::default();
    // height → (fingerprint, first committing node): the global
    // agreement map the fork check runs against.
    let mut canon: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
    // node → (highest committed height, time of last commit).
    let mut per_node: BTreeMap<u32, (u64, u64)> = BTreeMap::new();

    for event in traces.merged() {
        let EventKind::Commit { block, height } = event.kind else { continue };
        report.commits += 1;
        match canon.get(&height) {
            None => {
                canon.insert(height, (block, event.node));
            }
            Some(&(first, first_node)) if first != block => {
                report.violations.push(Violation::ConflictingCommit {
                    height,
                    first,
                    first_node,
                    second: block,
                    second_node: event.node,
                });
            }
            Some(_) => {}
        }
        match per_node.get_mut(&event.node) {
            None => {
                per_node.insert(event.node, (height, event.time_us));
            }
            Some((prev, last_us)) => {
                if height <= *prev {
                    report.violations.push(Violation::NonMonotonicHeight {
                        node: event.node,
                        prev: *prev,
                        next: height,
                        time_us: event.time_us,
                    });
                } else {
                    *prev = height;
                }
                *last_us = event.time_us;
            }
        }
    }
    report.committing_nodes = per_node.len();

    if config.heal_us != u64::MAX {
        let deadline_us = config.heal_us.saturating_add(config.window_us);
        for &node in &config.honest {
            let last = per_node.get(&node).map(|&(_, t)| t);
            // The node must have committed something at or after the
            // heal, by the deadline. A commit before the heal does not
            // count: the point is that the healed network makes
            // progress, not that progress happened once.
            if !last.is_some_and(|t| t >= config.heal_us && t <= deadline_us) {
                report.violations.push(Violation::Stalled {
                    node,
                    last_commit_us: last,
                    deadline_us,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceEvent, TraceLevel, Tracer};

    fn commit(node: u32, time_us: u64, seq: u64, block: u64, height: u64) -> TraceEvent {
        TraceEvent { time_us, node, seq, kind: EventKind::Commit { block, height } }
    }

    fn set_of(events: Vec<TraceEvent>) -> TraceSet {
        let max_node = events.iter().map(|e| e.node).max().unwrap_or(0);
        let mut nodes: Vec<crate::NodeTrace> = (0..=max_node)
            .map(|n| crate::NodeTrace { node: n, events: Vec::new(), dropped: 0 })
            .collect();
        for e in events {
            nodes[e.node as usize].events.push(e);
        }
        TraceSet { nodes }
    }

    #[test]
    fn clean_chain_audits_clean() {
        let set = set_of(vec![
            commit(0, 100, 0, 0xa, 1),
            commit(1, 110, 0, 0xa, 1),
            commit(0, 200, 1, 0xb, 2),
            commit(1, 210, 1, 0xb, 2),
        ]);
        let report = audit(&set, &AuditConfig::new([0, 1], 0, 1_000));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.commits, 4);
        assert_eq!(report.committing_nodes, 2);
        assert!(report.summary().contains("4 commits"));
    }

    #[test]
    fn fork_is_reported() {
        // Node 1 commits a different block at height 2 — the deliberate
        // broken trace the auditor must catch.
        let set = set_of(vec![
            commit(0, 100, 0, 0xa, 1),
            commit(1, 110, 0, 0xa, 1),
            commit(0, 200, 1, 0xb, 2),
            commit(1, 210, 1, 0xE71, 2),
        ]);
        let report = audit(&set, &AuditConfig::safety_only());
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::ConflictingCommit { height, first, second, first_node, second_node } => {
                assert_eq!(*height, 2);
                assert_eq!((*first, *first_node), (0xb, 0));
                assert_eq!((*second, *second_node), (0xE71, 1));
            }
            other => panic!("wrong violation: {other}"),
        }
        assert!(report.violations[0].to_string().contains("forked"));
    }

    #[test]
    fn height_rewind_is_reported() {
        let set = set_of(vec![
            commit(0, 100, 0, 0xa, 5),
            commit(0, 200, 1, 0xb, 3), // rewinds — synthetic corruption
        ]);
        let report = audit(&set, &AuditConfig::safety_only());
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::NonMonotonicHeight { node: 0, prev: 5, next: 3, .. }]
        ));
    }

    #[test]
    fn stalled_honest_node_fails_liveness() {
        // Node 1 commits before the heal but never after it; node 2
        // never commits at all.
        let set = set_of(vec![
            commit(0, 100, 0, 0xa, 1),
            commit(1, 110, 0, 0xa, 1),
            commit(0, 5_000, 1, 0xb, 2),
        ]);
        let report = audit(&set, &AuditConfig::new([0, 1, 2], 1_000, 10_000));
        let stalled: Vec<u32> = report
            .violations
            .iter()
            .filter_map(|v| match v {
                Violation::Stalled { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(stalled, vec![1, 2]);
        assert!(report.violations.iter().all(|v| v.to_string().starts_with("liveness:")));
    }

    #[test]
    fn unhealing_faults_disable_liveness() {
        let set = set_of(vec![commit(0, 100, 0, 0xa, 1)]);
        let report = audit(&set, &AuditConfig::new([0, 1], u64::MAX, 10_000));
        assert!(report.is_clean(), "no liveness demands when the fault never heals");
    }

    #[test]
    fn audits_real_tracer_output() {
        let mut t = Tracer::new(TraceLevel::Commit, 7);
        t.record(10, EventKind::Commit { block: 1, height: 1 });
        t.record(20, EventKind::Commit { block: 2, height: 2 });
        t.record(30, EventKind::Propose { block: 3, view: 1, round: 3 }); // ignored
        let set = TraceSet { nodes: vec![t.drain()] };
        let report = audit(&set, &AuditConfig::new([7], 0, 100));
        assert!(report.is_clean());
        assert_eq!(report.commits, 2);
    }
}
