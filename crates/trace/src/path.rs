//! Commit-path reconstruction: follow one transaction through a merged
//! trace from birth to commit and break its end-to-end latency into
//! per-hop stages.

use std::collections::HashMap;

use crate::{EventKind, TraceEvent};

/// One stage of a transaction's journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStage {
    /// Stage name: `inject`, `forward`, `batch`, `propose`, `relay`,
    /// `commit`.
    pub stage: &'static str,
    /// The node the stage happened at.
    pub node: u32,
    /// Simulated time of the stage, microseconds.
    pub at_us: u64,
}

/// The reconstructed journey of one sampled transaction. Built by
/// [`CommitPath::reconstruct`] from a merged trace recorded at
/// [`TraceLevel::Commit`](crate::TraceLevel::Commit) or above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitPath {
    /// Fingerprint of the sampled transaction.
    pub tx: u64,
    /// Fingerprint of the block that carried it to commit.
    pub block: u64,
    /// Stages in causal order (`forward`/`relay` are absent when the
    /// origin was the proposer or no relay was recorded).
    pub stages: Vec<PathStage>,
}

impl CommitPath {
    /// Follows the **first committed** transaction of the trace:
    /// `TxInject` at its origin, optional `TxForward`, `TxBatched` +
    /// `Propose` at the proposer, the first `Relay` of the carrying
    /// block, and the origin's `Commit` of that block. Returns `None`
    /// when no injected transaction commits within the trace (e.g. the
    /// run had no workload, or tracing was off).
    pub fn reconstruct(merged: &[TraceEvent]) -> Option<CommitPath> {
        // First-occurrence indices per fingerprint, one linear pass.
        let mut forward_by_tx: HashMap<u64, &TraceEvent> = HashMap::new();
        let mut batch_by_tx: HashMap<u64, (&TraceEvent, u64)> = HashMap::new();
        let mut propose_by_block: HashMap<u64, &TraceEvent> = HashMap::new();
        let mut relay_by_block: HashMap<u64, &TraceEvent> = HashMap::new();
        let mut commit_at: HashMap<(u32, u64), &TraceEvent> = HashMap::new();
        for ev in merged {
            match ev.kind {
                EventKind::TxForward { tx, .. } => {
                    forward_by_tx.entry(tx).or_insert(ev);
                }
                EventKind::TxBatched { tx, block } => {
                    batch_by_tx.entry(tx).or_insert((ev, block));
                }
                EventKind::Propose { block, .. } => {
                    propose_by_block.entry(block).or_insert(ev);
                }
                EventKind::Relay { block } => {
                    relay_by_block.entry(block).or_insert(ev);
                }
                EventKind::Commit { block, .. } => {
                    commit_at.entry((ev.node, block)).or_insert(ev);
                }
                _ => {}
            }
        }

        for ev in merged {
            let EventKind::TxInject { tx } = ev.kind else { continue };
            let Some(&(batched, block)) = batch_by_tx.get(&tx) else { continue };
            let Some(&committed) = commit_at.get(&(ev.node, block)) else { continue };
            let mut stages = vec![PathStage { stage: "inject", node: ev.node, at_us: ev.time_us }];
            if let Some(fwd) = forward_by_tx.get(&tx) {
                stages.push(PathStage { stage: "forward", node: fwd.node, at_us: fwd.time_us });
            }
            stages.push(PathStage { stage: "batch", node: batched.node, at_us: batched.time_us });
            if let Some(prop) = propose_by_block.get(&block) {
                stages.push(PathStage { stage: "propose", node: prop.node, at_us: prop.time_us });
            }
            if let Some(relay) = relay_by_block.get(&block) {
                stages.push(PathStage { stage: "relay", node: relay.node, at_us: relay.time_us });
            }
            stages.push(PathStage {
                stage: "commit",
                node: committed.node,
                at_us: committed.time_us,
            });
            return Some(CommitPath { tx, block, stages });
        }
        None
    }

    /// Birth-to-commit latency, microseconds.
    pub fn total_us(&self) -> u64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(first), Some(last)) => last.at_us.saturating_sub(first.at_us),
            _ => 0,
        }
    }

    /// A human-readable per-hop breakdown, one stage per line with the
    /// delta from the previous stage.
    pub fn render(&self) -> String {
        let mut out = format!(
            "commit path of tx {:016x} (block {:016x}), {} us birth->commit:\n",
            self.tx,
            self.block,
            self.total_us()
        );
        let mut prev: Option<u64> = None;
        for stage in &self.stages {
            let delta = prev.map_or(0, |p| stage.at_us.saturating_sub(p));
            out.push_str(&format!(
                "  {:>8} @ node {:<3} t={:>8} us  (+{} us)\n",
                stage.stage, stage.node, stage.at_us, delta
            ));
            prev = Some(stage.at_us);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_us: u64, node: u32, seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { time_us, node, seq, kind }
    }

    #[test]
    fn reconstructs_a_forwarded_transaction() {
        let merged = vec![
            ev(100, 2, 0, EventKind::TxInject { tx: 0xAA }),
            ev(150, 2, 1, EventKind::TxForward { tx: 0xAA, leader: 0 }),
            ev(300, 0, 0, EventKind::TxBatched { tx: 0xAA, block: 0xB0 }),
            ev(300, 0, 1, EventKind::Propose { block: 0xB0, view: 1, round: 2 }),
            ev(400, 1, 0, EventKind::Relay { block: 0xB0 }),
            ev(900, 0, 2, EventKind::Commit { block: 0xB0, height: 1 }),
            ev(950, 2, 2, EventKind::Commit { block: 0xB0, height: 1 }),
        ];
        let path = CommitPath::reconstruct(&merged).expect("tx committed");
        assert_eq!(path.tx, 0xAA);
        assert_eq!(path.block, 0xB0);
        let stages: Vec<&str> = path.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["inject", "forward", "batch", "propose", "relay", "commit"]);
        // The commit is the origin's, not the proposer's.
        assert_eq!(path.stages.last().unwrap().node, 2);
        assert_eq!(path.total_us(), 850);
        let rendered = path.render();
        assert!(rendered.contains("commit path of tx 00000000000000aa"));
        assert!(rendered.contains("forward"));
    }

    #[test]
    fn skips_transactions_that_never_commit() {
        let merged = vec![
            ev(10, 1, 0, EventKind::TxInject { tx: 1 }),
            ev(20, 2, 0, EventKind::TxInject { tx: 2 }),
            ev(30, 0, 0, EventKind::TxBatched { tx: 2, block: 5 }),
            ev(90, 2, 1, EventKind::Commit { block: 5, height: 1 }),
        ];
        let path = CommitPath::reconstruct(&merged).expect("tx 2 committed");
        assert_eq!(path.tx, 2);
        let stages: Vec<&str> = path.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["inject", "batch", "commit"]);
    }

    #[test]
    fn empty_or_workloadless_traces_yield_none() {
        assert_eq!(CommitPath::reconstruct(&[]), None);
        let no_commit = vec![ev(10, 1, 0, EventKind::TxInject { tx: 1 })];
        assert_eq!(CommitPath::reconstruct(&no_commit), None);
    }
}
