//! Adversarial decode corpus + golden vectors freezing the v1 wire format.
//!
//! Two jobs:
//!
//! * **Freeze v1.** The golden hex vectors below are byte-for-byte
//!   encodings of fixed messages under the deterministic HMAC keyring.
//!   If any of them changes, the wire format changed: that requires a
//!   version bump (see the versioning rules in `eesmr_net::codec`), not a
//!   silent re-freeze of the vectors.
//! * **Decode is total.** Truncations at every prefix length, flipped
//!   family/kind tags, bad magic, bad versions, hostile length prefixes,
//!   and plain random garbage must all return a [`CodecError`] — never
//!   panic, never allocate unbounded memory (count prefixes are
//!   bounds-checked against the remaining bytes before any allocation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eesmr_baselines::sync_hotstuff::{HsMsg, HsPayload};
use eesmr_baselines::trusted::{TbMsg, TbPayload};
use eesmr_core::broadcast::{BbMsg, BbPayload};
use eesmr_core::{Command, Commands, Payload, SignedMsg};
use eesmr_crypto::{Digest, KeyStore, SigScheme};
use eesmr_net::codec::{family, CodecError, WireCodec, HEADER_LEN, MAGIC, VERSION};

/// The deterministic keyring behind every golden vector.
fn pki() -> KeyStore {
    KeyStore::generate(4, SigScheme::Hmac, 42)
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2));
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap()).collect()
}

// --- golden vectors (v1, frozen) -----------------------------------------
//
// Layout reminder: magic ee5e | version 01 | family | body | signature
// (scheme tag 0a = HMAC, signer u32, 32-byte authenticator).

/// `SignedMsg { Repair { from_height: 7 }, view: 3, signer: 0 }`.
const SIGNED_REPAIR: &str = "ee5e01010e0300000000000000000000000700000000000000\
                             0a00000000b4f3368d9764f48b6767e2afdca837e7fc2d3c3523a3fbd1e774f1e58188f26a";

/// `SignedMsg { Forward { [Command aabb] }, view: 5, signer: 1 }`.
const SIGNED_FORWARD: &str = "ee5e01010d0500000000000000010000000100000002000000aabb\
                              0a0100000027bcce91fa8041fcc6623a11e4f2bb609bce67c16d92a43221ddbe3be3eb9d05";

/// `BbMsg { CommitVote { H("golden") }, signer: 1 }`.
const BB_COMMIT_VOTE: &str = "ee5e01020501000000dd56de4137951d9c92681b03416ec15f886b4482a27e3a517d32f085244cbe5d\
                              0a010000007b75560540dcda9f409ccd73cc834dbfed29b6d9751d308662a05b6f7c6bca43";

/// `HsMsg { Repair { from_height: 2 }, view: 1, signer: 2 }`.
const HS_REPAIR: &str = "ee5e01030e0100000000000000020000000200000000000000\
                         0a02000000289fa35e4cc0bd07db085bff98db8f65f1a3e2cf58ff5bdfd7b0d3ee4bf6a3cf";

/// `TbMsg { Repair { from_height: 9 }, signer: 3 }`.
const TB_REPAIR: &str = "ee5e010403030000000900000000000000\
                         0a03000000946112687fd3b3f64c917a4ea41fbc70effe8b423fdb6d6806627afd3d88f676";

fn golden_signed_repair() -> SignedMsg {
    SignedMsg::new(Payload::Repair { from_height: 7 }, 3, pki().keypair(0))
}

fn golden_signed_forward() -> SignedMsg {
    SignedMsg::new(
        Payload::Forward { commands: Commands::from(vec![Command::new(vec![0xAA, 0xBB])]) },
        5,
        pki().keypair(1),
    )
}

fn golden_bb() -> BbMsg {
    BbMsg {
        payload: BbPayload::CommitVote { value_digest: Digest::of(b"golden") },
        signer: 1,
        sig: pki().keypair(1).sign(b"golden"),
    }
}

fn golden_hs() -> HsMsg {
    HsMsg {
        payload: HsPayload::Repair { from_height: 2 },
        view: 1,
        signer: 2,
        sig: pki().keypair(2).sign(b"golden"),
    }
}

fn golden_tb() -> TbMsg {
    TbMsg {
        payload: TbPayload::Repair { from_height: 9 },
        signer: 3,
        sig: pki().keypair(3).sign(b"golden"),
    }
}

/// Every golden frame, for the structural sweeps below.
fn all_golden_bytes() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("signed/repair", unhex(SIGNED_REPAIR)),
        ("signed/forward", unhex(SIGNED_FORWARD)),
        ("bb/commit-vote", unhex(BB_COMMIT_VOTE)),
        ("hs/repair", unhex(HS_REPAIR)),
        ("tb/repair", unhex(TB_REPAIR)),
    ]
}

/// Decodes `bytes` as every family; exactly the results, no panics.
fn decode_all(bytes: &[u8]) -> [Result<(), CodecError>; 4] {
    [
        SignedMsg::decode(bytes).map(|_| ()),
        BbMsg::decode(bytes).map(|_| ()),
        HsMsg::decode(bytes).map(|_| ()),
        TbMsg::decode(bytes).map(|_| ()),
    ]
}

#[test]
fn golden_vectors_freeze_the_v1_encoding() {
    assert_eq!(golden_signed_repair().encode(), unhex(SIGNED_REPAIR));
    assert_eq!(golden_signed_forward().encode(), unhex(SIGNED_FORWARD));
    assert_eq!(golden_bb().encode(), unhex(BB_COMMIT_VOTE));
    assert_eq!(golden_hs().encode(), unhex(HS_REPAIR));
    assert_eq!(golden_tb().encode(), unhex(TB_REPAIR));
}

#[test]
fn golden_vectors_decode_to_the_original_messages() {
    assert_eq!(SignedMsg::decode(&unhex(SIGNED_REPAIR)).unwrap(), golden_signed_repair());
    assert_eq!(SignedMsg::decode(&unhex(SIGNED_FORWARD)).unwrap(), golden_signed_forward());
    assert_eq!(BbMsg::decode(&unhex(BB_COMMIT_VOTE)).unwrap(), golden_bb());
    assert_eq!(HsMsg::decode(&unhex(HS_REPAIR)).unwrap(), golden_hs());
    assert_eq!(TbMsg::decode(&unhex(TB_REPAIR)).unwrap(), golden_tb());
}

#[test]
fn every_frame_starts_with_magic_version_family() {
    let families =
        [family::SIGNED_MSG, family::SIGNED_MSG, family::BB_MSG, family::HS_MSG, family::TB_MSG];
    for ((label, bytes), fam) in all_golden_bytes().into_iter().zip(families) {
        assert_eq!(&bytes[..2], &MAGIC, "{label}: magic");
        assert_eq!(bytes[2], VERSION, "{label}: version");
        assert_eq!(bytes[3], fam, "{label}: family tag");
        assert!(bytes.len() > HEADER_LEN, "{label}: non-empty body");
    }
}

#[test]
fn truncation_at_every_prefix_is_an_error_never_a_panic() {
    for (label, bytes) in all_golden_bytes() {
        for cut in 0..bytes.len() {
            for result in decode_all(&bytes[..cut]) {
                assert!(result.is_err(), "{label}: decode succeeded on a {cut}-byte prefix");
            }
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    for (label, mut bytes) in all_golden_bytes() {
        bytes[0] ^= 0xFF;
        for result in decode_all(&bytes) {
            assert!(matches!(result, Err(CodecError::BadMagic(_))), "{label}");
        }
    }
}

#[test]
fn unknown_versions_are_rejected() {
    for (label, mut bytes) in all_golden_bytes() {
        for version in [0u8, 2, 0xFF] {
            bytes[2] = version;
            for result in decode_all(&bytes) {
                assert_eq!(result, Err(CodecError::BadVersion(version)), "{label}");
            }
        }
    }
}

#[test]
fn cross_family_decodes_are_rejected() {
    // Every golden frame is a valid message of exactly one family; the
    // other three decoders must identify the family tag as foreign.
    let expected_ok = [0usize, 0, 1, 2, 3]; // index into decode_all's array
    for ((label, bytes), ok) in all_golden_bytes().into_iter().zip(expected_ok) {
        for (ix, result) in decode_all(&bytes).into_iter().enumerate() {
            if ix == ok {
                assert_eq!(result, Ok(()), "{label}: own family decodes");
            } else {
                assert!(
                    matches!(result, Err(CodecError::UnknownTag { what: "message family", .. })),
                    "{label}: family {ix} accepted a foreign frame: {result:?}"
                );
            }
        }
    }
}

#[test]
fn unknown_family_tags_are_rejected() {
    for (label, mut bytes) in all_golden_bytes() {
        for fam in [0u8, 5, 0xEF] {
            bytes[3] = fam;
            for result in decode_all(&bytes) {
                assert!(
                    matches!(result, Err(CodecError::UnknownTag { what: "message family", tag })
                        if tag == fam),
                    "{label}"
                );
            }
        }
    }
}

#[test]
fn flipped_payload_kind_tags_are_rejected() {
    // Byte 4 is the payload kind / variant tag in all four families.
    for (label, mut bytes) in all_golden_bytes() {
        bytes[4] = 0xEF;
        for result in decode_all(&bytes) {
            assert!(
                matches!(result, Err(CodecError::UnknownTag { .. })),
                "{label}: kind 0xEF accepted: {result:?}"
            );
        }
    }
}

#[test]
fn valid_kind_in_the_wrong_family_is_rejected() {
    // HsVote is a real MsgKind but not a SignedMsg payload; Repair is a
    // real MsgKind but not a broadcast payload. Both parse as *tags* and
    // must still fail as *messages*.
    let mut signed = unhex(SIGNED_REPAIR);
    signed[4] = eesmr_core::MsgKind::HsVote as u8;
    assert!(matches!(
        SignedMsg::decode(&signed),
        Err(CodecError::UnknownTag { what: "payload kind", .. })
    ));
    let mut bb = unhex(BB_COMMIT_VOTE);
    bb[4] = eesmr_core::MsgKind::Repair as u8;
    assert!(matches!(
        BbMsg::decode(&bb),
        Err(CodecError::UnknownTag { what: "broadcast kind", .. })
    ));
}

#[test]
fn hostile_count_prefix_is_rejected_before_allocation() {
    // SIGNED_FORWARD's command count sits right after the 17-byte
    // envelope (header 4 + kind 1 + view 8 + signer 4). A count of
    // u32::MAX over ~40 remaining bytes must fail the bound check —
    // `Vec::with_capacity(count)` is never reached.
    let mut bytes = unhex(SIGNED_FORWARD);
    bytes[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        SignedMsg::decode(&bytes),
        Err(CodecError::BadLength { what: "commands", len }) if len == u64::from(u32::MAX)
    ));

    // Same for a byte-string length prefix: the inner command's length.
    let mut bytes = unhex(SIGNED_FORWARD);
    bytes[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        SignedMsg::decode(&bytes),
        Err(CodecError::BadLength { what: "command bytes", .. })
    ));

    // And for the broadcast value slice.
    let value = BbMsg {
        payload: BbPayload::Value { value: vec![7; 16] },
        signer: 0,
        sig: pki().keypair(0).sign(b"v"),
    };
    let mut bytes = value.encode();
    bytes[HEADER_LEN + 5..HEADER_LEN + 9].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(BbMsg::decode(&bytes), Err(CodecError::BadLength { what: "bb value", .. })));
}

#[test]
fn trailing_bytes_are_rejected() {
    for (label, mut bytes) in all_golden_bytes() {
        bytes.push(0);
        for result in decode_all(&bytes) {
            assert!(
                matches!(result, Err(CodecError::Trailing(1)))
                    || matches!(result, Err(CodecError::UnknownTag { what: "message family", .. })),
                "{label}: {result:?}"
            );
        }
    }
}

#[test]
fn corrupted_signature_fields_are_rejected() {
    // Unknown scheme tag (the signature starts after the 8-byte Repair
    // body: header 4 + kind 1 + view 8 + signer 4 + body 8 = 25).
    let mut bytes = unhex(SIGNED_REPAIR);
    bytes[25] = 0xEF;
    assert!(matches!(
        SignedMsg::decode(&bytes),
        Err(CodecError::UnknownTag { what: "signature scheme", .. })
    ));

    // Nonzero padding in a padded scheme (RSA-1024 pads the 32-byte
    // authenticator to 128 bytes) breaks canonicality.
    let rsa = KeyStore::generate(4, SigScheme::Rsa1024, 42);
    let msg = SignedMsg::new(Payload::Repair { from_height: 7 }, 3, rsa.keypair(0));
    let mut bytes = msg.encode();
    *bytes.last_mut().unwrap() = 1;
    assert_eq!(
        SignedMsg::decode(&bytes),
        Err(CodecError::NonCanonical("signature padding must be zero"))
    );
}

#[test]
fn single_byte_corruption_never_panics_and_stays_canonical() {
    // Flip each byte of each golden frame two ways. The decoder must
    // return *something*; when it accepts the mutation (a flipped bit in
    // a view number is still a valid message), re-encoding must give
    // back exactly the mutated bytes — the codec has no non-canonical
    // accepting states.
    for (label, bytes) in all_golden_bytes() {
        for pos in 0..bytes.len() {
            for mask in [0x01u8, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= mask;
                if let Ok(msg) = SignedMsg::decode(&mutated) {
                    assert_eq!(msg.encode(), mutated, "{label}: pos {pos} mask {mask:#x}");
                }
                if let Ok(msg) = BbMsg::decode(&mutated) {
                    assert_eq!(msg.encode(), mutated, "{label}: pos {pos} mask {mask:#x}");
                }
                if let Ok(msg) = HsMsg::decode(&mutated) {
                    assert_eq!(msg.encode(), mutated, "{label}: pos {pos} mask {mask:#x}");
                }
                if let Ok(msg) = TbMsg::decode(&mutated) {
                    assert_eq!(msg.encode(), mutated, "{label}: pos {pos} mask {mask:#x}");
                }
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for _ in 0..512 {
        let len = rng.gen_range(0..512usize);
        let mut buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = decode_all(&buf);
        // Garbage wearing a valid header is the harder case: the decoder
        // gets past the cheap checks and into the body grammar.
        if buf.len() >= HEADER_LEN {
            buf[..2].copy_from_slice(&MAGIC);
            buf[2] = VERSION;
            buf[3] = [family::SIGNED_MSG, family::BB_MSG, family::HS_MSG, family::TB_MSG]
                [rng.gen_range(0..4usize)];
            let _ = decode_all(&buf);
        }
    }
}
