//! Codec property tests: randomly generated protocol messages round-trip
//! through the v1 wire format for all four families.
//!
//! For every generated message `m` the suite asserts the full triple:
//!
//! * `decode(encode(m)) == m` (structural inversion),
//! * `decode(encode(m)).encode() == encode(m)` (canonical bytes — the
//!   codec has exactly one encoding per value),
//! * `encode(m).len() == m.encoded_len() == m.wire_size()` (the energy
//!   model charges exactly the bytes that cross the wire).
//!
//! The vendored proptest has no combinators, so generation is seed-driven:
//! each case binds one `u64` seed and derives every random choice from a
//! `StdRng` over it, which keeps failures reproducible from the printed
//! seed alone.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eesmr_baselines::sync_hotstuff::{HsMsg, HsPayload};
use eesmr_baselines::trusted::{TbMsg, TbPayload};
use eesmr_core::broadcast::{BbMsg, BbPayload};
use eesmr_core::message::signing_bytes;
use eesmr_core::{
    Block, CertifiedBlock, Command, Commands, MsgKind, Payload, QuorumCert, SignedBlock, SignedMsg,
    Status,
};
use eesmr_crypto::{Digest, KeyStore, SigScheme};
use eesmr_net::codec::WireCodec;
use eesmr_net::Message;

/// Keyring size for every generated scenario.
const N: u32 = 4;

/// Distinct shapes `payload_variant` can produce (variants × option arms).
const SIGNED_SHAPES: u32 = 17;
/// Distinct shapes `hs_variant` can produce.
const HS_SHAPES: u32 = 13;
/// Distinct shapes `bb_variant` can produce.
const BB_SHAPES: u32 = 3;
/// Distinct shapes `tb_variant` can produce.
const TB_SHAPES: u32 = 4;

fn rand_scheme(rng: &mut StdRng) -> SigScheme {
    SigScheme::ALL[rng.gen_range(0..SigScheme::ALL.len())]
}

fn rand_pki(rng: &mut StdRng) -> KeyStore {
    let scheme = rand_scheme(rng);
    KeyStore::generate(N as usize, scheme, rng.gen())
}

fn rand_commands(rng: &mut StdRng) -> Commands {
    let count = rng.gen_range(0..4usize);
    let cmds: Vec<Command> = (0..count)
        .map(|_| {
            if rng.gen::<bool>() {
                Command::synthetic(rng.gen(), rng.gen_range(0..64))
            } else {
                let len = rng.gen_range(0..32usize);
                Command::new((0..len).map(|_| rng.gen()).collect())
            }
        })
        .collect();
    Commands::from(cmds)
}

fn rand_block(rng: &mut StdRng) -> Block {
    let mut block = Block::genesis();
    for _ in 0..rng.gen_range(0..3usize) {
        let view = rng.gen_range(0..100u64);
        let round = rng.gen_range(0..50u64);
        block = Block::extending(&block, view, round, rand_commands(rng));
    }
    block
}

fn rand_digest(rng: &mut StdRng) -> Digest {
    Digest::of(&rng.gen::<u64>().to_le_bytes())
}

fn rand_qc(rng: &mut StdRng, pki: &KeyStore, data: Digest) -> QuorumCert {
    let kind = [MsgKind::Certify, MsgKind::HsVote][rng.gen_range(0..2usize)];
    let view = rng.gen_range(0..64u64);
    let bytes = signing_bytes(kind, view, &data);
    let sigs = (0..rng.gen_range(1..=N)).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
    QuorumCert { kind, view, data, height: rng.gen_range(0..1000), sigs }
}

fn rand_cert(rng: &mut StdRng, pki: &KeyStore) -> CertifiedBlock {
    let block = rand_block(rng);
    let qc = rand_qc(rng, pki, block.id());
    CertifiedBlock { qc, block }
}

fn rand_signed_block(rng: &mut StdRng, pki: &KeyStore) -> SignedBlock {
    let block = rand_block(rng);
    let signer = rng.gen_range(0..N);
    let sig = pki.keypair(signer).sign(block.id().as_bytes());
    SignedBlock { block, signer, sig }
}

fn rand_blocks(rng: &mut StdRng) -> Vec<Block> {
    (0..rng.gen_range(0..3usize)).map(|_| rand_block(rng)).collect()
}

/// A simple inner message for equivocation-blame proofs — the codec embeds
/// full frames, so any payload exercises the nesting.
fn blame_inner(rng: &mut StdRng, pki: &KeyStore) -> SignedMsg {
    let payload =
        Payload::Propose { block: rand_block(rng), round: rng.gen_range(1..9), justify: None };
    SignedMsg::new(payload, rng.gen_range(0..100), pki.keypair(rng.gen_range(0..N)))
}

/// One [`Payload`] of shape `ix ∈ 0..SIGNED_SHAPES` (each enum variant,
/// with every `Option`/`Status` arm as its own shape).
fn payload_variant(ix: u32, rng: &mut StdRng, pki: &KeyStore) -> Payload {
    match ix {
        0 => Payload::Propose { block: rand_block(rng), round: rng.gen_range(1..9), justify: None },
        1 => {
            let block = rand_block(rng);
            let justify = Some(rand_qc(rng, pki, block.id()));
            Payload::Propose { block, round: 2, justify }
        }
        2 => Payload::Blame { proof: None },
        3 => {
            Payload::Blame { proof: Some(Box::new((blame_inner(rng, pki), blame_inner(rng, pki)))) }
        }
        4 => {
            let data = rand_digest(rng);
            Payload::BlameQc(rand_qc(rng, pki, data))
        }
        5 => Payload::CommitUpdate { block: rand_block(rng) },
        6 => Payload::Certify { block_id: rand_digest(rng), height: rng.gen() },
        7 => Payload::CommitQc(rand_cert(rng, pki)),
        8 => {
            let count = rng.gen_range(1..3usize);
            let qcs = (0..count).map(|_| rand_cert(rng, pki)).collect();
            Payload::NewViewProposal { status: Status::CommitQcs(qcs), block: rand_block(rng) }
        }
        9 => {
            let count = rng.gen_range(1..3usize);
            let locks = (0..count).map(|_| rand_signed_block(rng, pki)).collect();
            Payload::NewViewProposal { status: Status::Locks(locks), block: rand_block(rng) }
        }
        10 => Payload::NewViewVote { prop_hash: rand_digest(rng) },
        11 => Payload::LockStatus { block: rand_block(rng) },
        12 => Payload::SyncRequest { want: rand_digest(rng) },
        13 => Payload::SyncResponse { blocks: rand_blocks(rng) },
        14 => Payload::Forward { commands: rand_commands(rng) },
        15 => Payload::Repair { from_height: rng.gen() },
        _ => Payload::RepairReply { blocks: rand_blocks(rng), view: rng.gen() },
    }
}

fn signed_msg(ix: u32, rng: &mut StdRng, pki: &KeyStore) -> SignedMsg {
    let payload = payload_variant(ix, rng, pki);
    SignedMsg::new(payload, rng.gen_range(0..1000), pki.keypair(rng.gen_range(0..N)))
}

/// One [`HsPayload`] of shape `ix ∈ 0..HS_SHAPES`.
fn hs_variant(ix: u32, rng: &mut StdRng, pki: &KeyStore) -> HsMsg {
    let mk = |payload, rng: &mut StdRng| {
        let signer = rng.gen_range(0..N);
        let sig = pki.keypair(signer).sign(b"hs");
        HsMsg { payload, view: rng.gen_range(0..1000), signer, sig }
    };
    let payload = match ix {
        0 => HsPayload::Propose { block: rand_block(rng), justify: None },
        1 => {
            let block = rand_block(rng);
            let justify = Some(rand_qc(rng, pki, block.id()));
            HsPayload::Propose { block, justify }
        }
        2 => HsPayload::Vote { block_id: rand_digest(rng), height: rng.gen() },
        3 => HsPayload::Blame { proof: None },
        4 => {
            let a = hs_variant(0, rng, pki);
            let b = hs_variant(1, rng, pki);
            HsPayload::Blame { proof: Some(Box::new((a, b))) }
        }
        5 => {
            let data = rand_digest(rng);
            HsPayload::BlameQc(rand_qc(rng, pki, data))
        }
        6 => HsPayload::Status { cert: None },
        7 => HsPayload::Status { cert: Some(rand_cert(rng, pki)) },
        8 => HsPayload::SyncRequest { want: rand_digest(rng) },
        9 => HsPayload::SyncResponse { blocks: rand_blocks(rng) },
        10 => HsPayload::Forward { commands: rand_commands(rng) },
        11 => HsPayload::Repair { from_height: rng.gen() },
        _ => HsPayload::RepairReply { blocks: rand_blocks(rng), view: rng.gen() },
    };
    mk(payload, rng)
}

/// One [`BbPayload`] of shape `ix ∈ 0..BB_SHAPES`.
fn bb_variant(ix: u32, rng: &mut StdRng, pki: &KeyStore) -> BbMsg {
    let value: Vec<u8> = (0..rng.gen_range(0..64usize)).map(|_| rng.gen()).collect();
    let digest = Digest::of(&value);
    let payload = match ix {
        0 => BbPayload::Value { value },
        1 => BbPayload::CommitVote { value_digest: digest },
        _ => BbPayload::Terminate { cert: rand_qc(rng, pki, digest), value },
    };
    let signer = rng.gen_range(0..N);
    let sig = pki.keypair(signer).sign(b"bb");
    BbMsg { payload, signer, sig }
}

/// One [`TbPayload`] of shape `ix ∈ 0..TB_SHAPES`.
fn tb_variant(ix: u32, rng: &mut StdRng, pki: &KeyStore) -> TbMsg {
    let payload = match ix {
        0 => TbPayload::Request { batch: rand_commands(rng), seq: rng.gen() },
        1 => TbPayload::Ordered { block: rand_block(rng) },
        2 => TbPayload::Repair { from_height: rng.gen() },
        _ => TbPayload::RepairReply { blocks: rand_blocks(rng) },
    };
    let signer = rng.gen_range(0..N);
    let sig = pki.keypair(signer).sign(b"tb");
    TbMsg { payload, signer, sig }
}

/// The full round-trip triple for one message.
fn assert_roundtrip<T>(m: &T)
where
    T: WireCodec + Message + PartialEq + std::fmt::Debug,
{
    let bytes = m.encode();
    assert_eq!(bytes.len(), WireCodec::encoded_len(m), "encoded_len is the frame length");
    assert_eq!(bytes.len(), Message::wire_size(m), "wire_size is the encoded length");
    let back = T::decode(&bytes).expect("well-formed frame decodes");
    assert_eq!(&back, m, "decode inverts encode");
    assert_eq!(back.encode(), bytes, "re-encode reproduces the exact bytes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EESMR replica messages: every payload shape, random contents.
    #[test]
    fn signed_msgs_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pki = rand_pki(&mut rng);
        let ix = rng.gen_range(0..SIGNED_SHAPES);
        assert_roundtrip(&signed_msg(ix, &mut rng, &pki));
    }

    /// Byzantine-broadcast messages.
    #[test]
    fn bb_msgs_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pki = rand_pki(&mut rng);
        let ix = rng.gen_range(0..BB_SHAPES);
        assert_roundtrip(&bb_variant(ix, &mut rng, &pki));
    }

    /// Sync HotStuff / OptSync messages.
    #[test]
    fn hs_msgs_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pki = rand_pki(&mut rng);
        let ix = rng.gen_range(0..HS_SHAPES);
        assert_roundtrip(&hs_variant(ix, &mut rng, &pki));
    }

    /// Trusted-baseline messages.
    #[test]
    fn tb_msgs_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pki = rand_pki(&mut rng);
        let ix = rng.gen_range(0..TB_SHAPES);
        assert_roundtrip(&tb_variant(ix, &mut rng, &pki));
    }

    /// The decoded signature still verifies — the wire format carries the
    /// signed content faithfully, not just structurally.
    #[test]
    fn decoded_signed_msgs_still_verify(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pki = rand_pki(&mut rng);
        let ix = rng.gen_range(0..SIGNED_SHAPES);
        let msg = signed_msg(ix, &mut rng, &pki);
        let back = SignedMsg::decode(&msg.encode()).expect("decodes");
        prop_assert!(back.verify_sig(&pki), "signature survives the wire");
    }
}

/// Deterministic sweep: `wire_size() == encode().len()` for **every**
/// variant shape of all four families, under every signature scheme. This
/// is the contract the energy model bills against (README "Known
/// deviations" documents the historical estimate it replaced).
#[test]
fn wire_size_is_the_encoded_length_for_every_variant() {
    let mut rng = StdRng::seed_from_u64(0xEE5); // fixed: this test is exhaustive, not random
    for scheme in SigScheme::ALL {
        let pki = KeyStore::generate(N as usize, scheme, 7);
        for ix in 0..SIGNED_SHAPES {
            assert_roundtrip(&signed_msg(ix, &mut rng, &pki));
        }
        for ix in 0..HS_SHAPES {
            assert_roundtrip(&hs_variant(ix, &mut rng, &pki));
        }
        for ix in 0..BB_SHAPES {
            assert_roundtrip(&bb_variant(ix, &mut rng, &pki));
        }
        for ix in 0..TB_SHAPES {
            assert_roundtrip(&tb_variant(ix, &mut rng, &pki));
        }
    }
}
