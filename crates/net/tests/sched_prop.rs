//! Property test: the calendar queue pops in exactly the binary heap's
//! `(time, seq)` order over arbitrary event sets — the equivalence the
//! simulator's determinism contract rests on.

use eesmr_net::sched::{CalendarQueue, EventQueue, SchedulerKind};
use proptest::prelude::*;

/// Replays one interleaved workload against both backends and asserts
/// identical pop sequences at every step. Each `op` value encodes either
/// a pop (`op % 4 == 3`) or a push whose delay mixes near-future hops
/// with far-future timers, always relative to the last popped time (the
/// scheduler contract).
fn replay(ops: &[u64], lanes: usize) {
    let mut heap = EventQueue::new(SchedulerKind::Heap);
    let mut cal = CalendarQueue::with_lanes(lanes);
    let mut seq = 0u64;
    let mut now = 0u64;
    for &op in ops {
        if op % 4 == 3 {
            let expect = heap.pop();
            let got = cal.pop();
            prop_assert_eq!(expect, got, "pop diverged at seq {}", seq);
            if let Some((t, _, _)) = expect {
                now = t;
            }
        } else {
            // Delays span same-tick (0), in-ring, ring-edge, and spill.
            let delay = match op % 3 {
                0 => (op / 4) % (lanes as u64 / 2).max(1),
                1 => (op / 4) % (4 * lanes as u64),
                _ => lanes as u64 * 10 + (op / 4) % 100_000,
            };
            heap.push(now + delay, seq, seq);
            cal.push(now + delay, seq, seq);
            seq += 1;
        }
    }
    // Drain whatever is left: the tails must match too.
    loop {
        let (a, b) = (heap.pop(), cal.pop());
        prop_assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved pushes and pops on the default ring size.
    #[test]
    fn calendar_pop_order_equals_heap_pop_order(
        ops in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        replay(&ops, eesmr_net::sched::DEFAULT_LANES);
    }

    /// A tiny ring forces constant wrap-around and spill migration —
    /// the structurally interesting regime.
    #[test]
    fn equivalence_holds_with_a_tiny_ring(
        ops in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        replay(&ops, 64);
    }

    /// The lazily-materialized default queue (what `SimNet` actually
    /// constructs): starts in heap mode, grows its ring under load.
    #[test]
    fn lazy_default_queue_matches_heap(
        ops in prop::collection::vec(any::<u64>(), 1..600),
    ) {
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut cal = EventQueue::new(SchedulerKind::Calendar);
        let mut seq = 0u64;
        let mut now = 0u64;
        for &op in &ops {
            if op % 4 == 3 {
                let expect = heap.pop();
                prop_assert_eq!(expect, cal.pop());
                if let Some((t, _, _)) = expect { now = t; }
            } else {
                let delay = (op / 4) % 3_000;
                heap.push(now + delay, seq, seq);
                cal.push(now + delay, seq, seq);
                seq += 1;
            }
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Pure batch mode: push everything, then drain. Exercises dense
    /// same-tick lanes (many events collapse onto few ticks).
    #[test]
    fn batch_drain_matches_heap(
        times in prop::collection::vec(0u64..5_000, 0..300),
    ) {
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut cal = CalendarQueue::with_lanes(128);
        for (seq, &t) in times.iter().enumerate() {
            heap.push(t, seq as u64, seq);
            cal.push(t, seq as u64, seq);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Sharded-merge mode: sequence keys arrive in arbitrary order
    /// (per-origin key streams interleave out of push order when shard
    /// inboxes drain), including same-tick inversions. Keys are made
    /// unique by construction — `(time, seq)` never repeats — and pop
    /// order must still equal the heap's on both backends.
    #[test]
    fn out_of_order_seq_keys_match_heap(
        events in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut cal = CalendarQueue::with_lanes(128);
        for (i, &v) in events.iter().enumerate() {
            let t = v % 2_000; // few ticks -> dense same-tick lanes
            let key_low = (v >> 32) % 64;
            // A unique but non-monotone seq: the high part walks up for
            // half the stream and down from a disjoint range for the
            // rest, with arbitrary low bits mixed in.
            let high =
                if key_low % 2 == 0 { i as u64 } else { (2 * events.len() - i) as u64 };
            let seq = high << 32 | key_low;
            heap.push(t, seq, i);
            cal.push(t, seq, i);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }
}
