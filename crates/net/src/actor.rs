//! The actor abstraction protocol replicas implement, and the [`Context`]
//! through which they interact with the simulated network.

use eesmr_energy::EnergyMeter;
use eesmr_metrics::ActorGauges;
use eesmr_trace::{EventKind as TraceEventKind, TraceClass, Tracer};

use crate::message::Message;
use crate::time::{SimDuration, SimTime};

/// Node identifier (re-exported from the hypergraph crate).
pub type NodeId = eesmr_hypergraph::NodeId;

/// Handle to a pending timer, used for cancellation.
///
/// Ids encode `(owning node, per-node counter)`, so they are unique
/// across the whole simulation yet derived purely from node-local state —
/// a sharded run (see `crate::shard`) hands out exactly the same ids as a
/// single-threaded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// Bits reserved for the per-node timer counter below the node id.
pub(crate) const TIMER_NODE_SHIFT: u32 = 40;

/// A protocol replica driven by the simulator.
///
/// Replicas are event-driven: the runtime calls [`Actor::on_start`] once at
/// t = 0, then [`Actor::on_message`] for every delivered message and
/// [`Actor::on_timer`] for every expired timer. All side effects (sending,
/// timer management, energy charges) go through the [`Context`].
pub trait Actor {
    /// The protocol's wire message type.
    type Msg: Message;
    /// The protocol's timer token type (carried back on expiry).
    type Timer: Clone + core::fmt::Debug;

    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }

    /// Called for every message delivered to this node.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, token: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>);

    /// Gauge values the metrics sampler reads on each cadence boundary
    /// (see `eesmr-metrics`). **Shard-safety rule:** values must come from
    /// this replica's own state only — never from the scheduler, the
    /// topology-wide view, or another node — so sampled series stay
    /// bit-identical across shard and worker counts. The default reports
    /// all-zero gauges for actors with nothing to expose.
    fn gauges(&self) -> ActorGauges {
        ActorGauges::default()
    }
}

/// Side effects an actor can request; applied by the runtime after the
/// handler returns (keeps handlers simple and borrows clean).
#[derive(Debug)]
pub(crate) enum Effect<M, T> {
    /// One k-cast on each of the node's out-edges (single hop), plus a free
    /// loopback delivery to the node itself.
    Multicast(M),
    /// Network-layer flooding: relayed once per node until everyone has
    /// seen it (logical broadcast over the partially connected graph).
    Flood { msg: M, target: Option<NodeId> },
    /// Arm a timer.
    SetTimer { id: TimerId, delay: SimDuration, token: T },
    /// Cancel a pending timer.
    CancelTimer(TimerId),
}

/// The interface between an [`Actor`] and the simulated world.
pub struct Context<'a, M, T> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) meter: &'a mut EnergyMeter,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) tracer: &'a mut Tracer,
    pub(crate) effects: Vec<Effect<M, T>>,
}

impl<'a, M: Message, T: Clone + core::fmt::Debug> Context<'a, M, T> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's energy meter (for charging sign/verify/hash work —
    /// transmission energy is charged automatically).
    pub fn meter(&mut self) -> &mut EnergyMeter {
        self.meter
    }

    /// Transmits `msg` once on each of this node's out-going hyper-edges
    /// (one hop; receivers decide whether to relay). The sender also
    /// receives a free loopback copy, so a leader processes its own
    /// proposal through the same code path as everyone else.
    pub fn multicast(&mut self, msg: M) {
        self.effects.push(Effect::Multicast(msg));
    }

    /// Floods `msg` to every node: the network layer relays it once per
    /// node (energy charged per hop) and delivers it to each actor exactly
    /// once. This emulates the "logical full connectivity" of Appendix A.3
    /// for control messages whose relay logic is trivial.
    pub fn flood(&mut self, msg: M) {
        self.effects.push(Effect::Flood { msg, target: None });
    }

    /// Routes `msg` to a single node over the flooding substrate (relays
    /// still spend energy; only `to` sees the message). Used for
    /// "send ... to the sender/leader" steps of the view change.
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Flood { msg, target: Some(to) });
    }

    /// Arms a timer that fires after `delay`, passing `token` back to
    /// [`Actor::on_timer`]. Returns an id usable with
    /// [`Context::cancel_timer`]. Ids are drawn from this node's private
    /// counter (tagged with the node id), so they depend only on the
    /// node's own event history — never on global processing order.
    pub fn set_timer(&mut self, delay: SimDuration, token: T) -> TimerId {
        let counter = *self.next_timer_id;
        *self.next_timer_id += 1;
        debug_assert!(counter < 1 << TIMER_NODE_SHIFT, "per-node timer counter overflow");
        let id = TimerId(((self.node as u64) << TIMER_NODE_SHIFT) | counter);
        self.effects.push(Effect::SetTimer { id, delay, token });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Whether trace events of `class` are being recorded. Check this
    /// before computing expensive event fields (digest fingerprints);
    /// events whose fields are free can call [`Context::trace`]
    /// directly — it performs the same gate internally.
    pub fn traces(&self, class: TraceClass) -> bool {
        self.tracer.enabled(class)
    }

    /// Records a trace event at the node's current virtual time, into
    /// its private ring buffer. A no-op (one enum comparison) when the
    /// active [`eesmr_trace::TraceLevel`] doesn't admit the event's
    /// class.
    pub fn trace(&mut self, kind: TraceEventKind) {
        self.tracer.record(self.now.as_micros(), kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Ping;
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            8
        }
        fn flood_key(&self) -> u64 {
            1
        }
    }

    fn ctx<'a>(
        meter: &'a mut EnergyMeter,
        next: &'a mut u64,
        tracer: &'a mut Tracer,
    ) -> Context<'a, Ping, &'static str> {
        Context {
            node: 3,
            now: SimTime::from_micros(42),
            meter,
            next_timer_id: next,
            tracer,
            effects: Vec::new(),
        }
    }

    #[test]
    fn context_reports_identity_and_time() {
        let mut meter = EnergyMeter::new();
        let mut next = 0;
        let mut tracer = Tracer::disabled(3);
        let c = ctx(&mut meter, &mut next, &mut tracer);
        assert_eq!(c.id(), 3);
        assert_eq!(c.now(), SimTime::from_micros(42));
    }

    #[test]
    fn timer_ids_are_unique_and_monotonic() {
        let mut meter = EnergyMeter::new();
        let mut next = 0;
        let mut tracer = Tracer::disabled(3);
        let mut c = ctx(&mut meter, &mut next, &mut tracer);
        let a = c.set_timer(SimDuration::from_micros(1), "a");
        let b = c.set_timer(SimDuration::from_micros(2), "b");
        assert!(a < b);
        assert_eq!(c.effects.len(), 2);
    }

    #[test]
    fn context_trace_stamps_the_nodes_clock() {
        use eesmr_trace::TraceLevel;
        let mut meter = EnergyMeter::new();
        let mut next = 0;
        let mut tracer = Tracer::new(TraceLevel::All, 3);
        let mut c = ctx(&mut meter, &mut next, &mut tracer);
        assert!(c.traces(TraceClass::Wire));
        c.trace(TraceEventKind::TimerFire { id: 5 });
        let trace = tracer.drain();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].time_us, 42);
        assert_eq!(trace.events[0].node, 3);
    }

    #[test]
    fn effects_are_recorded_in_order() {
        let mut meter = EnergyMeter::new();
        let mut next = 0;
        let mut tracer = Tracer::disabled(3);
        let mut c = ctx(&mut meter, &mut next, &mut tracer);
        c.multicast(Ping);
        c.flood(Ping);
        c.send_to(1, Ping);
        let kinds: Vec<&'static str> = c
            .effects
            .iter()
            .map(|e| match e {
                Effect::Multicast(_) => "m",
                Effect::Flood { target: None, .. } => "f",
                Effect::Flood { target: Some(_), .. } => "d",
                Effect::SetTimer { .. } => "t",
                Effect::CancelTimer(_) => "c",
            })
            .collect();
        assert_eq!(kinds, vec!["m", "f", "d"]);
    }
}
