//! Deterministic discrete-event network simulator for the EESMR
//! reproduction.
//!
//! Stands in for the paper's NUCLEO-F401RE + BLE testbed (§5.3): protocol
//! replicas are [`Actor`]s wired over an `eesmr_hypergraph::Hypergraph`
//! topology; the runtime delivers messages with bounded per-hop delays,
//! charges every transmission/reception to per-node
//! [`eesmr_energy::EnergyMeter`]s, supports network-layer flooding with
//! relay-once deduplication (the "logical full connectivity" of Appendix
//! A.3), and exposes an interceptor hook for adversarial scheduling.
//!
//! # Example
//!
//! ```
//! use eesmr_net::{Actor, Context, Message, NetConfig, NodeId, SimNet, SimDuration};
//! use eesmr_hypergraph::topology::ring_kcast;
//!
//! #[derive(Debug, Clone)]
//! struct Hello;
//! impl Message for Hello {
//!     fn wire_size(&self) -> usize { 25 }
//!     fn flood_key(&self) -> u64 { 1 }
//! }
//!
//! #[derive(Default)]
//! struct Node { heard: bool }
//! impl Actor for Node {
//!     type Msg = Hello;
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello, ()>) {
//!         if ctx.id() == 0 { ctx.flood(Hello); }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: Hello, _ctx: &mut Context<'_, Hello, ()>) {
//!         self.heard = true;
//!     }
//!     fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Hello, ()>) {}
//! }
//!
//! let cfg = NetConfig::ble(ring_kcast(5, 2), 7);
//! let mut net = SimNet::new(cfg, (0..5).map(|_| Node::default()).collect::<Vec<_>>());
//! net.run_for(SimDuration::from_millis(10));
//! assert!(net.actors().iter().all(|n| n.heard));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod channel;
pub mod codec;
pub mod harness;
pub mod message;
pub mod proc;
pub mod runtime;
pub mod sched;
pub mod shard;
pub mod threads;
pub mod time;

pub use actor::{Actor, Context, NodeId, TimerId};
pub use channel::ChannelCost;
pub use codec::{CodecError, Reader, WireCodec};
pub use proc::{ChildOpts, Coordinator, ProcTransport};
// Telemetry vocabulary, re-exported so actor crates can expose gauges
// and callers can configure sampling without naming `eesmr_metrics`.
pub use eesmr_metrics::{ActorGauges, GaugeKind, MetricsConfig, MetricsSet, NodeSeries};
// Trace vocabulary, re-exported so actor crates can gate and emit
// events through [`Context`] without naming `eesmr_trace` themselves.
pub use eesmr_trace::{EventKind as TraceEventKind, TraceClass, TraceLevel, TraceSet, Tracer};
pub use message::Message;
pub use runtime::{
    Delivery, Fate, Interceptor, LinkDrop, LinkFaults, NetConfig, NetStats, Partition, SimNet,
};
pub use sched::{CalendarQueue, EventQueue, SchedulerKind};
pub use shard::{shards_from_env, ShardedNet};
pub use threads::{ThreadNet, ThreadNetConfig};
pub use time::{SimDuration, SimTime};
