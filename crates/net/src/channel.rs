//! Per-link energy pricing for the simulated network.
//!
//! A [`ChannelCost`] prices one hyper-edge transmission: what the sender
//! pays to put a message on the air and what each receiver pays to take it
//! off. The three variants mirror the paper's §5.4 comparison: redundant
//! BLE advertisements (k-casts), BLE GATT unicast connections, and plain
//! per-byte media (WiFi / 4G) for the analytical scenarios.

use eesmr_energy::{BleGattModel, BleKcastModel, Medium};

/// Prices one transmission over a hyper-edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelCost {
    /// BLE advertisement k-cast with fixed redundancy (the protocol
    /// experiments use the redundancy for 99.99 % reliability, §5.6).
    BleKcast {
        /// Loss / energy model.
        model: BleKcastModel,
        /// Redundant transmissions per fragment.
        redundancy: u32,
    },
    /// BLE GATT: reliable, connection-per-receiver.
    BleGatt {
        /// Connection overhead model.
        model: BleGattModel,
    },
    /// A plain medium where a k-receiver edge costs `k` unicasts.
    PerByte {
        /// The underlying medium.
        medium: Medium,
    },
}

impl ChannelCost {
    /// The paper's default experimental channel: BLE k-casts tuned for
    /// 99.99 % per-link reliability at degree `k`.
    pub fn ble_four_nines(k: usize) -> Self {
        let model = BleKcastModel::default();
        let redundancy = model.redundancy_for(k, 0.9999);
        ChannelCost::BleKcast { model, redundancy }
    }

    /// Sender-side energy (mJ) for transmitting `bytes` to `k` receivers.
    pub fn send_mj(&self, bytes: usize, k: usize) -> f64 {
        match self {
            ChannelCost::BleKcast { model, redundancy } => {
                // One advertisement train reaches all k listeners.
                model.kcast_send_mj(bytes, *redundancy)
            }
            ChannelCost::BleGatt { model } => model.unicast_send_mj(bytes, k),
            ChannelCost::PerByte { medium } => k as f64 * medium.send_mj(bytes),
        }
    }

    /// Receiver-side energy (mJ) for one node receiving `bytes`.
    pub fn recv_mj(&self, bytes: usize) -> f64 {
        match self {
            ChannelCost::BleKcast { model, redundancy } => model.kcast_recv_mj(bytes, *redundancy),
            ChannelCost::BleGatt { model } => model.unicast_recv_mj(bytes, 1),
            ChannelCost::PerByte { medium } => medium.recv_mj(bytes),
        }
    }

    /// Receiver-side energy (mJ) for scanning a transmission of a message
    /// the node already holds. On the advertisement channel the first
    /// decoded packet carries the message identity, so a scanner
    /// recognizes the duplicate there and abandons the rest of the
    /// redundant train — one advertisement slot instead of
    /// `fragments × redundancy`. Connection-oriented and per-byte media
    /// have no train to abandon: a duplicate transfer is paid in full.
    pub fn dup_recv_mj(&self, bytes: usize) -> f64 {
        match self {
            ChannelCost::BleKcast { model, .. } => model.adv_recv_mj,
            ChannelCost::BleGatt { .. } | ChannelCost::PerByte { .. } => self.recv_mj(bytes),
        }
    }

    /// Receiver-side energy (mJ) for a message that arrives while the
    /// scanner's radio is already on for another reception. The full
    /// [`recv_mj`](Self::recv_mj) cost prices a whole scan window (radio
    /// on for the length of a redundant advertisement train); a second
    /// train overlapping that window is decoded from the *same* scan, so
    /// its marginal cost is one decode per fragment, not another full
    /// window. Connection-oriented and per-byte media have no shared
    /// scan: every transfer is paid in full.
    pub fn shared_recv_mj(&self, bytes: usize) -> f64 {
        match self {
            ChannelCost::BleKcast { model, .. } => {
                BleKcastModel::fragments(bytes) as f64 * model.adv_recv_mj
            }
            ChannelCost::BleGatt { .. } | ChannelCost::PerByte { .. } => self.recv_mj(bytes),
        }
    }

    /// Whether receivers on this medium run a scanning radio (the BLE
    /// advertisement channel). Decides which `EnergyClass` the scan-aware
    /// receive paths attribute to: scanning media split fresh receptions
    /// into scan-window vs shared-scan classes; connection-oriented and
    /// per-byte media decode every transfer in full.
    pub fn scanning_receiver(&self) -> bool {
        matches!(self, ChannelCost::BleKcast { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_nines_matches_fig2a_operating_point() {
        let c = ChannelCost::ble_four_nines(7);
        match c {
            ChannelCost::BleKcast { redundancy, .. } => assert_eq!(redundancy, 7),
            _ => panic!("expected k-cast"),
        }
        assert!((c.send_mj(25, 7) - 5.3).abs() < 0.05);
        assert!((c.recv_mj(25) - 9.98).abs() < 0.05);
    }

    #[test]
    fn kcast_send_cost_independent_of_k() {
        // One advertisement train reaches any number of listeners; only the
        // redundancy (chosen for k) changes the cost.
        let c = ChannelCost::ble_four_nines(3);
        assert_eq!(c.send_mj(100, 1), c.send_mj(100, 7));
    }

    #[test]
    fn gatt_send_scales_with_k() {
        let c = ChannelCost::BleGatt { model: BleGattModel::default() };
        assert!((c.send_mj(100, 4) - 4.0 * c.send_mj(100, 1)).abs() < 1e-9);
    }

    #[test]
    fn per_byte_uses_medium_tables() {
        let c = ChannelCost::PerByte { medium: Medium::Wifi };
        assert_eq!(c.send_mj(256, 1), Medium::Wifi.send_mj(256));
        assert_eq!(c.send_mj(256, 3), 3.0 * Medium::Wifi.send_mj(256));
        assert_eq!(c.recv_mj(256), Medium::Wifi.recv_mj(256));
    }

    #[test]
    fn higher_k_increases_redundancy_and_cost() {
        let c3 = ChannelCost::ble_four_nines(3);
        let c7 = ChannelCost::ble_four_nines(7);
        assert!(c7.send_mj(25, 7) >= c3.send_mj(25, 3));
    }
}
