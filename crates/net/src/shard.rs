//! Sharding one simulation across worker threads — conservative
//! parallel discrete-event simulation with a bit-for-bit determinism
//! guarantee.
//!
//! [`ShardedNet`] partitions the nodes of a single scenario round-robin
//! across `shards` shards (`node % shards`), each owning a private
//! [`EventQueue`](crate::sched::EventQueue), and advances them in
//! lockstep **time windows** of width equal to the network's *lookahead*
//! — the minimum cross-node latency, `hop_delay_min`. Within a window
//! every shard processes its local events independently; deliveries to
//! foreign nodes are buffered in per-shard outboxes and exchanged at the
//! window barrier. Because an event processed at time `t < W + L` can
//! only schedule a cross-shard delivery at `t + delay ≥ t + L ≥ W + L`,
//! nothing a shard does inside window `[W, W + L)` can affect another
//! shard's events in that same window — the classic conservative
//! synchronization argument (Chandy–Misra–Bryant, specialised to a
//! global barrier).
//!
//! **Adaptive windows.** On runs without a stop predicate
//! ([`run_until`](ShardedNet::run_until) / [`run_for`](ShardedNet::run_for))
//! the barrier cadence is adaptive: shard `r` may process every local
//! event strictly before `min over s ≠ r of (next_s + L)`, where `next_s`
//! is shard `s`'s earliest pending event at the barrier — the classic
//! Chandy–Misra–Bryant null-message bound. Any cross-shard delivery shard
//! `s` can still produce arrives no earlier than `next_s + L` (events
//! never go backwards in time and cross-shard hops cost at least `L`), so
//! the bound is conservative; when the other shards are idle or far
//! behind, one barrier round covers many lookahead windows, and a lone
//! busy shard drains to the limit in a single window. With a stop
//! predicate the fixed `L`-wide cadence is kept, because the predicate is
//! part of the observable schedule: it must be evaluated at the same
//! barrier times for every shard count.
//!
//! **The determinism contract.** The merged execution is bit-identical
//! to the single-threaded [`SimNet`](crate::SimNet) run because every
//! event's key and content are pure functions of node-local state (see
//! `crate::runtime`): sequence keys come from per-origin push counters,
//! hop delays from `(seed, sender, draw-index)` keyed draws, timer ids
//! from per-node counters. No counter is shared between nodes, so the
//! shard layout cannot leak into any event, and sorting all events by
//! `(time, seq)` reproduces exactly the reference heap order. The
//! workspace determinism suite (`tests/determinism.rs`) enforces
//! `EESMR_SHARDS = 1 ≡ 2 ≡ 4` across protocols, faults, and workloads.
//!
//! # Example: a sharded run matches the single-threaded one
//!
//! ```
//! use eesmr_net::{Actor, Context, Message, NetConfig, NodeId, ShardedNet, SimDuration, SimNet};
//! use eesmr_hypergraph::topology::ring_kcast;
//!
//! #[derive(Debug, Clone)]
//! struct Ping;
//! impl Message for Ping {
//!     fn wire_size(&self) -> usize { 32 }
//!     fn flood_key(&self) -> u64 { 1 }
//! }
//!
//! #[derive(Default)]
//! struct Node { heard: usize }
//! impl Actor for Node {
//!     type Msg = Ping;
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping, ()>) {
//!         if ctx.id() == 0 { ctx.flood(Ping); }
//!     }
//!     fn on_message(&mut self, _: NodeId, _: Ping, _: &mut Context<'_, Ping, ()>) {
//!         self.heard += 1;
//!     }
//!     fn on_timer(&mut self, _: (), _: &mut Context<'_, Ping, ()>) {}
//! }
//!
//! let build = || (0..6).map(|_| Node::default()).collect::<Vec<_>>();
//! let cfg = || NetConfig::ble(ring_kcast(6, 2), 9);
//!
//! let mut reference = SimNet::new(cfg(), build());
//! reference.run_until(eesmr_net::SimTime::ZERO + SimDuration::from_millis(20));
//!
//! let mut sharded = ShardedNet::new(cfg(), build(), 3);
//! sharded.run_for(SimDuration::from_millis(20));
//!
//! assert_eq!(sharded.shards(), 3);
//! assert_eq!(&sharded.stats(), reference.stats(), "identical network trace");
//! for id in 0..6 {
//!     assert_eq!(sharded.actor(id).heard, reference.actor(id).heard, "node {id}");
//! }
//! ```

use std::sync::{Arc, Barrier, Mutex};

use eesmr_energy::EnergyMeter;
use eesmr_metrics::{MetricsSet, ProfPhase, ProfTimer};

use crate::actor::{Actor, NodeId};
use crate::runtime::{Interceptor, NetConfig, NetStats, QueuedEvent, ShardState};
use crate::time::{SimDuration, SimTime};

/// Environment variable selecting the shard count ([`shards_from_env`]).
pub const ENV_SHARDS: &str = "EESMR_SHARDS";

/// Reads the `EESMR_SHARDS` environment variable: the number of shards
/// (worker threads) a scenario's simulation is split across. Defaults to
/// `1` (single-threaded) when unset or empty.
///
/// # Panics
///
/// Panics on a value that is not a positive integer — a typo must not
/// silently fall back to single-threaded mode, or the CI sharded
/// determinism gate could vacuously compare a layout against itself.
pub fn shards_from_env() -> usize {
    match std::env::var(ENV_SHARDS) {
        Err(_) => 1,
        Ok(v) if v.is_empty() => 1,
        Ok(v) => match v.parse::<usize>() {
            Ok(s) if s >= 1 => s,
            _ => panic!("{ENV_SHARDS} must be a positive integer, got '{v}'"),
        },
    }
}

/// What the window scheduler decided for the next round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// The stop predicate holds at the current wall — stop there.
    Stop {
        /// The barrier time at which the predicate held, µs.
        at: u64,
    },
    /// No events remain at or before the limit — finish at the limit.
    Done,
    /// Process every event with `time < horizon`, then synchronize.
    Window {
        /// Exclusive upper bound of the window, µs.
        horizon: u64,
    },
}

/// The deterministic window schedule: barrier times depend only on the
/// global minimum pending-event time, the lookahead, and the limit —
/// never on the shard count — so stop decisions (and therefore reported
/// end times) are identical for every `EESMR_SHARDS` value.
struct WindowClock {
    wall: u64,
    lookahead: u64,
    limit: u64,
}

impl WindowClock {
    fn new(wall: u64, lookahead: u64, limit: u64) -> Self {
        debug_assert!(lookahead > 0);
        WindowClock { wall, lookahead, limit }
    }

    /// Decides the next round given the earliest pending event across
    /// all shards and whether the stop predicate currently holds.
    fn next(&mut self, global_min: Option<u64>, pred_ok: bool) -> Decision {
        if pred_ok {
            return Decision::Stop { at: self.wall.min(self.limit) };
        }
        match global_min {
            Some(at) if at <= self.limit => {
                // Skip idle stretches: re-anchor to the lookahead-aligned
                // window containing the earliest event (identically for
                // every shard count, since `at` is itself an invariant).
                let start = self.wall.max((at / self.lookahead) * self.lookahead);
                let horizon = (start + self.lookahead).min(self.limit.saturating_add(1));
                debug_assert!(horizon > at, "every window makes progress");
                self.wall = horizon;
                Decision::Window { horizon }
            }
            _ => Decision::Done,
        }
    }
}

/// The per-node stop predicate as passed through the window loop.
type NodePred<'p, A> = &'p (dyn Fn(NodeId, &A) -> bool + Sync);

/// One window's cross-shard mailboxes: `mail[src][dst]`.
type Mailboxes<M, T> = Vec<Vec<Mutex<Vec<QueuedEvent<M, T>>>>>;

/// A discrete-event simulation sharded across worker threads.
///
/// Construction distributes the actors round-robin (`node % shards`)
/// into per-shard runtimes; [`run_until`](ShardedNet::run_until) /
/// [`run_until_all`](ShardedNet::run_until_all) then advance all shards
/// in conservative lockstep windows (see the module docs). With
/// `shards == 1` no threads are spawned and the runtime degenerates to
/// the single-threaded event loop with window-granular stop checks.
///
/// Compared to [`SimNet`](crate::SimNet), the stop predicate is
/// evaluated at window barriers (every `hop_delay_min` of virtual time)
/// rather than after every event, and it is expressed *per node* — both
/// are what make the stop decision independent of the shard layout.
pub struct ShardedNet<A: Actor> {
    cfg: Arc<NetConfig>,
    shards: Vec<ShardState<A>>,
    lookahead_us: u64,
    now: SimTime,
}

impl<A> ShardedNet<A>
where
    A: Actor + Send,
    A::Msg: Send,
    A::Timer: Send,
{
    /// Builds a sharded simulation over `cfg.topology` with one actor
    /// per node, split across `shards` shards (clamped to `[1, n]`).
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != cfg.topology.n()`, or if `shards > 1`
    /// while `cfg.hop_delay_min` is zero — a zero minimum hop delay
    /// means zero lookahead, and conservative windows need `L > 0`.
    pub fn new(cfg: NetConfig, actors: Vec<A>, shards: usize) -> Self {
        assert_eq!(actors.len(), cfg.topology.n(), "one actor per topology node");
        let n = actors.len();
        let shards = shards.clamp(1, n.max(1));
        assert!(
            shards == 1 || cfg.hop_delay_min > SimDuration::ZERO,
            "sharding requires a positive hop_delay_min (the lookahead)"
        );
        let lookahead_us = cfg.hop_delay_min.as_micros().max(1);
        let cfg = Arc::new(cfg);
        // Distribute actors into their residue classes, preserving global
        // id order within each shard.
        let mut buckets: Vec<Vec<A>> = (0..shards).map(|_| Vec::new()).collect();
        for (id, actor) in actors.into_iter().enumerate() {
            buckets[id % shards].push(actor);
        }
        let shards = buckets
            .into_iter()
            .enumerate()
            .map(|(i, bucket)| ShardState::new(Arc::clone(&cfg), i as u32, shards as u32, bucket))
            .collect();
        ShardedNet { cfg, shards, lookahead_us, now: SimTime::ZERO }
    }

    /// Number of shards this simulation runs across.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time (advanced at window barriers).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Immutable view of an actor, by global node id.
    pub fn actor(&self, id: NodeId) -> &A {
        let shard = &self.shards[id as usize % self.shards.len()];
        &shard.actors[shard.local(id)]
    }

    /// A node's energy meter, by global node id.
    pub fn meter(&self, id: NodeId) -> &EnergyMeter {
        self.shards[id as usize % self.shards.len()].meter(id)
    }

    /// Aggregate energy over a subset of nodes (e.g. the correct ones).
    pub fn energy_of(&self, nodes: impl IntoIterator<Item = NodeId>) -> EnergyMeter {
        let mut total = EnergyMeter::new();
        for id in nodes {
            total.absorb(self.meter(id));
        }
        total
    }

    /// Drains every node's trace ring buffer into a
    /// [`TraceSet`](eesmr_trace::TraceSet) in node-id order — the same
    /// set a single-threaded run produces, because every event is
    /// stamped with node-local state only (see `eesmr_trace`).
    pub fn take_traces(&mut self) -> eesmr_trace::TraceSet {
        let n = self.cfg.topology.n() as NodeId;
        let shards = self.shards.len();
        eesmr_trace::TraceSet {
            nodes: (0..n).map(|id| self.shards[id as usize % shards].take_trace(id)).collect(),
        }
    }

    /// Takes every node's sampled metrics series in node-id order — the
    /// same set a single-threaded run produces, because samples are
    /// stamped from node-local state on the node's own event stream (see
    /// `eesmr-metrics`).
    pub fn take_metrics(&mut self) -> MetricsSet {
        let n = self.cfg.topology.n() as NodeId;
        let shards = self.shards.len();
        MetricsSet {
            dt_us: self.cfg.metrics.dt_us,
            nodes: (0..n)
                .map(|id| self.shards[id as usize % shards].take_metrics_node(id))
                .collect(),
        }
    }

    /// Network statistics so far, merged across shards. Counters are
    /// sums, so the merge equals the single-threaded totals exactly.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
        }
        total
    }

    /// Installs one adversarial scheduling hook per shard (the factory
    /// is called once per shard index, in order).
    ///
    /// **Shard-safety contract.** A shard's interceptor sees exactly the
    /// deliveries *sent* by that shard's nodes, in sender-local order —
    /// but the interleaving *between* senders depends on the shard
    /// layout. To keep runs bit-identical across `EESMR_SHARDS` values,
    /// an interceptor must decide each delivery as a pure function of
    /// the [`Delivery`](crate::Delivery) itself (plus per-sender state
    /// at most); cross-sender mutable state (e.g. "drop the first 10
    /// deliveries I see") reintroduces layout dependence.
    pub fn set_interceptors(&mut self, mut factory: impl FnMut(usize) -> Option<Interceptor>) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.interceptor = factory(i);
        }
    }

    /// Runs until every event at or before `t` has been processed, then
    /// sets the clock to `t`. Equivalent to
    /// [`SimNet::run_until`](crate::SimNet::run_until) (and bit-identical
    /// to it for any shard count).
    pub fn run_until(&mut self, t: SimTime) {
        self.run_windows(t, None);
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Runs until `pred(node, actor)` holds for **every** node at a
    /// window barrier, or `deadline` passes; returns whether the
    /// predicate was met. The predicate is checked once per window
    /// (every `hop_delay_min` of virtual time with pending events), so
    /// the stop time — and every downstream report byte — is identical
    /// for every shard count.
    pub fn run_until_all(
        &mut self,
        deadline: SimTime,
        pred: impl Fn(NodeId, &A) -> bool + Sync,
    ) -> bool {
        self.run_windows(deadline, Some(&pred))
    }

    /// The shared window loop behind both run modes. `pred: None` means
    /// "run to the limit" (no stop checks).
    fn run_windows(&mut self, limit: SimTime, pred: Option<NodePred<'_, A>>) -> bool {
        let limit_us = limit.as_micros();
        let clock = WindowClock::new(self.now.as_micros(), self.lookahead_us, limit_us);
        let (final_now, pred_met) = if self.shards.len() == 1 {
            Self::run_inline(&mut self.shards[0], clock, pred)
        } else {
            Self::run_threaded(&mut self.shards, clock, pred)
        };
        self.now = self.now.max(SimTime::from_micros(final_now.min(limit_us)));
        pred_met
    }

    /// Evaluates the stop predicate over one shard's actors.
    fn shard_pred(shard: &ShardState<A>, pred: Option<NodePred<'_, A>>) -> bool {
        match pred {
            None => false,
            Some(p) => shard.actors.iter().enumerate().all(|(i, a)| p(shard.global(i), a)),
        }
    }

    /// Single-shard execution: the same window schedule, no threads.
    fn run_inline(
        shard: &mut ShardState<A>,
        mut clock: WindowClock,
        pred: Option<NodePred<'_, A>>,
    ) -> (u64, bool) {
        if pred.is_none() {
            // Adaptive fast path: a sole shard never receives cross-shard
            // traffic and nothing observes intermediate barriers, so the
            // whole span is one window.
            shard.run_window(clock.limit.saturating_add(1));
            return (clock.limit, false);
        }
        loop {
            let pred_ok = Self::shard_pred(shard, pred);
            match clock.next(shard.next_time(), pred_ok) {
                Decision::Stop { at } => return (at, true),
                Decision::Done => return (clock.limit, pred_ok),
                Decision::Window { horizon } => shard.run_window(horizon),
            }
        }
    }

    /// Fills `horizons[r]` with the adaptive (CMB null-message) bound for
    /// shard `r`: every local event strictly before
    /// `min over s ≠ r of (next_s + lookahead)` is safe to process without
    /// another exchange, because a shard whose earliest pending event is
    /// `next_s` cannot make anything arrive cross-shard before
    /// `next_s + lookahead`. Shards with no foreign activity pending run
    /// straight to the limit. Returns `false` — leaving `horizons`
    /// untouched — when no pending event is at or before the limit.
    fn adaptive_horizons(
        nexts: &[Option<u64>],
        lookahead: u64,
        limit: u64,
        horizons: &[Mutex<u64>],
    ) -> bool {
        let global_min = nexts.iter().copied().flatten().min();
        if global_min.is_none_or(|m| m > limit) {
            return false;
        }
        let open_end = limit.saturating_add(1);
        for (r, slot) in horizons.iter().enumerate() {
            let foreign_min = nexts
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != r)
                .filter_map(|(_, &next)| next)
                .min();
            *slot.lock().unwrap() = match foreign_min {
                Some(m) => m.saturating_add(lookahead).min(open_end),
                None => open_end,
            };
        }
        true
    }

    /// Multi-shard execution: one worker thread per shard, advancing in
    /// lockstep windows. Shard 0's worker doubles as the leader that
    /// runs the window clock between barriers.
    fn run_threaded(
        shards: &mut [ShardState<A>],
        clock: WindowClock,
        pred: Option<NodePred<'_, A>>,
    ) -> (u64, bool) {
        let count = shards.len();
        let barrier = Barrier::new(count);
        let decision = Mutex::new(Decision::Done);
        let (lookahead, limit) = (clock.lookahead, clock.limit);
        let clock = Mutex::new(clock);
        let outcome = Mutex::new((0u64, false));
        // locals[w] = (earliest pending event, local predicate) for shard
        // w, republished after every window; horizons[w] is the window
        // bound the leader assigns shard w each round (uniform under a
        // stop predicate, per-shard adaptive without one); mail[src][dst]
        // carries the cross-shard events of one window.
        let locals: Vec<Mutex<(Option<u64>, bool)>> =
            (0..count).map(|_| Mutex::new((None, false))).collect();
        let horizons: Vec<Mutex<u64>> = (0..count).map(|_| Mutex::new(0)).collect();
        let mail: Mailboxes<A::Msg, A::Timer> =
            (0..count).map(|_| (0..count).map(|_| Mutex::new(Vec::new())).collect()).collect();

        std::thread::scope(|scope| {
            for (w, shard) in shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let decision = &decision;
                let clock = &clock;
                let outcome = &outcome;
                let locals = &locals;
                let horizons = &horizons;
                let mail = &mail;
                scope.spawn(move || {
                    *locals[w].lock().unwrap() = (shard.next_time(), Self::shard_pred(shard, pred));
                    // Leader-only scratch for the per-shard next times.
                    let mut nexts: Vec<Option<u64>> = vec![None; count];
                    loop {
                        {
                            let _prof = ProfTimer::start(ProfPhase::BarrierWait);
                            barrier.wait();
                        }
                        if w == 0 {
                            // Leader: reduce the per-shard states and run
                            // the (shard-count-invariant) window clock.
                            let mut global_min: Option<u64> = None;
                            let mut all_ok = true;
                            for (slot, next) in locals.iter().zip(nexts.iter_mut()) {
                                let (n, ok) = *slot.lock().unwrap();
                                *next = n;
                                global_min = match (global_min, n) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, b) => a.or(b),
                                };
                                all_ok &= ok;
                            }
                            let next = if pred.is_none() {
                                // No stop checks to keep on a fixed
                                // cadence: batch each shard as far as the
                                // CMB bound allows.
                                if Self::adaptive_horizons(&nexts, lookahead, limit, horizons) {
                                    Decision::Window { horizon: 0 } // per-shard slots carry the bounds
                                } else {
                                    Decision::Done
                                }
                            } else {
                                let d = clock.lock().unwrap().next(global_min, all_ok);
                                if let Decision::Window { horizon } = d {
                                    for slot in horizons.iter() {
                                        *slot.lock().unwrap() = horizon;
                                    }
                                }
                                d
                            };
                            match next {
                                Decision::Stop { at } => *outcome.lock().unwrap() = (at, true),
                                Decision::Done => {
                                    *outcome.lock().unwrap() = (limit, all_ok && pred.is_some())
                                }
                                Decision::Window { .. } => {}
                            }
                            *decision.lock().unwrap() = next;
                        }
                        {
                            let _prof = ProfTimer::start(ProfPhase::BarrierWait);
                            barrier.wait();
                        }
                        match *decision.lock().unwrap() {
                            Decision::Stop { .. } | Decision::Done => break,
                            Decision::Window { .. } => {}
                        }
                        let horizon = *horizons[w].lock().unwrap();
                        shard.run_window(horizon);
                        for (dst, slot) in mail[w].iter().enumerate() {
                            if dst != w {
                                *slot.lock().unwrap() = shard.take_outbox(dst);
                            }
                        }
                        {
                            let _prof = ProfTimer::start(ProfPhase::BarrierWait);
                            barrier.wait();
                        }
                        let mut incoming = Vec::new();
                        for (src, row) in mail.iter().enumerate() {
                            if src != w {
                                incoming.append(&mut row[w].lock().unwrap());
                            }
                        }
                        shard.ingest(incoming);
                        *locals[w].lock().unwrap() =
                            (shard.next_time(), Self::shard_pred(shard, pred));
                    }
                });
            }
        });
        let (at, met) = *outcome.lock().unwrap();
        (at, met)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Context;
    use crate::message::Message;
    use crate::runtime::Fate;
    use crate::SimNet;
    use eesmr_hypergraph::topology::ring_kcast;

    /// A protocol that exercises every event kind: flood, targeted
    /// flood, multicast, timers (incl. cancellation), and replies across
    /// shard boundaries.
    #[derive(Debug, Clone)]
    enum TMsg {
        Ping(u64),
        Echo(u64),
        Hop(u64),
    }

    impl Message for TMsg {
        fn wire_size(&self) -> usize {
            48
        }
        fn flood_key(&self) -> u64 {
            match self {
                TMsg::Ping(x) => *x,
                TMsg::Echo(x) => (1 << 40) + *x,
                TMsg::Hop(x) => (2 << 40) + *x,
            }
        }
    }

    #[derive(Debug, Default)]
    struct TActor {
        id: NodeId,
        pings: Vec<u64>,
        echoes: Vec<u64>,
        hops: Vec<u64>,
        ticks: u64,
        cancelled_fired: bool,
    }

    impl Actor for TActor {
        type Msg = TMsg;
        type Timer = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, TMsg, &'static str>) {
            if ctx.id() == 0 {
                ctx.flood(TMsg::Ping(7));
                ctx.multicast(TMsg::Hop(1));
            }
            ctx.set_timer(SimDuration::from_millis(2 + ctx.id() as u64), "tick");
            let doomed = ctx.set_timer(SimDuration::from_millis(1), "doomed");
            ctx.cancel_timer(doomed);
        }

        fn on_message(
            &mut self,
            from: NodeId,
            msg: TMsg,
            ctx: &mut Context<'_, TMsg, &'static str>,
        ) {
            match msg {
                TMsg::Ping(x) => {
                    self.pings.push(x);
                    // Reply across the flood substrate — crosses shards.
                    ctx.send_to(from, TMsg::Echo(self.id as u64));
                }
                TMsg::Echo(x) => self.echoes.push(x),
                TMsg::Hop(x) => self.hops.push(x),
            }
        }

        fn on_timer(&mut self, token: &'static str, ctx: &mut Context<'_, TMsg, &'static str>) {
            match token {
                "tick" => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        ctx.multicast(TMsg::Hop(100 + self.ticks));
                        ctx.set_timer(SimDuration::from_millis(2), "tick");
                    }
                }
                _ => self.cancelled_fired = true,
            }
        }
    }

    fn actors(n: usize) -> Vec<TActor> {
        (0..n).map(|id| TActor { id: id as NodeId, ..TActor::default() }).collect()
    }

    type Fingerprint = Vec<(Vec<u64>, Vec<u64>, Vec<u64>, u64, bool, f64)>;

    fn fingerprint(net: &ShardedNet<TActor>, n: usize) -> Fingerprint {
        (0..n as NodeId)
            .map(|id| {
                let a = net.actor(id);
                (
                    a.pings.clone(),
                    a.echoes.clone(),
                    a.hops.clone(),
                    a.ticks,
                    a.cancelled_fired,
                    net.meter(id).total_mj(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_run_until_matches_simnet_for_any_shard_count() {
        let n = 9;
        let horizon = SimTime::ZERO + SimDuration::from_millis(30);
        let mut reference = SimNet::new(NetConfig::ble(ring_kcast(n, 3), 11), actors(n));
        reference.run_until(horizon);
        let ref_stats = reference.stats().clone();
        for shards in [1, 2, 3, 4, 9] {
            let mut net = ShardedNet::new(NetConfig::ble(ring_kcast(n, 3), 11), actors(n), shards);
            net.run_until(horizon);
            assert_eq!(net.stats(), ref_stats, "{shards} shards: NetStats diverged");
            assert_eq!(net.now(), horizon);
            for id in 0..n as NodeId {
                let (a, b) = (net.actor(id), reference.actor(id));
                assert_eq!(a.pings, b.pings, "{shards} shards, node {id}");
                assert_eq!(a.echoes, b.echoes, "{shards} shards, node {id}");
                assert_eq!(a.hops, b.hops, "{shards} shards, node {id}");
                assert_eq!(a.ticks, b.ticks, "{shards} shards, node {id}");
                assert!(!a.cancelled_fired, "{shards} shards, node {id}");
                assert_eq!(
                    net.meter(id).total_mj().to_bits(),
                    reference.meter(id).total_mj().to_bits(),
                    "{shards} shards, node {id}: energy diverged"
                );
            }
        }
    }

    #[test]
    fn predicate_stops_are_shard_count_invariant() {
        let n = 8;
        let deadline = SimTime::ZERO + SimDuration::from_millis(200);
        let mut outcomes = Vec::new();
        for shards in [1, 2, 4] {
            let mut net = ShardedNet::new(NetConfig::ble(ring_kcast(n, 2), 3), actors(n), shards);
            let met = net.run_until_all(deadline, |_, a| a.ticks >= 2);
            outcomes.push((met, net.now(), fingerprint(&net, n)));
        }
        assert!(outcomes[0].0, "the tick predicate is reachable");
        assert!(outcomes[0].1 < deadline, "stopped before the deadline");
        assert_eq!(outcomes[0], outcomes[1], "2 shards diverged from 1");
        assert_eq!(outcomes[0], outcomes[2], "4 shards diverged from 1");
    }

    #[test]
    fn unmet_predicate_runs_to_the_deadline() {
        let deadline = SimTime::ZERO + SimDuration::from_millis(5);
        let mut net = ShardedNet::new(NetConfig::ble(ring_kcast(6, 2), 3), actors(6), 2);
        let met = net.run_until_all(deadline, |_, a| a.ticks >= 1_000);
        assert!(!met);
        assert_eq!(net.now(), deadline);
    }

    #[test]
    fn per_shard_interceptors_drop_deterministically() {
        // A stateless (shard-safe) interceptor: drop everything node 0
        // sends. Node 0's ping never escapes, so only its loopback counts.
        let run = |shards: usize| {
            let mut net = ShardedNet::new(NetConfig::ble(ring_kcast(5, 2), 5), actors(5), shards);
            net.set_interceptors(|_| {
                Some(Box::new(
                    |d: &crate::Delivery| {
                        if d.from == 0 {
                            Fate::Drop
                        } else {
                            Fate::Deliver
                        }
                    },
                ))
            });
            net.run_for(SimDuration::from_millis(20));
            (net.stats(), fingerprint(&net, 5))
        };
        let (stats1, fp1) = run(1);
        let (stats2, fp2) = run(2);
        assert!(stats1.dropped > 0);
        assert_eq!(stats1, stats2);
        assert_eq!(fp1, fp2);
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let net = ShardedNet::new(NetConfig::ble(ring_kcast(4, 2), 1), actors(4), 64);
        assert_eq!(net.shards(), 4);
    }

    #[test]
    #[should_panic(expected = "positive hop_delay_min")]
    fn zero_lookahead_rejects_multiple_shards() {
        let mut cfg = NetConfig::ble(ring_kcast(4, 2), 1);
        cfg.hop_delay_min = SimDuration::ZERO;
        let _ = ShardedNet::new(cfg, actors(4), 2);
    }

    #[test]
    fn env_parsing_defaults_to_one() {
        // No env manipulation (tests run in parallel): only the default.
        if std::env::var(ENV_SHARDS).is_err() {
            assert_eq!(shards_from_env(), 1);
        }
    }
}
