//! Event schedulers for the discrete-event runtime.
//!
//! The simulator's hot path is its pending-event queue: every message hop,
//! loopback, and timer passes through it once on the way in and once on
//! the way out. Two interchangeable implementations live here, selectable
//! per [`NetConfig`](crate::NetConfig) (or globally via the `EESMR_SCHED`
//! environment variable):
//!
//! * **[`SchedulerKind::Heap`]** — the classic global
//!   `BinaryHeap<Reverse<Event>>`: `O(log N)` per operation in the number
//!   of outstanding events. Simple, and the reference for equivalence
//!   tests.
//! * **[`SchedulerKind::Calendar`]** — a [`CalendarQueue`]: near-future
//!   events land in a ring of per-tick FIFO lanes (`O(1)` push/pop), and
//!   far-future events (long timers) overflow into a sorted spill heap
//!   that drains back into the ring as virtual time advances.
//!
//! Both pop events in exactly the same total order — ascending
//! `(time, seq)` — so a simulation is bit-identical under either (the
//! workspace determinism tests and the `sched_prop` property test enforce
//! this). The calendar queue is the default because it makes large-`n`,
//! broadcast-heavy runs measurably faster (see the `scheduler` criterion
//! bench in `eesmr-bench`).
//!
//! # Example
//!
//! ```
//! use eesmr_net::sched::{EventQueue, SchedulerKind};
//!
//! // Same pushes, either backend, identical pop order.
//! for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
//!     let mut q = EventQueue::new(kind);
//!     q.push(500, 0, "delivery");
//!     q.push(120_000, 1, "far-future timer");
//!     q.push(500, 2, "same-tick follow-up");
//!     assert_eq!(q.pop(), Some((500, 0, "delivery")));
//!     assert_eq!(q.pop(), Some((500, 2, "same-tick follow-up")));
//!     assert_eq!(q.pop(), Some((120_000, 1, "far-future timer")));
//!     assert_eq!(q.pop(), None);
//! }
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which pending-event queue implementation a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Global binary heap: `O(log N)` per operation, the reference
    /// implementation.
    Heap,
    /// Calendar queue: `O(1)` time-bucketed lanes plus a spill heap for
    /// far-future events. The default.
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Reads the `EESMR_SCHED` environment variable (`heap` or
    /// `calendar`, case-insensitive); defaults to [`Calendar`] when
    /// unset.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a typo must not silently fall
    /// back to the default, or the CI scheduler-equivalence gate (which
    /// runs the suite under both values) could vacuously compare a
    /// backend against itself.
    ///
    /// [`Calendar`]: SchedulerKind::Calendar
    pub fn from_env() -> Self {
        match std::env::var("EESMR_SCHED") {
            Err(_) => SchedulerKind::Calendar,
            Ok(v) if v.eq_ignore_ascii_case("heap") => SchedulerKind::Heap,
            Ok(v) if v.eq_ignore_ascii_case("calendar") || v.is_empty() => SchedulerKind::Calendar,
            Ok(v) => panic!("EESMR_SCHED must be 'heap' or 'calendar', got '{v}'"),
        }
    }

    /// Display name (`"heap"` / `"calendar"`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        }
    }
}

/// One queued event: the `(time, seq)` key plus its payload. Ordering —
/// and therefore the whole determinism contract — is on `(time, seq)`
/// only; the runtime derives `seq` from the pushing node's id and its
/// private push counter (see `crate::runtime`), so keys are unique and
/// the order is total — and independent of how a run is sharded.
struct Entry<E> {
    time: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Default number of one-microsecond lanes in the near-future ring:
/// 1.024 virtual milliseconds — sized to the BLE hop-delay envelope
/// (500–1000 µs), so ordinary message hops land in the `O(1)` lanes
/// while protocol timers (multiples of Δ) and interceptor-delayed hops
/// spill. Kept small so constructing a simulation stays cheap for tiny
/// short-lived runs.
pub const DEFAULT_LANES: usize = 1024;

/// Pending-event count at which a lazily-constructed queue allocates its
/// lane ring. Below this the spill heap alone is at least as fast as the
/// ring (and costs no allocation), so tiny simulations run in pure heap
/// mode; above it the `O(1)` lanes win.
pub const MATERIALIZE_AT: usize = 192;

/// A calendar queue / hierarchical-bucket scheduler over `(time, seq)`
/// keys.
///
/// Near-future events — `time` within `lanes` ticks of the cursor — are
/// inserted into the lane of their exact delivery tick, kept sorted by
/// `seq`. A single-threaded simulation pushes same-tick events in almost
/// monotone `seq` order, so the ordered insert is an O(1) append in
/// practice; the general insert exists because sharded simulations merge
/// per-origin key streams (see `crate::shard`) whose same-tick arrivals
/// interleave out of push order. Far-future events overflow into a
/// sorted spill heap and migrate back into the ring as the cursor
/// advances.
///
/// # Contract
///
/// Callers must push unique `(time, seq)` keys and must never push an
/// event earlier than the last popped time (the latter holds trivially
/// for discrete-event simulation, where effects of processing an event at
/// time `t` are scheduled at `t + delay`, `delay ≥ 0`; violations panic
/// in debug builds). Same-tick pushes may arrive in any `seq` order —
/// pop order is always ascending `(time, seq)`.
pub struct CalendarQueue<E> {
    /// Ring of per-tick FIFO lanes; lane `i` holds events whose tick
    /// satisfies `tick & mask == i` and `cursor ≤ tick < cursor + lanes`.
    /// Empty (zero lanes) until the queue materializes the ring — tiny
    /// simulations stay in pure spill-heap mode and never pay the ring
    /// allocation.
    lanes: Box<[VecDeque<Entry<E>>]>,
    /// Ring size to allocate when the pending set grows past
    /// [`MATERIALIZE_AT`].
    target_lanes: usize,
    /// One bit per lane: set iff the lane is non-empty.
    occupancy: Box<[u64]>,
    /// `lanes.len() - 1` (the lane count is a power of two).
    mask: u64,
    /// Lower bound on every queued event's time; advances on pop.
    cursor: u64,
    /// Events currently in lanes (the rest are in `spill`).
    in_lanes: usize,
    /// Far-future overflow, ordered by `(time, seq)`.
    spill: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("lanes", &self.lanes.len())
            .field("cursor", &self.cursor)
            .field("in_lanes", &self.in_lanes)
            .field("in_spill", &self.spill.len())
            .finish()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue that will materialize a [`DEFAULT_LANES`]-tick
    /// ring once the pending set grows past [`MATERIALIZE_AT`] events.
    /// Until then every event lives in the spill heap, so tiny
    /// simulations pay nothing for the ring.
    pub fn new() -> Self {
        assert!(DEFAULT_LANES.is_power_of_two());
        CalendarQueue {
            lanes: Box::default(),
            target_lanes: DEFAULT_LANES,
            occupancy: Box::default(),
            mask: 0,
            cursor: 0,
            in_lanes: 0,
            spill: BinaryHeap::new(),
        }
    }

    /// An empty queue whose ring covers `lanes` one-microsecond ticks,
    /// allocated eagerly.
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two.
    pub fn with_lanes(lanes: usize) -> Self {
        assert!(lanes.is_power_of_two(), "lane count must be a power of two");
        let mut queue = CalendarQueue {
            lanes: Box::default(),
            target_lanes: lanes,
            occupancy: Box::default(),
            mask: 0,
            cursor: 0,
            in_lanes: 0,
            spill: BinaryHeap::new(),
        };
        queue.materialize();
        queue
    }

    /// Allocates the lane ring and pulls every already-pending event
    /// inside the new window out of the spill heap. Safe at any rest
    /// point: the heap yields same-tick events in `seq` order, so the
    /// lane FIFOs start ordered.
    fn materialize(&mut self) {
        self.lanes = (0..self.target_lanes).map(|_| VecDeque::new()).collect();
        self.occupancy = vec![0u64; self.target_lanes.div_ceil(64)].into_boxed_slice();
        self.mask = self.target_lanes as u64 - 1;
        self.migrate();
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.in_lanes + self.spill.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The width of the near-future window, in ticks.
    fn horizon(&self) -> u64 {
        self.lanes.len() as u64
    }

    /// Queues `payload` for `time`. See the type-level contract.
    pub fn push(&mut self, time: u64, seq: u64, payload: E) {
        debug_assert!(time >= self.cursor, "scheduler contract: events are never in the past");
        let entry = Entry { time, seq, payload };
        if time >= self.cursor + self.horizon() {
            self.spill.push(Reverse(entry));
            if self.lanes.is_empty() && self.spill.len() >= MATERIALIZE_AT {
                self.materialize();
            }
        } else {
            self.lane_insert(entry);
        }
    }

    /// The earliest queued `(time)` without popping, or `None` when
    /// empty. (At rest the spill holds nothing inside the ring window, so
    /// any occupied lane beats the spill head.)
    pub fn peek_time(&self) -> Option<u64> {
        if self.in_lanes > 0 {
            self.first_occupied_tick()
        } else {
            self.spill.peek().map(|Reverse(e)| e.time)
        }
    }

    /// Removes and returns the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        if self.in_lanes > 0 {
            let tick = self.first_occupied_tick().expect("in_lanes > 0");
            self.cursor = tick;
            let idx = (tick & self.mask) as usize;
            let entry = self.lanes[idx].pop_front().expect("occupied lane");
            debug_assert_eq!(entry.time, tick, "a lane holds exactly one tick");
            if self.lanes[idx].is_empty() {
                self.occupancy[idx / 64] &= !(1u64 << (idx % 64));
            }
            self.in_lanes -= 1;
            self.migrate();
            Some((entry.time, entry.seq, entry.payload))
        } else if let Some(Reverse(entry)) = self.spill.pop() {
            // Ring empty: the spill head is the global minimum. Advancing
            // the cursor re-anchors the ring window so follow-up events
            // (e.g. message hops scheduled while handling a long timer)
            // land back in the O(1) lanes.
            self.cursor = entry.time;
            self.migrate();
            Some((entry.time, entry.seq, entry.payload))
        } else {
            None
        }
    }

    /// Inserts `entry` into its lane at its sorted `(time, seq)` position,
    /// keeping the occupancy bitmap and the per-lane ordering invariant.
    /// Single-threaded simulations push in near-monotone `seq` order, so
    /// the backwards scan almost always terminates immediately and the
    /// insert is an O(1) append; sharded merges pay only for actual
    /// same-tick inversions.
    fn lane_insert(&mut self, entry: Entry<E>) {
        let idx = (entry.time & self.mask) as usize;
        let lane = &mut self.lanes[idx];
        debug_assert!(
            lane.back().is_none_or(|b| (b.time, b.seq) != (entry.time, entry.seq)),
            "(time, seq) keys must be unique"
        );
        if lane.is_empty() {
            self.occupancy[idx / 64] |= 1u64 << (idx % 64);
        }
        let pos = lane
            .iter()
            .rposition(|e| (e.time, e.seq) < (entry.time, entry.seq))
            .map_or(0, |p| p + 1);
        lane.insert(pos, entry);
        self.in_lanes += 1;
    }

    /// Moves every spill event that now falls inside the ring window into
    /// its lane. Runs after every cursor advance so that, between calls,
    /// the spill never holds anything earlier than `cursor + horizon` —
    /// the invariant `peek_time`/`push` rely on.
    fn migrate(&mut self) {
        let window_end = self.cursor + self.horizon();
        while self.spill.peek().is_some_and(|Reverse(e)| e.time < window_end) {
            let Reverse(entry) = self.spill.pop().expect("peeked");
            self.lane_insert(entry);
        }
    }

    /// The tick of the first occupied lane at or after the cursor, in
    /// ring order. `None` when all lanes are empty.
    fn first_occupied_tick(&self) -> Option<u64> {
        if self.in_lanes == 0 {
            return None;
        }
        let start = (self.cursor & self.mask) as usize;
        let words = self.occupancy.len();
        let (start_word, start_bit) = (start / 64, start % 64);
        // Tail of the start word, full middle words, then the head of the
        // start word (lanes that wrapped past the ring boundary).
        let tail = self.occupancy[start_word] & (!0u64 << start_bit);
        if tail != 0 {
            return Some(self.tick_of(start_word * 64 + tail.trailing_zeros() as usize, start));
        }
        for i in 1..words {
            let w = (start_word + i) % words;
            if self.occupancy[w] != 0 {
                return Some(
                    self.tick_of(w * 64 + self.occupancy[w].trailing_zeros() as usize, start),
                );
            }
        }
        let head = self.occupancy[start_word] & !(!0u64 << start_bit);
        if head != 0 {
            return Some(self.tick_of(start_word * 64 + head.trailing_zeros() as usize, start));
        }
        unreachable!("in_lanes > 0 implies an occupied lane")
    }

    /// Reconstructs the absolute tick of lane `idx`, given the lane index
    /// of the cursor: the ring distance from the cursor, added to it.
    fn tick_of(&self, idx: usize, start: usize) -> u64 {
        let distance = (idx as u64).wrapping_sub(start as u64) & self.mask;
        self.cursor + distance
    }
}

/// A bounded pool of reusable `Vec` buffers for the simulator's hot
/// paths.
///
/// The sharded runtime drains batches of queued events every barrier
/// window (outbox exchange) and every actor invocation drains a batch of
/// effects; allocating a fresh `Vec` for each would put an allocator
/// round-trip on the hottest loop. Instead, drained buffers come back
/// through [`put`](FreeList::put) — which drops their contents *eagerly*
/// (so no stale event can ever resurface) but keeps their capacity — and
/// the next [`get`](FreeList::get) hands the warm allocation out again.
/// The pool is bounded: spares beyond `cap` are simply freed, so a burst
/// never pins memory forever.
#[derive(Debug)]
pub struct FreeList<T> {
    pool: Vec<Vec<T>>,
    cap: usize,
}

impl<T> FreeList<T> {
    /// An empty pool retaining at most `cap` spare buffers.
    pub fn new(cap: usize) -> Self {
        FreeList { pool: Vec::new(), cap }
    }

    /// A recycled buffer — always empty, with whatever capacity its last
    /// life accumulated — or a fresh zero-capacity `Vec` when the pool is
    /// dry.
    pub fn get(&mut self) -> Vec<T> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. Its contents are dropped here and
    /// now — a recycled buffer can never leak stale elements — and its
    /// capacity is retained unless the pool is already at `cap`, in
    /// which case the buffer is freed.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if self.pool.len() < self.cap {
            self.pool.push(buf);
        }
    }

    /// Spare buffers currently pooled.
    pub fn spares(&self) -> usize {
        self.pool.len()
    }
}

/// The runtime's pending-event queue: one of the two [`SchedulerKind`]
/// backends behind a uniform push/peek/pop interface.
pub struct EventQueue<E>(Backend<E>);

enum Backend<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(CalendarQueue<E>),
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Backend::Heap(h) => f.debug_struct("EventQueue::Heap").field("len", &h.len()).finish(),
            Backend::Calendar(c) => c.fmt(f),
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue of the given kind.
    pub fn new(kind: SchedulerKind) -> Self {
        EventQueue(match kind {
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => Backend::Calendar(CalendarQueue::new()),
        })
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match &self.0 {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues `payload` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, payload: E) {
        match &mut self.0 {
            Backend::Heap(h) => h.push(Reverse(Entry { time, seq, payload })),
            Backend::Calendar(c) => c.push(time, seq, payload),
        }
    }

    /// The earliest queued time without popping.
    pub fn peek_time(&self) -> Option<u64> {
        match &self.0 {
            Backend::Heap(h) => h.peek().map(|Reverse(e)| e.time),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Removes and returns the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        match &mut self.0 {
            Backend::Heap(h) => h.pop().map(|Reverse(e)| (e.time, e.seq, e.payload)),
            Backend::Calendar(c) => c.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains both backends after identical pushes and asserts identical
    /// `(time, seq, payload)` sequences.
    fn assert_equivalent(events: &[(u64, &'static str)]) {
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut cal = EventQueue::new(SchedulerKind::Calendar);
        for (seq, &(time, tag)) in events.iter().enumerate() {
            heap.push(time, seq as u64, tag);
            cal.push(time, seq as u64, tag);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::with_lanes(64);
        q.push(9, 0, "c");
        q.push(3, 1, "a");
        q.push(3, 2, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, 1, "a")));
        assert_eq!(q.pop(), Some((3, 2, "b")));
        assert_eq!(q.pop(), Some((9, 0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_spill_and_come_back() {
        let mut q = CalendarQueue::with_lanes(64);
        q.push(1_000_000, 0, "timer"); // way past the 64-tick window
        q.push(10, 1, "hop");
        assert_eq!(q.pop(), Some((10, 1, "hop")));
        // The timer is still in the spill; popping it re-anchors the ring.
        assert_eq!(q.peek_time(), Some(1_000_000));
        assert_eq!(q.pop(), Some((1_000_000, 0, "timer")));
        // Events scheduled relative to the new cursor land in lanes again.
        q.push(1_000_005, 2, "follow-up");
        assert_eq!(q.pop(), Some((1_000_005, 2, "follow-up")));
    }

    #[test]
    fn same_tick_out_of_order_seqs_pop_sorted() {
        // Sharded merges interleave per-origin key streams, so same-tick
        // events can arrive with descending seqs; pop order must still be
        // ascending (time, seq) on both backends.
        let events: Vec<(u64, u64, &'static str)> = vec![
            (5, 9, "i"),
            (5, 3, "c"),
            (7, 1, "a"),
            (5, 6, "f"),
            (5, 1, "b"),
            (9, 0, "z"),
            (5, 4, "d"),
        ];
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = EventQueue::new(kind);
            for &(t, s, tag) in &events {
                q.push(t, s, tag);
            }
            let mut got = Vec::new();
            while let Some(e) = q.pop() {
                got.push(e);
            }
            let mut expect = events.clone();
            expect.sort_unstable_by_key(|&(t, s, _)| (t, s));
            assert_eq!(got, expect, "{}", kind.name());
        }
    }

    #[test]
    fn same_tick_pushes_while_draining_keep_order() {
        let mut q = CalendarQueue::with_lanes(64);
        q.push(5, 0, "first");
        q.push(5, 1, "second");
        assert_eq!(q.pop(), Some((5, 0, "first")));
        // A zero-delay push at the current time (the loopback pattern).
        q.push(5, 2, "loopback");
        assert_eq!(q.pop(), Some((5, 1, "second")));
        assert_eq!(q.pop(), Some((5, 2, "loopback")));
    }

    #[test]
    fn ring_wrap_spans_many_rotations() {
        let mut q = CalendarQueue::with_lanes(64);
        let mut expect = Vec::new();
        for (seq, round) in (0u64..50).enumerate() {
            let t = round * 37; // crosses the 64-tick ring repeatedly
            q.push(t, seq as u64, round);
            expect.push((t, seq as u64, round));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        expect.sort_unstable_by_key(|&(t, s, _)| (t, s));
        assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // A hold-model workload: pop one, schedule a few relative to it.
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        let mut cal = EventQueue::new(SchedulerKind::Calendar);
        let mut seq = 0u64;
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..32 {
            heap.push(0, seq, seq);
            cal.push(0, seq, seq);
            seq += 1;
        }
        for _ in 0..10_000 {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b);
            let Some((now, _, _)) = a else { break };
            for _ in 0..(rand() % 3) {
                // Mix in near-future hops and far-future timers.
                let delay =
                    if rand() % 8 == 0 { 100_000 + rand() % 500_000 } else { rand() % 1_500 };
                heap.push(now + delay, seq, seq);
                cal.push(now + delay, seq, seq);
                seq += 1;
            }
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn small_batch_equivalence_cases() {
        assert_equivalent(&[]);
        assert_equivalent(&[(0, "only")]);
        assert_equivalent(&[(7, "a"), (7, "b"), (7, "c")]);
        assert_equivalent(&[(63, "edge"), (64, "wrap"), (65, "past"), (0, "first")]);
        assert_equivalent(&[(1 << 40, "huge"), (0, "tiny"), (1 << 20, "mid")]);
    }

    #[test]
    fn lazy_ring_materializes_under_load_and_stays_ordered() {
        let mut q = CalendarQueue::new();
        // Below the threshold: everything rides the spill heap.
        for seq in 0..16u64 {
            q.push(seq * 3, seq, seq);
        }
        assert_eq!(q.lanes.len(), 0, "tiny queues never allocate the ring");
        assert_eq!(q.pop(), Some((0, 0, 0)));
        // Blow past the threshold: the ring appears, order is unchanged.
        let mut expect: Vec<(u64, u64, u64)> = (1..16u64).map(|s| (s * 3, s, s)).collect();
        for seq in 16..(16 + MATERIALIZE_AT as u64) {
            q.push(seq, seq, seq);
            expect.push((seq, seq, seq));
        }
        assert_eq!(q.lanes.len(), DEFAULT_LANES, "materialized under load");
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn env_selection_defaults_to_calendar() {
        // No env manipulation (tests run in parallel): just the parsing
        // default and the names.
        assert_eq!(SchedulerKind::default(), SchedulerKind::Calendar);
        assert_eq!(SchedulerKind::Heap.name(), "heap");
        assert_eq!(SchedulerKind::Calendar.name(), "calendar");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_lanes_rejected() {
        let _ = CalendarQueue::<u8>::with_lanes(100);
    }

    #[test]
    fn freelist_recycles_capacity_without_stale_state() {
        let mut fl = FreeList::new(2);
        let mut buf = fl.get();
        buf.extend([1, 2, 3]);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        fl.put(buf);
        // The same allocation comes back — empty, capacity intact.
        let recycled = fl.get();
        assert!(recycled.is_empty(), "recycled buffers must never expose stale elements");
        assert_eq!(recycled.capacity(), cap);
        assert_eq!(recycled.as_ptr(), ptr, "the warm allocation is reused, not reallocated");
        fl.put(recycled);
        // Contents are dropped at put() time, observable via drop effects.
        let counted: Vec<std::rc::Rc<u8>> = vec![std::rc::Rc::new(9)];
        let probe = std::rc::Rc::clone(&counted[0]);
        let mut fl2 = FreeList::new(1);
        fl2.put(counted);
        assert_eq!(std::rc::Rc::strong_count(&probe), 1, "put() drops contents eagerly");
        // The pool is bounded by cap.
        let mut fl3 = FreeList::<u8>::new(2);
        fl3.put(Vec::with_capacity(1));
        fl3.put(Vec::with_capacity(1));
        fl3.put(Vec::with_capacity(1));
        assert_eq!(fl3.spares(), 2);
    }
}
