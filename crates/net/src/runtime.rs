//! The deterministic discrete-event network runtime.
//!
//! Replaces the paper's physical BLE testbed: actors exchange messages over
//! a [`Hypergraph`] topology with bounded per-hop delays, every
//! transmission and reception is charged to the node's [`EnergyMeter`] at
//! the configured [`ChannelCost`], and an optional interceptor lets fault
//! injectors delay or drop traffic (within the bounded-synchrony envelope
//! their scenario assumes).
//!
//! Determinism: every source of nondeterminism is keyed by *node-local*
//! state rather than global processing order. Hop delays are counter-based
//! draws keyed by `(seed, sender, per-sender draw index)`; event-queue
//! ties break by a sequence key derived from `(origin node, per-origin
//! push counter)`; timer ids encode `(node, per-node timer counter)`. A
//! run is therefore a pure function of `(config, actors, seed)` — and,
//! because no counter is shared between nodes, the very same trace falls
//! out whether the nodes run in one event loop or sharded across worker
//! threads (see [`crate::shard`]). The pending-event queue itself is
//! pluggable (see [`crate::sched`]): the default calendar queue and the
//! reference binary heap pop in the same `(time, seq)` total order, so
//! the choice never changes a trace, only how fast it is produced.
//!
//! # Example: drive a simulation step by step
//!
//! ```
//! use eesmr_net::{Actor, Context, Message, NetConfig, NodeId, SimDuration, SimNet};
//! use eesmr_hypergraph::topology::ring_kcast;
//!
//! #[derive(Debug, Clone)]
//! struct Tick;
//! impl Message for Tick {
//!     fn wire_size(&self) -> usize { 16 }
//!     fn flood_key(&self) -> u64 { 0 }
//! }
//!
//! #[derive(Default)]
//! struct Node { heard: usize }
//! impl Actor for Node {
//!     type Msg = Tick;
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Tick, ()>) {
//!         if ctx.id() == 0 { ctx.multicast(Tick); }
//!     }
//!     fn on_message(&mut self, _: NodeId, _: Tick, _: &mut Context<'_, Tick, ()>) {
//!         self.heard += 1;
//!     }
//!     fn on_timer(&mut self, _: (), _: &mut Context<'_, Tick, ()>) {}
//! }
//!
//! let mut net = SimNet::new(
//!     NetConfig::ble(ring_kcast(4, 2), 7),
//!     (0..4).map(|_| Node::default()).collect::<Vec<_>>(),
//! );
//! net.run_for(SimDuration::from_millis(5));
//! // Node 0 multicast once: its two ring successors (and its own
//! // loopback) heard it, and the meters were charged for the k-cast.
//! assert_eq!(net.actors().iter().filter(|n| n.heard > 0).count(), 3);
//! assert!(net.stats().kcasts >= 1);
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use eesmr_energy::{EnergyCategory, EnergyClass, EnergyMeter, EnergyPhase};
use eesmr_hypergraph::Hypergraph;
use eesmr_metrics::{MetricsConfig, MetricsRecorder, MetricsSet, NodeSeries, ProfPhase, ProfTimer};
use eesmr_trace::{EventKind as TraceEventKind, NodeTrace, TraceLevel, TraceSet, Tracer};

use crate::actor::{Actor, Context, Effect, NodeId, TimerId};
use crate::channel::ChannelCost;
use crate::message::Message;
use crate::sched::{EventQueue, FreeList, SchedulerKind};
use crate::time::{SimDuration, SimTime};

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The communication topology.
    pub topology: Hypergraph,
    /// Per-edge energy pricing.
    pub channel: ChannelCost,
    /// Minimum per-hop propagation delay.
    pub hop_delay_min: SimDuration,
    /// Maximum per-hop propagation delay (the per-hop synchrony bound).
    pub hop_delay_max: SimDuration,
    /// Seed for all delay sampling.
    pub seed: u64,
    /// Pending-event queue implementation. Traces are bit-identical under
    /// either kind; the calendar queue is simply faster (see
    /// [`crate::sched`]).
    pub scheduler: SchedulerKind,
    /// How much of the structured event taxonomy the runtime records
    /// into per-node [`Tracer`] ring buffers (collect with
    /// [`SimNet::take_traces`]). [`TraceLevel::Off`] costs one enum
    /// comparison per candidate event.
    pub trace: TraceLevel,
    /// Deterministic time-series sampling (see `eesmr-metrics`): when
    /// enabled, every node records its gauges each `dt_us` of simulated
    /// time into a ring series (collect with [`SimNet::take_metrics`]).
    /// Off by default; disabled sampling costs one branch per event.
    pub metrics: MetricsConfig,
    /// Scheduled link-level faults: healing partitions and selective
    /// per-link drop rules, enforced at transmit time (empty by default).
    pub link_faults: LinkFaults,
}

/// A scheduled set of link-level faults the runtime enforces at transmit
/// time. Both fault families are **pure functions of the sender's local
/// view** — partitions of `(virtual time, from, to)`, drop rules of that
/// plus a per-sender keyed draw counter — so sharded runs stay
/// bit-identical to single-threaded ones (see `crate::shard`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Healing partitions: while active, every link with exactly one
    /// endpoint inside the island is severed.
    pub partitions: Vec<Partition>,
    /// Probabilistic per-link drop rules.
    pub drops: Vec<LinkDrop>,
}

impl LinkFaults {
    /// Whether no fault is scheduled at all (the common fast path).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty() && self.drops.is_empty()
    }

    /// Whether the `from → to` link is severed by an active partition at
    /// `now_us`: a link crosses the partition boundary iff exactly one
    /// endpoint is inside the island.
    pub fn severed(&self, now_us: u64, from: NodeId, to: NodeId) -> bool {
        self.partitions.iter().any(|p| {
            now_us >= p.start_us
                && now_us < p.end_us
                && (p.island.contains(&from) != p.island.contains(&to))
        })
    }

    /// The strongest drop probability (per mille) any active rule applies
    /// to the `from → to` link at `now_us`; `None` when no rule matches.
    pub fn drop_permille(&self, now_us: u64, from: NodeId, to: NodeId) -> Option<u16> {
        self.drops
            .iter()
            .filter(|d| {
                d.from == from
                    && d.to.is_none_or(|t| t == to)
                    && now_us >= d.start_us
                    && now_us < d.end_us
            })
            .map(|d| d.permille)
            .max()
    }

    /// The time the last scheduled fault window ends (µs); 0 when no
    /// windows are scheduled. Open-ended (`u64::MAX`) windows never heal.
    pub fn heal_time_us(&self) -> u64 {
        let p = self.partitions.iter().map(|p| p.end_us).max().unwrap_or(0);
        let d = self.drops.iter().map(|d| d.end_us).max().unwrap_or(0);
        p.max(d)
    }
}

/// One healing network partition: during `[start_us, end_us)` the nodes
/// in `island` can talk among themselves but not across the boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    /// Window start (inclusive), µs of virtual time.
    pub start_us: u64,
    /// Window end (exclusive), µs; `u64::MAX` for a partition that never
    /// heals.
    pub end_us: u64,
    /// The nodes cut off from the rest of the network during the window.
    pub island: Vec<NodeId>,
}

/// One selective per-link drop rule: while active, deliveries on the
/// matching link(s) are dropped with probability `permille / 1000`,
/// decided by a keyed draw from the sender's private drop counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDrop {
    /// The transmitting node the rule applies to.
    pub from: NodeId,
    /// The receiving node, or `None` to match every receiver.
    pub to: Option<NodeId>,
    /// Drop probability in per mille (1000 = drop everything).
    pub permille: u16,
    /// Window start (inclusive), µs of virtual time.
    pub start_us: u64,
    /// Window end (exclusive), µs; `u64::MAX` for a permanent rule.
    pub end_us: u64,
}

/// Salt mixed into the seed for selective-drop draws, so the drop stream
/// never aliases the hop-delay stream of the same sender.
const DROP_SALT: u64 = 0xD20F_5EED_1155_0BAD;

impl NetConfig {
    /// A BLE k-cast network over `topology` with four-nines reliability and
    /// default delays (0.5–1 ms per hop).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no edges.
    pub fn ble(topology: Hypergraph, seed: u64) -> Self {
        let k = topology.k().expect("topology must have edges");
        NetConfig {
            topology,
            channel: ChannelCost::ble_four_nines(k),
            hop_delay_min: SimDuration::from_micros(500),
            hop_delay_max: SimDuration::from_micros(1_000),
            seed,
            scheduler: SchedulerKind::from_env(),
            trace: TraceLevel::from_env(),
            metrics: MetricsConfig::from_env(),
            link_faults: LinkFaults::default(),
        }
    }

    /// The synchrony bound Δ this network guarantees: a message from any
    /// correct sender reaches every correct node within
    /// `diameter × hop_delay_max` (Appendix A, "Network delay").
    ///
    /// # Panics
    ///
    /// Panics if the topology is not strongly connected.
    pub fn delta(&self) -> SimDuration {
        let d =
            self.topology.diameter().expect("Δ is only defined for strongly connected topologies");
        self.hop_delay_max * (d as u64).max(1)
    }
}

/// Counters describing what the network did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Physical k-cast transmissions (multicast originations + relays).
    pub kcasts: u64,
    /// Messages delivered to actors.
    pub deliveries: u64,
    /// Free loopback deliveries (not on the air).
    pub loopbacks: u64,
    /// Flood relays performed by the network layer.
    pub flood_relays: u64,
    /// Payload bytes that crossed the air (per k-cast, not per receiver).
    pub bytes_on_air: u64,
    /// Deliveries suppressed by the interceptor or the link-fault
    /// schedule ([`LinkFaults`]).
    pub dropped: u64,
}

impl NetStats {
    /// Adds another stats block into this one (field-wise). Counter sums
    /// are order-independent, so merging per-shard stats yields exactly
    /// the single-threaded totals.
    pub fn absorb(&mut self, other: &NetStats) {
        self.kcasts += other.kcasts;
        self.deliveries += other.deliveries;
        self.loopbacks += other.loopbacks;
        self.flood_relays += other.flood_relays;
        self.bytes_on_air += other.bytes_on_air;
        self.dropped += other.dropped;
    }
}

/// A pending delivery the interceptor may reshape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Message size in bytes.
    pub size: usize,
    /// Whether this hop is a network-layer flood relay.
    pub is_flood: bool,
}

/// What the interceptor decides for a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver normally (with the sampled delay).
    Deliver,
    /// Drop silently (the sender still paid transmission energy).
    Drop,
    /// Add extra delay on top of the sampled hop delay. The caller is
    /// responsible for keeping the total within the Δ its scenario assumes
    /// — the standard synchronous-adversary contract.
    DelayBy(SimDuration),
}

/// Adversarial scheduling hook. `Send` so sharded runtimes can install a
/// per-shard instance (see [`crate::shard`] for the shard-safety
/// contract interceptors must additionally satisfy there).
pub type Interceptor = Box<dyn FnMut(&Delivery) -> Fate + Send>;

#[derive(Debug)]
pub(crate) enum EventKind<M, T> {
    Start,
    Deliver { from: NodeId, msg: M, flood: Option<FloodMeta>, loopback: bool },
    Timer { id: TimerId, token: T },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct FloodMeta {
    key: u64,
    origin: NodeId,
    target: Option<NodeId>,
}

/// The pending-event payload: which node the event targets and what it
/// carries.
pub(crate) type NodeEvent<M, T> = (NodeId, EventKind<M, T>);

/// A fully-keyed queued event as exchanged between shards:
/// `(time µs, seq key, payload)`.
pub(crate) type QueuedEvent<M, T> = (u64, u64, NodeEvent<M, T>);

/// Bits reserved for the origin node id in the low end of an event's
/// sequence key (the per-origin push counter occupies the high bits, so
/// same-time keys order by counter first, then node id). Caps simulated
/// systems at 2^20 nodes.
pub(crate) const SEQ_NODE_BITS: u32 = 20;

/// A deterministic 64-bit draw keyed by `(seed, node, counter)` — a
/// SplitMix64-style finalizer over a per-node stream position. Because
/// the value depends only on the key (never on how many draws other
/// nodes made), delay sampling is invariant under sharding.
pub(crate) fn keyed_draw(seed: u64, node: NodeId, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add((node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(counter.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard of a simulation: the actors it owns (a round-robin residue
/// class of the node ids), their meters and flood-dedup sets, the local
/// pending-event queue, and an outbox of cross-shard deliveries. A
/// single-threaded [`SimNet`] is exactly one `ShardState` owning every
/// node; the parallel runtime (`crate::shard`) drives several in
/// lockstep windows.
pub(crate) struct ShardState<A: Actor> {
    pub(crate) cfg: Arc<NetConfig>,
    /// Total shard count (1 for `SimNet`).
    shards: u32,
    /// This shard's index; it owns every node with `id % shards == index`.
    index: u32,
    /// Owned actors; local slot `i` holds global node `index + i·shards`.
    pub(crate) actors: Vec<A>,
    meters: Vec<EnergyMeter>,
    /// Per-owned-node trace ring buffers (see [`crate::Context::trace`];
    /// the runtime also records wire-layer events here). Node-local like
    /// the meters, so recorded streams are shard-invariant.
    tracers: Vec<Tracer>,
    /// Per-owned-node metrics samplers (see `eesmr-metrics`): lazy
    /// boundary-crossing on the node's own event stream, so sampled
    /// series are shard-invariant like the tracers.
    recorders: Vec<MetricsRecorder>,
    seen_floods: Vec<HashSet<u64>>,
    /// Per-owned-node end of the current receive scan window, µs. The
    /// first reception in a window pays the full scan
    /// ([`ChannelCost::recv_mj`]); further receptions before it closes
    /// share the radio-on time and pay only marginal decode
    /// ([`ChannelCost::shared_recv_mj`]). Node-local, so scan pricing is
    /// shard-invariant.
    scan_until: Vec<u64>,
    /// Per-owned-node event push counters (high bits of the seq key).
    push_ctr: Vec<u64>,
    /// Per-owned-node hop-delay draw counters.
    draw_ctr: Vec<u64>,
    /// Per-owned-node selective-drop draw counters (separate from
    /// `draw_ctr` so enabling a drop rule never perturbs the hop-delay
    /// stream of unrelated deliveries).
    drop_ctr: Vec<u64>,
    /// Per-owned-node timer-id counters.
    timer_ctr: Vec<u64>,
    cancelled_timers: HashSet<u64>,
    queue: EventQueue<NodeEvent<A::Msg, A::Timer>>,
    /// Cross-shard deliveries generated this window, keyed by target
    /// shard (`outbox[self.index]` stays empty).
    outbox: Vec<Vec<QueuedEvent<A::Msg, A::Timer>>>,
    /// Recycled outbox buffers: vectors drained by [`Self::ingest`] come
    /// back here and [`Self::take_outbox`] hands them out again, so the
    /// per-window exchange allocates nothing at steady state.
    event_buffers: FreeList<QueuedEvent<A::Msg, A::Timer>>,
    /// Recycled effect-scratch buffers for [`Self::invoke`]: one actor
    /// invocation per queue pop means alloc-per-event without this.
    effect_buffers: FreeList<Effect<A::Msg, A::Timer>>,
    pub(crate) now: SimTime,
    pub(crate) stats: NetStats,
    pub(crate) interceptor: Option<Interceptor>,
}

impl<A: Actor> ShardState<A> {
    /// Builds shard `index` of `shards` over the shared config, owning
    /// `actors` (local order: ascending global id within the residue
    /// class). Seeds each owned node's Start event at t = 0.
    pub(crate) fn new(cfg: Arc<NetConfig>, index: u32, shards: u32, actors: Vec<A>) -> Self {
        assert!(shards >= 1 && index < shards);
        assert!(
            cfg.topology.n() < (1 << SEQ_NODE_BITS),
            "the seq key encoding caps systems at 2^20 nodes"
        );
        let local_n = actors.len();
        let queue = EventQueue::new(cfg.scheduler);
        let tracers = (0..local_n)
            .map(|local| Tracer::new(cfg.trace, index + (local as u32) * shards))
            .collect();
        let recorders = (0..local_n).map(|_| MetricsRecorder::new(&cfg.metrics)).collect();
        let mut shard = ShardState {
            cfg,
            shards,
            index,
            actors,
            meters: vec![EnergyMeter::new(); local_n],
            tracers,
            recorders,
            seen_floods: vec![HashSet::new(); local_n],
            scan_until: vec![0; local_n],
            push_ctr: vec![0; local_n],
            draw_ctr: vec![0; local_n],
            drop_ctr: vec![0; local_n],
            timer_ctr: vec![0; local_n],
            cancelled_timers: HashSet::new(),
            queue,
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            event_buffers: FreeList::new(2 * shards as usize),
            effect_buffers: FreeList::new(2),
            now: SimTime::ZERO,
            stats: NetStats::default(),
            interceptor: None,
        };
        for local in 0..local_n {
            let node = shard.global(local);
            shard.push_from(node, SimTime::ZERO, node, EventKind::Start);
        }
        shard
    }

    /// Whether this shard owns `node`.
    pub(crate) fn owns(&self, node: NodeId) -> bool {
        node % self.shards == self.index
    }

    /// The local slot of an owned global node id.
    pub(crate) fn local(&self, node: NodeId) -> usize {
        debug_assert!(self.owns(node));
        (node / self.shards) as usize
    }

    /// The global node id of a local slot.
    pub(crate) fn global(&self, local: usize) -> NodeId {
        self.index + (local as u32) * self.shards
    }

    /// An owned node's meter.
    pub(crate) fn meter(&self, node: NodeId) -> &EnergyMeter {
        &self.meters[self.local(node)]
    }

    /// Drains an owned node's trace ring buffer.
    pub(crate) fn take_trace(&mut self, node: NodeId) -> NodeTrace {
        let local = self.local(node);
        self.tracers[local].drain()
    }

    /// Takes an owned node's sampled metrics series, leaving a disabled
    /// recorder behind.
    pub(crate) fn take_metrics_node(&mut self, node: NodeId) -> NodeSeries {
        let local = self.local(node);
        let off = MetricsRecorder::new(&MetricsConfig::off());
        std::mem::replace(&mut self.recorders[local], off).finish()
    }

    /// The earliest pending local event time, µs.
    pub(crate) fn next_time(&self) -> Option<u64> {
        self.queue.peek_time()
    }

    /// Accepts cross-shard events (already keyed by their origin). The
    /// drained buffer is recycled into the local pool.
    pub(crate) fn ingest(&mut self, mut events: Vec<QueuedEvent<A::Msg, A::Timer>>) {
        for (time, seq, payload) in events.drain(..) {
            self.queue.push(time, seq, payload);
        }
        self.event_buffers.put(events);
    }

    /// Drains the outbox destined for shard `dst`, replacing it with a
    /// recycled buffer.
    pub(crate) fn take_outbox(&mut self, dst: usize) -> Vec<QueuedEvent<A::Msg, A::Timer>> {
        let replacement = self.event_buffers.get();
        std::mem::replace(&mut self.outbox[dst], replacement)
    }

    /// Processes every local event with `time < horizon_us` (exclusive —
    /// events at exactly the horizon belong to the next window).
    pub(crate) fn run_window(&mut self, horizon_us: u64) {
        while self.queue.peek_time().is_some_and(|t| t < horizon_us) {
            self.step();
        }
    }

    /// Processes the next event, if any, returning its timestamp.
    pub(crate) fn step(&mut self) -> Option<SimTime> {
        let popped = {
            let _t = ProfTimer::start(ProfPhase::SchedPop);
            self.queue.pop()
        };
        let (time, _seq, (node, kind)) = popped?;
        debug_assert!(self.owns(node), "a shard only queues events for its own nodes");
        self.now = SimTime::from_micros(time);
        {
            // Lazy boundary-crossing sampling: before dispatching an event
            // that reached the node's next cadence boundary, record one
            // sample per elapsed boundary from node-local state only.
            // Same per-node event stream on every shard layout ⇒ same
            // boundary crossings ⇒ bit-identical series.
            let local = self.local(node);
            if self.recorders[local].due(time) {
                let gauges = self.actors[local].gauges();
                let total = self.meters[local].total_mj();
                self.recorders[local].sample_up_to(time, &gauges, total);
            }
            self.recorders[local].note_event();
        }
        match kind {
            EventKind::Start => {
                self.invoke(node, EnergyPhase::Other, |actor, ctx| actor.on_start(ctx))
            }
            EventKind::Timer { id, token } => {
                if self.cancelled_timers.remove(&id.0) {
                    return Some(self.now);
                }
                let local = self.local(node);
                self.tracers[local].record(time, TraceEventKind::TimerFire { id: id.0 });
                self.invoke(node, EnergyPhase::Timer, |actor, ctx| actor.on_timer(token, ctx));
            }
            EventKind::Deliver { from, msg, flood, loopback } => {
                let size = msg.wire_size();
                // Duplicate-aware receive pricing: a flood the node has
                // already decoded once is recognized from the first
                // advertisement of the train and the rest is abandoned
                // ([`ChannelCost::dup_recv_mj`]), so relay storms charge
                // each node one full reception per distinct message, not
                // per in-edge.
                let fresh = match &flood {
                    Some(meta) => {
                        let local = self.local(node);
                        self.seen_floods[local].insert(meta.key)
                    }
                    None => true,
                };
                if !loopback {
                    let local = self.local(node);
                    let scanning = self.cfg.channel.scanning_receiver();
                    let (mj, class) = if !fresh {
                        (self.cfg.channel.dup_recv_mj(size), EnergyClass::DupAbandoned)
                    } else if time >= self.scan_until[local] {
                        // First reception in a fresh scan window: price the
                        // whole radio-on window. Anything else landing
                        // within one hop-delay quantum shares that scan.
                        self.scan_until[local] = time + self.cfg.hop_delay_max.as_micros();
                        let class =
                            if scanning { EnergyClass::RecvScan } else { EnergyClass::RecvDecode };
                        (self.cfg.channel.recv_mj(size), class)
                    } else {
                        let class = if scanning {
                            EnergyClass::SharedScan
                        } else {
                            EnergyClass::RecvDecode
                        };
                        (self.cfg.channel.shared_recv_mj(size), class)
                    };
                    self.meters[local].charge_as(EnergyCategory::Recv, class, msg.phase(), mj);
                } else {
                    self.stats.loopbacks += 1;
                }
                match flood {
                    Some(meta) => {
                        if !fresh {
                            return Some(self.now); // duplicate: scanned, not processed
                        }
                        let local = self.local(node);
                        // Relay once on all out-edges (network-layer gossip).
                        self.transmit(node, &msg, Some(meta), true);
                        let deliver_here = meta.target.is_none_or(|t| t == node);
                        if deliver_here {
                            self.stats.deliveries += 1;
                            // Flooded messages report their *origin* as the
                            // sender — replies must go back to the source,
                            // not the last relayer.
                            let origin = meta.origin;
                            self.tracers[local].record(
                                time,
                                TraceEventKind::MsgDeliver {
                                    from: origin,
                                    bytes: size as u64,
                                    flood: true,
                                },
                            );
                            let phase = msg.phase();
                            self.invoke(node, phase, |actor, ctx| {
                                actor.on_message(origin, msg, ctx)
                            });
                        }
                    }
                    None => {
                        self.stats.deliveries += 1;
                        let local = self.local(node);
                        self.tracers[local].record(
                            time,
                            TraceEventKind::MsgDeliver { from, bytes: size as u64, flood: false },
                        );
                        let phase = msg.phase();
                        self.invoke(node, phase, |actor, ctx| actor.on_message(from, msg, ctx));
                    }
                }
            }
        }
        Some(self.now)
    }

    /// Queues an event generated by owned node `origin` for `target`,
    /// stamping it with the origin's next sequence key. Local targets go
    /// straight into the queue; foreign ones into the outbox.
    fn push_from(
        &mut self,
        origin: NodeId,
        time: SimTime,
        target: NodeId,
        kind: EventKind<A::Msg, A::Timer>,
    ) {
        let counter = &mut self.push_ctr[(origin / self.shards) as usize];
        debug_assert!(*counter < 1 << (64 - SEQ_NODE_BITS), "per-node push counter overflow");
        let seq = (*counter << SEQ_NODE_BITS) | origin as u64;
        *counter += 1;
        if self.owns(target) {
            self.queue.push(time.as_micros(), seq, (target, kind));
        } else {
            self.outbox[(target % self.shards) as usize].push((
                time.as_micros(),
                seq,
                (target, kind),
            ));
        }
    }

    /// The next hop delay for a transmission by `from`: a counter-keyed
    /// draw in `[hop_delay_min, hop_delay_max]`, advancing only the
    /// sender's private draw counter.
    fn hop_delay(&mut self, from: NodeId) -> SimDuration {
        let lo = self.cfg.hop_delay_min.as_micros();
        let hi = self.cfg.hop_delay_max.as_micros().max(lo);
        let counter = &mut self.draw_ctr[(from / self.shards) as usize];
        let draw = keyed_draw(self.cfg.seed, from, *counter);
        *counter += 1;
        SimDuration::from_micros(lo + draw % (hi - lo + 1))
    }

    /// Puts `msg` on the air from `node` on all its out-edges; charges the
    /// sender, samples per-receiver delays, and consults the interceptor.
    fn transmit(&mut self, node: NodeId, msg: &A::Msg, flood: Option<FloodMeta>, relay: bool) {
        let _prof = ProfTimer::start(ProfPhase::Transmit);
        let size = msg.wire_size();
        let phase = msg.phase();
        {
            let local = self.local(node);
            let now = self.now.as_micros();
            // One event per transmit (k-cast), not per receiver.
            self.tracers[local]
                .record(now, TraceEventKind::MsgSend { bytes: size as u64, flood: relay });
        }
        // Clone the config handle (a refcount bump) so the topology can be
        // iterated in place while the meters and counters below take
        // mutable borrows — no per-transmit edge/receiver buffers.
        let cfg = Arc::clone(&self.cfg);
        for (_, edge) in cfg.topology.out_edges(node) {
            let k = edge.k();
            let mj = self.cfg.channel.send_mj(size, k);
            let local = self.local(node);
            self.meters[local].charge_as(EnergyCategory::Send, EnergyClass::Send, phase, mj);
            self.stats.kcasts += 1;
            if relay {
                self.stats.flood_relays += 1;
            }
            self.stats.bytes_on_air += size as u64;
            for &to in edge.receivers() {
                // The link-fault schedule first: partitions sever the
                // link outright; selective drop rules consume one keyed
                // draw from the sender's private drop counter per
                // matching delivery. Both decisions are pure functions
                // of sender-local state, so sharding cannot change them.
                if !cfg.link_faults.is_empty() {
                    let now_us = self.now.as_micros();
                    if cfg.link_faults.severed(now_us, node, to) {
                        self.stats.dropped += 1;
                        continue;
                    }
                    if let Some(permille) = cfg.link_faults.drop_permille(now_us, node, to) {
                        let counter = &mut self.drop_ctr[(node / self.shards) as usize];
                        let draw = keyed_draw(self.cfg.seed ^ DROP_SALT, node, *counter);
                        *counter += 1;
                        if draw % 1000 < permille as u64 {
                            self.stats.dropped += 1;
                            continue;
                        }
                    }
                }
                let delivery = Delivery { from: node, to, size, is_flood: flood.is_some() };
                let fate = match self.interceptor.as_mut() {
                    Some(i) => i(&delivery),
                    None => Fate::Deliver,
                };
                let extra = match fate {
                    Fate::Drop => {
                        self.stats.dropped += 1;
                        continue;
                    }
                    Fate::Deliver => SimDuration::ZERO,
                    Fate::DelayBy(d) => d,
                };
                let delay = self.hop_delay(node) + extra;
                let at = self.now + delay;
                self.push_from(
                    node,
                    at,
                    to,
                    EventKind::Deliver { from: node, msg: msg.clone(), flood, loopback: false },
                );
            }
        }
    }

    fn invoke(
        &mut self,
        node: NodeId,
        phase: EnergyPhase,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg, A::Timer>),
    ) {
        let local = self.local(node);
        // Stamp the meter with the phase of the event being handled, so
        // every compute charge the actor makes (sign/verify/hash) is
        // attributed to the message kind that caused it — no tagging at
        // the protocol's charge sites.
        self.meters[local].set_phase(phase);
        let mut ctx = Context {
            node,
            now: self.now,
            meter: &mut self.meters[local],
            next_timer_id: &mut self.timer_ctr[local],
            tracer: &mut self.tracers[local],
            effects: self.effect_buffers.get(),
        };
        {
            let _prof = ProfTimer::start(ProfPhase::ReplicaStep);
            f(&mut self.actors[local], &mut ctx);
        }
        // Invocations never nest (effects are applied here, outside the
        // actor), so draining into the pool and recycling is safe.
        let mut effects = ctx.effects;
        self.meters[local].set_phase(EnergyPhase::Other);
        for effect in effects.drain(..) {
            match effect {
                Effect::Multicast(msg) => {
                    // Loopback first so the sender processes its own
                    // message through the uniform path, then the real hops.
                    self.push_from(
                        node,
                        self.now,
                        node,
                        EventKind::Deliver {
                            from: node,
                            msg: msg.clone(),
                            flood: None,
                            loopback: true,
                        },
                    );
                    self.transmit(node, &msg, None, false);
                }
                Effect::Flood { msg, target } => {
                    // Targeted floods to different destinations are
                    // distinct communications even when the payload is
                    // identical (e.g. the same sync response sent to two
                    // requesters) — mix the target into the dedup key.
                    let mut key = msg.flood_key();
                    if let Some(t) = target {
                        key ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                    }
                    let meta = FloodMeta { key, origin: node, target };
                    // Flood origination is a loopback delivery carrying the
                    // flood metadata: the origin marks it seen, relays on
                    // its out-edges, and (if targeted elsewhere) skips its
                    // own actor.
                    self.push_from(
                        node,
                        self.now,
                        node,
                        EventKind::Deliver { from: node, msg, flood: Some(meta), loopback: true },
                    );
                }
                Effect::SetTimer { id, delay, token } => {
                    let at = self.now + delay;
                    self.push_from(node, at, node, EventKind::Timer { id, token });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id.0);
                }
            }
        }
        self.effect_buffers.put(effects);
    }
}

/// The single-threaded simulation: one shard (`ShardState`) owning every node,
/// behind the historical per-event API. For sharding one simulation
/// across worker threads, see [`crate::shard::ShardedNet`] — both
/// runtimes produce bit-identical traces by construction (all
/// nondeterminism is keyed by node-local counters; see the module docs).
pub struct SimNet<A: Actor> {
    shard: ShardState<A>,
}

impl<A: Actor> SimNet<A> {
    /// Builds a simulation over `cfg.topology` with one actor per node.
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != cfg.topology.n()`.
    pub fn new(cfg: NetConfig, actors: Vec<A>) -> Self {
        assert_eq!(actors.len(), cfg.topology.n(), "one actor per topology node");
        SimNet { shard: ShardState::new(Arc::new(cfg), 0, 1, actors) }
    }

    /// Installs an adversarial scheduling hook (replaces any previous one).
    pub fn set_interceptor(&mut self, interceptor: Interceptor) {
        self.shard.interceptor = Some(interceptor);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shard.now
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.shard.cfg
    }

    /// Immutable view of an actor.
    pub fn actor(&self, id: NodeId) -> &A {
        &self.shard.actors[id as usize]
    }

    /// All actors.
    pub fn actors(&self) -> &[A] {
        &self.shard.actors
    }

    /// A node's energy meter.
    pub fn meter(&self, id: NodeId) -> &EnergyMeter {
        &self.shard.meters[id as usize]
    }

    /// All meters.
    pub fn meters(&self) -> &[EnergyMeter] {
        &self.shard.meters
    }

    /// Aggregate energy over a subset of nodes (e.g. the correct ones).
    pub fn energy_of(&self, nodes: impl IntoIterator<Item = NodeId>) -> EnergyMeter {
        let mut total = EnergyMeter::new();
        for id in nodes {
            total.absorb(&self.shard.meters[id as usize]);
        }
        total
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.shard.stats
    }

    /// Drains every node's trace ring buffer into a [`TraceSet`]
    /// (node-id order). Empty when the config's
    /// [`trace`](NetConfig::trace) level is [`TraceLevel::Off`].
    pub fn take_traces(&mut self) -> TraceSet {
        let n = self.shard.cfg.topology.n() as NodeId;
        TraceSet { nodes: (0..n).map(|id| self.shard.take_trace(id)).collect() }
    }

    /// Takes every node's sampled metrics series as a [`MetricsSet`]
    /// (node-id order). Empty series when the config's
    /// [`metrics`](NetConfig::metrics) sampling is disabled.
    pub fn take_metrics(&mut self) -> MetricsSet {
        let n = self.shard.cfg.topology.n() as NodeId;
        MetricsSet {
            dt_us: self.shard.cfg.metrics.dt_us,
            nodes: (0..n).map(|id| self.shard.take_metrics_node(id)).collect(),
        }
    }

    /// Processes the next event, if any, returning its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        self.shard.step()
    }

    /// Runs until the queue is exhausted or virtual time would pass `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(head) = self.shard.next_time() {
            if head > t.as_micros() {
                break;
            }
            self.shard.step();
        }
        self.shard.now = self.shard.now.max(t);
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.shard.now + d;
        self.run_until(target);
    }

    /// Runs until `pred` holds over the actors or `deadline` passes.
    /// Returns `true` if the predicate was met.
    pub fn run_until_pred(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&[A]) -> bool,
    ) -> bool {
        loop {
            if pred(&self.shard.actors) {
                return true;
            }
            match self.shard.next_time() {
                Some(head) if head <= deadline.as_micros() => {
                    self.shard.step();
                }
                _ => {
                    self.shard.now = self.shard.now.max(deadline);
                    return pred(&self.shard.actors);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_hypergraph::topology;

    /// Tiny test protocol: node 0 floods one "ping"; everyone records what
    /// they saw; node 0 also exercises timers and multicast.
    #[derive(Debug, Clone)]
    enum TMsg {
        Ping(u64),
        Hop(u64),
    }

    impl Message for TMsg {
        fn wire_size(&self) -> usize {
            64
        }
        fn flood_key(&self) -> u64 {
            match self {
                TMsg::Ping(x) => *x,
                TMsg::Hop(x) => 1_000_000 + *x,
            }
        }
    }

    #[derive(Debug, Default)]
    struct TActor {
        pings: Vec<u64>,
        hops: Vec<u64>,
        timer_fired: bool,
        cancelled_fired: bool,
    }

    impl Actor for TActor {
        type Msg = TMsg;
        type Timer = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, TMsg, &'static str>) {
            if ctx.id() == 0 {
                ctx.flood(TMsg::Ping(7));
                ctx.multicast(TMsg::Hop(1));
                ctx.set_timer(SimDuration::from_millis(5), "fire");
                let doomed = ctx.set_timer(SimDuration::from_millis(1), "doomed");
                ctx.cancel_timer(doomed);
            }
        }

        fn on_message(
            &mut self,
            _from: NodeId,
            msg: TMsg,
            _ctx: &mut Context<'_, TMsg, &'static str>,
        ) {
            match msg {
                TMsg::Ping(x) => self.pings.push(x),
                TMsg::Hop(x) => self.hops.push(x),
            }
        }

        fn on_timer(&mut self, token: &'static str, _ctx: &mut Context<'_, TMsg, &'static str>) {
            match token {
                "fire" => self.timer_fired = true,
                _ => self.cancelled_fired = true,
            }
        }
    }

    fn net(n: usize, k: usize, seed: u64) -> SimNet<TActor> {
        let cfg = NetConfig::ble(topology::ring_kcast(n, k), seed);
        let actors = (0..n).map(|_| TActor::default()).collect();
        SimNet::new(cfg, actors)
    }

    #[test]
    fn flood_reaches_every_node_exactly_once() {
        let mut net = net(8, 2, 1);
        net.run_for(SimDuration::from_millis(50));
        for id in 0..8 {
            assert_eq!(net.actor(id).pings, vec![7], "node {id}");
        }
    }

    #[test]
    fn flood_respects_delta_bound() {
        let mut net = net(9, 2, 2);
        let delta = net.config().delta();
        net.run_until(SimTime::ZERO + delta);
        for id in 0..9 {
            assert_eq!(net.actor(id).pings, vec![7], "node {id} must have the ping within Δ");
        }
    }

    #[test]
    fn multicast_is_single_hop_plus_loopback() {
        let mut net = net(8, 2, 3);
        net.run_for(SimDuration::from_millis(50));
        // Node 0's Hop reaches its two ring neighbours 1, 2 — and itself.
        for id in 0..8u32 {
            let expect = matches!(id, 0..=2);
            assert_eq!(!net.actor(id).hops.is_empty(), expect, "node {id}");
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut net = net(4, 2, 4);
        net.run_for(SimDuration::from_millis(50));
        assert!(net.actor(0).timer_fired);
        assert!(!net.actor(0).cancelled_fired);
    }

    #[test]
    fn energy_is_charged_for_transmissions() {
        let mut net = net(6, 2, 5);
        net.run_for(SimDuration::from_millis(50));
        // The flood relays once per node: everyone paid send energy.
        for id in 0..6 {
            assert!(net.meter(id).mj(EnergyCategory::Send) > 0.0, "node {id} sent");
            assert!(net.meter(id).mj(EnergyCategory::Recv) > 0.0, "node {id} received");
        }
        // Loopbacks are free: a 1-node... (smallest ring is 3; skip)
        let stats = net.stats();
        assert!(stats.kcasts >= 6, "each node relayed the flood");
        assert!(stats.loopbacks >= 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut n = net(7, 3, seed);
            n.run_for(SimDuration::from_millis(20));
            (n.stats().clone(), n.energy_of(0..7).total_mj(), n.now())
        };
        assert_eq!(run(42), run(42));
        let (s1, e1, _) = run(42);
        let (s2, e2, _) = run(43);
        // Different seeds may reorder deliveries, but conservation holds.
        assert_eq!(s1.deliveries, s2.deliveries);
        assert!((e1 - e2).abs() < 1e-9, "energy is schedule-independent here");
    }

    #[test]
    fn targeted_flood_only_delivers_to_target() {
        #[derive(Debug, Default)]
        struct Target(Vec<u64>);
        impl Actor for Target {
            type Msg = TMsg;
            type Timer = ();
            fn on_start(&mut self, ctx: &mut Context<'_, TMsg, ()>) {
                if ctx.id() == 0 {
                    ctx.send_to(3, TMsg::Ping(9));
                }
            }
            fn on_message(&mut self, _f: NodeId, msg: TMsg, _c: &mut Context<'_, TMsg, ()>) {
                if let TMsg::Ping(x) = msg {
                    self.0.push(x);
                }
            }
            fn on_timer(&mut self, _t: (), _c: &mut Context<'_, TMsg, ()>) {}
        }
        let cfg = NetConfig::ble(topology::ring_kcast(6, 2), 9);
        let mut net = SimNet::new(cfg, (0..6).map(|_| Target::default()).collect::<Vec<_>>());
        net.run_for(SimDuration::from_millis(50));
        for id in 0..6u32 {
            assert_eq!(!net.actor(id).0.is_empty(), id == 3, "node {id}");
        }
    }

    #[test]
    fn interceptor_can_drop_everything() {
        let mut net = net(5, 2, 10);
        net.set_interceptor(Box::new(|_| Fate::Drop));
        net.run_for(SimDuration::from_millis(50));
        // Only loopbacks arrive: node 0 sees its own ping, nobody else does.
        assert_eq!(net.actor(0).pings, vec![7]);
        for id in 1..5 {
            assert!(net.actor(id).pings.is_empty(), "node {id}");
        }
        assert!(net.stats().dropped > 0);
    }

    #[test]
    fn interceptor_delay_still_delivers() {
        let mut net = net(5, 2, 11);
        net.set_interceptor(Box::new(|d| {
            if d.from == 0 {
                Fate::DelayBy(SimDuration::from_millis(2))
            } else {
                Fate::Deliver
            }
        }));
        net.run_for(SimDuration::from_millis(100));
        for id in 0..5 {
            assert_eq!(net.actor(id).pings, vec![7], "node {id}");
        }
    }

    #[test]
    fn run_until_pred_stops_early() {
        let mut net = net(8, 2, 12);
        let deadline = SimTime::from_micros(10_000_000);
        let ok = net.run_until_pred(deadline, |actors| {
            actors.iter().filter(|a| !a.pings.is_empty()).count() >= 4
        });
        assert!(ok);
        assert!(net.now() < deadline, "stopped well before the deadline");
    }

    #[test]
    #[should_panic(expected = "one actor per topology node")]
    fn wrong_actor_count_panics() {
        let cfg = NetConfig::ble(topology::ring_kcast(4, 2), 1);
        let _ = SimNet::new(cfg, vec![TActor::default()]);
    }

    #[test]
    fn wire_tracing_records_sends_delivers_and_timers() {
        let mut cfg = NetConfig::ble(topology::ring_kcast(4, 2), 4);
        cfg.trace = TraceLevel::All;
        let mut net = SimNet::new(cfg, (0..4).map(|_| TActor::default()).collect::<Vec<_>>());
        net.run_for(SimDuration::from_millis(50));
        let traces = net.take_traces();
        assert_eq!(traces.nodes.len(), 4);
        let merged = traces.merged();
        let has = |f: fn(&TraceEventKind) -> bool| merged.iter().any(|e| f(&e.kind));
        assert!(has(|k| matches!(k, TraceEventKind::MsgSend { .. })));
        assert!(has(|k| matches!(k, TraceEventKind::MsgDeliver { flood: true, .. })));
        assert!(has(|k| matches!(k, TraceEventKind::TimerFire { .. })));
        assert_eq!(traces.total_dropped(), 0);
        // Draining leaves the buffers empty.
        assert_eq!(net.take_traces().total_events(), 0);
    }

    #[test]
    fn partition_severs_and_heals() {
        // Island {0} partitioned for the first 20 ms: node 0's flood at
        // t=0 never escapes. After healing, a re-flood would cross — we
        // approximate by checking drops were counted and nobody but 0
        // heard the ping while the window covered the whole run.
        let mut cfg = NetConfig::ble(topology::ring_kcast(6, 2), 21);
        cfg.link_faults.partitions.push(Partition { start_us: 0, end_us: 20_000, island: vec![0] });
        let mut net = SimNet::new(cfg, (0..6).map(|_| TActor::default()).collect::<Vec<_>>());
        net.run_for(SimDuration::from_millis(10));
        assert_eq!(net.actor(0).pings, vec![7], "origin loopback still delivers");
        for id in 1..6 {
            assert!(net.actor(id).pings.is_empty(), "node {id} is behind the partition");
        }
        assert!(net.stats().dropped > 0);
    }

    #[test]
    fn partition_is_island_internal_only() {
        // Island {0, 1}: node 0's flood reaches node 1 (in-island link)
        // but not nodes 2..5.
        let mut cfg = NetConfig::ble(topology::ring_kcast(6, 2), 22);
        cfg.link_faults.partitions.push(Partition {
            start_us: 0,
            end_us: u64::MAX,
            island: vec![0, 1],
        });
        let mut net = SimNet::new(cfg, (0..6).map(|_| TActor::default()).collect::<Vec<_>>());
        net.run_for(SimDuration::from_millis(20));
        assert_eq!(net.actor(1).pings, vec![7]);
        for id in 2..6 {
            assert!(net.actor(id).pings.is_empty(), "node {id}");
        }
    }

    #[test]
    fn selective_drop_is_deterministic_and_total_at_1000_permille() {
        let run = |permille: u16, seed: u64| {
            let mut cfg = NetConfig::ble(topology::ring_kcast(6, 2), seed);
            cfg.link_faults.drops.push(LinkDrop {
                from: 0,
                to: None,
                permille,
                start_us: 0,
                end_us: u64::MAX,
            });
            let mut net = SimNet::new(cfg, (0..6).map(|_| TActor::default()).collect::<Vec<_>>());
            net.run_for(SimDuration::from_millis(20));
            (net.stats().clone(), (0..6).map(|i| net.actor(i).pings.clone()).collect::<Vec<_>>())
        };
        // 1000‰ = everything node 0 sends is dropped: its ping never
        // escapes its own loopback.
        let (stats, pings) = run(1000, 23);
        assert!(stats.dropped > 0);
        assert_eq!(pings[0], vec![7]);
        assert!(pings[1..].iter().all(Vec::is_empty));
        // Same seed, same rule ⇒ bit-identical outcome.
        assert_eq!(run(700, 24), run(700, 24));
        // 0‰ matches but never drops.
        let (stats, pings) = run(0, 25);
        assert_eq!(stats.dropped, 0);
        assert!(pings.iter().all(|p| p == &vec![7]));
    }

    #[test]
    fn link_fault_windows_match_schedule_helpers() {
        let lf = LinkFaults {
            partitions: vec![Partition { start_us: 10, end_us: 50, island: vec![1, 2] }],
            drops: vec![LinkDrop { from: 0, to: Some(3), permille: 500, start_us: 0, end_us: 80 }],
        };
        assert!(!lf.is_empty());
        assert!(lf.severed(10, 1, 3));
        assert!(lf.severed(49, 0, 2));
        assert!(!lf.severed(50, 1, 3), "healed at end_us");
        assert!(!lf.severed(20, 1, 2), "island-internal link survives");
        assert!(!lf.severed(20, 0, 3), "outside-outside link survives");
        assert_eq!(lf.drop_permille(0, 0, 3), Some(500));
        assert_eq!(lf.drop_permille(0, 0, 4), None);
        assert_eq!(lf.drop_permille(80, 0, 3), None, "rule expired");
        assert_eq!(lf.heal_time_us(), 80);
        assert!(LinkFaults::default().is_empty());
    }

    #[test]
    fn tracing_off_records_nothing_and_default_is_off() {
        let mut net = net(4, 2, 4);
        net.run_for(SimDuration::from_millis(50));
        assert_eq!(net.take_traces().total_events(), 0);
    }
}
