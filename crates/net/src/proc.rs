//! Multi-process transport: each [`Actor`] runs in its own OS process and
//! exchanges [`WireCodec`]-encoded frames over TCP or Unix domain sockets.
//!
//! This is the third net backend (after the deterministic simulator and
//! [`crate::threads::ThreadNet`]): real kernel scheduling, real sockets,
//! real bytes. A **coordinator** process spawns one child per replica
//! (same binary, `--node-id`/`--listen`/`--peers` flags), connects a
//! control channel to each, releases them simultaneously, polls progress,
//! and finally collects one opaque report blob per node.
//!
//! # Framing
//!
//! Every frame on a stream is `u32` little-endian length + payload,
//! capped at [`MAX_FRAME_LEN`]. The first frame on any connection is a
//! hello identifying the dialing side (peer node id, or the control
//! plane); subsequent frames are encoded protocol messages (on peer
//! connections) or control commands/replies (on the control connection).
//!
//! # Semantics vs the simulator
//!
//! The process mesh is fully connected, so `Multicast` and untargeted
//! `Flood` effects become one unicast frame per peer and targeted floods
//! go straight to the target — no relaying. Commit logic is unaffected
//! (the simulator's flood also delivers each message at most once to each
//! node), but energy differs: here a node pays one `send_mj(bytes, r)`
//! per transmission burst of `r` recipients and `recv_mj` per frame
//! received, with no relay or duplicate-suppression costs. Wall-clock
//! runs are nondeterministic; the deterministic energy figures stay the
//! simulator's job (see README "Known deviations").
//!
//! Writes that fail mid-run trigger a bounded reconnect-and-resend
//! (see [`RECONNECT_ATTEMPTS`]); frames that still cannot be delivered
//! are counted in [`NetStats::dropped`].

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};
use eesmr_energy::{EnergyCategory, EnergyMeter};

use crate::actor::{Actor, Context, Effect, NodeId, TimerId};
use crate::channel::ChannelCost;
use crate::codec::WireCodec;
use crate::message::Message;
use crate::runtime::NetStats;
use crate::sched::CalendarQueue;
use crate::time::SimTime;

/// Largest frame either side will read (64 MiB): big enough for any
/// repair batch, small enough that a hostile length prefix cannot drive
/// an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// How many times a failed peer write retries the connection before the
/// frame is counted as dropped.
pub const RECONNECT_ATTEMPTS: u32 = 5;

/// Hello-frame role: an ordinary replica peer.
const ROLE_PEER: u8 = 0;
/// Hello-frame role: the coordinator's control connection.
const ROLE_CTRL: u8 = 1;

/// Control command: release the child into `on_start` + its main loop.
const CMD_START: u8 = 1;
/// Control command: request a progress [`REPLY_STATUS`].
const CMD_POLL: u8 = 2;
/// Control command: stop and send the final [`REPLY_REPORT`].
const CMD_STOP: u8 = 3;
/// Control reply: one `u64` progress value.
const REPLY_STATUS: u8 = 4;
/// Control reply: the node's opaque report blob.
const REPLY_REPORT: u8 = 5;

/// Which socket family carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcTransport {
    /// TCP over loopback (or any routable address).
    Tcp,
    /// Unix domain sockets (addresses are filesystem paths).
    Uds,
}

impl ProcTransport {
    /// Parses the `--transport` flag value.
    pub fn parse(s: &str) -> Option<ProcTransport> {
        match s {
            "tcp" => Some(ProcTransport::Tcp),
            "uds" => Some(ProcTransport::Uds),
            _ => None,
        }
    }

    /// The flag value [`ProcTransport::parse`] accepts for `self`.
    pub fn flag(self) -> &'static str {
        match self {
            ProcTransport::Tcp => "tcp",
            ProcTransport::Uds => "uds",
        }
    }
}

/// A connected stream of either transport.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn connect(transport: ProcTransport, addr: &str) -> io::Result<Stream> {
        match transport {
            ProcTransport::Tcp => TcpStream::connect(addr).map(Stream::Tcp),
            ProcTransport::Uds => UnixStream::connect(addr).map(Stream::Uds),
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A bound listener of either transport.
enum ListenerSock {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl ListenerSock {
    fn bind(transport: ProcTransport, addr: &str) -> io::Result<ListenerSock> {
        match transport {
            ProcTransport::Tcp => TcpListener::bind(addr).map(ListenerSock::Tcp),
            ProcTransport::Uds => {
                // A stale socket file from a crashed run blocks bind.
                let _ = std::fs::remove_file(addr);
                UnixListener::bind(addr).map(ListenerSock::Uds)
            }
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            ListenerSock::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            ListenerSock::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        }
    }
}

/// Writes one length-delimited frame and flushes.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-delimited frame.
fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME_LEN"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn hello_frame(role: u8, id: NodeId) -> Vec<u8> {
    let mut f = Vec::with_capacity(9);
    f.extend_from_slice(b"EPH");
    f.push(crate::codec::VERSION);
    f.push(role);
    f.extend_from_slice(&id.to_le_bytes());
    f
}

fn parse_hello(frame: &[u8]) -> io::Result<(u8, NodeId)> {
    if frame.len() != 9 || &frame[..3] != b"EPH" || frame[3] != crate::codec::VERSION {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad hello frame"));
    }
    Ok((frame[4], u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]])))
}

/// Command-line shape of one child replica: identity, where to listen,
/// and every peer's address.
#[derive(Debug, Clone)]
pub struct ChildOpts {
    /// This replica's node id.
    pub node_id: NodeId,
    /// Socket family shared by the whole mesh.
    pub transport: ProcTransport,
    /// Address this node binds (`host:port` or a socket path).
    pub listen: String,
    /// `(peer id, peer address)` for every *other* node.
    pub peers: Vec<(NodeId, String)>,
}

impl ChildOpts {
    /// Renders `peers` in the `--peers` flag format `id@addr,id@addr,…`.
    pub fn peers_flag(peers: &[(NodeId, String)]) -> String {
        let parts: Vec<String> = peers.iter().map(|(id, a)| format!("{id}@{a}")).collect();
        parts.join(",")
    }

    /// Parses the `--peers` flag format produced by
    /// [`ChildOpts::peers_flag`].
    pub fn parse_peers(s: &str) -> Option<Vec<(NodeId, String)>> {
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(',')
            .map(|part| {
                let (id, addr) = part.split_once('@')?;
                Some((id.parse().ok()?, addr.to_string()))
            })
            .collect()
    }
}

/// Events the reader threads feed into a child's main loop.
enum PEvent<M> {
    Deliver { origin: NodeId, msg: M, loopback: bool, target: Option<NodeId> },
    Ctrl(u8),
    CtrlConnected(Stream),
}

/// One outbound peer connection with bounded reconnect-on-drop.
struct PeerLink {
    id: NodeId,
    addr: String,
    transport: ProcTransport,
    self_id: NodeId,
    stream: Option<Stream>,
}

impl PeerLink {
    fn connect(&mut self) -> io::Result<()> {
        let mut s = Stream::connect(self.transport, &self.addr)?;
        write_frame(&mut s, &hello_frame(ROLE_PEER, self.self_id))?;
        self.stream = Some(s);
        Ok(())
    }

    /// Sends a frame, reconnecting with backoff if the link dropped.
    /// Returns `false` if the frame had to be abandoned.
    fn send(&mut self, frame: &[u8]) -> bool {
        if let Some(s) = self.stream.as_mut() {
            if write_frame(s, frame).is_ok() {
                return true;
            }
            self.stream = None;
        }
        for attempt in 0..RECONNECT_ATTEMPTS {
            if self.connect().is_ok() {
                if let Some(s) = self.stream.as_mut() {
                    if write_frame(s, frame).is_ok() {
                        return true;
                    }
                    self.stream = None;
                }
            }
            std::thread::sleep(Duration::from_millis(10 << attempt));
        }
        false
    }
}

/// Runs one replica process: binds, meshes with every peer, waits for the
/// coordinator's start command, then drives `actor` off the wall clock
/// until the coordinator stops it.
///
/// `status` maps the live actor to the `u64` progress value returned to
/// [`Coordinator::statuses`]; `report` renders the final actor, its
/// energy meter, and the transport counters into the opaque blob
/// [`Coordinator::stop_and_collect`] returns.
///
/// Returns the actor and meter after the stop command (the report blob
/// has already been sent by then).
pub fn run_node<A, S, R>(
    opts: ChildOpts,
    actor: A,
    channel: ChannelCost,
    status: S,
    report: R,
) -> io::Result<(A, EnergyMeter)>
where
    A: Actor,
    A::Msg: WireCodec + Send + 'static,
    S: Fn(&A) -> u64,
    R: FnOnce(&A, &EnergyMeter, &NetStats) -> Vec<u8>,
{
    let listener = ListenerSock::bind(opts.transport, &opts.listen)?;
    let (tx, rx) = unbounded::<PEvent<A::Msg>>();

    // Accept loop: every inbound connection identifies itself with a
    // hello, then its reader thread pumps decoded frames into the main
    // loop. Threads exit when their stream closes; the accept thread
    // lives for the process lifetime.
    std::thread::spawn(move || {
        while let Ok(mut stream) = listener.accept() {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let hello = match read_frame(&mut stream) {
                    Ok(f) => f,
                    Err(_) => return,
                };
                let (role, origin) = match parse_hello(&hello) {
                    Ok(h) => h,
                    Err(_) => return,
                };
                if role == ROLE_CTRL {
                    let writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(_) => return,
                    };
                    if tx.send(PEvent::CtrlConnected(writer)).is_err() {
                        return;
                    }
                    while let Ok(frame) = read_frame(&mut stream) {
                        if frame.len() != 1 || tx.send(PEvent::Ctrl(frame[0])).is_err() {
                            return;
                        }
                    }
                } else {
                    while let Ok(frame) = read_frame(&mut stream) {
                        match A::Msg::decode(&frame) {
                            Ok(msg) => {
                                if tx
                                    .send(PEvent::Deliver {
                                        origin,
                                        msg,
                                        loopback: false,
                                        target: None,
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            // A malformed frame from a peer is that
                            // peer's fault; drop it and keep reading.
                            Err(_) => continue,
                        }
                    }
                }
            });
        }
    });

    // Dial every peer. Their listeners may not be up yet, so retry with
    // backoff for a generous window.
    let mut links: Vec<PeerLink> = opts
        .peers
        .iter()
        .map(|(id, addr)| PeerLink {
            id: *id,
            addr: addr.clone(),
            transport: opts.transport,
            self_id: opts.node_id,
            stream: None,
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(20);
    for link in &mut links {
        loop {
            match link.connect() {
                Ok(()) => break,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    // Hold for the start command; frames from faster peers queue up.
    let mut ctrl: Option<Stream> = None;
    let mut pending: VecDeque<PEvent<A::Msg>> = VecDeque::new();
    loop {
        match rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "accept loop died"))?
        {
            PEvent::CtrlConnected(w) => ctrl = Some(w),
            PEvent::Ctrl(CMD_START) => break,
            PEvent::Ctrl(_) => {}
            deliver => pending.push_back(deliver),
        }
    }

    let mut rt = ProcRuntime {
        id: opts.node_id,
        actor,
        meter: EnergyMeter::new(),
        channel,
        links,
        stats: NetStats::default(),
        start: Instant::now(),
        next_timer_id: 0,
        timer_seq: 0,
        timers: CalendarQueue::new(),
        cancelled: HashSet::new(),
        seen_floods: HashSet::new(),
        local: VecDeque::new(),
        tracer: eesmr_trace::Tracer::disabled(opts.node_id),
    };
    rt.invoke(|a, ctx| a.on_start(ctx));
    for ev in pending {
        rt.handle(ev);
    }

    loop {
        let now_us = rt.start.elapsed().as_micros() as u64;
        while rt.timers.peek_time().is_some_and(|due| due <= now_us) {
            let (_, _, (id, token)) = rt.timers.pop().expect("peeked");
            if rt.cancelled.remove(&id.0) {
                continue;
            }
            rt.invoke(|a, ctx| a.on_timer(token.clone(), ctx));
        }
        while let Some(ev) = rt.local.pop_front() {
            rt.handle(ev);
        }
        let now_us = rt.start.elapsed().as_micros() as u64;
        let wait = rt
            .timers
            .peek_time()
            .map(|due| Duration::from_micros(due.saturating_sub(now_us)))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        match rx.recv_timeout(wait) {
            Ok(PEvent::Ctrl(CMD_POLL)) => {
                if let Some(w) = ctrl.as_mut() {
                    let mut reply = vec![REPLY_STATUS];
                    reply.extend_from_slice(&status(&rt.actor).to_le_bytes());
                    write_frame(w, &reply)?;
                }
            }
            Ok(PEvent::Ctrl(CMD_STOP)) => {
                let blob = report(&rt.actor, &rt.meter, &rt.stats);
                if let Some(w) = ctrl.as_mut() {
                    let mut reply = vec![REPLY_REPORT];
                    reply.extend_from_slice(&blob);
                    write_frame(w, &reply)?;
                }
                return Ok((rt.actor, rt.meter));
            }
            Ok(PEvent::Ctrl(_)) => {}
            Ok(PEvent::CtrlConnected(w)) => ctrl = Some(w),
            Ok(ev) => rt.handle(ev),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "accept loop died"));
            }
        }
    }
}

/// The per-process mirror of `ThreadNet`'s node runtime: same timer
/// calendar and effect handling, sockets instead of channels.
struct ProcRuntime<A: Actor> {
    id: NodeId,
    actor: A,
    meter: EnergyMeter,
    channel: ChannelCost,
    links: Vec<PeerLink>,
    stats: NetStats,
    start: Instant,
    next_timer_id: u64,
    timer_seq: u64,
    timers: CalendarQueue<(TimerId, A::Timer)>,
    cancelled: HashSet<u64>,
    seen_floods: HashSet<u64>,
    local: VecDeque<PEvent<A::Msg>>,
    tracer: eesmr_trace::Tracer,
}

impl<A: Actor> ProcRuntime<A>
where
    A::Msg: WireCodec + Send + 'static,
{
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn invoke(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg, A::Timer>)) {
        let mut ctx = Context {
            node: self.id,
            now: self.now(),
            meter: &mut self.meter,
            next_timer_id: &mut self.next_timer_id,
            tracer: &mut self.tracer,
            effects: Vec::new(),
        };
        f(&mut self.actor, &mut ctx);
        let effects = ctx.effects;
        for effect in effects {
            self.apply(effect);
        }
    }

    /// Sends one encoded frame to `recipients` peers as a single
    /// transmission burst, charging the channel model once.
    fn transmit(&mut self, msg: &A::Msg, only: Option<NodeId>) {
        let frame = msg.encode();
        let mut sent = 0u64;
        for link in &mut self.links {
            if only.is_some_and(|t| t != link.id) {
                continue;
            }
            if link.send(&frame) {
                sent += 1;
            } else {
                self.stats.dropped += 1;
            }
        }
        if sent > 0 {
            let mj = self.channel.send_mj(frame.len(), sent as usize);
            self.meter.charge(EnergyCategory::Send, mj);
            self.stats.kcasts += 1;
            self.stats.bytes_on_air += frame.len() as u64;
        }
    }

    fn apply(&mut self, effect: Effect<A::Msg, A::Timer>) {
        match effect {
            Effect::Multicast(msg) => {
                self.transmit(&msg, None);
                self.local.push_back(PEvent::Deliver {
                    origin: self.id,
                    msg,
                    loopback: true,
                    target: None,
                });
            }
            Effect::Flood { msg, target } => {
                // Full mesh: an untargeted flood is a broadcast and a
                // targeted flood is a unicast; no relaying happens, so
                // the dedup key never needs to leave this process.
                match target {
                    Some(t) if t != self.id => self.transmit(&msg, Some(t)),
                    Some(_) => {}
                    None => self.transmit(&msg, None),
                }
                let mut key = msg.flood_key();
                if let Some(t) = target {
                    key ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                }
                self.seen_floods.insert(key);
                self.local.push_back(PEvent::Deliver {
                    origin: self.id,
                    msg,
                    loopback: true,
                    target,
                });
            }
            Effect::SetTimer { id, delay, token } => {
                let due = self.start.elapsed().as_micros() as u64 + delay.as_micros();
                let seq = self.timer_seq;
                self.timer_seq += 1;
                self.timers.push(due, seq, (id, token));
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id.0);
            }
        }
    }

    fn handle(&mut self, event: PEvent<A::Msg>) {
        if let PEvent::Deliver { origin, msg, loopback, target } = event {
            if !loopback {
                let mj = self.channel.recv_mj(msg.wire_size());
                self.meter.charge(EnergyCategory::Recv, mj);
            } else {
                self.stats.loopbacks += 1;
            }
            if target.is_some_and(|t| t != self.id) {
                return;
            }
            self.stats.deliveries += 1;
            self.invoke(|a, ctx| a.on_message(origin, msg, ctx));
        }
    }
}

/// The coordinator's half of the control protocol: one connection per
/// child, lock-step command/reply.
pub struct Coordinator {
    links: Vec<Stream>,
}

impl Coordinator {
    /// Connects a control channel to every child, retrying each address
    /// until `timeout` (children need a moment to bind).
    pub fn connect(
        transport: ProcTransport,
        addrs: &[String],
        timeout: Duration,
    ) -> io::Result<Coordinator> {
        let deadline = Instant::now() + timeout;
        let mut links = Vec::with_capacity(addrs.len());
        for addr in addrs {
            loop {
                match Stream::connect(transport, addr) {
                    Ok(mut s) => {
                        write_frame(&mut s, &hello_frame(ROLE_CTRL, u32::MAX))?;
                        links.push(s);
                        break;
                    }
                    Err(e) if Instant::now() >= deadline => return Err(e),
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        }
        Ok(Coordinator { links })
    }

    /// Releases every child into its protocol (they bind and mesh before
    /// this; none runs `on_start` until told).
    pub fn start(&mut self) -> io::Result<()> {
        for link in &mut self.links {
            write_frame(link, &[CMD_START])?;
        }
        Ok(())
    }

    /// One round of progress polling: each child's `status` value.
    pub fn statuses(&mut self) -> io::Result<Vec<u64>> {
        for link in &mut self.links {
            write_frame(link, &[CMD_POLL])?;
        }
        let mut out = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            let frame = read_frame(link)?;
            if frame.len() != 9 || frame[0] != REPLY_STATUS {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad status reply"));
            }
            let mut v = [0u8; 8];
            v.copy_from_slice(&frame[1..]);
            out.push(u64::from_le_bytes(v));
        }
        Ok(out)
    }

    /// Polls until `done(statuses)` or `timeout`; returns the last
    /// status vector.
    pub fn run_until(
        &mut self,
        done: impl Fn(&[u64]) -> bool,
        timeout: Duration,
    ) -> io::Result<Vec<u64>> {
        let deadline = Instant::now() + timeout;
        loop {
            let statuses = self.statuses()?;
            if done(&statuses) {
                return Ok(statuses);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("run_until timed out with statuses {statuses:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops every child and collects its report blob.
    pub fn stop_and_collect(mut self) -> io::Result<Vec<Vec<u8>>> {
        for link in &mut self.links {
            write_frame(link, &[CMD_STOP])?;
        }
        let mut out = Vec::with_capacity(self.links.len());
        for link in &mut self.links {
            let frame = read_frame(link)?;
            if frame.is_empty() || frame[0] != REPLY_REPORT {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad report reply"));
            }
            out.push(frame[1..].to_vec());
        }
        Ok(out)
    }
}

/// A spawned child replica killed on drop, so a failing coordinator
/// never leaves orphan processes behind.
pub struct ChildProc(pub std::process::Child);

impl Drop for ChildProc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

static ADDR_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Allocates `n` fresh listen addresses: loopback ports for TCP (bound
/// briefly to reserve them, then released), or socket paths in a fresh
/// temp directory for UDS.
pub fn alloc_addrs(transport: ProcTransport, n: usize) -> io::Result<Vec<String>> {
    match transport {
        ProcTransport::Tcp => {
            let mut held = Vec::with_capacity(n);
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                let l = TcpListener::bind("127.0.0.1:0")?;
                addrs.push(format!("127.0.0.1:{}", l.local_addr()?.port()));
                held.push(l); // hold all n so one port is not reused
            }
            Ok(addrs)
        }
        ProcTransport::Uds => {
            let epoch = ADDR_EPOCH.fetch_add(1, Ordering::Relaxed);
            let dir: PathBuf =
                std::env::temp_dir().join(format!("eesmr-proc-{}-{epoch}", std::process::id()));
            std::fs::create_dir_all(&dir)?;
            Ok((0..n).map(|i| dir.join(format!("n{i}.sock")).display().to_string()).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecError, Reader};
    use crate::time::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);

    impl Message for Ping {
        fn wire_size(&self) -> usize {
            self.encoded_len()
        }
        fn flood_key(&self) -> u64 {
            self.0
        }
    }

    impl WireCodec for Ping {
        fn encoded_len(&self) -> usize {
            8
        }
        fn encode_into(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Ping(r.u64()?))
        }
    }

    /// Node 0 floods one ping on start; every node counts what it hears
    /// and echoes a targeted reply back to node 0.
    #[derive(Debug, Default)]
    struct Echo {
        got: u64,
        replies: u64,
    }

    impl Actor for Echo {
        type Msg = Ping;
        type Timer = ();

        fn on_start(&mut self, ctx: &mut Context<'_, Ping, ()>) {
            if ctx.id() == 0 {
                ctx.flood(Ping(7));
                ctx.set_timer(SimDuration::from_millis(1), ());
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping, ()>) {
            if msg.0 == 7 {
                self.got += 1;
                if ctx.id() != 0 {
                    ctx.send_to(0, Ping(100 + ctx.id() as u64));
                }
            } else {
                self.replies += 1;
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Ping, ()>) {}
    }

    fn mesh_roundtrip(transport: ProcTransport) {
        const N: usize = 3;
        let addrs = alloc_addrs(transport, N).unwrap();
        let mut handles = Vec::new();
        for id in 0..N {
            let peers: Vec<(NodeId, String)> =
                (0..N).filter(|p| *p != id).map(|p| (p as NodeId, addrs[p].clone())).collect();
            let opts =
                ChildOpts { node_id: id as NodeId, transport, listen: addrs[id].clone(), peers };
            handles.push(std::thread::spawn(move || {
                run_node(
                    opts,
                    Echo::default(),
                    ChannelCost::ble_four_nines(2),
                    |a: &Echo| a.got + a.replies,
                    |a, meter, stats| {
                        let mut blob = a.got.to_le_bytes().to_vec();
                        blob.extend_from_slice(&a.replies.to_le_bytes());
                        blob.extend_from_slice(&meter.total_mj().to_le_bytes());
                        blob.extend_from_slice(&stats.deliveries.to_le_bytes());
                        blob
                    },
                )
                .unwrap()
            }));
        }

        let mut coord = Coordinator::connect(transport, &addrs, Duration::from_secs(10)).unwrap();
        coord.start().unwrap();
        // Node 0 hears its own flood plus N-1 replies; others hear one.
        coord
            .run_until(
                |s| s[0] >= N as u64 && s[1..].iter().all(|v| *v >= 1),
                Duration::from_secs(10),
            )
            .unwrap();
        let blobs = coord.stop_and_collect().unwrap();
        for (i, blob) in blobs.iter().enumerate() {
            let got = u64::from_le_bytes(blob[0..8].try_into().unwrap());
            let replies = u64::from_le_bytes(blob[8..16].try_into().unwrap());
            let mj = f64::from_le_bytes(blob[16..24].try_into().unwrap());
            assert_eq!(got, 1, "node {i} heard the flood once");
            if i == 0 {
                assert_eq!(replies, (N - 1) as u64, "node 0 got every reply");
            }
            assert!(mj > 0.0, "node {i} paid for radio work");
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn uds_mesh_flood_and_targeted_replies() {
        mesh_roundtrip(ProcTransport::Uds);
    }

    #[test]
    fn tcp_mesh_flood_and_targeted_replies() {
        mesh_roundtrip(ProcTransport::Tcp);
    }

    #[test]
    fn peers_flag_round_trips() {
        let peers = vec![(0u32, "a:1".to_string()), (2u32, "/tmp/x.sock".to_string())];
        let flag = ChildOpts::peers_flag(&peers);
        assert_eq!(ChildOpts::parse_peers(&flag).unwrap(), peers);
        assert_eq!(ChildOpts::parse_peers("").unwrap(), Vec::new());
        assert!(ChildOpts::parse_peers("junk").is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert!(read_frame(&mut buf).is_err());
    }
}
