//! A real-concurrency transport: the same [`Actor`]s that run under the
//! deterministic simulator run here on one OS thread per node, exchanging
//! messages over crossbeam channels and firing timers off the wall clock.
//!
//! This is not used for the energy experiments (those need determinism and
//! virtual time); it exists to demonstrate that the protocol
//! implementations are runtime-agnostic — the property that would let them
//! run over a real BLE stack. Energy is still accounted per operation with
//! the same [`ChannelCost`] pricing.

use std::collections::{HashSet, VecDeque};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use eesmr_energy::{EnergyCategory, EnergyMeter};
use eesmr_hypergraph::Hypergraph;

use crate::actor::{Actor, Context, Effect, NodeId, TimerId};
use crate::channel::ChannelCost;
use crate::message::Message;
use crate::sched::CalendarQueue;
use crate::time::SimTime;

/// Configuration for the threaded transport.
#[derive(Debug, Clone)]
pub struct ThreadNetConfig {
    /// The communication topology.
    pub topology: Hypergraph,
    /// Per-edge energy pricing.
    pub channel: ChannelCost,
}

enum TEvent<M> {
    Deliver {
        origin: NodeId,
        msg: M,
        /// `(dedup key, optional target)` for flooded messages.
        flood: Option<(u64, Option<NodeId>)>,
        loopback: bool,
    },
    Stop,
}

/// A running threaded network.
pub struct ThreadNet<A: Actor> {
    handles: Vec<JoinHandle<(A, EnergyMeter)>>,
    senders: Vec<Sender<TEvent<A::Msg>>>,
}

struct NodeRuntime<A: Actor> {
    id: NodeId,
    actor: A,
    meter: EnergyMeter,
    topology: Hypergraph,
    channel: ChannelCost,
    senders: Vec<Sender<TEvent<A::Msg>>>,
    receiver: Receiver<TEvent<A::Msg>>,
    start: Instant,
    next_timer_id: u64,
    timer_seq: u64,
    /// Pending timers, keyed by due time in microseconds since `start`.
    /// The same calendar queue the simulator uses; wall time is monotone,
    /// so its "never push into the past" contract holds here too.
    timers: CalendarQueue<(TimerId, A::Timer)>,
    cancelled: HashSet<u64>,
    seen_floods: HashSet<u64>,
    local: VecDeque<TEvent<A::Msg>>,
    /// Wall-clock runs are nondeterministic, so structured tracing stays
    /// off here; the disabled tracer just satisfies the [`Context`] shape.
    tracer: eesmr_trace::Tracer,
}

impl<A: Actor> NodeRuntime<A>
where
    A::Msg: Send,
    A::Timer: Send,
{
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn invoke(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg, A::Timer>)) {
        let mut ctx = Context {
            node: self.id,
            now: self.now(),
            meter: &mut self.meter,
            next_timer_id: &mut self.next_timer_id,
            tracer: &mut self.tracer,
            effects: Vec::new(),
        };
        f(&mut self.actor, &mut ctx);
        let effects = ctx.effects;
        for effect in effects {
            self.apply(effect);
        }
    }

    fn transmit(&mut self, msg: &A::Msg, flood: Option<(u64, Option<NodeId>)>) {
        let size = msg.wire_size();
        // Only disjoint fields are touched inside the loop, so the
        // topology can be iterated in place — no per-transmit buffers.
        for (_, edge) in self.topology.out_edges(self.id) {
            let mj = self.channel.send_mj(size, edge.k());
            self.meter.charge(EnergyCategory::Send, mj);
            for &to in edge.receivers() {
                // A send can fail only during shutdown; ignore then.
                let _ = self.senders[to as usize].send(TEvent::Deliver {
                    origin: self.id,
                    msg: msg.clone(),
                    flood,
                    loopback: false,
                });
            }
        }
    }

    fn apply(&mut self, effect: Effect<A::Msg, A::Timer>) {
        match effect {
            Effect::Multicast(msg) => {
                self.local.push_back(TEvent::Deliver {
                    origin: self.id,
                    msg: msg.clone(),
                    flood: None,
                    loopback: true,
                });
                self.transmit(&msg, None);
            }
            Effect::Flood { msg, target } => {
                let mut key = msg.flood_key();
                if let Some(t) = target {
                    key ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                }
                self.local.push_back(TEvent::Deliver {
                    origin: self.id,
                    msg,
                    flood: Some((key, target)),
                    loopback: true,
                });
            }
            Effect::SetTimer { id, delay, token } => {
                let due = self.start.elapsed().as_micros() as u64 + delay.as_micros();
                let seq = self.timer_seq;
                self.timer_seq += 1;
                self.timers.push(due, seq, (id, token));
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id.0);
            }
        }
    }

    fn handle(&mut self, event: TEvent<A::Msg>) -> bool {
        match event {
            TEvent::Stop => return false,
            TEvent::Deliver { origin, msg, flood, loopback } => {
                if !loopback {
                    let mj = self.channel.recv_mj(msg.wire_size());
                    self.meter.charge(EnergyCategory::Recv, mj);
                }
                match flood {
                    Some((key, target)) => {
                        if !self.seen_floods.insert(key) {
                            return true;
                        }
                        self.transmit(&msg, Some((key, target)));
                        if target.is_none_or(|t| t == self.id) {
                            self.invoke(|a, ctx| a.on_message(origin, msg, ctx));
                        }
                    }
                    None => self.invoke(|a, ctx| a.on_message(origin, msg, ctx)),
                }
            }
        }
        true
    }

    fn run(mut self) -> (A, EnergyMeter) {
        self.invoke(|a, ctx| a.on_start(ctx));
        loop {
            // Fire due timers.
            let now_us = self.start.elapsed().as_micros() as u64;
            while self.timers.peek_time().is_some_and(|due| due <= now_us) {
                let (_, _, (id, token)) = self.timers.pop().expect("peeked");
                if self.cancelled.remove(&id.0) {
                    continue;
                }
                self.invoke(|a, ctx| a.on_timer(token.clone(), ctx));
            }
            // Drain locally queued (loopback) deliveries.
            while let Some(ev) = self.local.pop_front() {
                if !self.handle(ev) {
                    return (self.actor, self.meter);
                }
            }
            // Wait for the next external event or timer deadline.
            let now_us = self.start.elapsed().as_micros() as u64;
            let wait = self
                .timers
                .peek_time()
                .map(|due| Duration::from_micros(due.saturating_sub(now_us)))
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            match self.receiver.recv_timeout(wait) {
                Ok(ev) => {
                    if !self.handle(ev) {
                        return (self.actor, self.meter);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return (self.actor, self.meter),
            }
        }
    }
}

impl<A> ThreadNet<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    A::Timer: Send + 'static,
{
    /// Spawns one thread per actor and starts the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != cfg.topology.n()`.
    pub fn spawn(cfg: ThreadNetConfig, actors: Vec<A>) -> Self {
        assert_eq!(actors.len(), cfg.topology.n(), "one actor per topology node");
        let n = actors.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = VecDeque::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push_back(rx);
        }
        let start = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, actor) in actors.into_iter().enumerate() {
            let runtime = NodeRuntime {
                id: i as NodeId,
                actor,
                meter: EnergyMeter::new(),
                topology: cfg.topology.clone(),
                channel: cfg.channel,
                senders: senders.clone(),
                receiver: receivers.pop_front().expect("one receiver per node"),
                start,
                next_timer_id: 0,
                timer_seq: 0,
                timers: CalendarQueue::new(),
                cancelled: HashSet::new(),
                seen_floods: HashSet::new(),
                local: VecDeque::new(),
                tracer: eesmr_trace::Tracer::disabled(i as NodeId),
            };
            handles.push(std::thread::spawn(move || runtime.run()));
        }
        ThreadNet { handles, senders }
    }

    /// Stops all nodes and returns each actor with its energy meter.
    pub fn shutdown(self) -> Vec<(A, EnergyMeter)> {
        for tx in &self.senders {
            let _ = tx.send(TEvent::Stop);
        }
        self.handles.into_iter().map(|h| h.join().expect("node thread panicked")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use eesmr_hypergraph::topology::ring_kcast;

    #[derive(Debug, Clone)]
    struct Ping(u64);
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            32
        }
        fn flood_key(&self) -> u64 {
            self.0
        }
    }

    #[derive(Debug, Default)]
    struct Echo {
        got: Vec<u64>,
        timer_fired: bool,
    }

    impl Actor for Echo {
        type Msg = Ping;
        type Timer = ();

        fn on_start(&mut self, ctx: &mut Context<'_, Ping, ()>) {
            if ctx.id() == 0 {
                ctx.flood(Ping(7));
                ctx.set_timer(SimDuration::from_millis(5), ());
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: Ping, _ctx: &mut Context<'_, Ping, ()>) {
            self.got.push(msg.0);
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Ping, ()>) {
            self.timer_fired = true;
        }
    }

    #[test]
    fn flood_reaches_all_threads_once() {
        let cfg =
            ThreadNetConfig { topology: ring_kcast(5, 2), channel: ChannelCost::ble_four_nines(2) };
        let net = ThreadNet::spawn(cfg, (0..5).map(|_| Echo::default()).collect::<Vec<_>>());
        std::thread::sleep(Duration::from_millis(200));
        let nodes = net.shutdown();
        for (i, (node, meter)) in nodes.iter().enumerate() {
            assert_eq!(node.got, vec![7], "node {i}");
            assert!(meter.total_mj() > 0.0, "node {i} paid for radio work");
        }
        assert!(nodes[0].0.timer_fired, "real-time timer fired");
    }
}
