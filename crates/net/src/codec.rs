//! Deterministic wire codec: versioned, little-endian, length-prefixed.
//!
//! Every top-level protocol message (`SignedMsg`, `BbMsg`, `HsMsg`,
//! `TbMsg`) encodes as a self-describing frame:
//!
//! ```text
//! offset 0  magic      2 bytes  0xEE 0x5E
//! offset 2  version    1 byte   0x01 (v1)
//! offset 3  family     1 byte   which top-level message type follows
//! offset 4  body       family-specific, self-delimiting
//! ```
//!
//! Inside bodies the conventions are fixed:
//!
//! * integers are little-endian and fixed-width (`u8`/`u32`/`u64`);
//! * byte strings are `u32` length + bytes ([`put_slice`]/[`read_slice`]);
//! * sequences are `u32` count + elements ([`put_count`]/[`read_count`]);
//! * options are a `0`/`1` flag byte + the value when present;
//! * enums are a one-byte tag + the variant's fields;
//! * nested messages (e.g. the equivocation pair inside a `Blame`) embed
//!   their full frame, header included.
//!
//! Decoding is total: any byte string either decodes or returns a
//! [`CodecError`] — decoders never panic, and never allocate more than a
//! small multiple of the input length (sequence counts are bounds-checked
//! against the remaining bytes *before* any allocation).
//!
//! The `wire_size()` methods of the protocol crates are defined as exactly
//! [`WireCodec::encoded_len`], so the energy model prices the real bytes
//! this codec would put on the air. Transports add their own `u32` length
//! prefix per frame (see [`crate::proc`]); that prefix is a transport
//! artifact and is *not* part of `wire_size()`.
//!
//! Versioning rules: the magic and the v1 layout of existing fields are
//! frozen (golden vectors in `tests/codec_corpus.rs` enforce this). To add
//! a field, bump [`VERSION`] and extend the decoder to accept both
//! versions; to add a message or enum variant, append a new tag — never
//! reuse or reorder existing tags.

use eesmr_crypto::{Digest, SigScheme, Signature};

use core::fmt;

/// First two bytes of every encoded top-level message.
pub const MAGIC: [u8; 2] = [0xEE, 0x5E];

/// Current schema version.
pub const VERSION: u8 = 1;

/// Bytes of overhead per top-level message: magic + version + family tag.
pub const HEADER_LEN: usize = 4;

/// Family tags: which top-level message type a frame carries.
pub mod family {
    /// `eesmr_core::SignedMsg` (the EESMR view-change protocol).
    pub const SIGNED_MSG: u8 = 1;
    /// `eesmr_core::BbMsg` (Byzantine reliable broadcast).
    pub const BB_MSG: u8 = 2;
    /// `eesmr_baselines::HsMsg` (Sync HotStuff / OptSync).
    pub const HS_MSG: u8 = 3;
    /// `eesmr_baselines::TbMsg` (trusted-base station SMR).
    pub const TB_MSG: u8 = 4;
}

/// Why a byte string failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// The frame's schema version is not one this build understands.
    BadVersion(u8),
    /// An enum/family/scheme tag byte has no known meaning.
    UnknownTag {
        /// Which tag namespace the byte came from.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A count or length prefix cannot fit in the remaining bytes.
    BadLength {
        /// Which sequence the prefix belonged to.
        what: &'static str,
        /// The claimed element count or byte length.
        len: u64,
    },
    /// The bytes decode, but not to the canonical encoding (e.g. nonzero
    /// signature padding). Rejected so `encode(decode(b)) == b` holds.
    NonCanonical(&'static str),
    /// Bytes were left over after the structure was fully decoded.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated mid-structure"),
            CodecError::BadMagic(m) => write!(f, "bad magic {:02x}{:02x}", m[0], m[1]),
            CodecError::BadVersion(v) => write!(f, "unsupported schema version {v}"),
            CodecError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::BadLength { what, len } => {
                write!(f, "{what} length {len} exceeds remaining bytes")
            }
            CodecError::NonCanonical(what) => write!(f, "non-canonical encoding: {what}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after structure"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an immutable byte buffer.
///
/// All reads advance the cursor; a read past the end returns
/// [`CodecError::Truncated`] and leaves the cursor unspecified.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Requires every byte to have been consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::Trailing(n)),
        }
    }
}

/// A type with a frozen byte-level wire encoding.
///
/// `encoded_len` is structural (no allocation) and always equals
/// `encode().len()`; the protocol crates define `wire_size()` as exactly
/// this value.
pub trait WireCodec: Sized {
    /// Exact length of [`WireCodec::encode`]'s output, without encoding.
    fn encoded_len(&self) -> usize;

    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor, leaving it just past the value.
    ///
    /// Parent decoders call this for nested fields; it does *not* require
    /// the buffer to end where the value does.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes to a fresh buffer of exactly [`WireCodec::encoded_len`] bytes.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len out of sync with encoding");
        out
    }

    /// Decodes a value that must span the whole buffer.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Writes the 4-byte frame header for a top-level message family.
pub fn put_header(out: &mut Vec<u8>, family: u8) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(family);
}

/// Reads and validates a frame header, requiring `family`.
///
/// A wrong-but-known family tag is reported as an unknown tag *for this
/// type*: the bytes are a valid frame of some other message, but not a
/// value of the type being decoded.
pub fn read_header(r: &mut Reader<'_>, family: u8) -> Result<(), CodecError> {
    let magic = r.bytes(2)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic([magic[0], magic[1]]));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let fam = r.u8()?;
    if fam != family {
        return Err(CodecError::UnknownTag { what: "message family", tag: fam });
    }
    Ok(())
}

/// Writes a `u32` length prefix followed by the bytes.
pub fn put_slice(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u32::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Reads a `u32`-length-prefixed byte string, bounds-checked before any
/// slicing.
pub fn read_slice<'a>(r: &mut Reader<'a>, what: &'static str) -> Result<&'a [u8], CodecError> {
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(CodecError::BadLength { what, len: len as u64 });
    }
    r.bytes(len)
}

/// Writes a `u32` element-count prefix for a sequence.
pub fn put_count(out: &mut Vec<u8>, count: usize) {
    debug_assert!(count <= u32::MAX as usize);
    out.extend_from_slice(&(count as u32).to_le_bytes());
}

/// Reads a sequence's `u32` count prefix, rejecting counts that cannot
/// possibly fit in the remaining bytes (`count × min_elem_len`), so a
/// hostile prefix can never drive an unbounded allocation.
pub fn read_count(
    r: &mut Reader<'_>,
    min_elem_len: usize,
    what: &'static str,
) -> Result<usize, CodecError> {
    let count = r.u32()? as usize;
    if count.saturating_mul(min_elem_len.max(1)) > r.remaining() {
        return Err(CodecError::BadLength { what, len: count as u64 });
    }
    Ok(count)
}

impl WireCodec for Digest {
    fn encoded_len(&self) -> usize {
        32
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = r.bytes(32)?;
        let mut a = [0u8; 32];
        a.copy_from_slice(b);
        Ok(Digest::from_bytes(a))
    }
}

/// Signatures encode as `scheme tag (1) | signer (4) | tag bytes padded to
/// the real scheme's signature size`. The padding keeps on-air byte counts
/// faithful to the deployed scheme (e.g. 128 B for RSA-1024) even though
/// the simulated authenticator is 32 bytes; decode requires the padding to
/// be zero so the encoding stays canonical.
impl WireCodec for Signature {
    fn encoded_len(&self) -> usize {
        5 + self.scheme().signature_size()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.scheme().wire_tag());
        out.extend_from_slice(&self.signer().to_le_bytes());
        out.extend_from_slice(self.tag().as_bytes());
        out.resize(out.len() + (self.scheme().signature_size() - 32), 0);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.u8()?;
        let scheme = SigScheme::from_wire_tag(tag)
            .ok_or(CodecError::UnknownTag { what: "signature scheme", tag })?;
        let signer = r.u32()?;
        let body = r.bytes(scheme.signature_size())?;
        let mut auth = [0u8; 32];
        auth.copy_from_slice(&body[..32]);
        if body[32..].iter().any(|b| *b != 0) {
            return Err(CodecError::NonCanonical("signature padding must be zero"));
        }
        Ok(Signature::from_wire(signer, scheme, Digest::from_bytes(auth)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_crypto::KeyPair;

    #[test]
    fn digest_round_trips() {
        let d = Digest::of_parts(&[b"hello"]);
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.encoded_len());
        assert_eq!(Digest::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn signature_round_trips_with_padding() {
        let sig = KeyPair::derive(7, SigScheme::Rsa1024, 1).sign(b"m");
        let bytes = sig.encode();
        assert_eq!(bytes.len(), 5 + 128);
        let back = Signature::decode(&bytes).unwrap();
        assert_eq!(back, sig);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn signature_rejects_nonzero_padding() {
        let sig = KeyPair::derive(7, SigScheme::Rsa1024, 1).sign(b"m");
        let mut bytes = sig.encode();
        *bytes.last_mut().unwrap() = 1;
        assert_eq!(
            Signature::decode(&bytes),
            Err(CodecError::NonCanonical("signature padding must be zero"))
        );
    }

    #[test]
    fn signature_rejects_unknown_scheme_tag() {
        let sig = KeyPair::derive(7, SigScheme::Hmac, 1).sign(b"m");
        let mut bytes = sig.encode();
        bytes[0] = 0xEF;
        assert!(matches!(
            Signature::decode(&bytes),
            Err(CodecError::UnknownTag { what: "signature scheme", .. })
        ));
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let sig = KeyPair::derive(3, SigScheme::EcdsaSecp256K1, 9).sign(b"m");
        let bytes = sig.encode();
        for cut in 0..bytes.len() {
            assert!(Signature::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = Digest::of_parts(&[b"x"]);
        let mut bytes = d.encode();
        bytes.push(0);
        assert_eq!(Digest::decode(&bytes), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn hostile_count_prefix_rejected_before_allocation() {
        // A count of u32::MAX with 4 remaining bytes must fail the bound
        // check rather than attempt a giant allocation.
        let buf = u32::MAX.to_le_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(read_count(&mut r, 32, "sigs"), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn scheme_wire_tags_round_trip() {
        for scheme in SigScheme::ALL {
            assert_eq!(SigScheme::from_wire_tag(scheme.wire_tag()), Some(scheme));
        }
        assert_eq!(SigScheme::from_wire_tag(SigScheme::ALL.len() as u8), None);
    }
}
