//! Single-actor test harness: drive one [`Actor`] by hand and observe its
//! outputs, without a network.
//!
//! Integration tests over [`crate::SimNet`] check emergent behaviour;
//! this harness checks *local* protocol rules — "given exactly this
//! message, the replica must reject it / relay it / arm that timer". It is
//! public API: downstream users writing their own protocols get the same
//! white-box testing surface.

use eesmr_energy::EnergyMeter;

use crate::actor::{Actor, Context, Effect, NodeId, TimerId};
use crate::time::{SimDuration, SimTime};

/// An observable actor output (the resolved form of the context effects).
#[derive(Debug, Clone, PartialEq)]
pub enum Output<M, T> {
    /// One k-cast on the node's out-edges.
    Multicast(M),
    /// A network-layer flood, optionally targeted.
    Flood {
        /// The message.
        msg: M,
        /// `Some(node)` for routed sends.
        target: Option<NodeId>,
    },
    /// A timer was armed.
    SetTimer {
        /// Cancellation handle.
        id: TimerId,
        /// Delay from now.
        delay: SimDuration,
        /// The token to fire with.
        token: T,
    },
    /// A timer was cancelled.
    CancelTimer(TimerId),
}

impl<M, T> Output<M, T> {
    /// The transmitted message, if this output carries one.
    pub fn message(&self) -> Option<&M> {
        match self {
            Output::Multicast(m) | Output::Flood { msg: m, .. } => Some(m),
            _ => None,
        }
    }
}

/// Drives a single actor with hand-crafted inputs.
///
/// # Examples
///
/// ```
/// use eesmr_net::harness::Harness;
/// use eesmr_net::{Actor, Context, Message, NodeId};
///
/// #[derive(Debug, Clone)]
/// struct Ping;
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 8 }
///     fn flood_key(&self) -> u64 { 1 }
/// }
/// struct EchoOnce { sent: bool }
/// impl Actor for EchoOnce {
///     type Msg = Ping;
///     type Timer = ();
///     fn on_message(&mut self, _f: NodeId, msg: Ping, ctx: &mut Context<'_, Ping, ()>) {
///         if !self.sent { self.sent = true; ctx.multicast(msg); }
///     }
///     fn on_timer(&mut self, _t: (), _c: &mut Context<'_, Ping, ()>) {}
/// }
///
/// let mut h = Harness::new(0, EchoOnce { sent: false });
/// let out = h.deliver(1, Ping);
/// assert_eq!(out.len(), 1, "echoed once");
/// assert!(h.deliver(1, Ping).is_empty(), "but only once");
/// ```
pub struct Harness<A: Actor> {
    id: NodeId,
    actor: A,
    meter: EnergyMeter,
    next_timer_id: u64,
    now: SimTime,
    tracer: eesmr_trace::Tracer,
}

impl<A: Actor> Harness<A> {
    /// Wraps `actor` as node `id` at time zero.
    pub fn new(id: NodeId, actor: A) -> Self {
        Harness {
            id,
            actor,
            meter: EnergyMeter::new(),
            next_timer_id: 0,
            now: SimTime::ZERO,
            tracer: eesmr_trace::Tracer::disabled(id),
        }
    }

    /// The wrapped actor.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Mutable access (for test setup).
    pub fn actor_mut(&mut self) -> &mut A {
        &mut self.actor
    }

    /// The actor's energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Current virtual time presented to the actor.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock without delivering anything.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    fn invoke(
        &mut self,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg, A::Timer>),
    ) -> Vec<Output<A::Msg, A::Timer>> {
        let mut ctx = Context {
            node: self.id,
            now: self.now,
            meter: &mut self.meter,
            next_timer_id: &mut self.next_timer_id,
            tracer: &mut self.tracer,
            effects: Vec::new(),
        };
        f(&mut self.actor, &mut ctx);
        ctx.effects
            .into_iter()
            .map(|e| match e {
                Effect::Multicast(m) => Output::Multicast(m),
                Effect::Flood { msg, target } => Output::Flood { msg, target },
                Effect::SetTimer { id, delay, token } => Output::SetTimer { id, delay, token },
                Effect::CancelTimer(id) => Output::CancelTimer(id),
            })
            .collect()
    }

    /// Calls `on_start`.
    pub fn start(&mut self) -> Vec<Output<A::Msg, A::Timer>> {
        self.invoke(|a, ctx| a.on_start(ctx))
    }

    /// Delivers one message as if it came from `from`.
    pub fn deliver(&mut self, from: NodeId, msg: A::Msg) -> Vec<Output<A::Msg, A::Timer>> {
        self.invoke(|a, ctx| a.on_message(from, msg, ctx))
    }

    /// Fires a timer token directly (bypassing the schedule).
    pub fn fire(&mut self, token: A::Timer) -> Vec<Output<A::Msg, A::Timer>> {
        self.invoke(|a, ctx| a.on_timer(token, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[derive(Debug, Clone, PartialEq)]
    struct N(u64);
    impl Message for N {
        fn wire_size(&self) -> usize {
            8
        }
        fn flood_key(&self) -> u64 {
            self.0
        }
    }

    struct Doubler;
    impl Actor for Doubler {
        type Msg = N;
        type Timer = &'static str;

        fn on_start(&mut self, ctx: &mut Context<'_, N, &'static str>) {
            ctx.set_timer(SimDuration::from_millis(1), "tick");
        }

        fn on_message(&mut self, _f: NodeId, msg: N, ctx: &mut Context<'_, N, &'static str>) {
            ctx.flood(N(msg.0 * 2));
            ctx.send_to(3, N(msg.0));
        }

        fn on_timer(&mut self, t: &'static str, ctx: &mut Context<'_, N, &'static str>) {
            assert_eq!(t, "tick");
            ctx.multicast(N(0));
        }
    }

    #[test]
    fn outputs_are_observable_and_typed() {
        let mut h = Harness::new(7, Doubler);
        let started = h.start();
        assert!(matches!(started[0], Output::SetTimer { token: "tick", .. }));

        let out = h.deliver(1, N(21));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Output::Flood { msg: N(42), target: None });
        assert_eq!(out[1], Output::Flood { msg: N(21), target: Some(3) });
        assert_eq!(out[0].message(), Some(&N(42)));

        let ticked = h.fire("tick");
        assert_eq!(ticked, vec![Output::Multicast(N(0))]);
    }

    #[test]
    fn clock_advances_only_on_request() {
        let mut h = Harness::new(0, Doubler);
        assert_eq!(h.now(), SimTime::ZERO);
        h.advance(SimDuration::from_millis(5));
        assert_eq!(h.now().as_micros(), 5_000);
    }
}
