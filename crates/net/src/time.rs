//! Virtual time for the discrete-event simulator.
//!
//! The paper's testbed runs with Δ = 10·n *seconds* because the BLE boards
//! cannot scan and transmit simultaneously; the simulator keeps the same
//! timer structure but in virtual microseconds, so experiments that take
//! hours of wall-clock time on hardware finish in milliseconds.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Millisecond view (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(50);
        assert_eq!(t + d, SimTime::from_micros(150));
        assert_eq!((t + d).since(t), d);
        assert_eq!(d * 4, SimDuration::from_micros(200));
        assert_eq!(d - SimDuration::from_micros(80), SimDuration::ZERO, "saturating");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_micros(20));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3000);
        assert_eq!(SimDuration::from_micros(2500).as_millis(), 2);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(7).to_string(), "t+7us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }
}
