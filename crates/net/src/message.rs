//! The wire-message abstraction.

use eesmr_energy::EnergyPhase;

/// A protocol message the simulated network can carry.
///
/// Implementations report their **real** wire size (the bytes an equivalent
/// deployment would transmit, including signature bytes at the chosen
/// scheme's size) so transmission energy is priced faithfully, and a
/// `flood_key` that uniquely identifies the message for relay-once
/// deduplication during flooding.
pub trait Message: Clone + core::fmt::Debug {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;

    /// A collision-resistant identity for flood deduplication. Two
    /// semantically different messages must return different keys (derive
    /// it from a digest of the canonical encoding).
    fn flood_key(&self) -> u64;

    /// The protocol phase this message belongs to, for energy
    /// attribution: the runtime charges its transmit/receive costs — and
    /// any compute the receiving handler performs — to this phase.
    /// Defaults to [`EnergyPhase::Other`]; protocols override it per
    /// message kind.
    fn phase(&self) -> EnergyPhase {
        EnergyPhase::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl Message for Blob {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
        fn flood_key(&self) -> u64 {
            eesmr_crypto::Digest::of(&self.0).to_u64()
        }
    }

    #[test]
    fn flood_keys_differ_for_different_contents() {
        assert_ne!(Blob(vec![1]).flood_key(), Blob(vec![2]).flood_key());
        assert_eq!(Blob(vec![1]).flood_key(), Blob(vec![1]).flood_key());
    }

    #[test]
    fn wire_size_reports_bytes() {
        assert_eq!(Blob(vec![0; 77]).wire_size(), 77);
    }
}
