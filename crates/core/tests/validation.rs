//! White-box validation tests: hand-crafted (including adversarial)
//! messages against a single replica, via the `eesmr_net::harness`.
//!
//! These pin down the local acceptance rules Appendix B's proofs rely on:
//! what a replica relays, rejects, or escalates.

use std::sync::Arc;

use eesmr_core::{Block, Command, Config, FaultMode, Payload, Replica, SignedMsg, TimerToken};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_net::harness::{Harness, Output};
use eesmr_net::SimDuration;

const N: usize = 4;

fn pki() -> Arc<KeyStore> {
    Arc::new(KeyStore::generate(N, SigScheme::Rsa1024, 11))
}

fn replica(id: u32, pki: &Arc<KeyStore>) -> Harness<Replica> {
    let config = Config::new(N, SimDuration::from_millis(2));
    Harness::new(id, Replica::new(id, config, pki.clone(), FaultMode::Honest))
}

/// A leader-signed steady-state proposal for view 1.
fn proposal(pki: &Arc<KeyStore>, round: u64, payload_tag: u64) -> (Block, SignedMsg) {
    let block =
        Block::extending(&Block::genesis(), 1, round, vec![Command::synthetic(payload_tag, 16)]);
    let msg = SignedMsg::new(
        Payload::Propose { block: block.clone(), round, justify: None },
        1,
        pki.keypair(0), // node 0 leads view 1 (round robin)
    );
    (block, msg)
}

#[test]
fn accepts_leader_proposal_relays_and_arms_commit_timer() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let (block, msg) = proposal(&pki, 3, 1);
    let out = h.deliver(0, msg.clone());

    assert!(
        out.iter().any(|o| matches!(o, Output::Multicast(m) if m == &msg)),
        "the proposal must be relayed once (the implicit vote)"
    );
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::SetTimer { token: TimerToken::Commit { block: b, .. }, delay, .. }
                if *b == block.id() && delay.as_micros() == 8_000 // 4Δ
        )),
        "T_commit(B) = 4Δ must be armed"
    );
    assert_eq!(h.actor().current_round(), 4, "NextRound advanced");
}

#[test]
fn rejects_proposal_from_non_leader() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let block = Block::extending(&Block::genesis(), 1, 3, vec![]);
    // Node 2 signs a proposal although node 0 leads view 1.
    let forged =
        SignedMsg::new(Payload::Propose { block, round: 3, justify: None }, 1, pki.keypair(2));
    let out = h.deliver(2, forged);
    assert!(out.is_empty(), "nothing is relayed or armed");
    assert_eq!(h.actor().metrics().proposals_rejected, 1);
    assert_eq!(h.actor().current_round(), 3, "round unchanged");
}

#[test]
fn rejects_proposal_with_tampered_signature() {
    let pki = pki();
    let other_universe = KeyStore::generate(N, SigScheme::Rsa1024, 999);
    let mut h = replica(1, &pki);
    h.start();
    let block = Block::extending(&Block::genesis(), 1, 3, vec![]);
    // Signed by "node 0" of a different PKI — verification must fail.
    let forged = SignedMsg::new(
        Payload::Propose { block, round: 3, justify: None },
        1,
        other_universe.keypair(0),
    );
    let out = h.deliver(0, forged);
    assert!(out.is_empty());
    assert_eq!(h.actor().metrics().proposals_rejected, 1);
}

#[test]
fn duplicate_proposal_is_not_relayed_twice() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let (_, msg) = proposal(&pki, 3, 1);
    let first = h.deliver(0, msg.clone());
    assert!(!first.is_empty());
    let verifies_before = h.meter().count(eesmr_energy::EnergyCategory::Verify);
    let second = h.deliver(3, msg); // same proposal via another relayer
    assert!(second.is_empty(), "no re-relay, no new timers");
    assert_eq!(
        h.meter().count(eesmr_energy::EnergyCategory::Verify),
        verifies_before,
        "duplicates are deduplicated by content before any signature check"
    );
}

#[test]
fn equivocation_triggers_blame_with_proof_and_cancels_commits() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let (_, first) = proposal(&pki, 3, 1);
    let (_, twin) = proposal(&pki, 3, 2); // same round, different block
    h.deliver(0, first);
    let out = h.deliver(0, twin);

    let blame = out.iter().find_map(|o| match o {
        Output::Flood { msg, target: None } => match &msg.payload {
            Payload::Blame { proof: Some(_) } => Some(msg),
            _ => None,
        },
        _ => None,
    });
    assert!(blame.is_some(), "a blame carrying the equivocation proof is flooded");
    assert!(
        out.iter().any(|o| matches!(o, Output::CancelTimer(_))),
        "commit timers are cancelled to preserve safety"
    );
    assert_eq!(h.actor().metrics().equivocations_detected, 1);
}

#[test]
fn crash_only_variant_ignores_equivocation() {
    let pki = pki();
    let mut config = Config::new(N, SimDuration::from_millis(2));
    config.crash_only = true;
    let mut h = Harness::new(1, Replica::new(1, config, pki.clone(), FaultMode::Honest));
    h.start();
    let (_, first) = proposal(&pki, 3, 1);
    let (_, twin) = proposal(&pki, 3, 2);
    h.deliver(0, first);
    let out = h.deliver(0, twin);
    assert!(
        !out.iter().any(|o| matches!(
            o,
            Output::Flood { msg, .. } if matches!(msg.payload, Payload::Blame { .. })
        )),
        "the crash variant drops the equivocation handlers (Alg. 2 lines 220/224)"
    );
    assert_eq!(h.actor().metrics().equivocations_detected, 0);
}

#[test]
fn quorum_of_blames_produces_blame_certificate() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    // f = 1 for n = 4, so f+1 = 2 blames form the certificate.
    let blame_from = |id: u32| SignedMsg::new(Payload::Blame { proof: None }, 1, pki.keypair(id));
    let out1 = h.deliver(2, blame_from(2));
    assert!(
        !out1.iter().any(|o| matches!(
            o,
            Output::Flood { msg, .. } if matches!(msg.payload, Payload::BlameQc(_))
        )),
        "one blame is below the quorum"
    );
    let out2 = h.deliver(3, blame_from(3));
    let qc = out2.iter().find_map(|o| match o {
        Output::Flood { msg, target: None } => match &msg.payload {
            Payload::BlameQc(qc) => Some(qc.clone()),
            _ => None,
        },
        _ => None,
    });
    let qc = qc.expect("f+1 blames must produce a flooded blame certificate");
    assert_eq!(qc.sigs.len(), 2);
    assert!(
        out2.iter().any(|o| matches!(
            o,
            Output::SetTimer { token: TimerToken::QuitWait { view: 1 }, delay, .. }
                if delay.as_micros() == 2_000 // Δ
        )),
        "the Δ quit wait is scheduled"
    );
}

#[test]
fn duplicate_blames_from_one_node_do_not_reach_quorum() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let blame = SignedMsg::new(Payload::Blame { proof: None }, 1, pki.keypair(2));
    h.deliver(2, blame.clone());
    let out = h.deliver(2, blame);
    assert!(
        !out.iter().any(|o| matches!(
            o,
            Output::Flood { msg, .. } if matches!(msg.payload, Payload::BlameQc(_))
        )),
        "the same signer cannot count twice towards f+1"
    );
}

#[test]
fn invalid_equivocation_proof_is_ignored() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    // "Proof" whose two proposals are for different rounds — not an
    // equivocation.
    let (_, a) = proposal(&pki, 3, 1);
    let (_, b) = proposal(&pki, 4, 2);
    let bogus = SignedMsg::new(Payload::Blame { proof: Some(Box::new((a, b))) }, 1, pki.keypair(2));
    h.deliver(2, bogus);
    assert_eq!(h.actor().metrics().equivocations_detected, 0);
}

#[test]
fn sync_request_is_answered_with_ancestors() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let (block, msg) = proposal(&pki, 3, 1);
    h.deliver(0, msg);
    let request = SignedMsg::new(Payload::SyncRequest { want: block.id() }, 1, pki.keypair(3));
    let out = h.deliver(3, request);
    let reply = out.iter().find_map(|o| match o {
        Output::Flood { msg, target: Some(3) } => match &msg.payload {
            Payload::SyncResponse { blocks } => Some(blocks.clone()),
            _ => None,
        },
        _ => None,
    });
    let blocks = reply.expect("a targeted sync response goes back to the requester");
    assert_eq!(blocks[0].id(), block.id());
    assert!(blocks.iter().any(|b| b.height == 0), "the walk reaches genesis");
}

#[test]
fn blame_timeout_floods_a_blame_once_per_view() {
    let pki = pki();
    let mut h = replica(1, &pki);
    h.start();
    let out = h.fire(TimerToken::Blame { view: 1 });
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Flood { msg, .. } if matches!(msg.payload, Payload::Blame { proof: None })
        )),
        "no progress within T_blame ⇒ ⟨blame, v⟩ is flooded"
    );
    // A stale token for an old view is ignored.
    let stale = h.fire(TimerToken::Blame { view: 0 });
    assert!(stale.is_empty());
}

#[test]
fn leader_proposes_on_start_and_blocks_on_outstanding() {
    let pki = pki();
    let mut h = replica(0, &pki); // node 0 leads view 1
    let out = h.start();
    let proposed = out.iter().find_map(|o| match o {
        Output::Multicast(m) => match &m.payload {
            Payload::Propose { block, round: 3, .. } => Some(block.clone()),
            _ => None,
        },
        _ => None,
    });
    let block = proposed.expect("the leader proposes for round 3 at start");
    assert_eq!(block.height, 1);

    // Blocking pacing: accepting its own proposal leaves one outstanding
    // block, so no second proposal until the commit timer fires.
    let own = out
        .iter()
        .find_map(|o| match o {
            Output::Multicast(m) => Some(m.clone()),
            _ => None,
        })
        .expect("found above");
    let after_loopback = h.deliver(0, own);
    assert!(
        !after_loopback.iter().any(|o| matches!(
            o,
            Output::Multicast(m) if matches!(m.payload, Payload::Propose { .. })
        )),
        "blocking pacing: one outstanding proposal at a time"
    );
    // Commit fires → the next round's proposal goes out.
    h.advance(SimDuration::from_millis(8));
    let after_commit = h.fire(TimerToken::Commit { view: 1, block: block.id() });
    assert!(
        after_commit.iter().any(|o| matches!(
            o,
            Output::Multicast(m) if matches!(&m.payload, Payload::Propose { round: 4, .. })
        )),
        "the leader proposes round 4 after committing round 3"
    );
    assert_eq!(h.actor().committed_height(), 1);
}
