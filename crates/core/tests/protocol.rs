//! End-to-end protocol tests: EESMR replicas over the simulated network.
//!
//! These exercise the claims of Appendix B — safety (no two correct nodes
//! commit different blocks at a height), liveness (commits continue across
//! view changes), and the behaviour of the §3.5/§5.6 optimizations.

use std::sync::Arc;

use eesmr_core::{build_replicas, Config, FaultMode, Pacing, Replica};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_hypergraph::topology::ring_kcast;
use eesmr_net::{NetConfig, SimDuration, SimNet, SimTime};

struct Setup {
    n: usize,
    k: usize,
    seed: u64,
    tweak: fn(&mut Config),
    faults: fn(eesmr_net::NodeId) -> FaultMode,
}

impl Default for Setup {
    fn default() -> Self {
        Setup { n: 5, k: 2, seed: 7, tweak: |_| {}, faults: |_| FaultMode::Honest }
    }
}

fn run(setup: Setup, millis: u64) -> SimNet<Replica> {
    let net_cfg = NetConfig::ble(ring_kcast(setup.n, setup.k), setup.seed);
    let mut config = Config::new(setup.n, net_cfg.delta());
    (setup.tweak)(&mut config);
    let pki = Arc::new(KeyStore::generate(setup.n, SigScheme::Rsa1024, setup.seed));
    let replicas = build_replicas(&config, &pki, setup.faults);
    let mut net = SimNet::new(net_cfg, replicas);
    net.run_for(SimDuration::from_millis(millis));
    net
}

/// Safety: committed logs of correct nodes are prefixes of one another.
fn assert_log_consistency(net: &SimNet<Replica>, correct: impl Iterator<Item = u32>) {
    let logs: Vec<(u32, &[eesmr_crypto::Digest])> =
        correct.map(|id| (id, net.actor(id).committed())).collect();
    for (i, (id_a, a)) in logs.iter().enumerate() {
        for (id_b, b) in logs.iter().skip(i + 1) {
            let common = a.len().min(b.len());
            assert_eq!(
                &a[..common],
                &b[..common],
                "logs of {id_a} and {id_b} diverge within their common prefix"
            );
        }
    }
}

#[test]
fn honest_run_commits_and_agrees() {
    let net = run(Setup::default(), 300);
    for id in 0..5 {
        assert!(
            net.actor(id).committed_height() >= 5,
            "node {id} should have committed several blocks, got {}",
            net.actor(id).committed_height()
        );
        assert_eq!(net.actor(id).metrics().view_changes, 0, "no view change in honest runs");
    }
    assert_log_consistency(&net, 0..5);
}

#[test]
fn committed_blocks_form_a_chain() {
    let net = run(Setup::default(), 200);
    let r = net.actor(0);
    let log = r.committed();
    assert!(!log.is_empty());
    let mut prev_height = 0;
    for id in log {
        let b = r.block(id).expect("committed blocks are stored");
        assert_eq!(b.height, prev_height + 1, "heights are consecutive");
        prev_height = b.height;
    }
}

#[test]
fn silent_leader_triggers_view_change_and_recovery() {
    // Node 0 leads view 1 but is silent from the start: the others blame,
    // change the view, and commit under leader 1.
    let net = run(
        Setup {
            faults: |id| {
                if id == 0 {
                    FaultMode::Silent { from_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_000,
    );
    for id in 1..5 {
        let r = net.actor(id);
        assert!(r.current_view() >= 2, "node {id} must have left view 1");
        assert!(r.metrics().view_changes >= 1);
        assert!(r.committed_height() >= 1, "commits resume after the view change");
    }
    assert_log_consistency(&net, 1..5);
}

#[test]
fn equivocating_leader_is_evicted_without_conflicting_commits() {
    let net = run(
        Setup {
            faults: |id| {
                if id == 0 {
                    FaultMode::Equivocate { in_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_000,
    );
    for id in 1..5 {
        let r = net.actor(id);
        assert!(r.current_view() >= 2, "node {id} must have changed views");
        assert!(
            r.metrics().equivocations_detected >= 1 || r.metrics().view_changes >= 1,
            "node {id} should have seen the equivocation or at least the view change"
        );
    }
    assert_log_consistency(&net, 1..5);
}

#[test]
fn equivocation_speedup_still_recovers() {
    let net = run(
        Setup {
            tweak: |c| c.opt_equivocation_speedup = true,
            faults: |id| {
                if id == 0 {
                    FaultMode::Equivocate { in_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_000,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
        assert!(net.actor(id).committed_height() >= 1, "node {id} commits in the new view");
    }
    assert_log_consistency(&net, 1..5);
}

#[test]
fn lock_only_status_view_change_works() {
    let net = run(
        Setup {
            tweak: |c| c.opt_lock_only_status = true,
            faults: |id| {
                if id == 0 {
                    FaultMode::Silent { from_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_000,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
        assert!(net.actor(id).committed_height() >= 1, "node {id}");
    }
    assert_log_consistency(&net, 1..5);
}

#[test]
fn crash_only_variant_handles_crash_faults() {
    let net = run(
        Setup {
            tweak: |c| c.crash_only = true,
            faults: |id| {
                if id == 0 {
                    FaultMode::Silent { from_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_000,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
        assert!(net.actor(id).committed_height() >= 1, "node {id}");
    }
    assert_log_consistency(&net, 1..5);
}

#[test]
fn consecutive_faulty_leaders_are_skipped() {
    // Leaders of views 1 and 2 are both silent: two view changes needed.
    let net = run(
        Setup {
            n: 7,
            k: 3,
            faults: |id| match id {
                0 => FaultMode::Silent { from_view: 1 },
                1 => FaultMode::Silent { from_view: 1 },
                _ => FaultMode::Honest,
            },
            ..Setup::default()
        },
        3_000,
    );
    for id in 2..7 {
        let r = net.actor(id);
        assert!(r.current_view() >= 3, "node {id} must reach view 3, at {}", r.current_view());
        assert!(r.committed_height() >= 1, "node {id} commits under leader 2");
    }
    assert_log_consistency(&net, 2..7);
}

#[test]
fn f_silent_followers_do_not_stop_progress() {
    // n = 7 tolerates f = 3; two silent non-leader followers.
    let net = run(
        Setup {
            n: 7,
            k: 3,
            faults: |id| match id {
                5 | 6 => FaultMode::Silent { from_view: 1 },
                _ => FaultMode::Honest,
            },
            ..Setup::default()
        },
        500,
    );
    for id in 0..5 {
        assert!(
            net.actor(id).committed_height() >= 3,
            "node {id} commits despite silent followers"
        );
        assert_eq!(net.actor(id).metrics().view_changes, 0);
    }
    assert_log_consistency(&net, 0..5);
}

#[test]
fn streaming_pacing_commits_faster_than_blocking() {
    let blocking = run(Setup::default(), 400);
    let streaming = run(
        Setup {
            tweak: |c| c.pacing = Pacing::Streaming { max_outstanding: 8 },
            ..Setup::default()
        },
        400,
    );
    let h_blocking = blocking.actor(0).committed_height();
    let h_streaming = streaming.actor(0).committed_height();
    assert!(
        h_streaming > h_blocking,
        "streaming ({h_streaming}) should outpace blocking ({h_blocking})"
    );
}

#[test]
fn deterministic_replay_same_seed() {
    let a = run(Setup::default(), 300);
    let b = run(Setup::default(), 300);
    for id in 0..5 {
        assert_eq!(a.actor(id).committed(), b.actor(id).committed());
        assert_eq!(a.meter(id).total_mj(), b.meter(id).total_mj());
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn steady_state_energy_is_dominated_by_one_signer() {
    // §3.3: O(1) signing per block for the whole system — only the leader
    // signs in the steady state.
    let net = run(Setup::default(), 300);
    let leader_signs = net.meter(0).count(eesmr_energy::EnergyCategory::Sign);
    for id in 1..5u32 {
        let signs = net.meter(id).count(eesmr_energy::EnergyCategory::Sign);
        assert!(signs <= 1, "non-leader {id} should not sign in the steady state, signed {signs}");
    }
    assert!(leader_signs >= 5, "the leader signs once per proposal");
}

#[test]
fn commit_latency_is_about_four_delta() {
    let net = run(Setup::default(), 400);
    let delta = net.config().delta();
    let r = net.actor(3);
    let mean = r.metrics().mean_commit_latency().expect("blocks were committed");
    assert!(
        mean >= delta * 4 && mean.as_micros() <= delta.as_micros() * 5,
        "commit latency {mean} should be ≈4Δ (Δ = {delta})"
    );
}

#[test]
fn logs_survive_longer_runs_with_rotating_faults() {
    // A stress mix: silent node 2 from view 3 onwards.
    let net = run(
        Setup {
            n: 6,
            k: 2,
            faults: |id| {
                if id == 2 {
                    FaultMode::Silent { from_view: 3 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        4_000,
    );
    let correct = (0..6u32).filter(|&id| id != 2);
    assert_log_consistency(&net, correct.clone());
    for id in correct {
        assert!(net.actor(id).committed_height() >= 2, "node {id}");
    }
    let _ = SimTime::ZERO; // keep the import exercised
}

#[test]
fn withholding_follower_neither_stalls_nor_forks() {
    // EESMR's implicit vote is the relay: a withholding follower keeps
    // processing and committing but never relays. With one withholder the
    // flood still saturates, so the others are unaffected.
    let net = run(
        Setup {
            faults: |id| {
                if id == 3 {
                    FaultMode::Withhold { from_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        500,
    );
    assert_eq!(net.actor(3).metrics().proposals_relayed, 0, "withholder never relays");
    assert!(net.actor(3).committed_height() >= 3, "withholder still commits locally");
    for id in 0..5 {
        assert!(net.actor(id).committed_height() >= 3, "node {id}");
        assert_eq!(net.actor(id).metrics().view_changes, 0);
    }
    assert_log_consistency(&net, 0..5);
}

#[test]
fn storming_follower_inflates_traffic_without_breaking_safety() {
    let honest = run(Setup::default(), 400);
    let stormy = run(
        Setup {
            faults: |id| {
                if id == 4 {
                    FaultMode::Storm { from_view: 1, repeats: 4 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        400,
    );
    assert!(
        stormy.stats().bytes_on_air > honest.stats().bytes_on_air,
        "storm duplicates must show up on the air: {} vs {}",
        stormy.stats().bytes_on_air,
        honest.stats().bytes_on_air
    );
    for id in 0..5 {
        assert!(stormy.actor(id).committed_height() >= 3, "node {id} commits despite the storm");
    }
    assert_log_consistency(&stormy, 0..5);
}

#[test]
fn crashed_follower_repairs_and_commits_after_restart() {
    // Node 2 goes dark at 50 ms and restarts at 200 ms: on restart it
    // floods a Repair, peers serve the committed suffix, and it rejoins
    // steady state — by the end its log has caught back up.
    let net = run(
        Setup {
            faults: |id| {
                if id == 2 {
                    FaultMode::Crash { at_us: 50_000, restart_at_us: Some(200_000) }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        500,
    );
    let recovered = net.actor(2);
    assert_eq!(recovered.metrics().repair_requests, 1, "exactly one repair per restart");
    let served: u64 = (0..5).map(|id| net.actor(id).metrics().repairs_served).sum();
    assert!(served >= 1, "at least one peer served the repair");
    let reference = net.actor(0).committed_height();
    assert!(reference >= 10, "the healthy majority kept committing, got {reference}");
    assert!(
        recovered.committed_height() + 5 >= reference,
        "recovered node must catch up: {} vs {reference}",
        recovered.committed_height()
    );
    assert_log_consistency(&net, 0..5);
}

#[test]
fn permanently_crashed_follower_does_not_stop_progress() {
    let net = run(
        Setup {
            faults: |id| {
                if id == 4 {
                    FaultMode::Crash { at_us: 30_000, restart_at_us: None }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        500,
    );
    for id in 0..4 {
        assert!(net.actor(id).committed_height() >= 5, "node {id}");
    }
    assert_log_consistency(&net, 0..4);
}

#[test]
fn checkpoint_variant_commits_and_saves_verifications() {
    let plain = run(Setup::default(), 400);
    let checkpointed =
        run(Setup { tweak: |c| c.checkpoint_interval = Some(8), ..Setup::default() }, 400);
    // Same liveness and safety...
    assert!(checkpointed.actor(0).committed_height() >= 5);
    assert_log_consistency(&checkpointed, 0..5);
    // ...with strictly fewer signature verifications at the replicas.
    let verifies =
        |net: &SimNet<Replica>, id: u32| net.meter(id).count(eesmr_energy::EnergyCategory::Verify);
    assert!(
        verifies(&checkpointed, 3) < verifies(&plain, 3),
        "checkpointing should cut verification work: {} vs {}",
        verifies(&checkpointed, 3),
        verifies(&plain, 3)
    );
}

#[test]
fn checkpoint_variant_still_catches_equivocation() {
    // Equivocating proposals differ in content, so the duplicate check
    // still trips and the proof (which IS verified) evicts the leader.
    let net = run(
        Setup {
            tweak: |c| c.checkpoint_interval = Some(8),
            faults: |id| {
                if id == 0 {
                    FaultMode::Equivocate { in_view: 1 }
                } else {
                    FaultMode::Honest
                }
            },
            ..Setup::default()
        },
        1_500,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
        assert!(net.actor(id).committed_height() >= 1, "node {id}");
    }
    assert_log_consistency(&net, 1..5);
}
