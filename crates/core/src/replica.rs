//! The EESMR replica — the event-driven form of Algorithm 2.
//!
//! Steady state (rounds ≥ 3) lives here; the blame and view-change
//! machinery is in the private `view_change` module. The replica implements
//! [`eesmr_net::Actor`], so the same code runs under the discrete-event
//! simulator regardless of topology or channel pricing.
//!
//! ## Mapping to Algorithm 2
//!
//! | Paper | Here |
//! |---|---|
//! | lines 203–208 (leader proposes)      | `Replica::try_propose` |
//! | lines 209–215 (relay, lock, commit timer, next round) | `Replica::accept_proposal` |
//! | line 216 (blame on timeout)          | `TimerToken::Blame` handling |
//! | lines 220–226 (equivocation)         | `view_change::on_equivocation` |
//! | lines 227–234 (blame QC, quit view)  | `view_change::on_blame` / `on_blame_qc` |
//! | lines 235–250 (QuitView)             | `view_change::start_quit_view` … |
//! | lines 251–277 (NewView)              | `view_change::enter_new_view` … |
//! | lines 278–280 (commit rule)          | `TimerToken::Commit` handling |

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use eesmr_crypto::{Digest, KeyStore, Signature};
use eesmr_net::{
    Actor, ActorGauges, Context, NodeId, SimTime, TimerId, TraceClass, TraceEventKind,
};

use crate::block::{Block, BlockStore, Command};
use crate::config::{Config, FaultMode, Pacing};
use crate::message::{CertifiedBlock, Payload, QuorumCert, SignedMsg};
use crate::metrics::Metrics;
use crate::txpool::{AdaptiveBatcher, TxPool, WorkloadSource};

/// Timer tokens (all carry the view they were armed in; stale timers are
/// ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerToken {
    /// `T_blame(v)` — no progress within 4Δ (8Δ/6Δ during a new view).
    Blame {
        /// View the timer guards.
        view: u64,
    },
    /// `T_commit(block)` — 4Δ equivocation-free wait before committing.
    Commit {
        /// View in which the block was relayed.
        view: u64,
        /// The block to commit.
        block: Digest,
    },
    /// Δ wait after a blame certificate before executing `QuitView`.
    QuitWait {
        /// The view being quit.
        view: u64,
    },
    /// 5Δ wait inside `QuitView` to collect a commit certificate.
    ShareQc {
        /// The view being quit.
        view: u64,
    },
    /// Δ wait after sharing commit certificates before the new view.
    EnterNew {
        /// The view being quit (the new view is `view + 1`).
        view: u64,
    },
    /// The new leader's 4Δ status-collection window.
    LeaderStatus {
        /// The new view.
        view: u64,
    },
    /// The next client-transaction arrival from the attached
    /// [`WorkloadSource`] (view-independent: client traffic doesn't stop
    /// for view changes).
    Arrival,
    /// Δ flush deadline for a sub-threshold forward batch (see
    /// [`Config::forward_batch`](crate::Config)).
    ForwardFlush,
    /// Periodic check for forwarded commands that never resolved: a
    /// forward flood is fire-and-forget, so a partition (or a silently
    /// absent leader) can swallow it without any view change to trigger
    /// the usual re-queue. The retry requeues and re-forwards anything
    /// still unresolved after the retry window.
    ForwardRetry,
    /// A crashed node's restart point ([`FaultMode::Crash`] with a
    /// `restart_at_us`): re-arm timers and run the repair protocol.
    Restart,
}

/// Convenience alias for the replica's network context.
pub type Ctx<'a> = Context<'a, SignedMsg, TimerToken>;

/// View-change progress for the view currently being quit.
#[derive(Debug, Clone, Default)]
pub(crate) struct VcState {
    /// Certify signatures collected for *my* announced `B_com`.
    pub certifies: BTreeMap<NodeId, Signature>,
    /// The best (highest) commit certificate known.
    pub best_qc: Option<CertifiedBlock>,
    /// Whether `QuitView` has been scheduled (idempotence guard).
    pub quit_scheduled: bool,
    /// Whether the commit QC was already shared.
    pub shared: bool,
}

/// New-view bookkeeping (round 1–2 of the current view).
#[derive(Debug, Clone, Default)]
pub(crate) struct NewViewState {
    /// Status entries collected by the new leader, keyed by sender.
    pub status_qcs: BTreeMap<NodeId, CertifiedBlock>,
    /// Lock-status entries (optimized path), keyed by sender.
    pub status_locks: BTreeMap<NodeId, crate::message::SignedBlock>,
    /// Votes on the leader's round-1 proposal.
    pub votes: BTreeMap<NodeId, Signature>,
    /// The round-1 proposal hash this node voted for / proposed.
    pub prop_hash: Option<Digest>,
    /// The round-1 block.
    pub round1_block: Option<Digest>,
    /// Whether the leader already issued the round-2 proposal.
    pub round2_sent: bool,
}

/// An EESMR replica.
pub struct Replica {
    pub(crate) id: NodeId,
    pub(crate) config: Config,
    pub(crate) pki: Arc<KeyStore>,
    pub(crate) fault: FaultMode,

    // Book-keeping variables (§3.1).
    pub(crate) v_cur: u64,
    pub(crate) r_cur: u64,
    pub(crate) store: BlockStore,
    pub(crate) b_lock: Digest,
    pub(crate) b_lock_height: u64,
    pub(crate) b_com: Digest,
    pub(crate) b_com_height: u64,
    pub(crate) txpool: TxPool,
    pub(crate) batcher: AdaptiveBatcher,
    pub(crate) workload: Option<Box<dyn WorkloadSource>>,

    // Steady state.
    pub(crate) proposals_seen: HashMap<(u64, u64), (Digest, SignedMsg)>,
    pub(crate) relayed: HashSet<Digest>,
    pub(crate) commit_timers: Vec<(Digest, TimerId)>,
    pub(crate) blame_timer: Option<TimerId>,
    pub(crate) outstanding: usize,
    pub(crate) want_propose: bool,
    pub(crate) first_seen: HashMap<Digest, SimTime>,
    pub(crate) forward_flush_armed: bool,
    pub(crate) forward_retry_armed: bool,

    // Blame / view change.
    pub(crate) blames: BTreeMap<NodeId, Signature>,
    pub(crate) view_aborted: bool,
    pub(crate) vc: VcState,
    pub(crate) nv: NewViewState,

    // Buffers.
    pub(crate) future_views: Vec<(NodeId, SignedMsg)>,
    pub(crate) orphans: HashMap<Digest, Vec<(NodeId, SignedMsg)>>,
    pub(crate) sync_requested: HashSet<Digest>,

    // Outputs.
    pub(crate) committed_log: Vec<Digest>,
    pub(crate) metrics: Metrics,
}

impl core::fmt::Debug for Replica {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.v_cur)
            .field("round", &self.r_cur)
            .field("committed_height", &self.b_com_height)
            .field("fault", &self.fault)
            .finish()
    }
}

impl Replica {
    /// Creates a replica with the given identity and fault behaviour.
    ///
    /// # Panics
    ///
    /// Panics if the key store does not cover `config.n` nodes or the fault
    /// bound is violated.
    pub fn new(id: NodeId, config: Config, pki: Arc<KeyStore>, fault: FaultMode) -> Self {
        assert!(pki.n() >= config.n, "key store must cover all nodes");
        assert!(config.check_fault_bound(), "EESMR requires f < n/2");
        let store = BlockStore::new();
        let genesis = store.genesis_id();
        let payload = config.payload_bytes;
        let offered = config.offered_load;
        Replica {
            id,
            config,
            pki,
            fault,
            v_cur: 1,
            r_cur: 3,
            store,
            b_lock: genesis,
            b_lock_height: 0,
            b_com: genesis,
            b_com_height: 0,
            txpool: TxPool::synthetic(payload).with_offered_load(offered),
            batcher: AdaptiveBatcher::new(),
            workload: None,
            proposals_seen: HashMap::new(),
            relayed: HashSet::new(),
            commit_timers: Vec::new(),
            blame_timer: None,
            outstanding: 0,
            want_propose: false,
            first_seen: HashMap::new(),
            forward_flush_armed: false,
            forward_retry_armed: false,
            blames: BTreeMap::new(),
            view_aborted: false,
            vc: VcState::default(),
            nv: NewViewState::default(),
            future_views: Vec::new(),
            orphans: HashMap::new(),
            sync_requested: HashSet::new(),
            committed_log: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    // ------------------------------------------------------------------
    // Public inspection API.
    // ------------------------------------------------------------------

    /// This replica's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current view `v_cur`.
    pub fn current_view(&self) -> u64 {
        self.v_cur
    }

    /// Current round `r_cur`.
    pub fn current_round(&self) -> u64 {
        self.r_cur
    }

    /// The committed log (block ids in commit order, excluding genesis).
    pub fn committed(&self) -> &[Digest] {
        &self.committed_log
    }

    /// Height of the highest committed block.
    pub fn committed_height(&self) -> u64 {
        self.b_com_height
    }

    /// Protocol metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Looks up a block (committed or not).
    pub fn block(&self, id: &Digest) -> Option<&Block> {
        self.store.get(id)
    }

    /// Queues a client command for inclusion in a future block.
    pub fn submit(&mut self, cmd: Command) {
        self.txpool.submit(cmd);
    }

    /// Attaches a client-workload stream: the replica schedules its
    /// arrival events as first-class timers, injects each transaction
    /// with a birth timestamp, and disables the pool's synthetic
    /// fallback (the workload *replaces* the `offered_load` knob).
    pub fn attach_workload(&mut self, source: Box<dyn WorkloadSource>) {
        self.txpool.client_only();
        self.workload = Some(source);
    }

    /// Histogram of end-to-end (birth → local commit) latencies of
    /// workload transactions injected at this node, in microseconds.
    pub fn tx_latencies(&self) -> &eesmr_trace::hist::LogHistogram {
        self.txpool.tx_latencies()
    }

    /// High-water mark of the pending-command backlog over the run.
    pub fn peak_backlog(&self) -> usize {
        self.txpool.peak_backlog()
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The injected fault behaviour.
    pub fn fault(&self) -> FaultMode {
        self.fault
    }

    /// Whether this replica leads the current view.
    pub fn is_leader(&self) -> bool {
        self.config.leader_of(self.v_cur) == self.id
    }

    // ------------------------------------------------------------------
    // Internal helpers shared with the view-change half.
    // ------------------------------------------------------------------

    pub(crate) fn active(&self) -> bool {
        self.fault.is_active_in(self.v_cur)
    }

    /// Signs a payload for the current view, charging signing + hashing
    /// energy.
    pub(crate) fn sign(&self, payload: Payload, ctx: &mut Ctx<'_>) -> SignedMsg {
        let msg = SignedMsg::new(payload, self.v_cur, self.pki.keypair(self.id));
        ctx.meter().charge_sign(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        msg
    }

    /// Verifies a message envelope, charging verification + hashing energy.
    pub(crate) fn verify_envelope(&self, msg: &SignedMsg, ctx: &mut Ctx<'_>) -> bool {
        ctx.meter().charge_verify(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        msg.verify_sig(&self.pki)
    }

    /// Verifies a quorum certificate at the `f+1` threshold, charging for
    /// the signature checks performed.
    pub(crate) fn verify_qc(&self, qc: &QuorumCert, ctx: &mut Ctx<'_>) -> bool {
        let (ok, checks) = qc.verify(&self.pki, self.config.quorum());
        for _ in 0..checks {
            ctx.meter().charge_verify(self.pki.scheme());
        }
        ok
    }

    /// The steady-state no-progress timeout in Δ units. Algorithm 2 uses
    /// 4Δ for the streaming variant (the leader proposes continuously). In
    /// the blocking variant (§5.6) the leader only proposes after its 4Δ
    /// commit wait, so the next proposal legitimately arrives up to
    /// 4Δ + Δ after the previous one; 6Δ keeps an honest margin.
    pub(crate) fn steady_blame_multiple(&self) -> u64 {
        match self.config.pacing {
            Pacing::Blocking => 6,
            Pacing::Streaming { .. } => 4,
        }
    }

    pub(crate) fn reset_blame_timer(&mut self, multiple: u64, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.blame_timer.take() {
            ctx.cancel_timer(t);
        }
        let id =
            ctx.set_timer(self.config.delta * multiple, TimerToken::Blame { view: self.v_cur });
        self.blame_timer = Some(id);
    }

    pub(crate) fn cancel_commit_timers(&mut self, ctx: &mut Ctx<'_>) {
        for (_, t) in self.commit_timers.drain(..) {
            ctx.cancel_timer(t);
        }
        self.outstanding = 0;
    }

    /// Walks parent links from `from_block` towards genesis and returns the
    /// first missing block id, if any. Acceptance rules keep every
    /// replica's accepted chain gap-free (the induction the commit rule's
    /// `segment` walk relies on); this detects boundary gaps introduced by
    /// view-change status blocks so they can be repaired before voting.
    pub(crate) fn chain_gap(&self, from_block: &Digest) -> Option<Digest> {
        let mut cur = *from_block;
        loop {
            match self.store.get(&cur) {
                Some(b) if b.height == 0 => return None,
                Some(b) => cur = b.parent,
                None => return Some(cur),
            }
        }
    }

    /// Requests a missing block from `from` (chain synchronization, §3.2).
    pub(crate) fn request_sync(&mut self, want: Digest, from: NodeId, ctx: &mut Ctx<'_>) {
        if from == self.id || !self.sync_requested.insert(want) {
            return;
        }
        self.metrics.sync_requests += 1;
        let msg = self.sign(Payload::SyncRequest { want }, ctx);
        ctx.send_to(from, msg);
    }

    // ------------------------------------------------------------------
    // Client workload arrivals.
    // ------------------------------------------------------------------

    /// Arms the first arrival timer if a workload stream is attached
    /// (called from `on_start`).
    pub(crate) fn schedule_first_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(source) = &mut self.workload {
            if let Some(delay) = source.next_arrival_in(ctx.now().as_micros()) {
                ctx.set_timer(eesmr_net::SimDuration::from_micros(delay), TimerToken::Arrival);
            }
        }
    }

    /// One arrival event: inject the transaction (unless the closed-loop
    /// bound suppresses it), re-arm the next arrival, and either propose
    /// the fresh backlog (leader) or forward it to whoever can
    /// (everyone else).
    pub(crate) fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let Some(source) = &mut self.workload else { return };
        let now_us = ctx.now().as_micros();
        let traced = ctx.traces(TraceClass::Commit);
        let delay = self.txpool.drive_arrival(source.as_mut(), &mut self.metrics, now_us, |cmd| {
            if traced {
                ctx.trace(TraceEventKind::TxInject { tx: cmd.fingerprint() });
            }
        });
        if let Some(delay) = delay {
            ctx.set_timer(eesmr_net::SimDuration::from_micros(delay), TimerToken::Arrival);
        }
        self.try_propose(ctx);
        self.maybe_forward_backlog(ctx);
    }

    /// Forward batching: flush the backlog immediately once it holds
    /// [`Config::forward_batch`] commands; below the threshold, hold the
    /// commands and arm a Δ flush timer instead, so several arrivals
    /// share one signed forward flood. With `forward_batch ≤ 1` this
    /// degenerates to the historical forward-per-arrival behaviour.
    pub(crate) fn maybe_forward_backlog(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_leader() || !self.active() || self.view_aborted || self.txpool.is_empty() {
            return;
        }
        if self.config.forward_batch <= 1 || self.txpool.backlog() >= self.config.forward_batch {
            self.forward_backlog(ctx);
        } else if !self.forward_flush_armed {
            self.forward_flush_armed = true;
            ctx.set_timer(self.config.delta, TimerToken::ForwardFlush);
        }
    }

    /// Command forwarding: a node that is not the current proposer
    /// relays its queued client commands to the leader, so closed-loop
    /// workloads cannot strand a transaction at a node that never leads
    /// (the `tx_committed` column used to expose exactly that). Births
    /// stay here — latency settles at the origin when the block commits
    /// — and a view change re-queues anything the dead leader dropped,
    /// so the commands are re-forwarded to its successor.
    pub(crate) fn forward_backlog(&mut self, ctx: &mut Ctx<'_>) {
        // No workload gate: a node may also hold commands *forwarded to
        // it* while it led a view that has since ended — those must be
        // re-routed to the current leader too, or they strand here.
        // Synthetic pools never populate `pending`, so non-workload
        // runs stay forward-free.
        if self.is_leader() || !self.active() || self.view_aborted || self.txpool.is_empty() {
            return;
        }
        let commands = self.txpool.take_pending();
        self.metrics.tx_forwarded += commands.len() as u64;
        let leader = self.config.leader_of(self.v_cur);
        if ctx.traces(TraceClass::Commit) {
            for cmd in &commands {
                ctx.trace(TraceEventKind::TxForward { tx: cmd.fingerprint(), leader });
            }
        }
        let msg = self.sign(Payload::Forward { commands: commands.into() }, ctx);
        ctx.send_to(leader, msg);
        self.arm_forward_retry(ctx);
    }

    /// How long a forwarded command may stay unresolved before the
    /// origin re-forwards it: well past the healthy commit path (a 4Δ
    /// commit timer plus flooding hops) *and* past a full view change —
    /// ages are measured from birth, and a command born just before a
    /// blame quorum rides the quit/status/new-view sequence before its
    /// re-forward can even land — so live runs never retry. But it is
    /// bounded, so a partition that swallowed the forward heals into
    /// re-delivery instead of a stranded client.
    pub(crate) const FORWARD_RETRY_MULTIPLE: u64 = 32;

    /// Arms the retry timer if any birth-tracked command is unresolved
    /// and no retry is already pending, scheduled for the instant the
    /// earliest unresolved command becomes retry-eligible (its age
    /// crosses the window, or its per-command cooldown from a previous
    /// retry expires). A fixed 32Δ period would let a command born just
    /// after a fire sit unresolved for almost two full windows — long
    /// enough to strand a closed-loop injector past a partition heal.
    /// Node-local state only — the timer's schedule depends on nothing
    /// a shard boundary could reorder.
    pub(crate) fn arm_forward_retry(&mut self, ctx: &mut Ctx<'_>) {
        if self.forward_retry_armed {
            return;
        }
        let window_us = self.config.delta.as_micros() * Self::FORWARD_RETRY_MULTIPLE;
        let Some(due_us) = self.txpool.next_retry_due_us(window_us) else {
            return;
        };
        let delay_us = due_us.saturating_sub(ctx.now().as_micros()).max(1);
        self.forward_retry_armed = true;
        ctx.set_timer(eesmr_net::SimDuration::from_micros(delay_us), TimerToken::ForwardRetry);
    }

    /// The retry timer: requeue commands that have been unresolved for a
    /// full retry window (younger in-flight commands are presumed to be
    /// riding a block toward commit) and forward them to the current
    /// leader again. Re-arms itself while anything is still in flight.
    pub(crate) fn on_forward_retry(&mut self, ctx: &mut Ctx<'_>) {
        self.forward_retry_armed = false;
        if !self.active() || self.view_aborted {
            return;
        }
        let age_us = self.config.delta.as_micros() * Self::FORWARD_RETRY_MULTIPLE;
        if self.txpool.requeue_stale(ctx.now().as_micros(), age_us) {
            self.metrics.forward_retries += 1;
            if self.is_leader() {
                self.try_propose(ctx);
            } else {
                self.forward_backlog(ctx);
            }
        }
        self.arm_forward_retry(ctx);
    }

    /// Receives forwarded client commands: queue them and, if this node
    /// is the proposer, get them into a block. A forward that raced a
    /// view change (addressed to a leader that no longer leads) is
    /// re-routed straight to the current leader instead of stranding —
    /// each hop targets the receiver's *current* leader, so the chain
    /// settles as soon as views converge.
    pub(crate) fn on_forward(&mut self, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        if !self.verify_envelope(&msg, ctx) {
            return;
        }
        let Payload::Forward { commands } = &msg.payload else { return };
        for cmd in commands.iter().cloned() {
            self.txpool.submit(cmd);
        }
        if self.is_leader() {
            self.try_propose(ctx);
        } else {
            self.forward_backlog(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Steady state: proposing.
    // ------------------------------------------------------------------

    /// Leader: propose for the current round if pacing allows
    /// (Algorithm 2, lines 203–208).
    pub(crate) fn try_propose(&mut self, ctx: &mut Ctx<'_>) {
        if !self.is_leader() || !self.active() || self.view_aborted || self.r_cur < 3 {
            return;
        }
        let allowed = match self.config.pacing {
            Pacing::Blocking => self.outstanding == 0,
            Pacing::Streaming { max_outstanding } => self.outstanding < max_outstanding,
        };
        if !allowed {
            self.want_propose = true;
            return;
        }
        self.want_propose = false;
        let round = self.r_cur;
        let parent =
            self.store.get(&self.b_lock).expect("locked block is always present locally").clone();
        let want = self.batcher.next_size(self.txpool.backlog(), self.config.batch_policy);
        let batch = self.txpool.next_batch(want);
        self.metrics.record_batch_fill(batch.len(), self.config.batch_policy.max_size());
        let block = Block::extending(&parent, self.v_cur, round, batch);
        ctx.meter().charge_hash(block.wire_size());
        if ctx.traces(TraceClass::Commit) {
            let block_fp = block.fingerprint();
            for cmd in &block.payload {
                ctx.trace(TraceEventKind::TxBatched { tx: cmd.fingerprint(), block: block_fp });
            }
            ctx.trace(TraceEventKind::Propose { block: block_fp, view: self.v_cur, round });
        }
        self.store.insert(block.clone());
        let msg = self.sign(Payload::Propose { block: block.clone(), round, justify: None }, ctx);
        self.relayed.insert(block.id());
        ctx.multicast(msg);

        if let FaultMode::Equivocate { in_view } = self.fault {
            if in_view == self.v_cur && !self.config.crash_only {
                // Conflicting sibling for the same round: equivocation.
                let twin = Block::extending(
                    &parent,
                    self.v_cur,
                    round,
                    vec![Command::synthetic(u64::MAX, self.config.payload_bytes)],
                );
                self.store.insert(twin.clone());
                let twin_msg =
                    self.sign(Payload::Propose { block: twin, round, justify: None }, ctx);
                ctx.multicast(twin_msg);
            }
        }
    }

    // ------------------------------------------------------------------
    // Steady state: receiving proposals.
    // ------------------------------------------------------------------

    /// Handles a `Propose` (steady-state rounds ≥ 3 or new-view round 2).
    pub(crate) fn on_propose(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::Propose { block, round, justify } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        let block_id = block.id();
        // Relay-once flooding delivers each proposal up to D_in times; an
        // exact duplicate of an already-seen proposal needs no fresh
        // signature check (dedup by content hash, as a real node would).
        let key = (msg.view, *round);
        if let Some((seen_id, _)) = self.proposals_seen.get(&key) {
            let processed =
                self.relayed.contains(&block_id) || msg.view < self.v_cur || *round < self.r_cur;
            if *seen_id == block_id && processed {
                return;
            }
        }
        // Proposals must be leader-signed for their view. Under the §3.5
        // checkpoint optimization, non-checkpoint rounds are accepted
        // optimistically without the signature check — the hash-chained
        // checkpoint round authenticates them retroactively.
        if msg.signer != self.config.leader_of(msg.view) {
            self.metrics.proposals_rejected += 1;
            return;
        }
        if self.config.round_needs_verification(*round) && !self.verify_envelope(&msg, ctx) {
            self.metrics.proposals_rejected += 1;
            return;
        }
        // Equivocation detection works for any round of the current view
        // (lines 220–226) — "not just the latest round".
        if let Some((seen_id, seen_msg)) = self.proposals_seen.get(&key) {
            if *seen_id != block_id {
                if msg.view == self.v_cur && !self.config.crash_only {
                    let first = seen_msg.clone();
                    self.on_equivocation(first, msg, ctx);
                }
                return;
            }
        } else {
            self.proposals_seen.insert(key, (block_id, msg.clone()));
        }
        if msg.view < self.v_cur {
            return;
        }

        if *round == 1 {
            // Round-1 content travels as NewViewProposal, never Propose.
            self.metrics.proposals_rejected += 1;
            return;
        }
        if *round == 2 {
            self.on_round2_propose(from, msg.clone(), ctx);
            return;
        }

        // Steady state (round ≥ 3). Proposals for rounds ahead of r_cur are
        // processed as soon as their parent chain is known: relaying a
        // block implicitly votes for all its ancestors (§3.3), so a node
        // that missed a round catches up via chain sync instead of
        // stalling.
        if *round < self.r_cur || self.view_aborted || self.r_cur < 3 {
            return;
        }
        if justify.is_some() {
            self.metrics.proposals_rejected += 1;
            return; // steady proposals carry no certificate
        }
        if !self.store.contains(&block.parent) {
            let parent = block.parent;
            self.orphans.entry(parent).or_default().push((from, msg));
            self.request_sync(parent, from, ctx);
            return;
        }
        // LockCompare (line 121): only accept extensions of the lock.
        let block = block.clone();
        self.store.insert(block.clone());
        if !self.store.extends(&block_id, &self.b_lock) {
            self.metrics.proposals_rejected += 1;
            return;
        }
        self.accept_proposal(block, msg, ctx);
    }

    /// Lines 209–215: vote in the head — relay once, lock, arm the commit
    /// timer, advance the round.
    fn accept_proposal(&mut self, block: Block, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let block_id = block.id();
        ctx.meter().charge_hash(block.wire_size());
        self.first_seen.entry(block_id).or_insert(ctx.now());

        // Relay once (line 213) — the implicit vote. A withholding node
        // processes and commits but never relays (starving quorum-less
        // EESMR of nothing, but starving the vote-counting baselines); a
        // storming node re-multicasts extra copies that the receivers'
        // content dedup absorbs while traffic and energy inflate.
        if self.relayed.insert(block_id) && self.fault.relays_in(self.v_cur) {
            self.metrics.proposals_relayed += 1;
            if ctx.traces(TraceClass::Commit) {
                ctx.trace(TraceEventKind::Relay { block: crate::block::fingerprint(&block_id) });
            }
            for _ in 0..self.fault.storm_repeats_in(self.v_cur) {
                ctx.multicast(msg.clone());
            }
            ctx.multicast(msg);
        }

        // Update the lock (line 212).
        self.b_lock = block_id;
        self.b_lock_height = block.height;

        // Arm T_commit(B) = 4Δ (line 214).
        let t = ctx.set_timer(
            self.config.delta * 4,
            TimerToken::Commit { view: self.v_cur, block: block_id },
        );
        self.commit_timers.push((block_id, t));
        self.outstanding += 1;

        // NextRound (line 215) — jumps over any rounds this node missed.
        self.r_cur = self.r_cur.max(block.round + 1);
        let m = self.steady_blame_multiple();
        self.reset_blame_timer(m, ctx);
        self.try_propose(ctx);
    }

    /// The commit rule (lines 278–280): `T_commit` expired without
    /// equivocation — commit the block and its ancestors.
    fn on_commit_timer(&mut self, view: u64, block_id: Digest, ctx: &mut Ctx<'_>) {
        self.commit_timers.retain(|(b, _)| *b != block_id);
        if view != self.v_cur || self.view_aborted {
            return;
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        self.commit_block(block_id, ctx);
        if self.want_propose {
            self.try_propose(ctx);
        }
    }

    /// Commits `block_id` and all uncommitted ancestors.
    pub(crate) fn commit_block(&mut self, block_id: Digest, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(block) = self.store.get(&block_id) else { return };
        if block.height <= self.b_com_height {
            return; // already covered
        }
        let Some(segment) = self.store.segment(&self.b_com, &block_id) else {
            // Gap or fork relative to B_com — cannot happen for correct
            // replicas (commit safety); refuse rather than fork.
            return;
        };
        for id in segment {
            self.committed_log.push(id);
            self.metrics.blocks_committed += 1;
            if let Some(seen) = self.first_seen.remove(&id) {
                self.metrics.record_commit_latency(now.since(seen));
            }
            let block = self.store.get(&id).expect("segment blocks are stored").clone();
            if ctx.traces(TraceClass::Commit) {
                ctx.trace(TraceEventKind::Commit {
                    block: crate::block::fingerprint(&id),
                    height: block.height,
                });
            }
            self.txpool.remove_committed(&block, now);
        }
        self.b_com = block_id;
        self.b_com_height = self.store.get(&block_id).expect("committed block stored").height;
        self.metrics.committed_height = self.b_com_height;
    }

    // ------------------------------------------------------------------
    // Chain synchronization.
    // ------------------------------------------------------------------

    pub(crate) fn on_sync_request(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::SyncRequest { want } = &msg.payload else { return };
        if !self.verify_envelope(&msg, ctx) {
            return;
        }
        let blocks: Vec<Block> = self.store.ancestors(want, 256).into_iter().cloned().collect();
        if blocks.is_empty() {
            return;
        }
        let reply = self.sign(Payload::SyncResponse { blocks }, ctx);
        ctx.send_to(msg.signer, reply);
    }

    pub(crate) fn on_sync_response(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::SyncResponse { blocks } = msg.payload else { return };
        // Blocks are self-certifying (hash-linked); no signature needed.
        let mut unblocked = Vec::new();
        for block in blocks {
            ctx.meter().charge_hash(block.wire_size());
            let id = self.store.insert(block);
            self.sync_requested.remove(&id);
            if let Some(waiting) = self.orphans.remove(&id) {
                unblocked.extend(waiting);
            }
        }
        for (from, orphan_msg) in unblocked {
            self.on_message(from, orphan_msg, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Crash-recovery repair protocol.
    // ------------------------------------------------------------------

    /// Whether the node is powered on (false inside a
    /// [`FaultMode::Crash`] outage window).
    pub(crate) fn online(&self, ctx: &Ctx<'_>) -> bool {
        self.fault.online(ctx.now().as_micros())
    }

    /// The restart point of a recovering crash fault: the outage wiped
    /// volatile per-view state (in-flight timers died with the process),
    /// but the committed prefix is durable. Re-arm the protocol timers
    /// and ask the network for everything above the durable height.
    pub(crate) fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_commit_timers(ctx);
        self.want_propose = false;
        self.forward_flush_armed = false;
        self.forward_retry_armed = false;
        let m = self.steady_blame_multiple();
        self.reset_blame_timer(m, ctx);
        self.schedule_first_arrival(ctx);
        self.metrics.repair_requests += 1;
        let msg = self.sign(Payload::Repair { from_height: self.b_com_height }, ctx);
        ctx.flood(msg);
    }

    /// Serves a recovering peer: reply with the committed-chain suffix
    /// above its durable height, plus our current view so it can rejoin.
    pub(crate) fn on_repair(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::Repair { from_height } = msg.payload else { return };
        if !self.verify_envelope(&msg, ctx) || self.b_com_height <= from_height {
            return;
        }
        // Walk the committed chain down to the requested height, capped
        // like chain sync; a still-lagging requester re-requests.
        let mut blocks = Vec::new();
        let mut cur = self.b_com;
        while let Some(b) = self.store.get(&cur) {
            if b.height <= from_height || blocks.len() >= 256 {
                break;
            }
            blocks.push(b.clone());
            cur = b.parent;
        }
        blocks.reverse();
        if blocks.is_empty() {
            return;
        }
        self.metrics.repairs_served += 1;
        let reply = self.sign(Payload::RepairReply { blocks, view: self.v_cur }, ctx);
        ctx.send_to(msg.signer, reply);
    }

    /// A committed-chain suffix from a peer: verify the hash links, commit
    /// it, and adopt the network's view so steady state can resume here.
    pub(crate) fn on_repair_reply(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::RepairReply { blocks, view } = msg.payload else { return };
        // The suffix is self-certifying: hash-linked, oldest first, and
        // rooted in a block we already hold. Reject anything else.
        let Some(first) = blocks.first() else { return };
        if !self.store.contains(&first.parent)
            || blocks.windows(2).any(|w| w[1].parent != w[0].id())
        {
            return;
        }
        let tip = blocks.last().expect("non-empty").clone();
        let mut unblocked = Vec::new();
        for block in blocks {
            ctx.meter().charge_hash(block.wire_size());
            let id = self.store.insert(block);
            self.sync_requested.remove(&id);
            if let Some(waiting) = self.orphans.remove(&id) {
                unblocked.extend(waiting);
            }
        }
        let tip_id = tip.id();
        self.commit_block(tip_id, ctx);
        if tip.height > self.b_lock_height {
            self.b_lock = tip_id;
            self.b_lock_height = tip.height;
        }
        self.adopt_view(view, ctx);
        for (from, orphan_msg) in unblocked {
            self.on_message(from, orphan_msg, ctx);
        }
    }

    /// Jump straight to `view` after a repair (no view-change ceremony —
    /// the network already ran it while this node was down). Per-view
    /// volatile state is reset; buffered future-view traffic replays.
    pub(crate) fn adopt_view(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view <= self.v_cur {
            return;
        }
        self.v_cur = view;
        self.r_cur = 3;
        self.view_aborted = false;
        self.blames.clear();
        self.vc = Default::default();
        self.nv = Default::default();
        self.want_propose = false;
        self.cancel_commit_timers(ctx);
        self.txpool.requeue_unresolved();
        let m = self.steady_blame_multiple();
        self.reset_blame_timer(m, ctx);
        self.forward_backlog(ctx);
        self.drain_future_views(ctx);
    }
}

impl Actor for Replica {
    type Msg = SignedMsg;
    type Timer = TimerToken;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Arm the restart point before any liveness gate: a node that is
        // crashed (or crashes later) must still wake up at its restart
        // time even though every other handler ignores it while offline.
        if let Some(restart) = self.fault.restart_at_us() {
            ctx.set_timer(eesmr_net::SimDuration::from_micros(restart), TimerToken::Restart);
        }
        if !self.active() || !self.online(ctx) {
            return;
        }
        let m = self.steady_blame_multiple();
        self.reset_blame_timer(m, ctx);
        self.schedule_first_arrival(ctx);
        self.try_propose(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        if !self.active() || !self.online(ctx) {
            return;
        }
        match msg.payload {
            Payload::Propose { .. } => self.on_propose(from, msg, ctx),
            Payload::Blame { .. } => self.on_blame(from, msg, ctx),
            Payload::BlameQc(_) => self.on_blame_qc(from, msg, ctx),
            Payload::CommitUpdate { .. } => self.on_commit_update(from, msg, ctx),
            Payload::Certify { .. } => self.on_certify(from, msg, ctx),
            Payload::CommitQc(_) => self.on_commit_qc(from, msg, ctx),
            Payload::NewViewProposal { .. } => self.on_new_view_proposal(from, msg, ctx),
            Payload::NewViewVote { .. } => self.on_new_view_vote(from, msg, ctx),
            Payload::LockStatus { .. } => self.on_lock_status(from, msg, ctx),
            Payload::SyncRequest { .. } => self.on_sync_request(from, msg, ctx),
            Payload::SyncResponse { .. } => self.on_sync_response(from, msg, ctx),
            Payload::Forward { .. } => self.on_forward(msg, ctx),
            Payload::Repair { .. } => self.on_repair(from, msg, ctx),
            Payload::RepairReply { .. } => self.on_repair_reply(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        // The restart timer fires exactly when the outage ends, so the
        // online gate below admits it; every timer armed before the crash
        // that fires *during* the outage dies here, like a real process.
        if !self.active() || !self.online(ctx) {
            return;
        }
        match token {
            TimerToken::Blame { view } => self.on_blame_timeout(view, ctx),
            TimerToken::Commit { view, block } => self.on_commit_timer(view, block, ctx),
            TimerToken::QuitWait { view } => self.on_quit_wait(view, ctx),
            TimerToken::ShareQc { view } => self.on_share_qc(view, ctx),
            TimerToken::EnterNew { view } => self.on_enter_new(view, ctx),
            TimerToken::LeaderStatus { view } => self.on_leader_status(view, ctx),
            TimerToken::Arrival => self.on_arrival(ctx),
            TimerToken::ForwardFlush => {
                self.forward_flush_armed = false;
                self.forward_backlog(ctx);
            }
            TimerToken::ForwardRetry => self.on_forward_retry(ctx),
            TimerToken::Restart => self.on_restart(ctx),
        }
    }

    fn gauges(&self) -> ActorGauges {
        // Every value is read from this replica's own state, so the
        // sampled series is invariant across shard/worker/scheduler
        // choices (the telemetry determinism contract).
        ActorGauges {
            tx_in_flight: self.txpool.in_flight() as u64,
            pool_backlog: self.txpool.backlog() as u64,
            forward_retries: self.metrics.forward_retries,
            batch_fill_pct: self.metrics.last_batch_fill_pct as f64,
            view: self.v_cur,
        }
    }
}
