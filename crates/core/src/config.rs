//! Protocol configuration.

use eesmr_net::SimDuration;

/// How leaders are assigned to views (`Leader(v)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderPolicy {
    /// `Leader(v) = (v − 1) mod n` — "can be round-robin for simplicity".
    RoundRobin,
    /// Pseudo-random from a shared seed — "for expected constant-latency it
    /// is required that the leaders are chosen randomly".
    Seeded(u64),
}

/// How the proposer sizes each block's command batch.
///
/// `Fixed` reproduces the paper's evaluation (a constant `max_batch`
/// cap); `Adaptive` grows or shrinks the batch from the observed txpool
/// backlog, closing half the gap to `target_fill_pct` percent of the
/// backlog per proposal (clamped to `[min, max]`). All-integer state, so
/// runs stay bit-deterministic. See
/// [`AdaptiveBatcher`](crate::txpool::AdaptiveBatcher) for the
/// controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchPolicy {
    /// Every proposal takes up to this many commands.
    Fixed(usize),
    /// Batch size tracks the observed pool backlog.
    Adaptive {
        /// Smallest batch the controller will propose.
        min: usize,
        /// Largest batch the controller will propose.
        max: usize,
        /// Percent of the observed backlog to aim for per proposal.
        target_fill_pct: u32,
    },
}

impl BatchPolicy {
    /// The paper's default: a fixed 64-command cap.
    pub const DEFAULT: BatchPolicy = BatchPolicy::Fixed(64);

    /// The largest batch this policy can ever cut — the denominator of
    /// the batch-fill-percent gauge and report columns.
    pub fn max_size(&self) -> usize {
        match self {
            BatchPolicy::Fixed(max) => *max,
            BatchPolicy::Adaptive { max, .. } => *max,
        }
    }

    /// A short label for scenario names and report rows, e.g. `fixed64`
    /// or `adaptive4..256@80%`.
    pub fn label(&self) -> String {
        match self {
            BatchPolicy::Fixed(max) => format!("fixed{max}"),
            BatchPolicy::Adaptive { min, max, target_fill_pct } => {
                format!("adaptive{min}..{max}@{target_fill_pct}%")
            }
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::DEFAULT
    }
}

/// Proposal pacing for the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// The blocking variant (§5.6): one outstanding (uncommitted) block at
    /// a time. This is the variant the paper evaluates on the testbed.
    Blocking,
    /// The streaming variant: up to `max_outstanding` blocks in flight
    /// ("the leader continuously streams proposals", §3.3). The bound keeps
    /// memory finite, which the paper notes is required in practice.
    Streaming {
        /// Maximum uncommitted proposals in flight.
        max_outstanding: usize,
    },
}

/// Byzantine behaviour injected into a replica (fault injection for the
/// evaluation scenarios; honest replicas use [`FaultMode::Honest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Follows the protocol.
    Honest,
    /// Stops participating entirely once `from_view` starts (models both
    /// crash faults and the paper's "no progress" stalling leader).
    Silent {
        /// First view in which the node is silent.
        from_view: u64,
    },
    /// When leader of `in_view`, equivocates: proposes two conflicting
    /// blocks for the same round.
    Equivocate {
        /// The view in which to equivocate.
        in_view: u64,
    },
    /// Vote withholding: from `from_view` on, the node keeps processing
    /// and committing but never relays its acceptance (EESMR's relay-once
    /// multicast / Sync HotStuff's vote), starving quorum formation.
    Withhold {
        /// First view in which votes are withheld.
        from_view: u64,
    },
    /// Duplicate/storm flooding: from `from_view` on, every proposal the
    /// node relays is re-multicast `repeats` extra times. Flood
    /// deduplication absorbs the copies, but traffic and energy inflate.
    Storm {
        /// First view in which the node storms.
        from_view: u64,
        /// Extra relay copies per accepted proposal.
        repeats: u32,
    },
    /// Churn / crash-recovery: the node drops offline at `at_us` and, if
    /// `restart_at_us` is set, comes back then and runs the repair
    /// protocol to catch up before rejoining.
    Crash {
        /// Simulated time (µs) at which the node goes dark.
        at_us: u64,
        /// Simulated time (µs) at which it restarts (`None` = stays down).
        restart_at_us: Option<u64>,
    },
}

impl FaultMode {
    /// Whether this node behaves correctly in `view` (view-keyed faults
    /// only; time-keyed [`FaultMode::Crash`] is judged by [`Self::online`]).
    pub fn is_active_in(&self, view: u64) -> bool {
        match self {
            FaultMode::Honest
            | FaultMode::Equivocate { .. }
            | FaultMode::Withhold { .. }
            | FaultMode::Storm { .. }
            | FaultMode::Crash { .. } => true,
            FaultMode::Silent { from_view } => view < *from_view,
        }
    }

    /// Whether the node is powered on at simulated time `now_us`
    /// (always true except inside a [`FaultMode::Crash`] outage window).
    pub fn online(&self, now_us: u64) -> bool {
        match self {
            FaultMode::Crash { at_us, restart_at_us } => {
                now_us < *at_us || restart_at_us.is_some_and(|r| now_us >= r)
            }
            _ => true,
        }
    }

    /// Whether the node relays/votes for proposals it accepts in `view`
    /// (false only for an active [`FaultMode::Withhold`]).
    pub fn relays_in(&self, view: u64) -> bool {
        match self {
            FaultMode::Withhold { from_view } => view < *from_view,
            _ => true,
        }
    }

    /// Extra relay copies to emit per accepted proposal in `view`
    /// (non-zero only for an active [`FaultMode::Storm`]).
    pub fn storm_repeats_in(&self, view: u64) -> u32 {
        match self {
            FaultMode::Storm { from_view, repeats } if view >= *from_view => *repeats,
            _ => 0,
        }
    }

    /// The restart time of a recovering [`FaultMode::Crash`], if any.
    pub fn restart_at_us(&self) -> Option<u64> {
        match self {
            FaultMode::Crash { restart_at_us, .. } => *restart_at_us,
            _ => None,
        }
    }
}

/// Static protocol configuration shared by all replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Number of nodes `n`.
    pub n: usize,
    /// Fault bound `f < n/2`.
    pub f: usize,
    /// The synchrony bound Δ (all Algorithm 2 timers are multiples of it).
    pub delta: SimDuration,
    /// Target payload bytes per block (`|b_i|` in §5.6).
    pub payload_bytes: usize,
    /// How the proposer sizes each batch.
    pub batch_policy: BatchPolicy,
    /// Synthetic-workload offered load: how many commands the txpool
    /// fabricates per proposal when no client commands are queued (the
    /// paper's fixed `|b_i|` workloads use 1).
    pub offered_load: usize,
    /// Forward-batching threshold for non-leading nodes: the backlog is
    /// relayed to the leader as soon as it holds this many commands, or
    /// after a Δ flush timer, whichever comes first. `1` (the default)
    /// forwards on every arrival — the historical behaviour. Larger
    /// values aggregate several one-command forward floods into one
    /// signed message, cutting forwarding traffic (and the re-forward
    /// double counts around view changes) at the cost of up to Δ extra
    /// queueing latency.
    pub forward_batch: usize,
    /// Leader assignment.
    pub leader_policy: LeaderPolicy,
    /// Leader pacing (the paper's evaluation uses the blocking variant).
    pub pacing: Pacing,
    /// Crash-fault-only variant: removes the equivocation handlers
    /// (Algorithm 2 lines 220/224 — see §3.2).
    pub crash_only: bool,
    /// Equivocation-scenario speedup (§3.5): a verified equivocation proof
    /// lets nodes quit the view without building a blame certificate.
    pub opt_equivocation_speedup: bool,
    /// Optimized no-progress view change (§5.6): the status carries only
    /// signed locked blocks instead of freshly built commit certificates.
    pub opt_lock_only_status: bool,
    /// Batching / checkpoint optimization (§3.5): nodes optimistically
    /// pre-commit proposals *without* verifying the leader signature, and
    /// fully verify only every `c`-th round. Hash chaining makes the
    /// checkpoint verification retroactively authenticate the whole epoch;
    /// a failed checkpoint falls back to the standard blame path, so the
    /// worst case equals plain EESMR while the correct-leader case saves
    /// `(c−1)/c` of the verification energy.
    pub checkpoint_interval: Option<u64>,
}

impl Config {
    /// A configuration for `n` nodes tolerating `f = ⌈n/2⌉ − 1` faults with
    /// the given Δ, matching Algorithm 2 defaults (no optimizations).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, delta: SimDuration) -> Self {
        assert!(n >= 2, "SMR needs at least two nodes");
        Config {
            n,
            f: n.div_ceil(2) - 1,
            delta,
            payload_bytes: 16,
            batch_policy: BatchPolicy::DEFAULT,
            offered_load: 1,
            forward_batch: 1,
            leader_policy: LeaderPolicy::RoundRobin,
            pacing: Pacing::Blocking,
            crash_only: false,
            opt_equivocation_speedup: false,
            opt_lock_only_status: false,
            checkpoint_interval: None,
        }
    }

    /// Whether the proposal for `round` needs a full signature check under
    /// the checkpoint optimization (always true when disabled).
    pub fn round_needs_verification(&self, round: u64) -> bool {
        match self.checkpoint_interval {
            None => true,
            // Verify the first steady round of a view and every c-th round.
            // `is_multiple_of(0)` would silently skip verification forever;
            // a zero interval is a misconfiguration and must fail loudly.
            Some(c) => {
                assert!(c > 0, "checkpoint interval must be positive");
                round <= 3 || round.is_multiple_of(c)
            }
        }
    }

    /// The quorum size `f + 1`.
    pub fn quorum(&self) -> usize {
        self.f + 1
    }

    /// `Leader(v)` — the leader of view `v ≥ 1`.
    pub fn leader_of(&self, view: u64) -> eesmr_net::NodeId {
        match self.leader_policy {
            LeaderPolicy::RoundRobin => (((view - 1) as usize) % self.n) as eesmr_net::NodeId,
            LeaderPolicy::Seeded(seed) => {
                let d = eesmr_crypto::Digest::of_parts(&[
                    b"leader",
                    &seed.to_le_bytes(),
                    &view.to_le_bytes(),
                ]);
                (d.to_u64() % self.n as u64) as eesmr_net::NodeId
            }
        }
    }

    /// Validates the fault bound `f < n/2` required for safety.
    pub fn check_fault_bound(&self) -> bool {
        2 * self.f < self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> Config {
        Config::new(n, SimDuration::from_millis(10))
    }

    #[test]
    fn default_f_is_minority() {
        assert_eq!(cfg(2).f, 0);
        assert_eq!(cfg(3).f, 1);
        assert_eq!(cfg(4).f, 1);
        assert_eq!(cfg(5).f, 2);
        assert_eq!(cfg(10).f, 4);
        assert_eq!(cfg(13).f, 6);
        for n in 2..20 {
            assert!(cfg(n).check_fault_bound(), "n={n}");
        }
    }

    #[test]
    fn round_robin_cycles() {
        let c = cfg(4);
        assert_eq!(c.leader_of(1), 0);
        assert_eq!(c.leader_of(2), 1);
        assert_eq!(c.leader_of(5), 0);
    }

    #[test]
    fn seeded_leader_is_deterministic_and_in_range() {
        let mut c = cfg(7);
        c.leader_policy = LeaderPolicy::Seeded(11);
        for v in 1..50 {
            let l = c.leader_of(v);
            assert!((l as usize) < 7);
            assert_eq!(l, c.leader_of(v), "deterministic");
        }
        // Different views spread across nodes.
        let distinct: std::collections::BTreeSet<_> = (1..50).map(|v| c.leader_of(v)).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn fault_mode_activity() {
        assert!(FaultMode::Honest.is_active_in(99));
        let silent = FaultMode::Silent { from_view: 2 };
        assert!(silent.is_active_in(1));
        assert!(!silent.is_active_in(2));
        assert!(FaultMode::Equivocate { in_view: 1 }.is_active_in(1));
    }

    #[test]
    fn withhold_processes_but_does_not_relay() {
        let w = FaultMode::Withhold { from_view: 2 };
        assert!(w.is_active_in(1) && w.relays_in(1));
        // Withholding nodes stay protocol-active — only the relay stops.
        assert!(w.is_active_in(2) && !w.relays_in(2));
        // Honest and Storm nodes always relay.
        assert!(FaultMode::Honest.relays_in(7));
        assert!(FaultMode::Storm { from_view: 1, repeats: 3 }.relays_in(7));
    }

    #[test]
    fn storm_repeats_only_once_active() {
        let s = FaultMode::Storm { from_view: 3, repeats: 4 };
        assert_eq!(s.storm_repeats_in(2), 0);
        assert_eq!(s.storm_repeats_in(3), 4);
        assert_eq!(FaultMode::Honest.storm_repeats_in(3), 0);
        assert!(s.is_active_in(99), "storming nodes stay protocol-active");
    }

    #[test]
    fn crash_window_and_restart() {
        let perm = FaultMode::Crash { at_us: 100, restart_at_us: None };
        assert!(perm.online(99));
        assert!(!perm.online(100));
        assert!(!perm.online(u64::MAX));
        assert_eq!(perm.restart_at_us(), None);

        let churn = FaultMode::Crash { at_us: 100, restart_at_us: Some(500) };
        assert!(churn.online(0));
        assert!(!churn.online(100));
        assert!(!churn.online(499));
        assert!(churn.online(500));
        assert_eq!(churn.restart_at_us(), Some(500));
        // Crash is time-keyed, never view-keyed.
        assert!(churn.is_active_in(42));
        // Non-crash modes are always online.
        assert!(FaultMode::Silent { from_view: 1 }.online(u64::MAX));
    }

    #[test]
    fn quorum_is_f_plus_one() {
        assert_eq!(cfg(10).quorum(), 5);
        assert_eq!(cfg(13).quorum(), 7);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_rejected() {
        let _ = cfg(1);
    }
}
