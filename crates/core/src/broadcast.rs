//! One-shot Byzantine Broadcast via the EESMR technique (paper §3.5,
//! "Extensions to BA and BB").
//!
//! The paper observes that "lack of equivocation within 4Δ" almost gives
//! Byzantine Broadcast, but naively a Byzantine sender can equivocate so
//! that only *some* correct nodes accept, and nobody can ever terminate —
//! a run with a correct sender is indistinguishable from one where
//! equivocation is still in flight. The fix (following Abraham et al.) is
//! a **termination certificate**: after the 4Δ equivocation-free window a
//! node signs a commit vote; `f+1` such votes prove at least one correct
//! node saw a clean window, and the certificate itself is re-broadcast so
//! every correct node terminates with the same value.
//!
//! Per broadcast the steady path costs one sender signature plus one
//! commit-vote signature per node — certificates appear only in this final
//! round, so "the benefits of such an approach … is limited to the
//! reduction of usage of certificates in the first iteration only" (§3.5).
//!
//! The module is self-contained (its own message type) and runs on the
//! same simulated network as the SMR protocols.

use std::collections::BTreeMap;
use std::sync::Arc;

use eesmr_crypto::{Digest, KeyStore, Signature};
use eesmr_net::{Actor, Context, Message, NodeId, SimDuration, TimerId};

use crate::message::{signing_bytes, MsgKind, QuorumCert};

/// Byzantine Broadcast messages.
#[derive(Debug, Clone, PartialEq)]
pub enum BbPayload {
    /// The designated sender's value.
    Value {
        /// The broadcast payload.
        value: Vec<u8>,
    },
    /// A commit vote: the signer saw `value_digest` and 4Δ of silence.
    CommitVote {
        /// Digest of the voted value.
        value_digest: Digest,
    },
    /// A termination certificate (f+1 commit votes) plus the value.
    Terminate {
        /// The certificate.
        cert: QuorumCert,
        /// The certified value.
        value: Vec<u8>,
    },
}

/// A signed Byzantine Broadcast message.
#[derive(Debug, Clone, PartialEq)]
pub struct BbMsg {
    /// Payload.
    pub payload: BbPayload,
    /// Sender.
    pub signer: NodeId,
    /// Signature over the payload digest.
    pub sig: Signature,
}

impl BbPayload {
    fn signing_digest(&self) -> Digest {
        match self {
            BbPayload::Value { value } => Digest::of_parts(&[b"bb-value", value]),
            BbPayload::CommitVote { value_digest } => *value_digest,
            BbPayload::Terminate { cert, .. } => {
                use eesmr_crypto::Hashable as _;
                cert.digest()
            }
        }
    }

    pub(crate) fn kind(&self) -> MsgKind {
        match self {
            BbPayload::Value { .. } => MsgKind::Propose,
            BbPayload::CommitVote { .. } => MsgKind::Certify,
            BbPayload::Terminate { .. } => MsgKind::CommitQc,
        }
    }
}

impl BbMsg {
    fn new(payload: BbPayload, pki: &KeyStore, id: NodeId) -> Self {
        let bytes = signing_bytes(payload.kind(), 0, &payload.signing_digest());
        BbMsg { sig: pki.keypair(id).sign(&bytes), signer: id, payload }
    }

    fn verify_sig(&self, pki: &KeyStore) -> bool {
        if self.sig.signer() != self.signer {
            return false;
        }
        let bytes = signing_bytes(self.payload.kind(), 0, &self.payload.signing_digest());
        pki.verify(&bytes, &self.sig)
    }
}

impl Message for BbMsg {
    fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }

    fn flood_key(&self) -> u64 {
        Digest::of_parts(&[
            &[self.payload.kind() as u8],
            &self.signer.to_le_bytes(),
            self.payload.signing_digest().as_bytes(),
        ])
        .to_u64()
    }

    fn phase(&self) -> eesmr_energy::EnergyPhase {
        use eesmr_energy::EnergyPhase;
        match &self.payload {
            BbPayload::Value { .. } => EnergyPhase::Propose,
            BbPayload::CommitVote { .. } => EnergyPhase::Vote,
            BbPayload::Terminate { .. } => EnergyPhase::Commit,
        }
    }
}

/// Timer tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbTimer {
    /// The 4Δ equivocation-free window before commit-voting.
    CommitWindow,
}

/// Outcome of a broadcast at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbOutput {
    /// Terminated with the sender's value.
    Value(Vec<u8>),
    /// Detected sender equivocation (provably faulty sender).
    SenderFaulty,
}

/// One Byzantine Broadcast participant.
pub struct BbNode {
    id: NodeId,
    n: usize,
    f: usize,
    sender: NodeId,
    delta: SimDuration,
    pki: Arc<KeyStore>,
    /// For the designated sender: the value(s) to broadcast. Giving two
    /// values makes the sender a (fault-injected) equivocator.
    inputs: Vec<Vec<u8>>,
    accepted: Option<(Digest, Vec<u8>)>,
    equivocated: bool,
    commit_timer: Option<TimerId>,
    votes: BTreeMap<NodeId, Signature>,
    output: Option<BbOutput>,
}

type Ctx<'a> = Context<'a, BbMsg, BbTimer>;

impl core::fmt::Debug for BbNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BbNode").field("id", &self.id).field("output", &self.output).finish()
    }
}

impl BbNode {
    /// Creates a participant. `inputs` is non-empty only at the designated
    /// sender; two inputs make it equivocate.
    pub fn new(
        id: NodeId,
        n: usize,
        f: usize,
        sender: NodeId,
        delta: SimDuration,
        pki: Arc<KeyStore>,
        inputs: Vec<Vec<u8>>,
    ) -> Self {
        BbNode {
            id,
            n,
            f,
            sender,
            delta,
            pki,
            inputs,
            accepted: None,
            equivocated: false,
            commit_timer: None,
            votes: BTreeMap::new(),
            output: None,
        }
    }

    /// The node's decision, once terminated.
    pub fn output(&self) -> Option<&BbOutput> {
        self.output.as_ref()
    }

    fn quorum(&self) -> usize {
        self.f + 1
    }

    fn on_value(&mut self, msg: BbMsg, ctx: &mut Ctx<'_>) {
        let BbPayload::Value { value } = &msg.payload else { return };
        if msg.signer != self.sender {
            return;
        }
        ctx.meter().charge_verify(self.pki.scheme());
        if !msg.verify_sig(&self.pki) {
            return;
        }
        let digest = msg.payload.signing_digest();
        match &self.accepted {
            None => {
                self.accepted = Some((digest, value.clone()));
                // Equivocation-free window (the EESMR 4Δ trick).
                self.commit_timer = Some(ctx.set_timer(self.delta * 4, BbTimer::CommitWindow));
            }
            Some((seen, _)) if *seen != digest && !self.equivocated => {
                // Sender equivocation: provable with the two signed values.
                self.equivocated = true;
                if let Some(t) = self.commit_timer.take() {
                    ctx.cancel_timer(t);
                }
                if self.output.is_none() {
                    self.output = Some(BbOutput::SenderFaulty);
                }
            }
            _ => {}
        }
    }

    fn on_commit_vote(&mut self, msg: BbMsg, ctx: &mut Ctx<'_>) {
        let BbPayload::CommitVote { value_digest } = &msg.payload else { return };
        let Some((accepted, value)) = self.accepted.clone() else { return };
        if *value_digest != accepted || self.output.is_some() {
            return;
        }
        ctx.meter().charge_verify(self.pki.scheme());
        if !msg.verify_sig(&self.pki) {
            return;
        }
        self.votes.insert(msg.signer, msg.sig.clone());
        if self.votes.len() >= self.quorum() {
            // Termination certificate: f+1 commit votes include one from a
            // correct node that saw a clean 4Δ window — everyone can adopt.
            let sigs: Vec<(NodeId, Signature)> =
                self.votes.iter().take(self.quorum()).map(|(n, s)| (*n, s.clone())).collect();
            let cert =
                QuorumCert { kind: MsgKind::Certify, view: 0, data: accepted, height: 0, sigs };
            let msg =
                BbMsg::new(BbPayload::Terminate { cert, value: value.clone() }, &self.pki, self.id);
            ctx.meter().charge_sign(self.pki.scheme());
            ctx.flood(msg);
            self.output = Some(BbOutput::Value(value));
        }
    }

    fn on_terminate(&mut self, msg: BbMsg, ctx: &mut Ctx<'_>) {
        let BbPayload::Terminate { cert, value } = &msg.payload else { return };
        if self.output.is_some() {
            return;
        }
        let expected = Digest::of_parts(&[b"bb-value", value]);
        if cert.kind != MsgKind::Certify || cert.data != expected {
            return;
        }
        let (ok, checks) = cert.verify(&self.pki, self.quorum());
        for _ in 0..checks {
            ctx.meter().charge_verify(self.pki.scheme());
        }
        if !ok {
            return;
        }
        // Adopt even if we saw an equivocation or a different value: the
        // certificate carries a correct node's clean-window vote, which is
        // exactly the agreement anchor.
        self.output = Some(BbOutput::Value(value.clone()));
    }
}

impl Actor for BbNode {
    type Msg = BbMsg;
    type Timer = BbTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.id == self.sender {
            for value in self.inputs.clone() {
                let msg = BbMsg::new(BbPayload::Value { value }, &self.pki, self.id);
                ctx.meter().charge_sign(self.pki.scheme());
                ctx.flood(msg);
            }
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: BbMsg, ctx: &mut Ctx<'_>) {
        match msg.payload {
            BbPayload::Value { .. } => self.on_value(msg, ctx),
            BbPayload::CommitVote { .. } => self.on_commit_vote(msg, ctx),
            BbPayload::Terminate { .. } => self.on_terminate(msg, ctx),
        }
    }

    fn on_timer(&mut self, token: BbTimer, ctx: &mut Ctx<'_>) {
        match token {
            BbTimer::CommitWindow => {
                if self.equivocated || self.output.is_some() {
                    return;
                }
                let Some((digest, _)) = self.accepted else { return };
                let vote =
                    BbMsg::new(BbPayload::CommitVote { value_digest: digest }, &self.pki, self.id);
                ctx.meter().charge_sign(self.pki.scheme());
                // Our own vote counts.
                self.votes.insert(self.id, vote.sig.clone());
                ctx.flood(vote);
                let _ = self.n; // n reserved for future > f+1 quorums
            }
        }
    }
}

/// Builds a Byzantine Broadcast instance: `n` nodes, designated `sender`,
/// broadcasting `values` (one value = honest, two = equivocating sender).
pub fn build_bb_nodes(
    n: usize,
    f: usize,
    sender: NodeId,
    delta: SimDuration,
    pki: &Arc<KeyStore>,
    values: Vec<Vec<u8>>,
) -> Vec<BbNode> {
    (0..n as NodeId)
        .map(|id| {
            let inputs = if id == sender { values.clone() } else { Vec::new() };
            BbNode::new(id, n, f, sender, delta, pki.clone(), inputs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_crypto::SigScheme;
    use eesmr_hypergraph::topology::ring_kcast;
    use eesmr_net::{NetConfig, SimNet};

    fn run_bb(values: Vec<Vec<u8>>, seed: u64) -> SimNet<BbNode> {
        let n = 7;
        let net_cfg = NetConfig::ble(ring_kcast(n, 3), seed);
        let delta = net_cfg.delta();
        let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, seed));
        let nodes = build_bb_nodes(n, 3, 0, delta, &pki, values);
        let mut net = SimNet::new(net_cfg, nodes);
        net.run_for(SimDuration::from_millis(200));
        net
    }

    #[test]
    fn honest_sender_all_terminate_with_its_value() {
        let net = run_bb(vec![b"attack at dawn".to_vec()], 1);
        for id in 0..7 {
            assert_eq!(
                net.actor(id).output(),
                Some(&BbOutput::Value(b"attack at dawn".to_vec())),
                "node {id}"
            );
        }
    }

    #[test]
    fn equivocating_sender_still_agrees() {
        // The sender sends two conflicting values. Nodes that saw both
        // mark the sender faulty; but if any termination certificate
        // forms, everyone adopts that value — agreement either way.
        let net = run_bb(vec![b"attack".to_vec(), b"retreat".to_vec()], 2);
        let outputs: Vec<_> = (1..7).map(|id| net.actor(id).output().cloned()).collect();
        // All correct nodes decided something.
        assert!(outputs.iter().all(|o| o.is_some()));
        // And every node that decided a value decided the SAME value.
        let values: std::collections::BTreeSet<_> = outputs
            .iter()
            .filter_map(|o| match o {
                Some(BbOutput::Value(v)) => Some(v.clone()),
                _ => None,
            })
            .collect();
        assert!(values.len() <= 1, "two different values terminated: {values:?}");
    }

    #[test]
    fn termination_costs_one_signature_per_node_plus_sender() {
        let net = run_bb(vec![b"v".to_vec()], 3);
        for id in 0..7u32 {
            let signs = net.meter(id).count(eesmr_energy::EnergyCategory::Sign);
            // sender: value + its own commit vote (+ terminate) — others:
            // commit vote (+ possibly the terminate broadcast).
            assert!(signs <= 3, "node {id} signed {signs} times");
            assert!(signs >= 1, "node {id} participated");
        }
    }

    #[test]
    fn no_sender_message_no_termination() {
        // The sender is silent: nobody ever accepts or terminates (BB
        // validity only constrains runs where the sender sends; liveness
        // for silent senders needs the SMR's blame path, out of scope for
        // the one-shot primitive).
        let net = run_bb(vec![], 4);
        for id in 0..7 {
            assert_eq!(net.actor(id).output(), None);
        }
    }
}
