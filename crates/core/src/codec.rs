//! v1 wire encodings for the EESMR protocol messages.
//!
//! Layouts (see `eesmr_net::codec` for the header and the conventions):
//!
//! ```text
//! SignedMsg  = header(SIGNED_MSG) | kind u8 | view u64 | signer u32
//!            | payload body (per kind) | Signature
//! BbMsg      = header(BB_MSG) | kind u8 | signer u32
//!            | payload body (per kind) | Signature
//! Block      = parent Digest | height u64 | view u64 | round u64 | Commands
//! Commands   = count u32 | Command*
//! Command    = len u32 | bytes
//! QuorumCert = kind u8 | view u64 | data Digest | height u64
//!            | count u32 | (signer u32 | Signature)*
//! ```
//!
//! The equivocation proof inside a `Blame` embeds the two conflicting
//! `SignedMsg`s as full frames (headers included), so the nested decoder
//! is exactly the top-level one.

use eesmr_crypto::{Digest, Signature};
use eesmr_net::codec::{
    family, put_count, put_header, put_slice, read_count, read_header, read_slice, CodecError,
    Reader, WireCodec, HEADER_LEN,
};

use crate::block::{Block, Command, Commands};
use crate::broadcast::{BbMsg, BbPayload};
use crate::message::{
    CertifiedBlock, MsgKind, Payload, QuorumCert, SignedBlock, SignedMsg, Status,
};

impl WireCodec for Command {
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_slice(out, self.bytes());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Command::new(read_slice(r, "command bytes")?.to_vec()))
    }
}

impl WireCodec for Commands {
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Command::encoded_len).sum::<usize>()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_count(out, self.len());
        for c in self.iter() {
            c.encode_into(out);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = read_count(r, 4, "commands")?;
        let mut cmds = Vec::with_capacity(count);
        for _ in 0..count {
            cmds.push(Command::decode_from(r)?);
        }
        Ok(Commands::from(cmds))
    }
}

impl WireCodec for Block {
    fn encoded_len(&self) -> usize {
        32 + 8 + 8 + 8 + self.payload.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.parent.encode_into(out);
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        self.payload.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Block {
            parent: Digest::decode_from(r)?,
            height: r.u64()?,
            view: r.u64()?,
            round: r.u64()?,
            payload: Commands::decode_from(r)?,
        })
    }
}

impl WireCodec for QuorumCert {
    fn encoded_len(&self) -> usize {
        1 + 8 + 32 + 8 + 4 + self.sigs.iter().map(|(_, s)| 4 + s.encoded_len()).sum::<usize>()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.extend_from_slice(&self.view.to_le_bytes());
        self.data.encode_into(out);
        out.extend_from_slice(&self.height.to_le_bytes());
        put_count(out, self.sigs.len());
        for (signer, sig) in &self.sigs {
            out.extend_from_slice(&signer.to_le_bytes());
            sig.encode_into(out);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let kind = read_msg_kind(r)?;
        let view = r.u64()?;
        let data = Digest::decode_from(r)?;
        let height = r.u64()?;
        // signer (4) + scheme tag (1) + signer (4) + 32-byte authenticator.
        let count = read_count(r, 4 + 5 + 32, "certificate signatures")?;
        let mut sigs = Vec::with_capacity(count);
        for _ in 0..count {
            let signer = r.u32()?;
            sigs.push((signer, Signature::decode_from(r)?));
        }
        Ok(QuorumCert { kind, view, data, height, sigs })
    }
}

impl WireCodec for CertifiedBlock {
    fn encoded_len(&self) -> usize {
        self.qc.encoded_len() + self.block.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.qc.encode_into(out);
        self.block.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CertifiedBlock { qc: QuorumCert::decode_from(r)?, block: Block::decode_from(r)? })
    }
}

impl WireCodec for SignedBlock {
    fn encoded_len(&self) -> usize {
        self.block.encoded_len() + 4 + self.sig.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.block.encode_into(out);
        out.extend_from_slice(&self.signer.to_le_bytes());
        self.sig.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SignedBlock {
            block: Block::decode_from(r)?,
            signer: r.u32()?,
            sig: Signature::decode_from(r)?,
        })
    }
}

impl WireCodec for Status {
    fn encoded_len(&self) -> usize {
        1 + 4
            + match self {
                Status::CommitQcs(v) => v.iter().map(CertifiedBlock::encoded_len).sum::<usize>(),
                Status::Locks(v) => v.iter().map(SignedBlock::encoded_len).sum::<usize>(),
            }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Status::CommitQcs(v) => {
                out.push(1);
                put_count(out, v.len());
                for c in v {
                    c.encode_into(out);
                }
            }
            Status::Locks(v) => {
                out.push(2);
                put_count(out, v.len());
                for s in v {
                    s.encode_into(out);
                }
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => {
                // QC floor (53) + block floor (60).
                let count = read_count(r, 113, "commit-qc status entries")?;
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(CertifiedBlock::decode_from(r)?);
                }
                Ok(Status::CommitQcs(v))
            }
            2 => {
                // Block floor (60) + signer (4) + signature floor (37).
                let count = read_count(r, 101, "locked-block status entries")?;
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(SignedBlock::decode_from(r)?);
                }
                Ok(Status::Locks(v))
            }
            tag => Err(CodecError::UnknownTag { what: "status", tag }),
        }
    }
}

fn read_msg_kind(r: &mut Reader<'_>) -> Result<MsgKind, CodecError> {
    let tag = r.u8()?;
    MsgKind::from_wire(tag).ok_or(CodecError::UnknownTag { what: "message kind", tag })
}

fn read_blocks(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<Block>, CodecError> {
    // Block floor: digest + three u64s + empty command list.
    let count = read_count(r, 32 + 24 + 4, what)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(Block::decode_from(r)?);
    }
    Ok(v)
}

fn put_blocks(out: &mut Vec<u8>, blocks: &[Block]) {
    put_count(out, blocks.len());
    for b in blocks {
        b.encode_into(out);
    }
}

fn blocks_len(blocks: &[Block]) -> usize {
    4 + blocks.iter().map(Block::encoded_len).sum::<usize>()
}

impl Payload {
    /// Encoded body length (everything after the kind byte).
    pub(crate) fn body_encoded_len(&self) -> usize {
        match self {
            Payload::Propose { block, justify, .. } => {
                block.encoded_len() + 8 + 1 + justify.as_ref().map_or(0, QuorumCert::encoded_len)
            }
            Payload::Blame { proof } => {
                1 + proof.as_ref().map_or(0, |p| p.0.encoded_len() + p.1.encoded_len())
            }
            Payload::BlameQc(qc) => qc.encoded_len(),
            Payload::CommitUpdate { block } => block.encoded_len(),
            Payload::Certify { .. } => 32 + 8,
            Payload::CommitQc(c) => c.encoded_len(),
            Payload::NewViewProposal { status, block } => {
                status.encoded_len() + block.encoded_len()
            }
            Payload::NewViewVote { .. } => 32,
            Payload::LockStatus { block } => block.encoded_len(),
            Payload::SyncRequest { .. } => 32,
            Payload::SyncResponse { blocks } => blocks_len(blocks),
            Payload::Forward { commands } => commands.encoded_len(),
            Payload::Repair { .. } => 8,
            Payload::RepairReply { blocks, .. } => blocks_len(blocks) + 8,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Propose { block, round, justify } => {
                block.encode_into(out);
                out.extend_from_slice(&round.to_le_bytes());
                match justify {
                    None => out.push(0),
                    Some(qc) => {
                        out.push(1);
                        qc.encode_into(out);
                    }
                }
            }
            Payload::Blame { proof } => match proof {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    p.0.encode_into(out);
                    p.1.encode_into(out);
                }
            },
            Payload::BlameQc(qc) => qc.encode_into(out),
            Payload::CommitUpdate { block } => block.encode_into(out),
            Payload::Certify { block_id, height } => {
                block_id.encode_into(out);
                out.extend_from_slice(&height.to_le_bytes());
            }
            Payload::CommitQc(c) => c.encode_into(out),
            Payload::NewViewProposal { status, block } => {
                status.encode_into(out);
                block.encode_into(out);
            }
            Payload::NewViewVote { prop_hash } => prop_hash.encode_into(out),
            Payload::LockStatus { block } => block.encode_into(out),
            Payload::SyncRequest { want } => want.encode_into(out),
            Payload::SyncResponse { blocks } => put_blocks(out, blocks),
            Payload::Forward { commands } => commands.encode_into(out),
            Payload::Repair { from_height } => out.extend_from_slice(&from_height.to_le_bytes()),
            Payload::RepairReply { blocks, view } => {
                put_blocks(out, blocks);
                out.extend_from_slice(&view.to_le_bytes());
            }
        }
    }

    fn decode_body(kind: MsgKind, r: &mut Reader<'_>) -> Result<Payload, CodecError> {
        Ok(match kind {
            MsgKind::Propose => {
                let block = Block::decode_from(r)?;
                let round = r.u64()?;
                let justify = match r.u8()? {
                    0 => None,
                    1 => Some(QuorumCert::decode_from(r)?),
                    tag => return Err(CodecError::UnknownTag { what: "option flag", tag }),
                };
                Payload::Propose { block, round, justify }
            }
            MsgKind::Blame => {
                let proof = match r.u8()? {
                    0 => None,
                    1 => {
                        let a = SignedMsg::decode_from(r)?;
                        let b = SignedMsg::decode_from(r)?;
                        Some(Box::new((a, b)))
                    }
                    tag => return Err(CodecError::UnknownTag { what: "option flag", tag }),
                };
                Payload::Blame { proof }
            }
            MsgKind::BlameQc => Payload::BlameQc(QuorumCert::decode_from(r)?),
            MsgKind::CommitUpdate => Payload::CommitUpdate { block: Block::decode_from(r)? },
            MsgKind::Certify => {
                Payload::Certify { block_id: Digest::decode_from(r)?, height: r.u64()? }
            }
            MsgKind::CommitQc => Payload::CommitQc(CertifiedBlock::decode_from(r)?),
            MsgKind::NewViewProposal => Payload::NewViewProposal {
                status: Status::decode_from(r)?,
                block: Block::decode_from(r)?,
            },
            MsgKind::NewViewVote => Payload::NewViewVote { prop_hash: Digest::decode_from(r)? },
            MsgKind::LockStatus => Payload::LockStatus { block: Block::decode_from(r)? },
            MsgKind::SyncRequest => Payload::SyncRequest { want: Digest::decode_from(r)? },
            MsgKind::SyncResponse => {
                Payload::SyncResponse { blocks: read_blocks(r, "sync-response blocks")? }
            }
            MsgKind::Forward => Payload::Forward { commands: Commands::decode_from(r)? },
            MsgKind::Repair => Payload::Repair { from_height: r.u64()? },
            MsgKind::RepairReply => Payload::RepairReply {
                blocks: read_blocks(r, "repair-reply blocks")?,
                view: r.u64()?,
            },
            // HsVote is an `HsMsg` kind; no `Payload` variant carries it.
            MsgKind::HsVote => {
                return Err(CodecError::UnknownTag { what: "payload kind", tag: kind as u8 })
            }
        })
    }
}

impl WireCodec for SignedMsg {
    fn encoded_len(&self) -> usize {
        HEADER_LEN + 1 + 8 + 4 + self.payload.body_encoded_len() + self.sig.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_header(out, family::SIGNED_MSG);
        out.push(self.payload.kind() as u8);
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&self.signer.to_le_bytes());
        self.payload.encode_body(out);
        self.sig.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        read_header(r, family::SIGNED_MSG)?;
        let kind = read_msg_kind(r)?;
        let view = r.u64()?;
        let signer = r.u32()?;
        let payload = Payload::decode_body(kind, r)?;
        let sig = Signature::decode_from(r)?;
        Ok(SignedMsg { payload, view, signer, sig })
    }
}

impl BbPayload {
    fn body_encoded_len(&self) -> usize {
        match self {
            BbPayload::Value { value } => 4 + value.len(),
            BbPayload::CommitVote { .. } => 32,
            BbPayload::Terminate { cert, value } => cert.encoded_len() + 4 + value.len(),
        }
    }
}

impl WireCodec for BbMsg {
    fn encoded_len(&self) -> usize {
        HEADER_LEN + 1 + 4 + self.payload.body_encoded_len() + self.sig.encoded_len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_header(out, family::BB_MSG);
        // The broadcast payload reuses `MsgKind` values as its tags
        // (Value=Propose, CommitVote=Certify, Terminate=CommitQc).
        out.push(self.payload.kind() as u8);
        out.extend_from_slice(&self.signer.to_le_bytes());
        match &self.payload {
            BbPayload::Value { value } => put_slice(out, value),
            BbPayload::CommitVote { value_digest } => value_digest.encode_into(out),
            BbPayload::Terminate { cert, value } => {
                cert.encode_into(out);
                put_slice(out, value);
            }
        }
        self.sig.encode_into(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        read_header(r, family::BB_MSG)?;
        let kind = read_msg_kind(r)?;
        let signer = r.u32()?;
        let payload = match kind {
            MsgKind::Propose => BbPayload::Value { value: read_slice(r, "bb value")?.to_vec() },
            MsgKind::Certify => BbPayload::CommitVote { value_digest: Digest::decode_from(r)? },
            MsgKind::CommitQc => BbPayload::Terminate {
                cert: QuorumCert::decode_from(r)?,
                value: read_slice(r, "bb value")?.to_vec(),
            },
            other => {
                return Err(CodecError::UnknownTag { what: "broadcast kind", tag: other as u8 })
            }
        };
        let sig = Signature::decode_from(r)?;
        Ok(BbMsg { payload, signer, sig })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_crypto::{KeyStore, SigScheme};

    fn pki() -> KeyStore {
        KeyStore::generate(4, SigScheme::Rsa1024, 99)
    }

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode();
        assert_eq!(bytes.len(), v.encoded_len());
        let back = T::decode(&bytes).expect("decodes");
        assert_eq!(&back, v);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_payload_kind_round_trips() {
        let pki = pki();
        let kp = pki.keypair(0);
        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 3, vec![Command::synthetic(1, 16)]);
        let bytes = crate::message::signing_bytes(MsgKind::Certify, 1, &b1.id());
        let sigs: Vec<_> = (0..2u32).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
        let qc = QuorumCert { kind: MsgKind::Certify, view: 1, data: b1.id(), height: 1, sigs };
        let cert = CertifiedBlock { qc: qc.clone(), block: b1.clone() };
        let locked = SignedBlock { block: b1.clone(), signer: 2, sig: kp.sign(b1.id().as_bytes()) };
        let p1 = SignedMsg::new(
            Payload::Propose { block: b1.clone(), round: 3, justify: Some(qc.clone()) },
            1,
            kp,
        );
        let p2 = SignedMsg::new(
            Payload::Propose { block: g.clone(), round: 3, justify: None },
            1,
            pki.keypair(1),
        );
        let payloads = vec![
            Payload::Propose { block: b1.clone(), round: 7, justify: Some(qc.clone()) },
            Payload::Blame { proof: None },
            Payload::Blame { proof: Some(Box::new((p1, p2))) },
            Payload::BlameQc(qc.clone()),
            Payload::CommitUpdate { block: b1.clone() },
            Payload::Certify { block_id: b1.id(), height: 1 },
            Payload::CommitQc(cert.clone()),
            Payload::NewViewProposal {
                status: Status::CommitQcs(vec![cert.clone()]),
                block: b1.clone(),
            },
            Payload::NewViewProposal { status: Status::Locks(vec![locked]), block: b1.clone() },
            Payload::NewViewVote { prop_hash: b1.id() },
            Payload::LockStatus { block: b1.clone() },
            Payload::SyncRequest { want: b1.id() },
            Payload::SyncResponse { blocks: vec![g.clone(), b1.clone()] },
            Payload::Forward {
                commands: Commands::from(vec![Command::synthetic(9, 8), Command::new(vec![])]),
            },
            Payload::Repair { from_height: 4 },
            Payload::RepairReply { blocks: vec![b1.clone()], view: 2 },
        ];
        for payload in payloads {
            roundtrip(&SignedMsg::new(payload, 3, pki.keypair(2)));
        }
    }

    #[test]
    fn every_broadcast_kind_round_trips() {
        let pki = pki();
        let value = b"broadcast value".to_vec();
        let digest = Digest::of(&value);
        let bytes = crate::message::signing_bytes(MsgKind::Certify, 0, &digest);
        let sigs: Vec<_> = (0..2u32).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
        let cert = QuorumCert { kind: MsgKind::Certify, view: 0, data: digest, height: 0, sigs };
        let sig = pki.keypair(1).sign(b"m");
        let msgs = vec![
            BbMsg {
                payload: BbPayload::Value { value: value.clone() },
                signer: 1,
                sig: sig.clone(),
            },
            BbMsg {
                payload: BbPayload::CommitVote { value_digest: digest },
                signer: 1,
                sig: sig.clone(),
            },
            BbMsg { payload: BbPayload::Terminate { cert, value }, signer: 1, sig },
        ];
        for m in msgs {
            roundtrip(&m);
        }
    }

    #[test]
    fn signature_survives_the_wire() {
        // The decoded message still verifies: encoding is faithful to the
        // signed content, not just structurally invertible.
        let pki = pki();
        let g = Block::genesis();
        let msg = SignedMsg::new(
            Payload::Propose { block: g, round: 3, justify: None },
            1,
            pki.keypair(0),
        );
        let back = SignedMsg::decode(&msg.encode()).unwrap();
        assert!(back.verify_sig(&pki));
    }

    #[test]
    fn wrong_family_is_rejected() {
        let pki = pki();
        let msg = SignedMsg::new(Payload::Blame { proof: None }, 1, pki.keypair(0));
        let bytes = msg.encode();
        assert!(matches!(
            BbMsg::decode(&bytes),
            Err(CodecError::UnknownTag { what: "message family", .. })
        ));
    }
}
