//! Blocks and the hash-linked chain store.
//!
//! A block is the unit of the linearizable log (§2, "Blocks"):
//! `block.parent` is the hash of the parent block and `block.contents` the
//! batch of client commands. Genesis has height 0; heights increase by one
//! along parent links. The paper's concrete instantiation (§5.6) is
//! `B = ⟨m, H(b_m), H(h_{m−1}), ⟨i, H(b_i)⟩_L⟩` — height, payload hash,
//! parent hash, leader signature; our wire sizes follow that layout.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eesmr_crypto::{Digest, Hashable};

/// A client command (opaque request bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Command(Vec<u8>);

impl Command {
    /// Wraps raw request bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Command(bytes)
    }

    /// A synthetic command of exactly `len` bytes with an embedded sequence
    /// number, for workload generation (the paper's fixed-size `b_i`).
    pub fn synthetic(seq: u64, len: usize) -> Self {
        let mut bytes = vec![0u8; len.max(8)];
        bytes[..8].copy_from_slice(&seq.to_le_bytes());
        Command(bytes)
    }

    /// The request bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the command is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// 64-bit trace fingerprint: the first 8 bytes of the command's
    /// SHA-256 digest, little-endian. Stable across runs and cheap to
    /// carry in trace events; call sites gate on the trace level first
    /// so the untraced path never pays for the hash.
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.digest())
    }
}

/// The 64-bit trace fingerprint of a digest (first 8 bytes,
/// little-endian).
pub fn fingerprint(d: &Digest) -> u64 {
    let bytes: [u8; 8] = d.as_bytes()[..8].try_into().expect("digest has 32 bytes");
    u64::from_le_bytes(bytes)
}

impl Hashable for Command {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.0);
    }
}

/// When set, [`Commands::clone`] deep-copies every command instead of
/// bumping the shared refcount — restoring the pre-Arc-spine clone
/// semantics. The two modes are observationally identical (`Commands` is
/// immutable, so sharing is invisible); only the cost differs. Benches
/// use this to measure the zero-copy win against the old behaviour, and
/// the determinism proptest uses it to assert reports are bit-identical
/// under either mode.
static DEEP_CLONE_SPINE: AtomicBool = AtomicBool::new(false);

/// Switches [`Commands::clone`] between refcount bumps (`false`, the
/// default) and per-command deep copies (`true`). Global and racy-by
/// design: both modes produce identical simulation results, so a flip
/// mid-run only perturbs allocation cost, never outcomes.
pub fn set_deep_clone_spine(on: bool) {
    DEEP_CLONE_SPINE.store(on, Ordering::SeqCst);
}

/// Whether deep-clone mode is currently on.
pub fn deep_clone_spine() -> bool {
    DEEP_CLONE_SPINE.load(Ordering::Relaxed)
}

/// An immutable, shared batch of [`Command`]s — the payload body carried
/// by blocks and forward messages.
///
/// Fan-out is the simulator's hot path: one broadcast clones its message
/// once per receiver, and under the old `Vec<Command>` representation
/// each clone copied every command. `Commands` wraps the batch in an
/// `Arc<[Command]>` so a clone is a refcount bump — O(1) in payload size.
/// The batch is immutable after construction (no `&mut` access exists),
/// which is what makes the sharing sound: every holder observes the same
/// bytes forever, so digests, wire sizes, and flood keys are unaffected.
#[derive(Debug, PartialEq, Eq)]
pub struct Commands(Arc<[Command]>);

impl Commands {
    /// Number of commands in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the commands.
    pub fn iter(&self) -> std::slice::Iter<'_, Command> {
        self.0.iter()
    }
}

impl Clone for Commands {
    fn clone(&self) -> Self {
        if DEEP_CLONE_SPINE.load(Ordering::Relaxed) {
            Commands(self.0.iter().cloned().collect())
        } else {
            Commands(Arc::clone(&self.0))
        }
    }
}

impl Default for Commands {
    fn default() -> Self {
        Commands(Arc::from(Vec::new()))
    }
}

impl From<Vec<Command>> for Commands {
    fn from(v: Vec<Command>) -> Self {
        Commands(v.into())
    }
}

impl std::ops::Deref for Commands {
    type Target = [Command];
    fn deref(&self) -> &[Command] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a Commands {
    type Item = &'a Command;
    type IntoIter = std::slice::Iter<'a, Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// One block of the replicated log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Hash of the parent block ([`Digest::ZERO`] for genesis).
    pub parent: Digest,
    /// Distance from genesis.
    pub height: u64,
    /// View in which the block was proposed (0 for genesis).
    pub view: u64,
    /// Round in which the block was proposed (0 for genesis).
    pub round: u64,
    /// The commands `Cmds`.
    pub payload: Commands,
}

impl Block {
    /// The genesis block `G`.
    pub fn genesis() -> Self {
        Block { parent: Digest::ZERO, height: 0, view: 0, round: 0, payload: Commands::default() }
    }

    /// Creates the proposal block extending `parent` (the `CreateProposal`
    /// helper of Algorithm 1).
    pub fn extending(parent: &Block, view: u64, round: u64, payload: impl Into<Commands>) -> Self {
        Block {
            parent: parent.id(),
            height: parent.height + 1,
            view,
            round,
            payload: payload.into(),
        }
    }

    /// This block's identifier: the hash of its canonical encoding.
    pub fn id(&self) -> Digest {
        self.digest()
    }

    /// 64-bit trace fingerprint of this block's id (see
    /// [`fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.id())
    }

    /// Total payload bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.iter().map(Command::len).sum()
    }

    /// Bytes this block occupies on the wire: exactly its encoded length —
    /// parent hash (32) + height/view/round (24) + length-prefixed
    /// commands (see [`crate::codec`]).
    pub fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }
}

impl Hashable for Block {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"block");
        out.extend_from_slice(self.parent.as_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        for cmd in &self.payload {
            cmd.encode_into(out);
        }
    }
}

/// Relationship between two blocks in the chain partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRelation {
    /// Same block.
    Equal,
    /// The first block is an ancestor of the second.
    Ancestor,
    /// The first block is a descendant of the second.
    Descendant,
    /// The blocks are on different forks (or relationship is unknowable
    /// because of a gap in the local store).
    Conflicting,
}

/// Lineage of one block relative to another, with an explicit "unknown"
/// for gaps (see [`BlockStore::lineage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lineage {
    /// Same block.
    Equal,
    /// The first block is a descendant of (extends) the second.
    Extends,
    /// The first block is an ancestor of the second.
    ExtendedBy,
    /// Provably on different branches.
    Fork,
    /// Cannot be determined from locally known blocks.
    Unknown,
}

impl Lineage {
    /// Whether the two blocks are *provably* on conflicting branches.
    pub fn is_fork(self) -> bool {
        matches!(self, Lineage::Fork)
    }
}

/// A store of blocks indexed by hash, tolerant of orphans (blocks whose
/// parents have not arrived yet — chain synchronization fills the gaps).
#[derive(Debug, Clone)]
pub struct BlockStore {
    blocks: HashMap<Digest, Block>,
    genesis: Digest,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore {
    /// A store holding only genesis.
    pub fn new() -> Self {
        let g = Block::genesis();
        let id = g.id();
        let mut blocks = HashMap::new();
        blocks.insert(id, g);
        BlockStore { blocks, genesis: id }
    }

    /// The genesis block id.
    pub fn genesis_id(&self) -> Digest {
        self.genesis
    }

    /// Inserts a block (idempotent). Returns its id.
    pub fn insert(&mut self, block: Block) -> Digest {
        let id = block.id();
        self.blocks.entry(id).or_insert(block);
        id
    }

    /// Looks a block up by id.
    pub fn get(&self, id: &Digest) -> Option<&Block> {
        self.blocks.get(id)
    }

    /// Whether the block is present.
    pub fn contains(&self, id: &Digest) -> bool {
        self.blocks.contains_key(id)
    }

    /// Number of stored blocks (including genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether only genesis is stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() <= 1
    }

    /// Walks parent links from `id` up to (at most) `limit` blocks,
    /// returning the visited blocks (nearest first). Stops at genesis or at
    /// a gap.
    pub fn ancestors(&self, id: &Digest, limit: usize) -> Vec<&Block> {
        let mut out = Vec::new();
        let mut cur = *id;
        while out.len() < limit {
            match self.blocks.get(&cur) {
                Some(b) => {
                    out.push(b);
                    if b.height == 0 {
                        break;
                    }
                    cur = b.parent;
                }
                None => break,
            }
        }
        out
    }

    /// Whether `descendant` extends (is equal to or a descendant of)
    /// `ancestor`. Returns `false` when the walk hits a gap, so callers
    /// treat unknown lineage as non-extending and trigger chain sync.
    pub fn extends(&self, descendant: &Digest, ancestor: &Digest) -> bool {
        let Some(anc) = self.blocks.get(ancestor) else { return false };
        let mut cur = *descendant;
        loop {
            if cur == *ancestor {
                return true;
            }
            match self.blocks.get(&cur) {
                Some(b) if b.height > anc.height => cur = b.parent,
                _ => return false,
            }
        }
    }

    /// Classifies the relation of `a` to `b`.
    pub fn relation(&self, a: &Digest, b: &Digest) -> ChainRelation {
        if a == b {
            return ChainRelation::Equal;
        }
        if self.extends(b, a) {
            return ChainRelation::Ancestor;
        }
        if self.extends(a, b) {
            return ChainRelation::Descendant;
        }
        ChainRelation::Conflicting
    }

    /// Lineage of `a` relative to `b`, distinguishing *provable* forks from
    /// gaps in the local store (callers must not treat "unknown because I
    /// am missing blocks" as a conflict — that is what chain sync is for).
    pub fn lineage(&self, a: &Digest, b: &Digest) -> Lineage {
        if a == b {
            return Lineage::Equal;
        }
        let (Some(ba), Some(bb)) = (self.blocks.get(a), self.blocks.get(b)) else {
            return Lineage::Unknown;
        };
        if ba.height == bb.height {
            return Lineage::Fork; // same height, different ids
        }
        let (low, high, high_is_a) =
            if ba.height < bb.height { (ba, *b, false) } else { (bb, *a, true) };
        let mut cur = high;
        loop {
            match self.blocks.get(&cur) {
                Some(blk) if blk.height > low.height => cur = blk.parent,
                Some(blk) => {
                    return if blk.id() == low.id() {
                        if high_is_a {
                            Lineage::Extends
                        } else {
                            Lineage::ExtendedBy
                        }
                    } else {
                        Lineage::Fork
                    };
                }
                None => return Lineage::Unknown,
            }
        }
    }

    /// The chain segment `(ancestor, descendant]` in parent→child order, or
    /// `None` if `descendant` does not extend `ancestor` (or a gap
    /// intervenes). Used by the commit rule: committing a block commits all
    /// uncommitted ancestors.
    pub fn segment(&self, ancestor: &Digest, descendant: &Digest) -> Option<Vec<Digest>> {
        if !self.extends(descendant, ancestor) {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = *descendant;
        while cur != *ancestor {
            out.push(cur);
            cur = self.blocks.get(&cur)?.parent;
        }
        out.reverse();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(store: &mut BlockStore, len: usize) -> Vec<Digest> {
        let mut ids = vec![store.genesis_id()];
        for i in 0..len {
            let parent = store.get(ids.last().unwrap()).unwrap().clone();
            let b =
                Block::extending(&parent, 1, 3 + i as u64, vec![Command::synthetic(i as u64, 16)]);
            ids.push(store.insert(b));
        }
        ids
    }

    #[test]
    fn genesis_is_present_and_height_zero() {
        let store = BlockStore::new();
        let g = store.get(&store.genesis_id()).unwrap();
        assert_eq!(g.height, 0);
        assert_eq!(g.parent, Digest::ZERO);
        assert!(store.is_empty());
    }

    #[test]
    fn extending_increments_height_and_links_parent() {
        let g = Block::genesis();
        let b = Block::extending(&g, 1, 3, vec![]);
        assert_eq!(b.height, 1);
        assert_eq!(b.parent, g.id());
        assert_ne!(b.id(), g.id());
    }

    #[test]
    fn id_changes_with_any_field() {
        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 3, vec![Command::synthetic(0, 16)]);
        let b2 = Block::extending(&g, 1, 4, vec![Command::synthetic(0, 16)]);
        let b3 = Block::extending(&g, 2, 3, vec![Command::synthetic(0, 16)]);
        let b4 = Block::extending(&g, 1, 3, vec![Command::synthetic(1, 16)]);
        let ids = [b1.id(), b2.id(), b3.id(), b4.id()];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j], "blocks {i} and {j}");
            }
        }
    }

    #[test]
    fn extends_walks_the_chain() {
        let mut store = BlockStore::new();
        let ids = chain(&mut store, 5);
        assert!(store.extends(&ids[5], &ids[0]));
        assert!(store.extends(&ids[5], &ids[3]));
        assert!(store.extends(&ids[2], &ids[2]), "reflexive");
        assert!(!store.extends(&ids[2], &ids[4]), "not backwards");
    }

    #[test]
    fn forks_conflict() {
        let mut store = BlockStore::new();
        let ids = chain(&mut store, 3);
        let base = store.get(&ids[2]).unwrap().clone();
        let fork = Block::extending(&base, 2, 7, vec![Command::synthetic(99, 8)]);
        let fork_id = store.insert(fork);
        assert_eq!(store.relation(&fork_id, &ids[3]), ChainRelation::Conflicting);
        assert_eq!(store.relation(&ids[2], &fork_id), ChainRelation::Ancestor);
        assert_eq!(store.relation(&fork_id, &ids[2]), ChainRelation::Descendant);
        assert_eq!(store.relation(&fork_id, &fork_id), ChainRelation::Equal);
    }

    #[test]
    fn gaps_read_as_non_extending() {
        let mut store = BlockStore::new();
        let g = store.get(&store.genesis_id()).unwrap().clone();
        let a = Block::extending(&g, 1, 3, vec![]);
        let b = Block::extending(&a, 1, 4, vec![]);
        // Insert only the grandchild: the walk hits a gap.
        let b_id = store.insert(b);
        assert!(!store.extends(&b_id, &store.genesis_id()));
        // After sync fills the gap, lineage resolves.
        store.insert(a);
        assert!(store.extends(&b_id, &store.genesis_id()));
    }

    #[test]
    fn segment_returns_path_oldest_first() {
        let mut store = BlockStore::new();
        let ids = chain(&mut store, 4);
        let seg = store.segment(&ids[1], &ids[4]).unwrap();
        assert_eq!(seg, vec![ids[2], ids[3], ids[4]]);
        assert_eq!(store.segment(&ids[4], &ids[1]), None, "wrong direction");
        assert_eq!(store.segment(&ids[2], &ids[2]).unwrap(), Vec::<Digest>::new());
    }

    #[test]
    fn ancestors_respects_limit_and_gaps() {
        let mut store = BlockStore::new();
        let ids = chain(&mut store, 5);
        let anc = store.ancestors(&ids[5], 3);
        assert_eq!(anc.len(), 3);
        assert_eq!(anc[0].id(), ids[5]);
        let all = store.ancestors(&ids[5], 100);
        assert_eq!(all.len(), 6, "stops at genesis");
    }

    #[test]
    fn lineage_distinguishes_forks_from_gaps() {
        let mut store = BlockStore::new();
        let ids = chain(&mut store, 3);
        assert_eq!(store.lineage(&ids[3], &ids[1]), Lineage::Extends);
        assert_eq!(store.lineage(&ids[1], &ids[3]), Lineage::ExtendedBy);
        assert_eq!(store.lineage(&ids[2], &ids[2]), Lineage::Equal);

        // A fork at the same base is provable.
        let base = store.get(&ids[2]).unwrap().clone();
        let fork = Block::extending(&base, 9, 9, vec![]);
        let fork_id = store.insert(fork);
        assert_eq!(store.lineage(&fork_id, &ids[3]), Lineage::Fork);
        assert!(store.lineage(&fork_id, &ids[3]).is_fork());

        // A gap reads as Unknown, not Fork.
        let far = Block::extending(
            &Block {
                parent: Digest::of(b"?"),
                height: 10,
                view: 9,
                round: 9,
                payload: Commands::default(),
            },
            9,
            10,
            vec![],
        );
        let far_id = store.insert(far);
        assert_eq!(store.lineage(&far_id, &ids[3]), Lineage::Unknown);
        assert_eq!(store.lineage(&Digest::of(b"missing"), &ids[1]), Lineage::Unknown);
    }

    #[test]
    fn command_synthetic_has_exact_size() {
        let c = Command::synthetic(7, 16);
        assert_eq!(c.len(), 16);
        assert!(!c.is_empty());
        let tiny = Command::synthetic(7, 2);
        assert_eq!(tiny.len(), 8, "minimum carries the sequence number");
    }

    #[test]
    fn commands_clone_is_shared_unless_deep_mode_is_on() {
        let batch: Commands = vec![Command::synthetic(0, 16), Command::synthetic(1, 16)].into();
        let shared = batch.clone();
        assert_eq!(batch, shared);
        assert!(std::ptr::eq(batch.as_ptr(), shared.as_ptr()), "arc clone shares the buffer");

        set_deep_clone_spine(true);
        let deep = batch.clone();
        set_deep_clone_spine(false);
        assert_eq!(batch, deep, "deep clones are observationally identical");
        assert!(!std::ptr::eq(batch.as_ptr(), deep.as_ptr()), "deep clone copies the buffer");
    }

    #[test]
    fn wire_size_matches_layout() {
        let g = Block::genesis();
        let b = Block::extending(&g, 1, 3, vec![Command::synthetic(0, 100)]);
        // parent 32 + height/view/round 24 + command count 4
        // + one command (4-byte length prefix + 100 bytes).
        assert_eq!(b.wire_size(), 32 + 24 + 4 + (4 + 100));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut store = BlockStore::new();
        let g = store.get(&store.genesis_id()).unwrap().clone();
        let b = Block::extending(&g, 1, 3, vec![]);
        let id1 = store.insert(b.clone());
        let id2 = store.insert(b);
        assert_eq!(id1, id2);
        assert_eq!(store.len(), 2);
    }
}
