//! Per-replica protocol metrics.

use eesmr_net::SimDuration;
use eesmr_trace::hist::LogHistogram;

/// Counters a replica maintains about its own execution. Signature and
/// energy accounting live in the node's `EnergyMeter`; these are the
/// protocol-level events the evaluation section reports on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Blocks committed (including ancestors committed transitively).
    pub blocks_committed: u64,
    /// Height of the highest committed block.
    pub committed_height: u64,
    /// View changes completed (times this replica entered a new view).
    pub view_changes: u64,
    /// Blame messages sent.
    pub blames_sent: u64,
    /// Equivocations detected (with proof).
    pub equivocations_detected: u64,
    /// Proposals relayed (the implicit "votes in the head").
    pub proposals_relayed: u64,
    /// Proposals received that were ignored as invalid.
    pub proposals_rejected: u64,
    /// Chain-sync requests issued.
    pub sync_requests: u64,
    /// Crash-recovery repair requests issued (once per restart).
    pub repair_requests: u64,
    /// Crash-recovery repair replies served to recovering peers.
    pub repairs_served: u64,
    /// Workload transactions injected at this node (arrival events that
    /// passed the closed-loop bound).
    pub tx_injected: u64,
    /// Client commands this node forwarded to a proposer (it was not
    /// the leader when they were queued).
    pub tx_forwarded: u64,
    /// Forward-retry rescues: times the stale-command timer found
    /// unresolved commands and re-forwarded (or re-proposed) them.
    pub forward_retries: u64,
    /// Fill of the most recent proposed batch, percent of the batch
    /// policy's maximum size (integer percent, so sampling it is
    /// bit-deterministic).
    pub last_batch_fill_pct: u64,
    /// Sum of per-proposal fill percentages (numerator of the mean fill
    /// reported per run; all-integer, so worker/shard invariant).
    pub batch_fill_pct_sum: u64,
    /// Proposals made (batches cut) — denominator of the mean fill.
    pub batches_proposed: u64,
    /// Commit latencies (relay → commit, microseconds) for locally-timed
    /// blocks, as a streaming histogram: O(buckets) memory for
    /// arbitrarily long runs, exact count/sum/min/max, ≲3% bucket
    /// resolution on percentiles.
    pub commit_latencies: LogHistogram,
}

impl Metrics {
    /// Records the fill of a freshly cut batch: `len` commands against
    /// the batch policy's maximum `max`. Integer percent so the running
    /// sum (and the gauge sampled from it) is bit-deterministic.
    pub fn record_batch_fill(&mut self, len: usize, max: usize) {
        let pct = (len.saturating_mul(100) / max.max(1)) as u64;
        self.last_batch_fill_pct = pct;
        self.batch_fill_pct_sum += pct;
        self.batches_proposed += 1;
    }

    /// Mean fill percentage across all proposals, if any batch was cut.
    pub fn mean_batch_fill_pct(&self) -> Option<f64> {
        (self.batches_proposed > 0)
            .then(|| self.batch_fill_pct_sum as f64 / self.batches_proposed as f64)
    }

    /// Records one relay→commit latency sample.
    pub fn record_commit_latency(&mut self, d: SimDuration) {
        self.commit_latencies.record(d.as_micros());
    }

    /// Mean commit latency, if any block was timed.
    pub fn mean_commit_latency(&self) -> Option<SimDuration> {
        self.commit_latencies.mean().map(SimDuration::from_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_empty_is_none() {
        assert_eq!(Metrics::default().mean_commit_latency(), None);
    }

    #[test]
    fn mean_latency_averages() {
        let mut m = Metrics::default();
        m.record_commit_latency(SimDuration::from_micros(100));
        m.record_commit_latency(SimDuration::from_micros(300));
        assert_eq!(m.mean_commit_latency(), Some(SimDuration::from_micros(200)));
        assert_eq!(m.commit_latencies.count(), 2);
    }
}
