//! The EESMR view change (Algorithm 2, lines 216–277).
//!
//! The steady state pushes all certificate work here: when a leader stalls
//! or equivocates, the nodes convert their implicit "votes in the head"
//! into explicit certificates, agree on the highest committed block, and
//! hand the next leader a justified starting point.
//!
//! Timeline (all correct nodes, full path):
//!
//! 1. blame timeout (4Δ) or equivocation proof → flood `Blame`;
//! 2. f+1 blames → flood `BlameQc`, cancel commit timers, wait Δ;
//! 3. `QuitView`: flood `CommitUpdate(B_com)`; certify others' updates;
//!    wait 5Δ to collect a commit certificate;
//! 4. flood the certificate, wait Δ, enter view v+1 (rounds 1–2);
//! 5. nodes send status to the new leader (8Δ patience), the leader
//!    proposes with f+1 status entries, collects f+1 votes (6Δ patience),
//!    issues the certified round-2 proposal, and steady state resumes.
//!
//! Optimizations (§3.5, §5.6), both config-gated: the equivocation speedup
//! quits on the proof alone, and the lock-only status replaces fresh
//! commit certificates with signed locked blocks.

use eesmr_net::{NodeId, TraceEventKind};

use crate::block::Block;
use crate::config::FaultMode;
use crate::message::{
    CertifiedBlock, MsgKind, Payload, QuorumCert, SignedBlock, SignedMsg, Status,
};
use crate::replica::{Ctx, Replica, TimerToken};

impl Replica {
    // ------------------------------------------------------------------
    // Blames.
    // ------------------------------------------------------------------

    /// `T_blame` expired: no progress in the current view (line 216).
    pub(crate) fn on_blame_timeout(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur || self.view_aborted {
            return;
        }
        self.blame_timer = None;
        self.metrics.blames_sent += 1;
        ctx.trace(TraceEventKind::Blame { view: self.v_cur });
        let blame = self.sign(Payload::Blame { proof: None }, ctx);
        ctx.flood(blame);
    }

    /// Two conflicting leader-signed proposals for the same view and round
    /// (lines 220–226).
    pub(crate) fn on_equivocation(
        &mut self,
        first: SignedMsg,
        second: SignedMsg,
        ctx: &mut Ctx<'_>,
    ) {
        if self.view_aborted || self.config.crash_only {
            return;
        }
        self.metrics.equivocations_detected += 1;
        self.view_aborted = true;
        self.cancel_commit_timers(ctx);
        self.metrics.blames_sent += 1;
        ctx.trace(TraceEventKind::Equivocation { view: self.v_cur });
        ctx.trace(TraceEventKind::Blame { view: self.v_cur });
        let blame = self.sign(Payload::Blame { proof: Some(Box::new((first, second))) }, ctx);
        ctx.flood(blame);
        if self.config.opt_equivocation_speedup {
            self.schedule_quit(ctx);
        }
    }

    /// Validates an equivocation proof: two valid leader signatures on
    /// conflicting proposals for the same view and round.
    fn proof_is_valid(&self, view: u64, proof: &(SignedMsg, SignedMsg), ctx: &mut Ctx<'_>) -> bool {
        let (a, b) = proof;
        let leader = self.config.leader_of(view);
        let rounds = match (&a.payload, &b.payload) {
            (Payload::Propose { round: ra, .. }, Payload::Propose { round: rb, .. }) => (*ra, *rb),
            _ => return false,
        };
        a.view == view
            && b.view == view
            && a.signer == leader
            && b.signer == leader
            && rounds.0 == rounds.1
            && a.payload.signing_digest(view) != b.payload.signing_digest(view)
            && self.verify_envelope(a, ctx)
            && self.verify_envelope(b, ctx)
    }

    /// Handles a `Blame` (possibly carrying an equivocation proof).
    pub(crate) fn on_blame(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::Blame { proof } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((_from, msg));
            return;
        }
        if msg.view < self.v_cur || !self.verify_envelope(&msg, ctx) {
            return;
        }
        // Equivocation proof: cancel commit timers, join the blaming
        // (lines 224–226), and optionally fast-quit.
        if let Some(p) = proof {
            if !self.config.crash_only
                && !self.view_aborted
                && self.proof_is_valid(msg.view, p, ctx)
            {
                let (first, second) = (**p).clone();
                self.on_equivocation(first, second, ctx);
            }
        }
        self.blames.insert(msg.signer, msg.sig.clone());
        if self.blames.len() >= self.config.quorum() && !self.vc.quit_scheduled {
            // f+1 blames: certificate, broadcast, quit (lines 227–234).
            let data = Payload::Blame { proof: None }.signing_digest(self.v_cur);
            let sigs: Vec<(NodeId, _)> = self
                .blames
                .iter()
                .take(self.config.quorum())
                .map(|(n, s)| (*n, s.clone()))
                .collect();
            let qc = QuorumCert { kind: MsgKind::Blame, view: self.v_cur, data, height: 0, sigs };
            let msg = self.sign(Payload::BlameQc(qc), ctx);
            ctx.flood(msg);
            self.view_aborted = true;
            self.cancel_commit_timers(ctx);
            self.schedule_quit(ctx);
        }
    }

    /// Handles a received blame certificate (line 231).
    pub(crate) fn on_blame_qc(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::BlameQc(qc) = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((_from, msg));
            return;
        }
        if msg.view < self.v_cur || self.vc.quit_scheduled {
            return;
        }
        if qc.kind != MsgKind::Blame || qc.view != self.v_cur || !self.verify_qc(qc, ctx) {
            return;
        }
        self.view_aborted = true;
        self.cancel_commit_timers(ctx);
        self.schedule_quit(ctx);
    }

    /// Wait Δ so all correct nodes quit the view together (line 233).
    fn schedule_quit(&mut self, ctx: &mut Ctx<'_>) {
        if self.vc.quit_scheduled {
            return;
        }
        self.vc.quit_scheduled = true;
        ctx.trace(TraceEventKind::VcQuit { view: self.v_cur });
        if let Some(t) = self.blame_timer.take() {
            ctx.cancel_timer(t);
        }
        ctx.set_timer(self.config.delta, TimerToken::QuitWait { view: self.v_cur });
    }

    // ------------------------------------------------------------------
    // QuitView (lines 235–250).
    // ------------------------------------------------------------------

    pub(crate) fn on_quit_wait(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur {
            return;
        }
        if self.config.opt_lock_only_status || self.config.opt_equivocation_speedup {
            // Optimized path (§5.6): skip certificate construction; the
            // status will carry signed locked blocks instead.
            self.enter_new_view(ctx);
            return;
        }
        // Announce B_com and self-certify it.
        let block = self.store.get(&self.b_com).expect("highest committed block is stored").clone();
        let update = self.sign(Payload::CommitUpdate { block }, ctx);
        ctx.flood(update);
        let certify_bytes =
            crate::message::signing_bytes(MsgKind::Certify, self.v_cur, &self.b_com);
        let own = self.pki.keypair(self.id).sign(&certify_bytes);
        ctx.meter().charge_sign(self.pki.scheme());
        self.vc.certifies.insert(self.id, own);
        self.maybe_form_commit_qc(ctx);
        ctx.set_timer(self.config.delta * 5, TimerToken::ShareQc { view: self.v_cur });
    }

    /// Certify another node's committed block if it does not conflict with
    /// our lock (lines 242–244).
    pub(crate) fn on_commit_update(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::CommitUpdate { block } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || !self.verify_envelope(&msg, ctx) {
            return;
        }
        let block = block.clone();
        ctx.meter().charge_hash(block.wire_size());
        let id = self.store.insert(block);
        if self.store.lineage(&id, &self.b_lock).is_fork() {
            return; // provably conflicting: never certify
        }
        let height = self.store.get(&id).expect("just inserted").height;
        let certify = self.sign(Payload::Certify { block_id: id, height }, ctx);
        ctx.send_to(msg.signer, certify);
    }

    /// Collect certify votes for our own B_com (line 245).
    pub(crate) fn on_certify(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::Certify { block_id, .. } = &msg.payload else { return };
        if msg.view != self.v_cur || *block_id != self.b_com || !self.verify_envelope(&msg, ctx) {
            return;
        }
        self.vc.certifies.insert(msg.signer, msg.sig.clone());
        self.maybe_form_commit_qc(ctx);
    }

    fn maybe_form_commit_qc(&mut self, _ctx: &mut Ctx<'_>) {
        if self.vc.certifies.len() < self.config.quorum() {
            return;
        }
        let already_higher =
            self.vc.best_qc.as_ref().is_some_and(|c| c.block.height >= self.b_com_height);
        if already_higher {
            return;
        }
        let sigs: Vec<(NodeId, _)> = self
            .vc
            .certifies
            .iter()
            .take(self.config.quorum())
            .map(|(n, s)| (*n, s.clone()))
            .collect();
        let qc = QuorumCert {
            kind: MsgKind::Certify,
            view: self.v_cur,
            data: self.b_com,
            height: self.b_com_height,
            sigs,
        };
        let block = self.store.get(&self.b_com).expect("committed block stored").clone();
        self.vc.best_qc = Some(CertifiedBlock { qc, block });
    }

    /// Adopt a higher commit certificate (lines 248–250), or — as the new
    /// leader in round 1 — record it as a status entry (line 256).
    pub(crate) fn on_commit_qc(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::CommitQc(cert) = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || !self.verify_envelope(&msg, ctx) {
            return;
        }
        let cert = cert.clone();
        if cert.qc.kind != MsgKind::Certify
            || cert.qc.data != cert.block.id()
            || cert.qc.height != cert.block.height
            || cert.qc.view > msg.view
            || !self.verify_qc(&cert.qc, ctx)
        {
            return;
        }
        let id = self.store.insert(cert.block.clone());

        if self.r_cur == 1 && self.is_leader() {
            // Status entry for the new-view proposal. The sender holds the
            // full chain of its own certified block, so repair any local
            // gap from it before the 4Δ proposal window closes.
            if let Some(missing) = self.chain_gap(&id) {
                self.request_sync(missing, msg.signer, ctx);
            }
            self.nv.status_qcs.insert(msg.signer, cert);
            return;
        }
        // Quitting phase: adopt if strictly higher and not provably
        // conflicting with our lock.
        let higher = self.vc.best_qc.as_ref().is_none_or(|c| cert.block.height > c.block.height);
        if higher && !self.store.lineage(&id, &self.b_lock).is_fork() {
            self.vc.best_qc = Some(cert);
        }
    }

    /// 5Δ after QuitView: share the best certificate and schedule entry
    /// into the new view (lines 239–241).
    pub(crate) fn on_share_qc(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur || self.vc.shared {
            return;
        }
        self.vc.shared = true;
        if let Some(best) = self.vc.best_qc.clone() {
            let msg = self.sign(Payload::CommitQc(best), ctx);
            ctx.flood(msg);
        }
        ctx.set_timer(self.config.delta, TimerToken::EnterNew { view });
    }

    pub(crate) fn on_enter_new(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur {
            return;
        }
        self.enter_new_view(ctx);
    }

    // ------------------------------------------------------------------
    // NewView (lines 251–277).
    // ------------------------------------------------------------------

    /// Transition into view v+1, round 1 (line 251).
    pub(crate) fn enter_new_view(&mut self, ctx: &mut Ctx<'_>) {
        let best = self.vc.best_qc.clone();
        self.v_cur += 1;
        self.r_cur = 1;
        self.view_aborted = false;
        self.blames.clear();
        self.vc = Default::default();
        self.nv = Default::default();
        self.want_propose = false;
        self.metrics.view_changes += 1;
        ctx.trace(TraceEventKind::ViewEnter { view: self.v_cur });
        // Workload transactions drained into the dead view's discarded
        // proposals go back in the pool for the new view.
        self.txpool.requeue_unresolved();
        if !self.active() {
            // The node goes silent starting this view (fault injection).
            return;
        }
        self.reset_blame_timer(8, ctx);

        let leader = self.config.leader_of(self.v_cur);
        if leader == self.id {
            // Seed the status with our own entry and open the 4Δ window.
            if let Some(best) = best {
                self.nv.status_qcs.insert(self.id, best);
            }
            let lock_block = self.store.get(&self.b_lock).expect("locked block stored").clone();
            let bytes =
                crate::message::signing_bytes(MsgKind::LockStatus, self.v_cur, &lock_block.id());
            let sig = self.pki.keypair(self.id).sign(&bytes);
            ctx.meter().charge_sign(self.pki.scheme());
            self.nv
                .status_locks
                .insert(self.id, SignedBlock { block: lock_block, signer: self.id, sig });
            ctx.set_timer(self.config.delta * 4, TimerToken::LeaderStatus { view: self.v_cur });
        } else {
            // Send our status to the new leader (line 265).
            match best {
                Some(cert) if !self.config.opt_lock_only_status => {
                    let msg = self.sign(Payload::CommitQc(cert), ctx);
                    ctx.send_to(leader, msg);
                }
                _ => {
                    let lock_block =
                        self.store.get(&self.b_lock).expect("locked block stored").clone();
                    let msg = self.sign(Payload::LockStatus { block: lock_block }, ctx);
                    ctx.send_to(leader, msg);
                }
            }
        }
        // Commands the dead view's proposer drained and dropped are
        // pending again (requeued above) — hand them straight to the
        // new leader instead of letting them strand here.
        self.forward_backlog(ctx);
        self.drain_future_views(ctx);
    }

    pub(crate) fn drain_future_views(&mut self, ctx: &mut Ctx<'_>) {
        let current: Vec<(NodeId, SignedMsg)> = {
            let (now, later): (Vec<_>, Vec<_>) =
                self.future_views.drain(..).partition(|(_, m)| m.view <= self.v_cur);
            self.future_views = later;
            now
        };
        for (from, msg) in current {
            use eesmr_net::Actor as _;
            self.on_message(from, msg, ctx);
        }
    }

    /// Optimized status entry (§5.6): a node's signed locked block.
    pub(crate) fn on_lock_status(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::LockStatus { block } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur
            || self.r_cur != 1
            || !self.is_leader()
            || !self.verify_envelope(&msg, ctx)
        {
            return;
        }
        let block = block.clone();
        let id = self.store.insert(block.clone());
        if let Some(missing) = self.chain_gap(&id) {
            // Locked blocks have fully-known chains at their holder.
            self.request_sync(missing, msg.signer, ctx);
        }
        self.nv
            .status_locks
            .insert(msg.signer, SignedBlock { block, signer: msg.signer, sig: msg.sig.clone() });
    }

    /// The new leader's 4Δ status window closed: propose round 1
    /// (lines 255–258).
    pub(crate) fn on_leader_status(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur || self.r_cur != 1 || !self.is_leader() || self.nv.prop_hash.is_some()
        {
            return;
        }
        let quorum = self.config.quorum();
        let status = if self.nv.status_qcs.len() >= quorum {
            let mut entries: Vec<CertifiedBlock> = self.nv.status_qcs.values().cloned().collect();
            entries.sort_by_key(|c| core::cmp::Reverse(c.block.height));
            entries.truncate(quorum);
            Status::CommitQcs(entries)
        } else if self.nv.status_locks.len() >= quorum {
            let mut entries: Vec<SignedBlock> = self.nv.status_locks.values().cloned().collect();
            entries.sort_by_key(|s| core::cmp::Reverse(s.block.height));
            entries.truncate(quorum);
            Status::Locks(entries)
        } else {
            // Not enough status yet — extend the window; if the system is
            // truly stuck the other nodes' 8Δ blame timers handle it.
            ctx.set_timer(self.config.delta * 2, TimerToken::LeaderStatus { view });
            return;
        };
        let (highest_id, _) = status.highest().expect("status has at least one entry");
        if self.chain_gap(&highest_id).is_some() {
            // Ancestry still syncing; the Δ retry stays well inside the
            // other nodes' 8Δ patience.
            ctx.set_timer(self.config.delta, TimerToken::LeaderStatus { view });
            return;
        }
        let parent =
            self.store.get(&highest_id).expect("status blocks were inserted on receipt").clone();
        let block = Block::extending(&parent, self.v_cur, 1, Vec::new());
        ctx.meter().charge_hash(block.wire_size());
        self.store.insert(block.clone());
        let payload = Payload::NewViewProposal { status, block };
        self.nv.prop_hash = Some(payload.signing_digest(self.v_cur));
        let msg = self.sign(payload, ctx);
        ctx.flood(msg);
    }

    fn status_is_valid(&mut self, view: u64, status: &Status, ctx: &mut Ctx<'_>) -> bool {
        if status.len() < self.config.quorum() {
            return false;
        }
        match status {
            Status::CommitQcs(entries) => {
                let mut senders = std::collections::BTreeSet::new();
                for e in entries {
                    if e.qc.kind != MsgKind::Certify
                        || e.qc.data != e.block.id()
                        || e.qc.height != e.block.height
                        || e.qc.view > view
                        || !self.verify_qc(&e.qc, ctx)
                    {
                        return false;
                    }
                    // Entries must certify distinct announcements; dedup by
                    // the first signer of each certificate.
                    let first = e.qc.sigs.first().map(|(n, _)| *n);
                    senders.insert((e.block.id(), first));
                }
                true
            }
            Status::Locks(entries) => {
                let mut signers = std::collections::BTreeSet::new();
                for e in entries {
                    if !signers.insert(e.signer) {
                        return false;
                    }
                    let bytes =
                        crate::message::signing_bytes(MsgKind::LockStatus, view, &e.block.id());
                    ctx.meter().charge_verify(self.pki.scheme());
                    if e.sig.signer() != e.signer || !self.pki.verify(&bytes, &e.sig) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Round-1 proposal from the new leader (lines 267–274).
    pub(crate) fn on_new_view_proposal(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::NewViewProposal { status, block } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || self.r_cur != 1 {
            return;
        }
        if msg.signer != self.config.leader_of(msg.view) || !self.verify_envelope(&msg, ctx) {
            return;
        }
        let (status, block) = (status.clone(), block.clone());
        if !self.status_is_valid(msg.view, &status, ctx) {
            return;
        }
        // Insert the status blocks so lineage checks and later commits see
        // them.
        match &status {
            Status::CommitQcs(entries) => {
                for e in entries {
                    self.store.insert(e.block.clone());
                }
            }
            Status::Locks(entries) => {
                for e in entries {
                    self.store.insert(e.block.clone());
                }
            }
        }
        let Some((highest_id, highest_height)) = status.highest() else { return };
        // Vote only if the proposal extends the highest status block
        // (line 269) and is not a provable fork from our committed prefix.
        if block.parent != highest_id
            || block.height != highest_height + 1
            || block.view != msg.view
            || block.round != 1
        {
            return;
        }
        let block_id = self.store.insert(block.clone());
        ctx.meter().charge_hash(block.wire_size());
        if self.store.lineage(&block_id, &self.b_com).is_fork() {
            return;
        }
        if let Some(missing) = self.chain_gap(&block_id) {
            // Vote only once the whole chain is known, so the commit
            // rule's ancestor walk never hits a gap. Ask the proposal's
            // *signer* — the leader synced the status ancestry before
            // proposing, whereas a flood relayer may not hold the blocks.
            // The 6Δ/8Δ timers absorb the round trip.
            let leader = msg.signer;
            self.orphans.entry(missing).or_default().push((from, msg.clone()));
            self.request_sync(missing, leader, ctx);
            return;
        }
        self.b_lock = block_id;
        self.b_lock_height = block.height;
        self.nv.prop_hash = Some(msg.payload.signing_digest(msg.view));
        self.nv.round1_block = Some(block_id);
        let vote = self
            .sign(Payload::NewViewVote { prop_hash: msg.payload.signing_digest(msg.view) }, ctx);
        ctx.flood(vote);
        self.r_cur = 2;
        self.reset_blame_timer(6, ctx);
    }

    /// Votes arriving at the new leader (line 259).
    pub(crate) fn on_new_view_vote(&mut self, _from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::NewViewVote { prop_hash } = &msg.payload else { return };
        if msg.view != self.v_cur || !self.is_leader() || self.nv.round2_sent {
            return;
        }
        if self.nv.prop_hash != Some(*prop_hash) || !self.verify_envelope(&msg, ctx) {
            return;
        }
        self.nv.votes.insert(msg.signer, msg.sig.clone());
        if self.nv.votes.len() < self.config.quorum() {
            return;
        }
        // f+1 votes: certify round 1 and propose round 2 (lines 260–263).
        let round1 = self.nv.round1_block.expect("voted proposals record their block");
        let parent = self.store.get(&round1).expect("round-1 block stored").clone();
        let sigs: Vec<(NodeId, _)> =
            self.nv.votes.iter().take(self.config.quorum()).map(|(n, s)| (*n, s.clone())).collect();
        let qc = QuorumCert {
            kind: MsgKind::NewViewVote,
            view: self.v_cur,
            data: self.nv.prop_hash.expect("checked above"),
            height: parent.height,
            sigs,
        };
        let block = Block::extending(&parent, self.v_cur, 2, Vec::new());
        ctx.meter().charge_hash(block.wire_size());
        self.store.insert(block.clone());
        let msg = self.sign(Payload::Propose { block, round: 2, justify: Some(qc) }, ctx);
        self.nv.round2_sent = true;
        ctx.flood(msg);
    }

    /// Round-2 proposal carrying the vote certificate (lines 275–277).
    pub(crate) fn on_round2_propose(&mut self, from: NodeId, msg: SignedMsg, ctx: &mut Ctx<'_>) {
        let Payload::Propose { block, justify, .. } = &msg.payload else { return };
        if self.r_cur > 2 {
            return;
        }
        let Some(qc) = justify else { return };
        if qc.kind != MsgKind::NewViewVote || qc.view != msg.view || !self.verify_qc(qc, ctx) {
            return;
        }
        // If we voted in round 1, the certificate must match our vote.
        if let Some(h) = self.nv.prop_hash {
            if qc.data != h || Some(block.parent) != self.nv.round1_block {
                return;
            }
        } else if !self.store.contains(&block.parent) {
            // We missed round 1 entirely: fetch the chain, then retry.
            let parent = block.parent;
            self.orphans.entry(parent).or_default().push((from, msg.clone()));
            self.request_sync(parent, from, ctx);
            return;
        }
        let block = block.clone();
        ctx.meter().charge_hash(block.wire_size());
        let id = self.store.insert(block.clone());
        if self.store.lineage(&id, &self.b_com).is_fork() {
            return;
        }
        if let Some(missing) = self.chain_gap(&id) {
            let leader = msg.signer;
            self.orphans.entry(missing).or_default().push((from, msg.clone()));
            self.request_sync(missing, leader, ctx);
            return;
        }
        self.b_lock = id;
        self.b_lock_height = block.height;
        self.first_seen.entry(id).or_insert(ctx.now());
        // Steady state resumes (line 277).
        self.r_cur = 3;
        let m = self.steady_blame_multiple();
        self.reset_blame_timer(m, ctx);
        self.try_propose(ctx);
    }
}

/// Builds a set of replicas sharing a PKI, with per-node fault modes.
///
/// Convenience for tests and the simulation harness.
pub fn build_replicas(
    config: &crate::config::Config,
    pki: &std::sync::Arc<eesmr_crypto::KeyStore>,
    faults: impl Fn(NodeId) -> FaultMode,
) -> Vec<Replica> {
    (0..config.n as NodeId)
        .map(|id| Replica::new(id, config.clone(), pki.clone(), faults(id)))
        .collect()
}
