//! Protocol messages and quorum certificates (paper Algorithm 1).
//!
//! Every message carries its view, the sender, and a signature. The paper
//! splits authentication into `viewSig = ⟨type, v⟩_i` (aggregated into
//! quorum certificates) and `dataSig = ⟨data, v⟩_i`; we sign the triple
//! `(type, view, data-digest)` once, which is strictly stronger — a quorum
//! certificate then binds not just the message type and view but also the
//! exact data (e.g. the certified block id), which is what the safety
//! proofs in Appendix B rely on.

use eesmr_crypto::{Digest, Hashable, KeyPair, KeyStore, Signature};
use eesmr_net::NodeId;

use crate::block::Block;

/// Message types (Algorithm 1/2 plus chain synchronization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgKind {
    /// Steady-state or round-2 proposal.
    Propose = 1,
    /// No-progress / equivocation blame.
    Blame = 2,
    /// Certificate of f+1 blames — quit the view.
    BlameQc = 3,
    /// A node announcing its highest committed block after quitting.
    CommitUpdate = 4,
    /// A vote certifying another node's committed block.
    Certify = 5,
    /// A certificate of f+1 Certify votes for a committed block.
    CommitQc = 6,
    /// The new leader's round-1 proposal carrying the status.
    NewViewProposal = 7,
    /// A vote on the round-1 proposal.
    NewViewVote = 8,
    /// Optimized no-progress status: a node's signed locked block (§5.6).
    LockStatus = 9,
    /// Chain synchronization: request a missing block by hash.
    SyncRequest = 10,
    /// Chain synchronization: a segment of blocks.
    SyncResponse = 11,
    /// A Sync HotStuff / OptSync vote (used by the baseline protocols,
    /// which share this crate's certificate machinery).
    HsVote = 12,
    /// Client commands forwarded from a non-leading node to the current
    /// proposer, so closed-loop workloads cannot strand transactions at
    /// nodes that never lead.
    Forward = 13,
    /// Crash-recovery: a restarted replica asks peers for the committed
    /// chain above its last durable height.
    Repair = 14,
    /// Crash-recovery: a committed-chain suffix answering a
    /// [`MsgKind::Repair`], plus the responder's current view.
    RepairReply = 15,
}

impl MsgKind {
    /// Decodes a wire tag byte (the `repr(u8)` discriminant).
    pub fn from_wire(tag: u8) -> Option<MsgKind> {
        Some(match tag {
            1 => MsgKind::Propose,
            2 => MsgKind::Blame,
            3 => MsgKind::BlameQc,
            4 => MsgKind::CommitUpdate,
            5 => MsgKind::Certify,
            6 => MsgKind::CommitQc,
            7 => MsgKind::NewViewProposal,
            8 => MsgKind::NewViewVote,
            9 => MsgKind::LockStatus,
            10 => MsgKind::SyncRequest,
            11 => MsgKind::SyncResponse,
            12 => MsgKind::HsVote,
            13 => MsgKind::Forward,
            14 => MsgKind::Repair,
            15 => MsgKind::RepairReply,
            _ => return None,
        })
    }
}

/// The canonical byte string covered by a signature: `(kind, view, data)`.
pub fn signing_bytes(kind: MsgKind, view: u64, data: &Digest) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    out.push(kind as u8);
    out.extend_from_slice(&view.to_le_bytes());
    out.extend_from_slice(data.as_bytes());
    out
}

/// A quorum certificate: `threshold` distinct signatures over
/// `(kind, view, data)` (the `QC` helper of Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumCert {
    /// The certified message type.
    pub kind: MsgKind,
    /// The view the certificate belongs to.
    pub view: u64,
    /// Digest of the certified data (typically a block id).
    pub data: Digest,
    /// Height of the certified block (for highest-certificate comparison).
    pub height: u64,
    /// The aggregated `(signer, signature)` pairs.
    pub sigs: Vec<(NodeId, Signature)>,
}

impl QuorumCert {
    /// Validates the certificate: at least `threshold` *distinct* signers,
    /// every signature valid over `(kind, view, data)`.
    ///
    /// Returns `(valid, signature_checks_performed)` so callers can charge
    /// verification energy for the work actually done.
    pub fn verify(&self, pki: &KeyStore, threshold: usize) -> (bool, usize) {
        let mut seen = std::collections::BTreeSet::new();
        let bytes = signing_bytes(self.kind, self.view, &self.data);
        let mut checks = 0;
        for (signer, sig) in &self.sigs {
            if sig.signer() != *signer || !seen.insert(*signer) {
                return (false, checks);
            }
            checks += 1;
            if !pki.verify(&bytes, sig) {
                return (false, checks);
            }
        }
        (seen.len() >= threshold, checks)
    }

    /// Wire size: exactly the certificate's encoded length (see
    /// [`crate::codec`]).
    pub fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }
}

impl Hashable for QuorumCert {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(self.data.as_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        for (signer, sig) in &self.sigs {
            out.extend_from_slice(&signer.to_le_bytes());
            out.extend_from_slice(&(sig.scheme().signature_size() as u64).to_le_bytes());
        }
    }
}

/// A block certified by a commit QC (view-change status entry).
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedBlock {
    /// The certificate over `block`'s id.
    pub qc: QuorumCert,
    /// The certified block (header + payload so receivers can extend it).
    pub block: Block,
}

/// A locked block signed by its holder (optimized status entry, §5.6).
#[derive(Debug, Clone, PartialEq)]
pub struct SignedBlock {
    /// The holder's locked block.
    pub block: Block,
    /// The holder.
    pub signer: NodeId,
    /// Signature over `(LockStatus, view, block.id())`.
    pub sig: Signature,
}

/// The status a new-view proposal justifies itself with.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// Full path: f+1 commit certificates (Algorithm 2).
    CommitQcs(Vec<CertifiedBlock>),
    /// Optimized no-progress path: f+1 signed locked blocks (§5.6).
    Locks(Vec<SignedBlock>),
}

impl Status {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Status::CommitQcs(v) => v.len(),
            Status::Locks(v) => v.len(),
        }
    }

    /// Whether the status is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id and height of the highest block in the status.
    pub fn highest(&self) -> Option<(Digest, u64)> {
        match self {
            Status::CommitQcs(v) => {
                v.iter().map(|c| (c.block.id(), c.block.height)).max_by_key(|(_, h)| *h)
            }
            Status::Locks(v) => {
                v.iter().map(|s| (s.block.id(), s.block.height)).max_by_key(|(_, h)| *h)
            }
        }
    }
}

impl Hashable for Status {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Status::CommitQcs(v) => {
                out.push(1);
                for c in v {
                    c.qc.encode_into(out);
                    c.block.encode_into(out);
                }
            }
            Status::Locks(v) => {
                out.push(2);
                for s in v {
                    s.block.encode_into(out);
                    out.extend_from_slice(&s.signer.to_le_bytes());
                }
            }
        }
    }
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A proposal for `round` (steady state when `round ≥ 3`; round 2 of a
    /// new view carries the vote certificate in `justify`).
    Propose {
        /// The proposed block.
        block: Block,
        /// The proposal round.
        round: u64,
        /// Round-2 new-view proposals carry the round-1 vote QC.
        justify: Option<QuorumCert>,
    },
    /// Blame; optionally carrying an equivocation proof (two conflicting
    /// signed proposals from the same leader, view, and round).
    Blame {
        /// `Some((p1, p2))` for equivocation blames.
        proof: Option<Box<(SignedMsg, SignedMsg)>>,
    },
    /// A certificate of f+1 blames.
    BlameQc(QuorumCert),
    /// Post-quit announcement of the sender's highest committed block.
    CommitUpdate {
        /// The committed block.
        block: Block,
    },
    /// A vote certifying `block_id` at `height` for its announcer.
    Certify {
        /// The certified block id.
        block_id: Digest,
        /// Its height.
        height: u64,
    },
    /// A formed commit certificate plus the certified block.
    CommitQc(CertifiedBlock),
    /// The new leader's round-1 proposal.
    NewViewProposal {
        /// f+1 status entries.
        status: Status,
        /// The round-1 block extending the highest status block.
        block: Block,
    },
    /// A vote on the round-1 proposal (signed over the proposal hash).
    NewViewVote {
        /// `H(prop)`.
        prop_hash: Digest,
    },
    /// Optimized status: the sender's locked block (§5.6).
    LockStatus {
        /// The locked block.
        block: Block,
    },
    /// Request for a missing block (chain synchronization).
    SyncRequest {
        /// The wanted block id.
        want: Digest,
    },
    /// A segment of blocks answering a [`Payload::SyncRequest`].
    SyncResponse {
        /// The blocks, nearest-descendant first.
        blocks: Vec<Block>,
    },
    /// Client commands relayed from a non-leading node to the current
    /// proposer (command forwarding — without it, a transaction injected
    /// at a node that never leads waits in that node's pool forever).
    Forward {
        /// The forwarded commands, in injection order.
        commands: crate::block::Commands,
    },
    /// A restarted replica's catch-up request: "send me the committed
    /// chain above `from_height`" (crash-recovery repair protocol).
    Repair {
        /// The requester's last durable committed height.
        from_height: u64,
    },
    /// A committed-chain suffix answering a [`Payload::Repair`]. The
    /// blocks are hash-chained (oldest first), so the reply is
    /// self-certifying once the requester checks the links; `view` tells
    /// the recovering node which view the network has reached.
    RepairReply {
        /// Committed blocks above the requested height, oldest first.
        blocks: Vec<Block>,
        /// The responder's current view.
        view: u64,
    },
}

impl Payload {
    /// The message type tag.
    pub fn kind(&self) -> MsgKind {
        match self {
            Payload::Propose { .. } => MsgKind::Propose,
            Payload::Blame { .. } => MsgKind::Blame,
            Payload::BlameQc(_) => MsgKind::BlameQc,
            Payload::CommitUpdate { .. } => MsgKind::CommitUpdate,
            Payload::Certify { .. } => MsgKind::Certify,
            Payload::CommitQc(_) => MsgKind::CommitQc,
            Payload::NewViewProposal { .. } => MsgKind::NewViewProposal,
            Payload::NewViewVote { .. } => MsgKind::NewViewVote,
            Payload::LockStatus { .. } => MsgKind::LockStatus,
            Payload::SyncRequest { .. } => MsgKind::SyncRequest,
            Payload::SyncResponse { .. } => MsgKind::SyncResponse,
            Payload::Forward { .. } => MsgKind::Forward,
            Payload::Repair { .. } => MsgKind::Repair,
            Payload::RepairReply { .. } => MsgKind::RepairReply,
        }
    }

    /// The digest the sender signs for this payload — chosen so that
    /// signatures over semantically aggregatable messages (blames, votes,
    /// certifies) coincide and can form quorum certificates.
    pub fn signing_digest(&self, view: u64) -> Digest {
        match self {
            Payload::Propose { block, round, .. } => {
                Digest::of_parts(&[b"propose", block.id().as_bytes(), &round.to_le_bytes()])
            }
            Payload::Blame { .. } => Digest::of_parts(&[b"blame", &view.to_le_bytes()]),
            Payload::BlameQc(qc) => qc.digest(),
            Payload::CommitUpdate { block } => block.id(),
            Payload::Certify { block_id, .. } => *block_id,
            Payload::CommitQc(c) => c.qc.digest(),
            Payload::NewViewProposal { status, block } => {
                Digest::of_parts(&[b"nvp", block.id().as_bytes(), status.digest().as_bytes()])
            }
            Payload::NewViewVote { prop_hash } => *prop_hash,
            Payload::LockStatus { block } => block.id(),
            Payload::SyncRequest { want } => *want,
            Payload::SyncResponse { blocks } => {
                let mut h = Vec::new();
                for b in blocks {
                    h.extend_from_slice(b.id().as_bytes());
                }
                Digest::of(&h)
            }
            Payload::Forward { commands } => {
                let mut h = Vec::from(&b"fwd"[..]);
                for c in commands {
                    h.extend_from_slice(&(c.len() as u64).to_le_bytes());
                    h.extend_from_slice(c.bytes());
                }
                Digest::of(&h)
            }
            Payload::Repair { from_height } => {
                Digest::of_parts(&[b"repair", &from_height.to_le_bytes()])
            }
            Payload::RepairReply { blocks, view } => {
                let mut h = Vec::from(&b"repair-reply"[..]);
                h.extend_from_slice(&view.to_le_bytes());
                for b in blocks {
                    h.extend_from_slice(b.id().as_bytes());
                }
                Digest::of(&h)
            }
        }
    }
}

/// A signed protocol message (the `Msg` envelope of Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SignedMsg {
    /// The payload.
    pub payload: Payload,
    /// The view this message belongs to.
    pub view: u64,
    /// The signing node.
    pub signer: NodeId,
    /// Signature over `(kind, view, signing_digest)`.
    pub sig: Signature,
}

impl SignedMsg {
    /// Signs `payload` for `view` with `keypair` (the `Msg` constructor).
    pub fn new(payload: Payload, view: u64, keypair: &KeyPair) -> Self {
        let digest = payload.signing_digest(view);
        let bytes = signing_bytes(payload.kind(), view, &digest);
        SignedMsg { sig: keypair.sign(&bytes), signer: keypair.signer(), view, payload }
    }

    /// Verifies the envelope signature. Returns whether it is valid; the
    /// check costs exactly one signature verification.
    pub fn verify_sig(&self, pki: &KeyStore) -> bool {
        if self.sig.signer() != self.signer {
            return false;
        }
        let digest = self.payload.signing_digest(self.view);
        let bytes = signing_bytes(self.payload.kind(), self.view, &digest);
        pki.verify(&bytes, &self.sig)
    }

    /// `MatchingMsg` of Algorithm 1.
    pub fn matches(&self, kind: MsgKind, view: u64) -> bool {
        self.payload.kind() == kind && self.view == view
    }

    /// Serialized size: exactly the encoded frame length — header (4) +
    /// kind (1) + view (8) + signer (4) + body + signature (see
    /// [`crate::codec`]).
    pub fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }
}

impl eesmr_net::Message for SignedMsg {
    fn wire_size(&self) -> usize {
        self.wire_size()
    }

    fn flood_key(&self) -> u64 {
        // Identity for relay-once dedup: kind, view, signer and data digest
        // make distinct protocol messages distinct.
        Digest::of_parts(&[
            &[self.payload.kind() as u8],
            &self.view.to_le_bytes(),
            &self.signer.to_le_bytes(),
            self.payload.signing_digest(self.view).as_bytes(),
        ])
        .to_u64()
    }

    fn phase(&self) -> eesmr_energy::EnergyPhase {
        use eesmr_energy::EnergyPhase;
        match self.payload.kind() {
            MsgKind::Propose | MsgKind::NewViewProposal => EnergyPhase::Propose,
            MsgKind::NewViewVote | MsgKind::HsVote | MsgKind::Certify => EnergyPhase::Vote,
            MsgKind::CommitUpdate | MsgKind::CommitQc => EnergyPhase::Commit,
            MsgKind::Blame | MsgKind::BlameQc => EnergyPhase::ViewChange,
            MsgKind::LockStatus => EnergyPhase::Status,
            MsgKind::Forward => EnergyPhase::Forward,
            MsgKind::SyncRequest
            | MsgKind::SyncResponse
            | MsgKind::Repair
            | MsgKind::RepairReply => EnergyPhase::Sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eesmr_crypto::SigScheme;
    use eesmr_net::Message as _;

    fn pki() -> KeyStore {
        KeyStore::generate(4, SigScheme::Rsa1024, 99)
    }

    fn propose(view: u64, round: u64, pki: &KeyStore, signer: NodeId) -> SignedMsg {
        let block = Block::extending(&Block::genesis(), view, round, vec![]);
        SignedMsg::new(Payload::Propose { block, round, justify: None }, view, pki.keypair(signer))
    }

    #[test]
    fn sign_verify_round_trip() {
        let pki = pki();
        let msg = propose(1, 3, &pki, 0);
        assert!(msg.verify_sig(&pki));
        assert!(msg.matches(MsgKind::Propose, 1));
        assert!(!msg.matches(MsgKind::Blame, 1));
        assert!(!msg.matches(MsgKind::Propose, 2));
    }

    #[test]
    fn tampered_signer_fails() {
        let pki = pki();
        let mut msg = propose(1, 3, &pki, 0);
        msg.signer = 1;
        assert!(!msg.verify_sig(&pki));
    }

    #[test]
    fn tampered_view_fails() {
        let pki = pki();
        let mut msg = propose(1, 3, &pki, 0);
        msg.view = 2;
        assert!(!msg.verify_sig(&pki));
    }

    #[test]
    fn blame_signing_digests_aggregate() {
        // All blames for a view sign the same digest, so they can form QCs.
        let a = Payload::Blame { proof: None }.signing_digest(5);
        let b = Payload::Blame { proof: None }.signing_digest(5);
        let c = Payload::Blame { proof: None }.signing_digest(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn quorum_cert_verifies_with_distinct_signers() {
        let pki = pki();
        let data = Digest::of(b"blame-data");
        let bytes = signing_bytes(MsgKind::Blame, 3, &data);
        let sigs: Vec<_> = (0..3u32).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
        let qc = QuorumCert { kind: MsgKind::Blame, view: 3, data, height: 0, sigs };
        let (ok, checks) = qc.verify(&pki, 3);
        assert!(ok);
        assert_eq!(checks, 3);
        // Threshold not met:
        let (ok, _) = qc.verify(&pki, 4);
        assert!(!ok);
    }

    #[test]
    fn quorum_cert_rejects_duplicate_signers() {
        let pki = pki();
        let data = Digest::of(b"x");
        let bytes = signing_bytes(MsgKind::Certify, 2, &data);
        let sig = pki.keypair(1).sign(&bytes);
        let qc = QuorumCert {
            kind: MsgKind::Certify,
            view: 2,
            data,
            height: 0,
            sigs: vec![(1, sig.clone()), (1, sig)],
        };
        assert!(!qc.verify(&pki, 2).0);
    }

    #[test]
    fn quorum_cert_rejects_wrong_view_sigs() {
        let pki = pki();
        let data = Digest::of(b"x");
        let bytes = signing_bytes(MsgKind::Certify, 2, &data);
        let sigs: Vec<_> = (0..2u32).map(|i| (i, pki.keypair(i).sign(&bytes))).collect();
        let qc = QuorumCert { kind: MsgKind::Certify, view: 3, data, height: 0, sigs };
        assert!(!qc.verify(&pki, 2).0, "signatures are over view 2, QC claims view 3");
    }

    #[test]
    fn flood_keys_distinguish_messages() {
        let pki = pki();
        let m1 = propose(1, 3, &pki, 0);
        let m2 = propose(1, 4, &pki, 0);
        let m3 = propose(2, 3, &pki, 0);
        assert_ne!(m1.flood_key(), m2.flood_key());
        assert_ne!(m1.flood_key(), m3.flood_key());
        assert_eq!(m1.flood_key(), m1.clone().flood_key());
    }

    #[test]
    fn equivocating_proposals_have_same_kind_view_round_different_digest() {
        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 3, vec![crate::block::Command::synthetic(1, 8)]);
        let b2 = Block::extending(&g, 1, 3, vec![crate::block::Command::synthetic(2, 8)]);
        let p1 = Payload::Propose { block: b1, round: 3, justify: None };
        let p2 = Payload::Propose { block: b2, round: 3, justify: None };
        assert_ne!(p1.signing_digest(1), p2.signing_digest(1));
    }

    #[test]
    fn status_highest_picks_tallest_block() {
        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 3, vec![]);
        let b2 = Block::extending(&b1, 1, 4, vec![]);
        let pki = pki();
        let mk = |b: &Block| SignedBlock {
            block: b.clone(),
            signer: 0,
            sig: pki.keypair(0).sign(b.id().as_bytes()),
        };
        let status = Status::Locks(vec![mk(&b1), mk(&b2)]);
        assert_eq!(status.highest(), Some((b2.id(), 2)));
        assert_eq!(status.len(), 2);
        assert!(!status.is_empty());
    }

    #[test]
    fn repair_round_trip_and_digests() {
        let pki = pki();
        let req = SignedMsg::new(Payload::Repair { from_height: 7 }, 2, pki.keypair(1));
        assert!(req.verify_sig(&pki));
        assert!(req.matches(MsgKind::Repair, 2));
        // header 4 + kind 1 + view 8 + signer 4 + height body 8 +
        // RSA-1024 signature (5 + 128).
        assert_eq!(req.wire_size(), 4 + 1 + 8 + 4 + 8 + (5 + 128));

        let g = Block::genesis();
        let b1 = Block::extending(&g, 1, 3, vec![]);
        let reply = SignedMsg::new(
            Payload::RepairReply { blocks: vec![b1.clone()], view: 4 },
            2,
            pki.keypair(0),
        );
        assert!(reply.verify_sig(&pki));
        assert!(reply.matches(MsgKind::RepairReply, 2));
        // Replies with different chain suffixes or views sign differently.
        let d1 = Payload::RepairReply { blocks: vec![b1.clone()], view: 4 }.signing_digest(2);
        let d2 = Payload::RepairReply { blocks: vec![], view: 4 }.signing_digest(2);
        let d3 = Payload::RepairReply { blocks: vec![b1], view: 5 }.signing_digest(2);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(
            Payload::Repair { from_height: 7 }.signing_digest(2),
            Payload::Repair { from_height: 8 }.signing_digest(2)
        );
    }

    #[test]
    fn wire_sizes_are_plausible() {
        let pki = pki();
        let msg = propose(1, 3, &pki, 0);
        // envelope 17 (frame header 4 + kind 1 + view 8 + signer 4)
        // + empty block (60) + round 8 + justify flag 1
        // + RSA-1024 signature (5 + 128).
        assert_eq!(msg.wire_size(), 17 + 60 + 8 + 1 + (5 + 128));
        let blame = SignedMsg::new(Payload::Blame { proof: None }, 1, pki.keypair(0));
        assert_eq!(blame.wire_size(), 17 + 1 + (5 + 128));
    }
}
