//! EESMR — the paper's energy-efficient BFT-SMR protocol.
//!
//! This crate implements Algorithm 2 in full: the certificate-free steady
//! state ("voting in the head": relay the leader's proposal once, wait 4Δ
//! for silence on equivocation, commit), blame handling for stalled and
//! equivocating leaders, the quit-view / new-view machinery that converts
//! implicit votes into explicit certificates, chain synchronization, the
//! crash-only variant, and the §3.5/§5.6 optimizations — all behind the
//! [`eesmr_net::Actor`] interface so replicas run unchanged over any
//! simulated topology and channel pricing.
//!
//! # Quick example: 5 replicas on the paper's ring topology
//!
//! ```
//! use std::sync::Arc;
//! use eesmr_core::{Config, FaultMode, Replica, build_replicas};
//! use eesmr_crypto::{KeyStore, SigScheme};
//! use eesmr_hypergraph::topology::ring_kcast;
//! use eesmr_net::{NetConfig, SimNet, SimDuration};
//!
//! let topology = ring_kcast(5, 2);
//! let net_cfg = NetConfig::ble(topology, 42);
//! let config = Config::new(5, net_cfg.delta());
//! let pki = Arc::new(KeyStore::generate(5, SigScheme::Rsa1024, 42));
//! let replicas = build_replicas(&config, &pki, |_| FaultMode::Honest);
//!
//! let mut net = SimNet::new(net_cfg, replicas);
//! net.run_for(SimDuration::from_millis(200));
//! assert!(net.actor(0).committed_height() >= 3, "the log grows");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod broadcast;
pub mod client;
pub mod codec;
pub mod config;
pub mod message;
pub mod metrics;
pub mod replica;
pub mod txpool;
mod view_change;

pub use block::{
    deep_clone_spine, set_deep_clone_spine, Block, BlockStore, ChainRelation, Command, Commands,
    Lineage,
};
pub use broadcast::{build_bb_nodes, BbNode, BbOutput};
pub use config::{BatchPolicy, Config, FaultMode, LeaderPolicy, Pacing};
pub use message::{CertifiedBlock, MsgKind, Payload, QuorumCert, SignedBlock, SignedMsg, Status};
pub use metrics::Metrics;
pub use replica::{Replica, TimerToken};
pub use txpool::{AdaptiveBatcher, TxPool, WorkloadSource};
pub use view_change::build_replicas;
