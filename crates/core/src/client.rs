//! SMR clients.
//!
//! "The client waits to receive f+1 identical acknowledgments with
//! execution results and accepts the results." (§3) The protocol crates
//! keep clients out of the replication path (as the paper does for its
//! energy accounting); this module provides the acceptance rule for
//! applications built on top.

use std::collections::BTreeMap;

use eesmr_crypto::Digest;
use eesmr_net::NodeId;

/// An execution acknowledgment from one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// The replica reporting.
    pub replica: NodeId,
    /// The command's digest.
    pub command: Digest,
    /// Digest of the execution result.
    pub result: Digest,
}

/// Client-side acceptance: a result is accepted once `f + 1` replicas
/// report an *identical* result for the command.
///
/// # Examples
///
/// ```
/// use eesmr_core::client::{Ack, AckCollector};
/// use eesmr_crypto::Digest;
///
/// let mut c = AckCollector::new(1); // f = 1 → need 2 matching acks
/// let cmd = Digest::of(b"cmd");
/// let res = Digest::of(b"result");
/// assert_eq!(c.observe(Ack { replica: 0, command: cmd, result: res }), None);
/// assert_eq!(c.observe(Ack { replica: 2, command: cmd, result: res }), Some(res));
/// ```
#[derive(Debug, Clone)]
pub struct AckCollector {
    f: usize,
    // command -> result -> set of replicas
    seen: BTreeMap<Digest, BTreeMap<Digest, Vec<NodeId>>>,
    accepted: BTreeMap<Digest, Digest>,
}

impl AckCollector {
    /// A collector for a system tolerating `f` faults.
    pub fn new(f: usize) -> Self {
        AckCollector { f, seen: BTreeMap::new(), accepted: BTreeMap::new() }
    }

    /// Records an ack; returns the accepted result digest the first time a
    /// command crosses the `f + 1` matching threshold.
    pub fn observe(&mut self, ack: Ack) -> Option<Digest> {
        if self.accepted.contains_key(&ack.command) {
            return None;
        }
        let replicas = self.seen.entry(ack.command).or_default().entry(ack.result).or_default();
        if !replicas.contains(&ack.replica) {
            replicas.push(ack.replica);
        }
        if replicas.len() > self.f {
            self.accepted.insert(ack.command, ack.result);
            return Some(ack.result);
        }
        None
    }

    /// The accepted result for a command, if any.
    pub fn accepted(&self, command: &Digest) -> Option<&Digest> {
        self.accepted.get(command)
    }

    /// Number of commands with accepted results.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(replica: NodeId, cmd: &[u8], result: &[u8]) -> Ack {
        Ack { replica, command: Digest::of(cmd), result: Digest::of(result) }
    }

    #[test]
    fn needs_f_plus_one_matching() {
        let mut c = AckCollector::new(2);
        assert_eq!(c.observe(ack(0, b"c", b"r")), None);
        assert_eq!(c.observe(ack(1, b"c", b"r")), None);
        assert_eq!(c.observe(ack(2, b"c", b"r")), Some(Digest::of(b"r")));
        assert_eq!(c.accepted_count(), 1);
    }

    #[test]
    fn conflicting_results_do_not_combine() {
        let mut c = AckCollector::new(1);
        assert_eq!(c.observe(ack(0, b"c", b"r1")), None);
        assert_eq!(c.observe(ack(1, b"c", b"r2")), None, "different results");
        assert_eq!(c.observe(ack(2, b"c", b"r1")), Some(Digest::of(b"r1")));
    }

    #[test]
    fn duplicate_replica_acks_count_once() {
        let mut c = AckCollector::new(1);
        assert_eq!(c.observe(ack(0, b"c", b"r")), None);
        assert_eq!(c.observe(ack(0, b"c", b"r")), None, "same replica repeated");
        assert_eq!(c.observe(ack(1, b"c", b"r")), Some(Digest::of(b"r")));
    }

    #[test]
    fn acceptance_is_sticky_and_queryable() {
        let mut c = AckCollector::new(0);
        let r = c.observe(ack(3, b"c", b"r"));
        assert_eq!(r, Some(Digest::of(b"r")));
        assert_eq!(c.accepted(&Digest::of(b"c")), Some(&Digest::of(b"r")));
        // Further acks for an accepted command are ignored.
        assert_eq!(c.observe(ack(4, b"c", b"other")), None);
        assert_eq!(c.accepted(&Digest::of(b"c")), Some(&Digest::of(b"r")));
    }

    #[test]
    fn commands_are_independent() {
        let mut c = AckCollector::new(0);
        assert_eq!(c.observe(ack(0, b"a", b"ra")), Some(Digest::of(b"ra")));
        assert_eq!(c.observe(ack(0, b"b", b"rb")), Some(Digest::of(b"rb")));
        assert_eq!(c.accepted_count(), 2);
    }
}
