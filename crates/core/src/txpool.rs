//! The pending-command pool (`txpool` in the paper's description).
//!
//! "All nodes maintain pending commands in a local data structure txpool.
//! The leader proposes blocks using the commands from txpool and the other
//! nodes on committing a block, remove the commands in the block from the
//! txpool." (§3)

use std::collections::{HashSet, VecDeque};

use eesmr_net::SimTime;
use eesmr_trace::hist::LogHistogram;

use crate::block::{Block, Command};
use crate::config::BatchPolicy;
use crate::metrics::Metrics;

/// A deterministic per-node stream of client transactions, driven by the
/// protocol's arrival timer events (see `eesmr-workload` for the
/// implementations: arrival processes × per-node skew × payload
/// distributions × open/closed-loop injection).
///
/// The replica's contract: on start it asks for the first delay via
/// [`next_arrival_in`](WorkloadSource::next_arrival_in) and arms an
/// arrival timer; when the timer fires it calls
/// [`arrival`](WorkloadSource::arrival) with its current in-flight count
/// (the source may suppress the injection — the closed-loop bound), then
/// asks for the next delay and re-arms. `Send` is required so replicas
/// stay movable across the experiment driver's worker threads.
pub trait WorkloadSource: Send {
    /// Microseconds from `now_us` until the next arrival event, or
    /// `None` if the stream is silent (ends the timer chain).
    fn next_arrival_in(&mut self, now_us: u64) -> Option<u64>;

    /// The transaction for the arrival firing at `now_us`, given the
    /// node's current in-flight (injected-but-uncommitted) count; `None`
    /// when the source declines to inject (closed-loop bound reached).
    fn arrival(&mut self, now_us: u64, in_flight: usize) -> Option<Command>;
}

/// One live workload transaction born at this node.
#[derive(Debug, Clone)]
struct Birth {
    cmd: Command,
    /// Birth time, µs — the latency clock, never touched after submit.
    born_us: u64,
    /// Earliest time the forward-retry timer may requeue this command
    /// (again): starts at 0, so the first retry is governed purely by
    /// age, and is pushed one full window ahead on every requeue — a
    /// just-re-forwarded command gets a fresh window to resolve instead
    /// of being immediately stale again (its birth never advances).
    retry_after_us: u64,
}

/// Pool of pending client commands.
///
/// Two modes:
/// * **Client-fed** — commands arrive via [`TxPool::submit`].
/// * **Synthetic** — when the pool is empty and a synthetic payload size is
///   configured, batches are generated on demand (the paper's fixed-size
///   `|b_i|` workloads, §5.6). The synthetic *depth* models offered load:
///   how many commands are available per proposal (default 1).
#[derive(Debug, Clone)]
pub struct TxPool {
    pending: VecDeque<Command>,
    synthetic_len: Option<usize>,
    synthetic_depth: usize,
    next_seq: u64,
    /// Live workload transactions born at this node. Entries persist
    /// after batching (the leader drains `pending` into a proposal long
    /// before the commit) and are settled by
    /// [`remove_committed`](TxPool::remove_committed).
    births: Vec<Birth>,
    /// End-to-end (birth → local commit) latencies of settled workload
    /// transactions, in microseconds, as a streaming histogram.
    tx_latencies: LogHistogram,
    /// High-water mark of `pending.len()` over the pool's lifetime —
    /// the peak backlog reported per run. Updated at every enqueue
    /// (submission and requeue), which is where the queue can only grow.
    peak_pending: usize,
}

impl TxPool {
    /// An empty, client-fed pool.
    pub fn new() -> Self {
        TxPool {
            pending: VecDeque::new(),
            synthetic_len: None,
            synthetic_depth: 1,
            next_seq: 0,
            births: Vec::new(),
            tx_latencies: LogHistogram::new(),
            peak_pending: 0,
        }
    }

    /// A pool that synthesizes one `len`-byte command per batch whenever it
    /// has no real commands queued.
    pub fn synthetic(len: usize) -> Self {
        TxPool { synthetic_len: Some(len), ..TxPool::new() }
    }

    /// Disables the synthetic fallback: the pool only serves real
    /// (client- or workload-fed) commands, and an empty pool yields empty
    /// batches. Attaching a [`WorkloadSource`] implies this.
    pub fn client_only(&mut self) {
        self.synthetic_len = None;
    }

    /// Sets the synthetic offered load: up to `depth` commands fabricated
    /// per batch when the pool has no real commands (clamped to ≥ 1).
    pub fn with_offered_load(mut self, depth: usize) -> Self {
        self.synthetic_depth = depth.max(1);
        self
    }

    /// Queues a client command.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push_back(cmd);
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Queues a workload transaction born at `now_us`, tracking it until
    /// commit so its end-to-end latency can be measured.
    pub fn submit_at(&mut self, cmd: Command, now_us: u64) {
        self.births.push(Birth { cmd: cmd.clone(), born_us: now_us, retry_after_us: 0 });
        self.pending.push_back(cmd);
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Workload transactions born here and not yet committed (the
    /// closed-loop in-flight count).
    pub fn in_flight(&self) -> usize {
        self.births.len()
    }

    /// Runs one arrival event from `source` against this pool: injects
    /// the transaction it yields (unless the closed-loop bound
    /// suppresses it), counts it in `metrics`, reports it to
    /// `on_inject` (the tracing hook — protocols emit their `TxInject`
    /// event there), and returns the delay until the source's next
    /// arrival event, if any. Every protocol's arrival handler funnels
    /// through this, so the inject/count/trace/re-arm sequence cannot
    /// drift between them — the caller only arms its own timer token
    /// with the returned delay.
    pub fn drive_arrival(
        &mut self,
        source: &mut dyn WorkloadSource,
        metrics: &mut Metrics,
        now_us: u64,
        mut on_inject: impl FnMut(&Command),
    ) -> Option<u64> {
        if let Some(cmd) = source.arrival(now_us, self.in_flight()) {
            metrics.tx_injected += 1;
            on_inject(&cmd);
            self.submit_at(cmd, now_us);
        }
        source.next_arrival_in(now_us)
    }

    /// Histogram of end-to-end (birth → local commit) latencies of this
    /// node's committed workload transactions, in microseconds.
    pub fn tx_latencies(&self) -> &LogHistogram {
        &self.tx_latencies
    }

    /// Re-queues birth-tracked workload transactions that are tracked
    /// but no longer pending: commands the proposer drained into blocks
    /// of a view that was abandoned would otherwise be lost forever
    /// (their `births` entries can only settle through a commit).
    /// Protocols call this on new-view entry. A command whose old-view
    /// block *does* still commit (as an ancestor of the certified
    /// chain) may then ride a second block too; latency settles once,
    /// at its first commit.
    pub fn requeue_unresolved(&mut self) {
        let pending: HashSet<&Command> = self.pending.iter().collect();
        let lost: Vec<Command> = self
            .births
            .iter()
            .filter(|b| !pending.contains(&b.cmd))
            .map(|b| b.cmd.clone())
            .collect();
        self.pending.extend(lost);
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Whether any birth-tracked workload transaction is in flight but
    /// no longer queued locally (drained into a proposal or forwarded
    /// away) — i.e. whether there is anything a retry timer could ever
    /// need to rescue.
    pub fn has_unresolved(&self) -> bool {
        if self.births.is_empty() {
            return false;
        }
        let pending: HashSet<&Command> = self.pending.iter().collect();
        self.births.iter().any(|b| !pending.contains(&b.cmd))
    }

    /// The earliest time (µs) any unresolved transaction becomes
    /// eligible for a retry under a `window_us` staleness window —
    /// `max(birth + window, retry cooldown)` minimised over the
    /// in-flight set — or `None` when nothing is in flight. The
    /// forward-retry timer schedules its next fire for exactly this
    /// instant.
    pub fn next_retry_due_us(&self, window_us: u64) -> Option<u64> {
        if self.births.is_empty() {
            return None;
        }
        let pending: HashSet<&Command> = self.pending.iter().collect();
        self.births
            .iter()
            .filter(|b| !pending.contains(&b.cmd))
            .map(|b| (b.born_us + window_us).max(b.retry_after_us))
            .min()
    }

    /// Re-queues unresolved transactions (see
    /// [`requeue_unresolved`](TxPool::requeue_unresolved)) that were born
    /// at least `age_us` before `now_us`; younger in-flight commands are
    /// presumed to be riding a block toward commit and are left alone.
    /// Returns whether anything was restored. Used by the forward-retry
    /// timer: a fire-and-forget forward swallowed by a partition has no
    /// view change to rescue it, so age is the only stranding signal.
    pub fn requeue_stale(&mut self, now_us: u64, age_us: u64) -> bool {
        let mut lost: Vec<Command> = Vec::new();
        {
            let pending: HashSet<&Command> = self.pending.iter().collect();
            for b in &mut self.births {
                let due = (b.born_us + age_us).max(b.retry_after_us);
                if now_us >= due && !pending.contains(&b.cmd) {
                    b.retry_after_us = now_us + age_us;
                    lost.push(b.cmd.clone());
                }
            }
        }
        let restored = !lost.is_empty();
        self.pending.extend(lost);
        self.peak_pending = self.peak_pending.max(self.pending.len());
        restored
    }

    /// Drains every queued command for forwarding to the current
    /// proposer. Birth tracking is untouched: a forwarded transaction
    /// still settles (and measures its latency) here at its origin when
    /// the block carrying it commits — and if the proposer's view dies
    /// first, [`requeue_unresolved`](TxPool::requeue_unresolved) puts
    /// the command back for re-forwarding to the next leader.
    pub fn take_pending(&mut self) -> Vec<Command> {
        self.pending.drain(..).collect()
    }

    /// Number of queued commands (synthetic generation not counted).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no real commands are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The backlog an adaptive proposer observes: real queued commands,
    /// or the synthetic offered load when the pool would fabricate a
    /// batch.
    pub fn backlog(&self) -> usize {
        if !self.pending.is_empty() {
            self.pending.len()
        } else if self.synthetic_len.is_some() {
            self.synthetic_depth
        } else {
            0
        }
    }

    /// High-water mark of the real queued-command backlog over the
    /// pool's lifetime (synthetic generation not counted).
    pub fn peak_backlog(&self) -> usize {
        self.peak_pending
    }

    /// Takes the next batch of at most `max` commands for a proposal.
    /// Falls back to synthetic commands (up to the configured offered
    /// load) when configured and empty.
    pub fn next_batch(&mut self, max: usize) -> Vec<Command> {
        if self.pending.is_empty() {
            return match self.synthetic_len {
                Some(len) => {
                    let count = self.synthetic_depth.min(max.max(1));
                    (0..count)
                        .map(|_| {
                            let seq = self.next_seq;
                            self.next_seq += 1;
                            Command::synthetic(seq, len)
                        })
                        .collect()
                }
                None => Vec::new(),
            };
        }
        let take = self.pending.len().min(max.max(1));
        self.pending.drain(..take).collect()
    }

    /// Removes commands that were committed in `block` (nodes clear their
    /// pools when a block commits) and settles any of this node's tracked
    /// workload transactions the block carried, recording their
    /// birth-to-commit latency against `now`.
    pub fn remove_committed(&mut self, block: &Block, now: SimTime) {
        if block.payload.is_empty() {
            return;
        }
        // One set per block keeps commit processing linear instead of
        // O(|payload| × pool) byte-vector comparisons.
        let committed: HashSet<&Command> = block.payload.iter().collect();
        self.pending.retain(|c| !committed.contains(c));
        let latencies = &mut self.tx_latencies;
        self.births.retain(|b| {
            if committed.contains(&b.cmd) {
                latencies.record(now.since(SimTime::from_micros(b.born_us)).as_micros());
                false
            } else {
                true
            }
        });
    }
}

impl Default for TxPool {
    fn default() -> Self {
        Self::new()
    }
}

/// The proposer-side batch-size controller behind
/// [`BatchPolicy::Adaptive`].
///
/// Pure integer state: each call moves the current batch size halfway
/// toward `target_fill_pct` percent of the observed backlog (clamped to
/// the policy's `[min, max]`), so under steady load it converges
/// geometrically to the target and under bursts it reacts within a few
/// proposals without oscillating. [`BatchPolicy::Fixed`] passes through
/// unchanged.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveBatcher {
    current: usize,
}

impl AdaptiveBatcher {
    /// A controller with no history (the first adaptive call starts from
    /// the policy's `min`).
    pub fn new() -> Self {
        AdaptiveBatcher { current: 0 }
    }

    /// The batch size to use for the next proposal, given the observed
    /// pool backlog.
    pub fn next_size(&mut self, backlog: usize, policy: BatchPolicy) -> usize {
        match policy {
            BatchPolicy::Fixed(max) => max.max(1),
            BatchPolicy::Adaptive { min, max, target_fill_pct } => {
                let min = min.max(1);
                let max = max.max(min);
                let desired =
                    (backlog.saturating_mul(target_fill_pct as usize) / 100).clamp(min, max);
                if self.current == 0 {
                    self.current = min;
                }
                // Close half the gap (at least one step) toward the
                // target, then clamp.
                if desired > self.current {
                    self.current += ((desired - self.current) / 2).max(1);
                } else if desired < self.current {
                    self.current -= ((self.current - desired) / 2).max(1);
                }
                self.current = self.current.clamp(min, max);
                self.current
            }
        }
    }

    /// The last size returned (0 before the first adaptive call).
    pub fn current(&self) -> usize {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    #[test]
    fn submit_then_batch_fifo() {
        let mut pool = TxPool::new();
        pool.submit(Command::new(vec![1]));
        pool.submit(Command::new(vec![2]));
        pool.submit(Command::new(vec![3]));
        let batch = pool.next_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].bytes(), &[1]);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_non_synthetic_pool_gives_empty_batches() {
        let mut pool = TxPool::new();
        assert!(pool.next_batch(10).is_empty());
    }

    #[test]
    fn synthetic_pool_always_has_a_batch() {
        let mut pool = TxPool::synthetic(16);
        let a = pool.next_batch(10);
        let b = pool.next_batch(10);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 16);
        assert_ne!(a, b, "sequence numbers differ");
    }

    #[test]
    fn real_commands_take_priority_over_synthetic() {
        let mut pool = TxPool::synthetic(16);
        pool.submit(Command::new(vec![9; 4]));
        let batch = pool.next_batch(10);
        assert_eq!(batch[0].bytes(), &[9; 4]);
    }

    #[test]
    fn synthetic_offered_load_fabricates_a_full_batch() {
        let mut pool = TxPool::synthetic(8).with_offered_load(5);
        assert_eq!(pool.backlog(), 5);
        let batch = pool.next_batch(10);
        assert_eq!(batch.len(), 5, "offered load bounds the synthetic batch");
        let batch = pool.next_batch(3);
        assert_eq!(batch.len(), 3, "the proposer's cap still applies");
        // Real commands still take priority and drive the backlog.
        pool.submit(Command::new(vec![1]));
        assert_eq!(pool.backlog(), 1);
        assert_eq!(pool.next_batch(10).len(), 1);
    }

    #[test]
    fn client_fed_pool_has_zero_backlog_when_empty() {
        assert_eq!(TxPool::new().backlog(), 0);
    }

    #[test]
    fn adaptive_batcher_converges_under_steady_load() {
        let policy = BatchPolicy::Adaptive { min: 1, max: 256, target_fill_pct: 50 };
        let mut batcher = AdaptiveBatcher::new();
        // Steady backlog of 120 commands → target 60 per proposal.
        let mut last = 0;
        for _ in 0..32 {
            last = batcher.next_size(120, policy);
        }
        assert_eq!(last, 60, "converged to target_fill_pct of the backlog");
        assert_eq!(batcher.next_size(120, policy), 60, "and stays there");
        // Load drops: the batch shrinks back toward the new target.
        for _ in 0..32 {
            last = batcher.next_size(10, policy);
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn adaptive_batcher_respects_min_max_and_grows_gradually() {
        let policy = BatchPolicy::Adaptive { min: 4, max: 32, target_fill_pct: 100 };
        let mut batcher = AdaptiveBatcher::new();
        let first = batcher.next_size(1_000_000, policy);
        assert!(first < 32, "ramps up instead of jumping to max (got {first})");
        assert!(first >= 4);
        let mut prev = first;
        for _ in 0..16 {
            let next = batcher.next_size(1_000_000, policy);
            assert!(next >= prev, "monotone ramp under constant overload");
            prev = next;
        }
        assert_eq!(prev, 32, "saturates at the policy max");
        // An idle pool shrinks it back down to min.
        for _ in 0..16 {
            prev = batcher.next_size(0, policy);
        }
        assert_eq!(prev, 4);
    }

    #[test]
    fn fixed_policy_passes_through() {
        let mut batcher = AdaptiveBatcher::new();
        assert_eq!(batcher.next_size(7, BatchPolicy::Fixed(64)), 64);
        assert_eq!(batcher.next_size(0, BatchPolicy::Fixed(0)), 1, "zero cap clamps to one");
    }

    #[test]
    fn committed_commands_are_removed() {
        let mut pool = TxPool::new();
        let keep = Command::new(vec![1]);
        let gone = Command::new(vec![2]);
        pool.submit(keep.clone());
        pool.submit(gone.clone());
        let block = Block::extending(&Block::genesis(), 1, 3, vec![gone]);
        pool.remove_committed(&block, SimTime::ZERO);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.next_batch(1)[0], keep);
    }

    #[test]
    fn requeue_unresolved_recovers_commands_from_discarded_proposals() {
        let mut pool = TxPool::new();
        let a = Command::new(vec![1; 16]);
        let b = Command::new(vec![2; 16]);
        pool.submit_at(a.clone(), 100);
        pool.submit_at(b.clone(), 200);
        // The proposer drains both into a block the view change discards.
        assert_eq!(pool.next_batch(10).len(), 2);
        assert_eq!(pool.len(), 0);
        pool.requeue_unresolved();
        assert_eq!(pool.len(), 2, "discarded commands are proposable again");
        assert_eq!(pool.in_flight(), 2, "births are untouched by requeue");
        // Still-pending commands are not duplicated by a second call.
        pool.requeue_unresolved();
        assert_eq!(pool.len(), 2);
        // Committing the re-proposed block settles each latency once.
        let block = Block::extending(&Block::genesis(), 2, 3, vec![a, b]);
        pool.remove_committed(&block, SimTime::from_micros(1_000));
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.tx_latencies().count(), 2);
    }

    #[test]
    fn take_pending_drains_commands_but_keeps_births() {
        let mut pool = TxPool::new();
        let a = Command::new(vec![1; 8]);
        let b = Command::new(vec![2; 8]);
        pool.submit_at(a.clone(), 100);
        pool.submit_at(b.clone(), 200);
        let forwarded = pool.take_pending();
        assert_eq!(forwarded, vec![a.clone(), b.clone()]);
        assert!(pool.is_empty(), "forwarded commands leave the local queue");
        assert_eq!(pool.in_flight(), 2, "births stay until commit");
        // A view change restores them for re-forwarding to the new leader.
        pool.requeue_unresolved();
        assert_eq!(pool.len(), 2);
        // Committing the forwarded copy settles the origin's latency.
        let block = Block::extending(&Block::genesis(), 1, 3, vec![a, b]);
        pool.remove_committed(&block, SimTime::from_micros(1_000));
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.tx_latencies().count(), 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn requeue_stale_respects_the_age_threshold() {
        let mut pool = TxPool::new();
        let old = Command::new(vec![1; 8]);
        let young = Command::new(vec![2; 8]);
        pool.submit_at(old.clone(), 1_000);
        pool.submit_at(young.clone(), 9_000);
        assert!(!pool.has_unresolved(), "everything still queued locally");
        let forwarded = pool.take_pending();
        assert_eq!(forwarded.len(), 2);
        assert!(pool.has_unresolved(), "both are in flight now");
        // At t=10_000 with a 5_000µs window only the older command
        // qualifies; the younger one is presumed to be committing.
        assert!(pool.requeue_stale(10_000, 5_000));
        assert_eq!(pool.len(), 1, "only the stale command is restored");
        // Settle the restored command (commit removes it from pending
        // and resolves its birth). The young one alone doesn't qualify:
        let block = Block::extending(&Block::genesis(), 1, 3, vec![old]);
        pool.remove_committed(&block, SimTime::from_micros(11_000));
        assert!(!pool.requeue_stale(11_000, 5_000));
        // But it still counts as unresolved, so a retry stays armed...
        assert!(pool.has_unresolved());
        // ...and it qualifies once enough time passes.
        assert!(pool.requeue_stale(20_000, 5_000));
        assert_eq!(pool.next_batch(10), vec![young]);
        assert!(pool.has_unresolved());
    }

    #[test]
    fn client_only_disables_the_synthetic_fallback() {
        let mut pool = TxPool::synthetic(16).with_offered_load(8);
        pool.client_only();
        assert!(pool.next_batch(10).is_empty(), "no fabricated batch");
        assert_eq!(pool.backlog(), 0);
    }

    #[test]
    fn workload_births_survive_batching_and_settle_at_commit() {
        let mut pool = TxPool::new();
        let a = Command::new(vec![1; 16]);
        let b = Command::new(vec![2; 16]);
        pool.submit_at(a.clone(), 1_000);
        pool.submit_at(b.clone(), 2_000);
        assert_eq!(pool.in_flight(), 2);
        // The proposer drains pending into a block; births persist.
        let batch = pool.next_batch(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(pool.in_flight(), 2, "in-flight counts until commit, not until batching");
        let block = Block::extending(&Block::genesis(), 1, 3, vec![a]);
        pool.remove_committed(&block, SimTime::from_micros(5_000));
        assert_eq!(pool.in_flight(), 1, "only the committed command settles");
        assert_eq!(pool.tx_latencies().count(), 1);
        assert_eq!(pool.tx_latencies().min(), Some(4_000), "birth 1000 → commit 5000");
        let block2 = Block::extending(&block, 1, 4, vec![b]);
        pool.remove_committed(&block2, SimTime::from_micros(9_000));
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.tx_latencies().count(), 2);
        assert_eq!(pool.tx_latencies().max(), Some(7_000), "birth 2000 → commit 9000");
    }
}
