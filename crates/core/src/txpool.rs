//! The pending-command pool (`txpool` in the paper's description).
//!
//! "All nodes maintain pending commands in a local data structure txpool.
//! The leader proposes blocks using the commands from txpool and the other
//! nodes on committing a block, remove the commands in the block from the
//! txpool." (§3)

use std::collections::VecDeque;

use crate::block::{Block, Command};

/// Pool of pending client commands.
///
/// Two modes:
/// * **Client-fed** — commands arrive via [`TxPool::submit`].
/// * **Synthetic** — when the pool is empty and a synthetic payload size is
///   configured, batches are generated on demand (the paper's fixed-size
///   `|b_i|` workloads, §5.6).
#[derive(Debug, Clone)]
pub struct TxPool {
    pending: VecDeque<Command>,
    synthetic_len: Option<usize>,
    next_seq: u64,
}

impl TxPool {
    /// An empty, client-fed pool.
    pub fn new() -> Self {
        TxPool { pending: VecDeque::new(), synthetic_len: None, next_seq: 0 }
    }

    /// A pool that synthesizes one `len`-byte command per batch whenever it
    /// has no real commands queued.
    pub fn synthetic(len: usize) -> Self {
        TxPool { pending: VecDeque::new(), synthetic_len: Some(len), next_seq: 0 }
    }

    /// Queues a client command.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push_back(cmd);
    }

    /// Number of queued commands (synthetic generation not counted).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no real commands are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Takes the next batch of at most `max` commands for a proposal.
    /// Falls back to one synthetic command when configured and empty.
    pub fn next_batch(&mut self, max: usize) -> Vec<Command> {
        if self.pending.is_empty() {
            return match self.synthetic_len {
                Some(len) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    vec![Command::synthetic(seq, len)]
                }
                None => Vec::new(),
            };
        }
        let take = self.pending.len().min(max.max(1));
        self.pending.drain(..take).collect()
    }

    /// Removes commands that were committed in `block` (nodes clear their
    /// pools when a block commits).
    pub fn remove_committed(&mut self, block: &Block) {
        if block.payload.is_empty() {
            return;
        }
        self.pending.retain(|c| !block.payload.contains(c));
    }
}

impl Default for TxPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    #[test]
    fn submit_then_batch_fifo() {
        let mut pool = TxPool::new();
        pool.submit(Command::new(vec![1]));
        pool.submit(Command::new(vec![2]));
        pool.submit(Command::new(vec![3]));
        let batch = pool.next_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].bytes(), &[1]);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_non_synthetic_pool_gives_empty_batches() {
        let mut pool = TxPool::new();
        assert!(pool.next_batch(10).is_empty());
    }

    #[test]
    fn synthetic_pool_always_has_a_batch() {
        let mut pool = TxPool::synthetic(16);
        let a = pool.next_batch(10);
        let b = pool.next_batch(10);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 16);
        assert_ne!(a, b, "sequence numbers differ");
    }

    #[test]
    fn real_commands_take_priority_over_synthetic() {
        let mut pool = TxPool::synthetic(16);
        pool.submit(Command::new(vec![9; 4]));
        let batch = pool.next_batch(10);
        assert_eq!(batch[0].bytes(), &[9; 4]);
    }

    #[test]
    fn committed_commands_are_removed() {
        let mut pool = TxPool::new();
        let keep = Command::new(vec![1]);
        let gone = Command::new(vec![2]);
        pool.submit(keep.clone());
        pool.submit(gone.clone());
        let block = Block::extending(&Block::genesis(), 1, 3, vec![gone]);
        pool.remove_committed(&block);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.next_batch(1)[0], keep);
    }
}
