//! End-to-end tests for the baseline protocols over the simulated network.

use std::sync::Arc;

use eesmr_baselines::check_prefix_consistency;
use eesmr_baselines::sync_hotstuff::{
    build_hs_replicas, HsConfig, HsFault, HsPacing, HsReplica, HsVariant,
};
use eesmr_baselines::trusted::{build_tb_nodes, TbConfig, TbFault, TbNode, HUB};
use eesmr_crypto::{KeyStore, SigScheme};
use eesmr_energy::{EnergyCategory, Medium};
use eesmr_hypergraph::topology::{ring_kcast, star};
use eesmr_net::{ChannelCost, NetConfig, NodeId, SimDuration, SimNet};

fn run_hs(
    n: usize,
    k: usize,
    variant: HsVariant,
    faults: fn(u32) -> HsFault,
    millis: u64,
) -> SimNet<HsReplica> {
    let net_cfg = NetConfig::ble(ring_kcast(n, k), 5);
    let config = HsConfig::new(n, net_cfg.delta(), variant);
    let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, 5));
    let replicas = build_hs_replicas(&config, &pki, faults);
    let mut net = SimNet::new(net_cfg, replicas);
    net.run_for(SimDuration::from_millis(millis));
    net
}

fn assert_consistent(net: &SimNet<HsReplica>, correct: impl Iterator<Item = u32>) {
    let logs: Vec<&[eesmr_crypto::Digest]> = correct.map(|id| net.actor(id).committed()).collect();
    check_prefix_consistency(&logs).expect("SyncHS safety violated");
}

#[test]
fn synchs_honest_run_commits() {
    let net = run_hs(5, 2, HsVariant::SyncHotStuff, |_| HsFault::Honest, 400);
    for id in 0..5 {
        assert!(
            net.actor(id).committed_height() >= 5,
            "node {id} got {}",
            net.actor(id).committed_height()
        );
        assert_eq!(net.actor(id).metrics().view_changes, 0);
    }
    assert_consistent(&net, 0..5);
}

#[test]
fn synchs_every_node_signs_votes() {
    // The certificate work EESMR avoids: every node signs one vote per
    // block in Sync HotStuff.
    let net = run_hs(5, 2, HsVariant::SyncHotStuff, |_| HsFault::Honest, 400);
    let committed = net.actor(0).committed_height();
    for id in 0..5 {
        let signs = net.meter(id).count(EnergyCategory::Sign);
        assert!(signs >= committed, "node {id} signed {signs} times for {committed} blocks");
    }
}

#[test]
fn synchs_view_change_on_silent_leader() {
    let net = run_hs(
        5,
        2,
        HsVariant::SyncHotStuff,
        |id| if id == 0 { HsFault::Silent { from_view: 1 } } else { HsFault::Honest },
        1_500,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
        assert!(net.actor(id).committed_height() >= 1, "node {id} commits in view 2+");
    }
    assert_consistent(&net, 1..5);
}

#[test]
fn synchs_equivocating_leader_is_caught() {
    let net = run_hs(
        5,
        2,
        HsVariant::SyncHotStuff,
        |id| if id == 0 { HsFault::Equivocate { in_view: 1 } } else { HsFault::Honest },
        1_500,
    );
    for id in 1..5 {
        assert!(net.actor(id).current_view() >= 2, "node {id}");
    }
    assert_consistent(&net, 1..5);
}

#[test]
fn optsync_commits_faster_than_synchs_wallclock() {
    // The responsive path commits without the 2Δ wait, so with streaming
    // pacing OptSync sustains a higher rate in the same virtual time.
    let mk = |variant| {
        let n = 8;
        let net_cfg = NetConfig::ble(ring_kcast(n, 3), 6);
        let mut config = HsConfig::new(n, net_cfg.delta(), variant);
        config.pacing = HsPacing::Streaming;
        let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, 6));
        let replicas = build_hs_replicas(&config, &pki, |_| HsFault::Honest);
        let mut net = SimNet::new(net_cfg, replicas);
        net.run_for(SimDuration::from_millis(400));
        net.actor(0).committed_height()
    };
    let h_opt = mk(HsVariant::OptSync);
    let h_classic = mk(HsVariant::SyncHotStuff);
    // On the multi-hop ring the fast quorum can trail the 2Δ path by a
    // block, so allow a small tolerance.
    assert!(h_opt + 2 >= h_classic, "OptSync ({h_opt}) should keep pace with SyncHS ({h_classic})");
}

#[test]
fn optsync_verifies_more_than_synchs() {
    let opt = run_hs(8, 3, HsVariant::OptSync, |_| HsFault::Honest, 400);
    let classic = run_hs(8, 3, HsVariant::SyncHotStuff, |_| HsFault::Honest, 400);
    let per_block = |net: &SimNet<HsReplica>| {
        let verifies: u64 = (0..8).map(|id| net.meter(id).count(EnergyCategory::Verify)).sum();
        let blocks = net.actor(0).committed_height().max(1);
        verifies as f64 / blocks as f64
    };
    assert!(per_block(&opt) > per_block(&classic), "OptSync verifies 3n/4+1 votes vs n/2+1");
}

#[test]
fn synchs_deterministic_replay() {
    let a = run_hs(5, 2, HsVariant::SyncHotStuff, |_| HsFault::Honest, 300);
    let b = run_hs(5, 2, HsVariant::SyncHotStuff, |_| HsFault::Honest, 300);
    for id in 0..5 {
        assert_eq!(a.actor(id).committed(), b.actor(id).committed());
        assert_eq!(a.meter(id).total_mj(), b.meter(id).total_mj());
    }
}

fn run_tb(n: usize, millis: u64) -> SimNet<TbNode> {
    run_tb_faulty(n, millis, |_| TbFault::Honest)
}

fn run_tb_faulty(n: usize, millis: u64, faults: impl Fn(NodeId) -> TbFault) -> SimNet<TbNode> {
    // Star topology over the expensive medium (4G), as in §5.1.
    let mut cfg = NetConfig::ble(star(n, HUB), 9);
    cfg.channel = ChannelCost::PerByte { medium: Medium::FourG };
    let config = TbConfig::new(n, 64, SimDuration::from_millis(5));
    let pki = Arc::new(KeyStore::generate(n, SigScheme::Rsa1024, 9));
    let nodes = build_tb_nodes(&config, &pki, faults);
    let mut net = SimNet::new(cfg, nodes);
    net.run_for(SimDuration::from_millis(millis));
    net
}

#[test]
fn trusted_baseline_orders_and_distributes() {
    let net = run_tb(6, 400);
    let hub_height = net.actor(HUB).committed_height();
    assert!(hub_height >= 3, "the hub ordered blocks, got {hub_height}");
    for id in 1..6 {
        assert!(net.actor(id).committed_height() >= hub_height - 1, "spoke {id} follows the hub");
    }
    let logs: Vec<&[eesmr_crypto::Digest]> = (0..6).map(|id| net.actor(id).committed()).collect();
    check_prefix_consistency(&logs).expect("trusted baseline logs diverge");
}

#[test]
fn trusted_baseline_spokes_pay_expensive_medium() {
    let net = run_tb(6, 400);
    for id in 1..6u32 {
        let send = net.meter(id).mj(EnergyCategory::Send);
        assert!(send > 0.0, "spoke {id} uploaded requests");
    }
    // The hub pays too — but harnesses exclude it from CPS totals.
    assert!(net.meter(HUB).total_mj() > 0.0);
}

#[test]
fn trusted_baseline_crashed_spoke_repairs_and_rejoins() {
    let fault = |id: NodeId| {
        if id == 3 {
            TbFault::Crash { at_us: 50_000, restart_at_us: Some(250_000) }
        } else {
            TbFault::Honest
        }
    };
    let net = run_tb_faulty(6, 500, fault);
    let hub_height = net.actor(HUB).committed_height();
    assert!(hub_height >= 5, "the hub kept ordering, got {hub_height}");
    let m = net.actor(3).metrics();
    assert!(m.repair_requests >= 1, "the restarted spoke asked the hub to repair");
    assert!(net.actor(HUB).metrics().repairs_served >= 1, "the hub served the repair");
    assert!(
        net.actor(3).committed_height() + 2 >= hub_height,
        "spoke 3 caught back up: {} vs hub {hub_height}",
        net.actor(3).committed_height()
    );
    let logs: Vec<&[eesmr_crypto::Digest]> = (0..6).map(|id| net.actor(id).committed()).collect();
    check_prefix_consistency(&logs).expect("repair forked the trusted log");
}

#[test]
fn trusted_baseline_storm_spoke_inflates_traffic_without_divergence() {
    let honest = run_tb(6, 400);
    let stormy = run_tb_faulty(6, 400, |id| {
        if id == 2 {
            TbFault::Storm { repeats: 3 }
        } else {
            TbFault::Honest
        }
    });
    assert!(
        stormy.stats().bytes_on_air > honest.stats().bytes_on_air,
        "duplicate uploads cost real bytes on the expensive link"
    );
    let hub_height = stormy.actor(HUB).committed_height();
    assert!(hub_height >= 3, "the hub still orders under a storm");
    let logs: Vec<&[eesmr_crypto::Digest]> =
        (0..6).map(|id| stormy.actor(id).committed()).collect();
    check_prefix_consistency(&logs).expect("storm forked the trusted log");
}

#[test]
fn trusted_baseline_silent_spoke_does_not_stop_the_rest() {
    let net = run_tb_faulty(6, 400, |id| {
        if id == 4 {
            TbFault::Silent { from_us: 0 }
        } else {
            TbFault::Honest
        }
    });
    let hub_height = net.actor(HUB).committed_height();
    assert!(hub_height >= 3, "the hub orders from the remaining spokes");
    assert_eq!(net.actor(4).committed_height(), 0, "the silent spoke never commits");
    for id in 1..6u32 {
        if id == 4 {
            continue;
        }
        assert!(net.actor(id).committed_height() >= hub_height - 1, "spoke {id} follows the hub");
    }
}
