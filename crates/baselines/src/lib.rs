//! Baseline SMR protocols the paper compares EESMR against.
//!
//! * [`sync_hotstuff`] — Sync HotStuff and OptSync (one replica, two commit
//!   rules), the state-of-the-art synchronous BFT-SMR baselines of §5.7.
//! * [`trusted`] — the §5.1 trusted-control-node baseline over an
//!   expensive medium (star topology).
//! * [`status`] — a small trait for protocol-agnostic safety assertions.
//!
//! All replicas implement [`eesmr_net::Actor`], so the same simulator,
//! topologies, fault injectors, and energy meters drive every protocol —
//! which is exactly what makes the head-to-head energy comparisons
//! (Fig. 2f, Fig. 3) meaningful.
//!
//! # Example: Sync HotStuff on the ring testbed
//!
//! ```
//! use std::sync::Arc;
//! use eesmr_baselines::sync_hotstuff::{build_hs_replicas, HsConfig, HsFault, HsVariant};
//! use eesmr_crypto::{KeyStore, SigScheme};
//! use eesmr_hypergraph::topology::ring_kcast;
//! use eesmr_net::{NetConfig, SimNet, SimDuration};
//!
//! let net_cfg = NetConfig::ble(ring_kcast(5, 2), 3);
//! let config = HsConfig::new(5, net_cfg.delta(), HsVariant::SyncHotStuff);
//! let pki = Arc::new(KeyStore::generate(5, SigScheme::Rsa1024, 3));
//! let replicas = build_hs_replicas(&config, &pki, |_| HsFault::Honest);
//! let mut net = SimNet::new(net_cfg, replicas);
//! net.run_for(SimDuration::from_millis(300));
//! assert!(net.actor(0).committed_height() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod status;
pub mod sync_hotstuff;
pub mod trusted;

pub use status::{check_prefix_consistency, SmrStatus};
pub use sync_hotstuff::{build_hs_replicas, HsConfig, HsFault, HsPacing, HsReplica, HsVariant};
pub use trusted::{build_tb_nodes, TbConfig, TbFault, TbNode, HUB};
