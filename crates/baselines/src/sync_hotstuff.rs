//! Sync HotStuff (Abraham et al., S&P 2020) and OptSync (Shrestha et al.,
//! CCS 2020) — the certificate-based synchronous SMR baselines the paper
//! compares EESMR against (§5.7, Fig. 2f, Fig. 3).
//!
//! Both protocols share one replica here, differing in the commit rule:
//!
//! * **Sync HotStuff** — every node *votes explicitly* on every proposal;
//!   a quorum certificate of `n/2+1` votes locks the block; commit happens
//!   2Δ after voting if no equivocation was heard. Per block, the system
//!   performs `n+1` signatures and `Θ(n)` verifications per node — the
//!   certificate work EESMR's "voting in the head" avoids.
//! * **OptSync** — adds the optimistically responsive fast path: `3n/4+1`
//!   votes commit immediately (no 2Δ wait), at the cost of verifying more
//!   votes.
//!
//! The view change follows the Sync HotStuff pattern: blame on
//! no-progress/equivocation, a blame certificate quits the view, nodes
//! report their highest certificate to the next leader, which re-proposes
//! extending the highest one.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use eesmr_core::message::signing_bytes;
use eesmr_core::{
    AdaptiveBatcher, BatchPolicy, Block, BlockStore, CertifiedBlock, Command, Commands, Metrics,
    MsgKind, QuorumCert, TxPool, WorkloadSource,
};
use eesmr_crypto::{Digest, Hashable, KeyPair, KeyStore, Signature};
use eesmr_net::{
    Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId, TraceClass, TraceEventKind,
};

/// Which commit rule the replica runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsVariant {
    /// Sync HotStuff: `n/2+1` certificates, 2Δ synchronous commit.
    SyncHotStuff,
    /// OptSync: additionally commit responsively at `3n/4+1` votes.
    OptSync,
}

/// Proposal pacing (mirrors `eesmr_core::Pacing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsPacing {
    /// One uncommitted proposal at a time (comparable to the paper's
    /// blocking EESMR variant).
    Blocking,
    /// Propose as soon as the previous block is certified.
    Streaming,
}

/// Static configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HsConfig {
    /// Node count.
    pub n: usize,
    /// Fault bound `f < n/2`.
    pub f: usize,
    /// The synchrony bound Δ.
    pub delta: SimDuration,
    /// Synthetic payload bytes per block.
    pub payload_bytes: usize,
    /// How the leader sizes each batch (mirrors
    /// `eesmr_core::BatchPolicy`).
    pub batch_policy: BatchPolicy,
    /// Synthetic offered load: commands fabricated per proposal when the
    /// pool is empty.
    pub offered_load: usize,
    /// Forward-batching threshold (mirrors
    /// `eesmr_core::Config::forward_batch`): relay the backlog once it
    /// holds this many commands or a Δ flush timer fires; `1` forwards
    /// on every arrival.
    pub forward_batch: usize,
    /// Commit rule.
    pub variant: HsVariant,
    /// Pacing.
    pub pacing: HsPacing,
}

impl HsConfig {
    /// Defaults matching the paper's comparison setup.
    pub fn new(n: usize, delta: SimDuration, variant: HsVariant) -> Self {
        assert!(n >= 2, "SMR needs at least two nodes");
        HsConfig {
            n,
            f: n.div_ceil(2) - 1,
            delta,
            payload_bytes: 16,
            batch_policy: BatchPolicy::DEFAULT,
            offered_load: 1,
            forward_batch: 1,
            variant,
            pacing: HsPacing::Blocking,
        }
    }

    /// Certificate quorum: `n/2 + 1`.
    pub fn cert_quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Responsive-commit quorum: `⌊3n/4⌋ + 1` (OptSync only).
    pub fn fast_quorum(&self) -> usize {
        3 * self.n / 4 + 1
    }

    /// Blame quorum: `f + 1`.
    pub fn blame_quorum(&self) -> usize {
        self.f + 1
    }

    /// Round-robin leader.
    pub fn leader_of(&self, view: u64) -> NodeId {
        (((view - 1) as usize) % self.n) as NodeId
    }

    fn steady_blame_multiple(&self) -> u64 {
        match self.pacing {
            HsPacing::Blocking => 5, // 2Δ commit + Δ propagation + margin
            HsPacing::Streaming => 4,
        }
    }
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum HsPayload {
    /// A proposal; `justify` certifies the parent (absent only for the
    /// first block after genesis).
    Propose {
        /// Proposed block.
        block: Block,
        /// Certificate for the parent.
        justify: Option<QuorumCert>,
    },
    /// An explicit vote.
    Vote {
        /// Voted block.
        block_id: Digest,
        /// Its height.
        height: u64,
    },
    /// Blame (optionally with an equivocation proof).
    Blame {
        /// Two conflicting proposals, if equivocation was observed.
        proof: Option<Box<(HsMsg, HsMsg)>>,
    },
    /// Certificate of f+1 blames.
    BlameQc(QuorumCert),
    /// Status for the new leader: the sender's highest certificate.
    Status {
        /// Highest certified block, if any was ever certified.
        cert: Option<CertifiedBlock>,
    },
    /// Chain sync request.
    SyncRequest {
        /// Wanted block.
        want: Digest,
    },
    /// Chain sync response.
    SyncResponse {
        /// Blocks, nearest first.
        blocks: Vec<Block>,
    },
    /// Client commands relayed from a non-leading node to the current
    /// proposer (command forwarding, mirroring `eesmr_core`'s
    /// `Payload::Forward`).
    Forward {
        /// The forwarded commands, in injection order (Arc-backed so
        /// per-hop clones are refcount bumps).
        commands: Commands,
    },
    /// A restarted replica's catch-up request (crash-recovery repair).
    Repair {
        /// The requester's last durable committed height.
        from_height: u64,
    },
    /// A committed-chain suffix answering a [`HsPayload::Repair`]
    /// (hash-chained oldest first, so it is self-certifying), plus the
    /// responder's current view.
    RepairReply {
        /// Committed blocks above the requested height, oldest first.
        blocks: Vec<Block>,
        /// The responder's current view.
        view: u64,
    },
}

impl HsPayload {
    pub(crate) fn kind(&self) -> MsgKind {
        match self {
            HsPayload::Propose { .. } => MsgKind::Propose,
            HsPayload::Vote { .. } => MsgKind::HsVote,
            HsPayload::Blame { .. } => MsgKind::Blame,
            HsPayload::BlameQc(_) => MsgKind::BlameQc,
            HsPayload::Status { .. } => MsgKind::LockStatus,
            HsPayload::SyncRequest { .. } => MsgKind::SyncRequest,
            HsPayload::SyncResponse { .. } => MsgKind::SyncResponse,
            HsPayload::Forward { .. } => MsgKind::Forward,
            HsPayload::Repair { .. } => MsgKind::Repair,
            HsPayload::RepairReply { .. } => MsgKind::RepairReply,
        }
    }

    fn signing_digest(&self, view: u64) -> Digest {
        match self {
            HsPayload::Propose { block, .. } => {
                Digest::of_parts(&[b"hs-prop", block.id().as_bytes(), &block.height.to_le_bytes()])
            }
            HsPayload::Vote { block_id, .. } => *block_id,
            HsPayload::Blame { .. } => Digest::of_parts(&[b"hs-blame", &view.to_le_bytes()]),
            HsPayload::BlameQc(qc) => qc.digest(),
            HsPayload::Status { cert } => match cert {
                Some(c) => c.qc.digest(),
                None => Digest::of(b"hs-status-none"),
            },
            HsPayload::SyncRequest { want } => *want,
            HsPayload::SyncResponse { blocks } => {
                let mut h = Vec::new();
                for b in blocks {
                    h.extend_from_slice(b.id().as_bytes());
                }
                Digest::of(&h)
            }
            HsPayload::Forward { commands } => {
                let mut h = Vec::from(&b"hs-fwd"[..]);
                for c in commands {
                    h.extend_from_slice(&(c.len() as u64).to_le_bytes());
                    h.extend_from_slice(c.bytes());
                }
                Digest::of(&h)
            }
            HsPayload::Repair { from_height } => {
                Digest::of_parts(&[b"hs-repair", &from_height.to_le_bytes()])
            }
            HsPayload::RepairReply { blocks, view } => {
                let mut h = Vec::from(&b"hs-repair-reply"[..]);
                h.extend_from_slice(&view.to_le_bytes());
                for b in blocks {
                    h.extend_from_slice(b.id().as_bytes());
                }
                Digest::of(&h)
            }
        }
    }
}

/// A signed Sync HotStuff / OptSync message.
#[derive(Debug, Clone, PartialEq)]
pub struct HsMsg {
    /// Payload.
    pub payload: HsPayload,
    /// View.
    pub view: u64,
    /// Sender.
    pub signer: NodeId,
    /// Signature over `(kind, view, signing_digest)`.
    pub sig: Signature,
}

impl HsMsg {
    fn new(payload: HsPayload, view: u64, keypair: &KeyPair) -> Self {
        let digest = payload.signing_digest(view);
        let bytes = signing_bytes(payload.kind(), view, &digest);
        HsMsg { sig: keypair.sign(&bytes), signer: keypair.signer(), view, payload }
    }

    fn verify_sig(&self, pki: &KeyStore) -> bool {
        if self.sig.signer() != self.signer {
            return false;
        }
        let digest = self.payload.signing_digest(self.view);
        let bytes = signing_bytes(self.payload.kind(), self.view, &digest);
        pki.verify(&bytes, &self.sig)
    }

    /// Serialized size: exactly the encoded frame length (see
    /// [`crate::codec`]).
    fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }
}

impl Message for HsMsg {
    fn wire_size(&self) -> usize {
        self.wire_size()
    }

    fn flood_key(&self) -> u64 {
        Digest::of_parts(&[
            &[self.payload.kind() as u8],
            &self.view.to_le_bytes(),
            &self.signer.to_le_bytes(),
            self.payload.signing_digest(self.view).as_bytes(),
        ])
        .to_u64()
    }

    fn phase(&self) -> eesmr_energy::EnergyPhase {
        use eesmr_energy::EnergyPhase;
        match &self.payload {
            HsPayload::Propose { .. } => EnergyPhase::Propose,
            HsPayload::Vote { .. } => EnergyPhase::Vote,
            HsPayload::Blame { .. } | HsPayload::BlameQc(_) => EnergyPhase::ViewChange,
            HsPayload::Status { .. } => EnergyPhase::Status,
            HsPayload::Forward { .. } => EnergyPhase::Forward,
            HsPayload::SyncRequest { .. }
            | HsPayload::SyncResponse { .. }
            | HsPayload::Repair { .. }
            | HsPayload::RepairReply { .. } => EnergyPhase::Sync,
        }
    }
}

/// Timer tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsTimer {
    /// No-progress blame timer.
    Blame {
        /// Guarded view.
        view: u64,
    },
    /// 2Δ synchronous commit timer for a block.
    Commit {
        /// View in which the vote was cast.
        view: u64,
        /// The block.
        block: Digest,
    },
    /// Δ wait after a blame certificate before the new view.
    QuitWait {
        /// The view being quit.
        view: u64,
    },
    /// The new leader's status-collection window.
    LeaderStatus {
        /// The new view.
        view: u64,
    },
    /// The next client-transaction arrival from the attached
    /// `WorkloadSource`.
    Arrival,
    /// Δ flush deadline for a sub-threshold forward batch (armed when
    /// `forward_batch > 1` and the backlog is below the threshold).
    ForwardFlush,
    /// A crashed node's restart point ([`HsFault::Crash`] with a
    /// `restart_at_us`): re-arm timers and run the repair protocol.
    Restart,
}

/// Injected fault behaviour (mirrors `eesmr_core::FaultMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsFault {
    /// Correct.
    Honest,
    /// Fully silent from the given view on.
    Silent {
        /// First silent view.
        from_view: u64,
    },
    /// Equivocates when leading the given view.
    Equivocate {
        /// The view.
        in_view: u64,
    },
    /// Withholds its explicit vote from `from_view` on while otherwise
    /// following the protocol — the quorum-starving adversary the
    /// certificate-based baselines are sensitive to.
    Withhold {
        /// First view in which votes are withheld.
        from_view: u64,
    },
    /// Re-multicasts every vote `repeats` extra times from `from_view`
    /// on: dedup absorbs the copies but traffic and energy inflate.
    Storm {
        /// First storming view.
        from_view: u64,
        /// Extra copies per vote.
        repeats: u32,
    },
    /// Crashes at `at_us`; if `restart_at_us` is set, restarts then and
    /// runs the repair protocol to catch up.
    Crash {
        /// Outage start (µs).
        at_us: u64,
        /// Restart time (µs), or `None` to stay down.
        restart_at_us: Option<u64>,
    },
}

impl HsFault {
    fn is_active_in(&self, view: u64) -> bool {
        match self {
            HsFault::Honest
            | HsFault::Equivocate { .. }
            | HsFault::Withhold { .. }
            | HsFault::Storm { .. }
            | HsFault::Crash { .. } => true,
            HsFault::Silent { from_view } => view < *from_view,
        }
    }

    fn online(&self, now_us: u64) -> bool {
        match self {
            HsFault::Crash { at_us, restart_at_us } => {
                now_us < *at_us || restart_at_us.is_some_and(|r| now_us >= r)
            }
            _ => true,
        }
    }

    fn relays_in(&self, view: u64) -> bool {
        match self {
            HsFault::Withhold { from_view } => view < *from_view,
            _ => true,
        }
    }

    fn storm_repeats_in(&self, view: u64) -> u32 {
        match self {
            HsFault::Storm { from_view, repeats } if view >= *from_view => *repeats,
            _ => 0,
        }
    }

    fn restart_at_us(&self) -> Option<u64> {
        match self {
            HsFault::Crash { restart_at_us, .. } => *restart_at_us,
            _ => None,
        }
    }
}

type Ctx<'a> = Context<'a, HsMsg, HsTimer>;

/// A Sync HotStuff / OptSync replica.
pub struct HsReplica {
    id: NodeId,
    config: HsConfig,
    pki: Arc<KeyStore>,
    fault: HsFault,

    v_cur: u64,
    store: BlockStore,
    tip: Digest,
    tip_height: u64,
    highest_cert: Option<CertifiedBlock>,
    b_com: Digest,
    b_com_height: u64,
    txpool: TxPool,
    batcher: AdaptiveBatcher,
    workload: Option<Box<dyn WorkloadSource>>,

    proposals_seen: HashMap<(u64, u64), (Digest, HsMsg)>,
    voted: HashSet<(u64, u64)>,
    votes: HashMap<Digest, BTreeMap<NodeId, Signature>>,
    relayed_votes: HashSet<(Digest, NodeId)>,
    certified: HashSet<Digest>,
    fast_committed: HashSet<Digest>,
    commit_timers: Vec<(Digest, TimerId)>,
    blame_timer: Option<TimerId>,
    outstanding: usize,
    first_seen: HashMap<Digest, SimTime>,
    forward_flush_armed: bool,

    blames: BTreeMap<NodeId, Signature>,
    view_aborted: bool,
    quit_scheduled: bool,
    statuses: BTreeMap<NodeId, Option<CertifiedBlock>>,
    new_view_proposed: bool,

    future_views: Vec<(NodeId, HsMsg)>,
    orphans: HashMap<Digest, Vec<(NodeId, HsMsg)>>,
    sync_requested: HashSet<Digest>,

    committed_log: Vec<Digest>,
    metrics: Metrics,
}

impl core::fmt::Debug for HsReplica {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HsReplica")
            .field("id", &self.id)
            .field("view", &self.v_cur)
            .field("committed_height", &self.b_com_height)
            .field("variant", &self.config.variant)
            .finish()
    }
}

impl HsReplica {
    /// Creates a replica.
    pub fn new(id: NodeId, config: HsConfig, pki: Arc<KeyStore>, fault: HsFault) -> Self {
        assert!(pki.n() >= config.n, "key store must cover all nodes");
        let store = BlockStore::new();
        let genesis = store.genesis_id();
        let payload = config.payload_bytes;
        let offered = config.offered_load;
        HsReplica {
            id,
            config,
            pki,
            fault,
            v_cur: 1,
            store,
            tip: genesis,
            tip_height: 0,
            highest_cert: None,
            b_com: genesis,
            b_com_height: 0,
            txpool: TxPool::synthetic(payload).with_offered_load(offered),
            batcher: AdaptiveBatcher::new(),
            workload: None,
            proposals_seen: HashMap::new(),
            voted: HashSet::new(),
            votes: HashMap::new(),
            relayed_votes: HashSet::new(),
            certified: HashSet::new(),
            fast_committed: HashSet::new(),
            commit_timers: Vec::new(),
            blame_timer: None,
            outstanding: 0,
            first_seen: HashMap::new(),
            forward_flush_armed: false,
            blames: BTreeMap::new(),
            view_aborted: false,
            quit_scheduled: false,
            statuses: BTreeMap::new(),
            new_view_proposed: false,
            future_views: Vec::new(),
            orphans: HashMap::new(),
            sync_requested: HashSet::new(),
            committed_log: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// Committed log.
    pub fn committed(&self) -> &[Digest] {
        &self.committed_log
    }

    /// Highest committed height.
    pub fn committed_height(&self) -> u64 {
        self.b_com_height
    }

    /// Current view.
    pub fn current_view(&self) -> u64 {
        self.v_cur
    }

    /// Metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &HsConfig {
        &self.config
    }

    /// Looks up a block.
    pub fn block(&self, id: &Digest) -> Option<&Block> {
        self.store.get(id)
    }

    /// Attaches a client-workload stream (mirrors
    /// `eesmr_core::Replica::attach_workload`): arrival timers inject
    /// timestamped transactions and the synthetic fallback is disabled.
    pub fn attach_workload(&mut self, source: Box<dyn WorkloadSource>) {
        self.txpool.client_only();
        self.workload = Some(source);
    }

    /// Histogram of end-to-end (birth → local commit) latencies of
    /// workload transactions injected at this node, in microseconds.
    pub fn tx_latencies(&self) -> &eesmr_trace::hist::LogHistogram {
        self.txpool.tx_latencies()
    }

    /// High-water mark of the pending-command backlog over the run.
    pub fn peak_backlog(&self) -> usize {
        self.txpool.peak_backlog()
    }

    /// One arrival event: inject, re-arm, and either propose the fresh
    /// backlog (leader) or forward it to the proposer (everyone else).
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let Some(source) = &mut self.workload else { return };
        let now_us = ctx.now().as_micros();
        let traced = ctx.traces(TraceClass::Commit);
        let delay = self.txpool.drive_arrival(source.as_mut(), &mut self.metrics, now_us, |cmd| {
            if traced {
                ctx.trace(TraceEventKind::TxInject { tx: cmd.fingerprint() });
            }
        });
        if let Some(delay) = delay {
            ctx.set_timer(SimDuration::from_micros(delay), HsTimer::Arrival);
        }
        self.try_propose(ctx);
        self.maybe_forward_backlog(ctx);
    }

    /// Forward immediately once the backlog reaches the
    /// `forward_batch` threshold; below it, arm a single Δ flush timer
    /// so sub-threshold commands never strand. `forward_batch <= 1`
    /// preserves the historical forward-per-arrival behaviour.
    fn maybe_forward_backlog(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_leader() || !self.active() || self.view_aborted || self.txpool.is_empty() {
            return;
        }
        if self.config.forward_batch <= 1 || self.txpool.backlog() >= self.config.forward_batch {
            self.forward_backlog(ctx);
        } else if !self.forward_flush_armed {
            self.forward_flush_armed = true;
            ctx.set_timer(self.config.delta, HsTimer::ForwardFlush);
        }
    }

    /// Command forwarding (mirrors `eesmr_core::Replica::forward_backlog`):
    /// a non-leading node relays its queued client commands to the
    /// current leader so they cannot strand in a pool that never
    /// proposes. Births stay at the origin (latency settles there on
    /// commit), and the new-view path re-forwards whatever a dead
    /// leader dropped.
    fn forward_backlog(&mut self, ctx: &mut Ctx<'_>) {
        // No workload gate: commands forwarded to an ex-leader must be
        // re-routed onward too (synthetic pools never populate
        // `pending`, so non-workload runs stay forward-free).
        if self.is_leader() || !self.active() || self.view_aborted || self.txpool.is_empty() {
            return;
        }
        let commands = self.txpool.take_pending();
        self.metrics.tx_forwarded += commands.len() as u64;
        let leader = self.config.leader_of(self.v_cur);
        if ctx.traces(TraceClass::Commit) {
            for cmd in &commands {
                ctx.trace(TraceEventKind::TxForward { tx: cmd.fingerprint(), leader });
            }
        }
        let msg = self.sign(HsPayload::Forward { commands: commands.into() }, ctx);
        ctx.send_to(leader, msg);
    }

    /// Receives forwarded client commands: queue them and, if leading,
    /// get them into a block; a forward that raced a view change is
    /// re-routed to the receiver's current leader instead of stranding.
    fn on_forward(&mut self, msg: HsMsg, ctx: &mut Ctx<'_>) {
        if !self.verify_envelope(&msg, ctx) {
            return;
        }
        let HsPayload::Forward { commands } = &msg.payload else { return };
        for cmd in commands.iter().cloned() {
            self.txpool.submit(cmd);
        }
        if self.is_leader() {
            self.try_propose(ctx);
        } else {
            self.forward_backlog(ctx);
        }
    }

    fn active(&self) -> bool {
        self.fault.is_active_in(self.v_cur)
    }

    fn is_leader(&self) -> bool {
        self.config.leader_of(self.v_cur) == self.id
    }

    fn sign(&self, payload: HsPayload, ctx: &mut Ctx<'_>) -> HsMsg {
        let msg = HsMsg::new(payload, self.v_cur, self.pki.keypair(self.id));
        ctx.meter().charge_sign(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        msg
    }

    fn verify_envelope(&self, msg: &HsMsg, ctx: &mut Ctx<'_>) -> bool {
        ctx.meter().charge_verify(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        msg.verify_sig(&self.pki)
    }

    fn verify_qc(&self, qc: &QuorumCert, threshold: usize, ctx: &mut Ctx<'_>) -> bool {
        let (ok, checks) = qc.verify(&self.pki, threshold);
        for _ in 0..checks {
            ctx.meter().charge_verify(self.pki.scheme());
        }
        ok
    }

    fn reset_blame_timer(&mut self, multiple: u64, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.blame_timer.take() {
            ctx.cancel_timer(t);
        }
        let id = ctx.set_timer(self.config.delta * multiple, HsTimer::Blame { view: self.v_cur });
        self.blame_timer = Some(id);
    }

    fn cancel_commit_timers(&mut self, ctx: &mut Ctx<'_>) {
        for (_, t) in self.commit_timers.drain(..) {
            ctx.cancel_timer(t);
        }
        self.outstanding = 0;
    }

    // ------------------------------------------------------------------
    // Steady state.
    // ------------------------------------------------------------------

    fn try_propose(&mut self, ctx: &mut Ctx<'_>) {
        if !self.is_leader() || !self.active() || self.view_aborted {
            return;
        }
        let allowed = match self.config.pacing {
            HsPacing::Blocking => self.outstanding == 0,
            HsPacing::Streaming => true,
        };
        if !allowed {
            return;
        }
        let parent = self.store.get(&self.tip).expect("tip block stored").clone();
        let justify = if parent.height == 0 {
            None
        } else {
            match &self.highest_cert {
                Some(c) if c.block.id() == parent.id() => Some(c.qc.clone()),
                _ => return, // parent not certified yet — wait for votes
            }
        };
        let want = self.batcher.next_size(self.txpool.backlog(), self.config.batch_policy);
        let batch = self.txpool.next_batch(want);
        self.metrics.record_batch_fill(batch.len(), self.config.batch_policy.max_size());
        let block = Block::extending(&parent, self.v_cur, parent.height + 1, batch);
        ctx.meter().charge_hash(block.wire_size());
        if ctx.traces(TraceClass::Commit) {
            let block_fp = block.fingerprint();
            for cmd in &block.payload {
                ctx.trace(TraceEventKind::TxBatched { tx: cmd.fingerprint(), block: block_fp });
            }
            ctx.trace(TraceEventKind::Propose {
                block: block_fp,
                view: self.v_cur,
                round: block.height,
            });
        }
        self.store.insert(block.clone());
        let msg = self.sign(HsPayload::Propose { block: block.clone(), justify }, ctx);
        ctx.flood(msg);

        if let HsFault::Equivocate { in_view } = self.fault {
            if in_view == self.v_cur {
                let twin = Block::extending(
                    &parent,
                    self.v_cur,
                    parent.height + 1,
                    vec![Command::synthetic(u64::MAX, self.config.payload_bytes)],
                );
                self.store.insert(twin.clone());
                let justify2 = match &self.highest_cert {
                    Some(c) if c.block.id() == parent.id() => Some(c.qc.clone()),
                    _ => None,
                };
                let twin_msg =
                    self.sign(HsPayload::Propose { block: twin, justify: justify2 }, ctx);
                ctx.flood(twin_msg);
            }
        }
    }

    fn on_propose(&mut self, from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::Propose { block, justify } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        let block_id = block.id();
        let key = (msg.view, block.height);
        if let Some((seen_id, _)) = self.proposals_seen.get(&key) {
            let processed = self.voted.contains(&(msg.view, block.height)) || msg.view < self.v_cur;
            if *seen_id == block_id && processed {
                return; // exact duplicate — no fresh signature check
            }
        }
        if msg.signer != self.config.leader_of(msg.view) || !self.verify_envelope(&msg, ctx) {
            self.metrics.proposals_rejected += 1;
            return;
        }
        if let Some((seen_id, seen_msg)) = self.proposals_seen.get(&key) {
            if *seen_id != block_id {
                if msg.view == self.v_cur {
                    let first = seen_msg.clone();
                    self.on_equivocation(first, msg, ctx);
                }
                return;
            }
        } else {
            self.proposals_seen.insert(key, (block_id, msg.clone()));
        }
        if msg.view < self.v_cur || self.view_aborted {
            return;
        }
        if !self.store.contains(&block.parent) {
            let parent = block.parent;
            self.orphans.entry(parent).or_default().push((from, msg));
            self.request_sync(parent, from, ctx);
            return;
        }
        // Insert before the lock check so lineage walks see the block.
        self.store.insert(block.clone());
        // Certificate rule: non-initial blocks need a certified parent.
        if block.height > 1 {
            let Some(qc) = justify else {
                self.metrics.proposals_rejected += 1;
                return;
            };
            if qc.kind != MsgKind::HsVote
                || qc.data != block.parent
                || !self.verify_qc(qc, self.config.cert_quorum(), ctx)
            {
                self.metrics.proposals_rejected += 1;
                return;
            }
        }
        // Lock rule: must extend the highest certified block.
        if let Some(c) = &self.highest_cert {
            if !self.store.extends(&block_id, &c.block.id()) {
                self.metrics.proposals_rejected += 1;
                return;
            }
        }
        if !self.voted.insert((msg.view, block.height)) {
            return; // vote once per height per view
        }
        let block = block.clone();
        ctx.meter().charge_hash(block.wire_size());
        self.first_seen.entry(block_id).or_insert(ctx.now());
        self.metrics.proposals_relayed += 1;
        if block.height > self.tip_height {
            self.tip = block_id;
            self.tip_height = block.height;
        }
        // Votes use partial forwarding (the paper's §5.7 setup favouring
        // Sync HotStuff): one k-cast per node, relayed hop-by-hop only by
        // nodes that have not yet formed the certificate. Our own vote
        // counts towards our certificate immediately (the loopback copy is
        // swallowed by the relay dedup).
        let height = block.height;
        // A withholding node accepts the proposal (timers, tip, commit
        // path all run) but never emits its vote — the quorum-starving
        // adversary; a storming node repeats its vote, which the
        // receivers' dedup absorbs while traffic inflates.
        if self.fault.relays_in(self.v_cur) {
            if ctx.traces(TraceClass::Proto) {
                ctx.trace(TraceEventKind::Vote {
                    block: eesmr_core::block::fingerprint(&block_id),
                    view: self.v_cur,
                });
            }
            if ctx.traces(TraceClass::Commit) {
                ctx.trace(TraceEventKind::Relay {
                    block: eesmr_core::block::fingerprint(&block_id),
                });
            }
            let vote = self.sign(HsPayload::Vote { block_id, height }, ctx);
            self.relayed_votes.insert((block_id, self.id));
            self.votes.entry(block_id).or_default().insert(self.id, vote.sig.clone());
            for _ in 0..self.fault.storm_repeats_in(self.v_cur) {
                ctx.multicast(vote.clone());
            }
            ctx.multicast(vote);
        }
        self.try_form_cert(block_id, height, self.v_cur, ctx);
        self.try_fast_commit(block_id, ctx);
        let t = ctx.set_timer(
            self.config.delta * 2,
            HsTimer::Commit { view: self.v_cur, block: block_id },
        );
        self.commit_timers.push((block_id, t));
        self.outstanding += 1;
        self.reset_blame_timer(self.config.steady_blame_multiple(), ctx);
    }

    fn on_vote(&mut self, _from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::Vote { block_id, height } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((_from, msg));
            return;
        }
        if msg.view < self.v_cur || self.view_aborted {
            return;
        }
        let needs_more = !self.certified.contains(block_id)
            || (self.config.variant == HsVariant::OptSync
                && !self.fast_committed.contains(block_id));
        if !needs_more {
            return; // enough votes verified already — skip the crypto work
        }
        if self.relayed_votes.contains(&(*block_id, msg.signer)) {
            return; // duplicate copy of a vote we already processed
        }
        if !self.verify_envelope(&msg, ctx) {
            return;
        }
        // Partial vote forwarding: relay each distinct vote once while our
        // own certificate is still incomplete. Every node relays at least
        // the quorum-completing vote, so downstream nodes always gather a
        // quorum too.
        self.relayed_votes.insert((*block_id, msg.signer));
        ctx.multicast(msg.clone());
        let (block_id, height) = (*block_id, *height);
        self.votes.entry(block_id).or_default().insert(msg.signer, msg.sig.clone());
        self.try_form_cert(block_id, height, msg.view, ctx);
        self.try_fast_commit(block_id, ctx);
    }

    /// Forms the `n/2+1` certificate once enough votes are in.
    fn try_form_cert(&mut self, block_id: Digest, height: u64, view: u64, ctx: &mut Ctx<'_>) {
        let count = self.votes.get(&block_id).map_or(0, BTreeMap::len);
        if count < self.config.cert_quorum() || !self.certified.insert(block_id) {
            return;
        }
        let sigs: Vec<(NodeId, Signature)> = self
            .votes
            .get(&block_id)
            .expect("entry exists")
            .iter()
            .take(self.config.cert_quorum())
            .map(|(n, s)| (*n, s.clone()))
            .collect();
        let qc = QuorumCert { kind: MsgKind::HsVote, view, data: block_id, height, sigs };
        if let Some(block) = self.store.get(&block_id).cloned() {
            let higher = self.highest_cert.as_ref().is_none_or(|c| height > c.block.height);
            if higher {
                self.highest_cert = Some(CertifiedBlock { qc, block });
            }
        }
        if self.config.pacing == HsPacing::Streaming {
            self.try_propose(ctx);
        }
    }

    /// OptSync's responsive commit at `3n/4+1` votes (no 2Δ wait).
    fn try_fast_commit(&mut self, block_id: Digest, ctx: &mut Ctx<'_>) {
        if self.config.variant != HsVariant::OptSync {
            return;
        }
        let count = self.votes.get(&block_id).map_or(0, BTreeMap::len);
        if count < self.config.fast_quorum() || !self.fast_committed.insert(block_id) {
            return;
        }
        if let Some(pos) = self.commit_timers.iter().position(|(b, _)| *b == block_id) {
            let (_, t) = self.commit_timers.remove(pos);
            ctx.cancel_timer(t);
            self.outstanding = self.outstanding.saturating_sub(1);
        }
        self.commit_block(block_id, ctx);
        self.try_propose(ctx);
    }

    fn on_commit_timer(&mut self, view: u64, block_id: Digest, ctx: &mut Ctx<'_>) {
        self.commit_timers.retain(|(b, _)| *b != block_id);
        if view != self.v_cur || self.view_aborted {
            return;
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        self.commit_block(block_id, ctx);
        self.try_propose(ctx);
    }

    fn commit_block(&mut self, block_id: Digest, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(block) = self.store.get(&block_id) else { return };
        if block.height <= self.b_com_height {
            return;
        }
        let Some(segment) = self.store.segment(&self.b_com, &block_id) else { return };
        for id in segment {
            self.committed_log.push(id);
            self.metrics.blocks_committed += 1;
            if let Some(seen) = self.first_seen.remove(&id) {
                self.metrics.record_commit_latency(now.since(seen));
            }
            let b = self.store.get(&id).expect("segment stored").clone();
            if ctx.traces(TraceClass::Commit) {
                ctx.trace(TraceEventKind::Commit {
                    block: eesmr_core::block::fingerprint(&id),
                    height: b.height,
                });
            }
            self.txpool.remove_committed(&b, now);
        }
        self.b_com = block_id;
        self.b_com_height = self.store.get(&block_id).expect("stored").height;
        self.metrics.committed_height = self.b_com_height;
    }

    // ------------------------------------------------------------------
    // Blames and view change.
    // ------------------------------------------------------------------

    fn on_blame_timeout(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur || self.view_aborted {
            return;
        }
        self.blame_timer = None;
        self.metrics.blames_sent += 1;
        ctx.trace(TraceEventKind::Blame { view: self.v_cur });
        let blame = self.sign(HsPayload::Blame { proof: None }, ctx);
        ctx.flood(blame);
    }

    fn on_equivocation(&mut self, first: HsMsg, second: HsMsg, ctx: &mut Ctx<'_>) {
        if self.view_aborted {
            return;
        }
        self.metrics.equivocations_detected += 1;
        self.view_aborted = true;
        self.cancel_commit_timers(ctx);
        self.metrics.blames_sent += 1;
        ctx.trace(TraceEventKind::Equivocation { view: self.v_cur });
        ctx.trace(TraceEventKind::Blame { view: self.v_cur });
        let blame = self.sign(HsPayload::Blame { proof: Some(Box::new((first, second))) }, ctx);
        ctx.flood(blame);
    }

    fn proof_is_valid(&self, view: u64, proof: &(HsMsg, HsMsg), ctx: &mut Ctx<'_>) -> bool {
        let (a, b) = proof;
        let leader = self.config.leader_of(view);
        let heights = match (&a.payload, &b.payload) {
            (HsPayload::Propose { block: ba, .. }, HsPayload::Propose { block: bb, .. }) => {
                (ba.height, bb.height)
            }
            _ => return false,
        };
        a.view == view
            && b.view == view
            && a.signer == leader
            && b.signer == leader
            && heights.0 == heights.1
            && a.payload.signing_digest(view) != b.payload.signing_digest(view)
            && self.verify_envelope(a, ctx)
            && self.verify_envelope(b, ctx)
    }

    fn on_blame(&mut self, from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::Blame { proof } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || !self.verify_envelope(&msg, ctx) {
            return;
        }
        if let Some(p) = proof {
            if !self.view_aborted && self.proof_is_valid(msg.view, p, ctx) {
                let (first, second) = (**p).clone();
                self.on_equivocation(first, second, ctx);
            }
        }
        self.blames.insert(msg.signer, msg.sig.clone());
        if self.blames.len() >= self.config.blame_quorum() && !self.quit_scheduled {
            let data = HsPayload::Blame { proof: None }.signing_digest(self.v_cur);
            let sigs: Vec<(NodeId, Signature)> = self
                .blames
                .iter()
                .take(self.config.blame_quorum())
                .map(|(n, s)| (*n, s.clone()))
                .collect();
            let qc = QuorumCert { kind: MsgKind::Blame, view: self.v_cur, data, height: 0, sigs };
            let msg = self.sign(HsPayload::BlameQc(qc), ctx);
            ctx.flood(msg);
            self.view_aborted = true;
            self.cancel_commit_timers(ctx);
            self.schedule_quit(ctx);
        }
    }

    fn on_blame_qc(&mut self, from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::BlameQc(qc) = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || self.quit_scheduled {
            return;
        }
        if qc.kind != MsgKind::Blame
            || qc.view != self.v_cur
            || !self.verify_qc(qc, self.config.blame_quorum(), ctx)
        {
            return;
        }
        self.view_aborted = true;
        self.cancel_commit_timers(ctx);
        self.schedule_quit(ctx);
    }

    fn schedule_quit(&mut self, ctx: &mut Ctx<'_>) {
        if self.quit_scheduled {
            return;
        }
        self.quit_scheduled = true;
        ctx.trace(TraceEventKind::VcQuit { view: self.v_cur });
        if let Some(t) = self.blame_timer.take() {
            ctx.cancel_timer(t);
        }
        ctx.set_timer(self.config.delta, HsTimer::QuitWait { view: self.v_cur });
    }

    fn on_quit_wait(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur {
            return;
        }
        // Enter the new view and report status to the new leader.
        self.v_cur += 1;
        self.view_aborted = false;
        self.quit_scheduled = false;
        self.blames.clear();
        self.statuses.clear();
        self.new_view_proposed = false;
        self.metrics.view_changes += 1;
        ctx.trace(TraceEventKind::ViewEnter { view: self.v_cur });
        // Workload transactions drained into the dead view's discarded
        // proposals go back in the pool for the new view.
        self.txpool.requeue_unresolved();
        // The proposing tip must be a *certified* block: votes cast for
        // never-certified blocks of the dead view cannot be justified by
        // the next leader. Fall back to the highest certificate (or
        // genesis).
        match &self.highest_cert {
            Some(c) => {
                self.tip = c.block.id();
                self.tip_height = c.block.height;
            }
            None => {
                self.tip = self.store.genesis_id();
                self.tip_height = 0;
            }
        }
        if !self.active() {
            return;
        }
        self.reset_blame_timer(8, ctx);
        let leader = self.config.leader_of(self.v_cur);
        if leader == self.id {
            self.statuses.insert(self.id, self.highest_cert.clone());
            ctx.set_timer(self.config.delta * 2, HsTimer::LeaderStatus { view: self.v_cur });
        } else {
            let msg = self.sign(HsPayload::Status { cert: self.highest_cert.clone() }, ctx);
            ctx.send_to(leader, msg);
        }
        // Commands the dead view's proposer drained and dropped are
        // pending again (requeued above) — hand them to the new leader.
        self.forward_backlog(ctx);
        let pending: Vec<(NodeId, HsMsg)> = {
            let (now, later): (Vec<_>, Vec<_>) =
                self.future_views.drain(..).partition(|(_, m)| m.view <= self.v_cur);
            self.future_views = later;
            now
        };
        for (f, m) in pending {
            self.on_message(f, m, ctx);
        }
    }

    fn on_status(&mut self, from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::Status { cert } = &msg.payload else { return };
        if msg.view > self.v_cur {
            self.future_views.push((from, msg));
            return;
        }
        if msg.view < self.v_cur || !self.is_leader() || !self.verify_envelope(&msg, ctx) {
            return;
        }
        if let Some(c) = cert {
            if c.qc.kind != MsgKind::HsVote
                || c.qc.data != c.block.id()
                || !self.verify_qc(&c.qc, self.config.cert_quorum(), ctx)
            {
                return;
            }
            self.store.insert(c.block.clone());
        }
        self.statuses.insert(msg.signer, cert.clone());
    }

    fn on_leader_status(&mut self, view: u64, ctx: &mut Ctx<'_>) {
        if view != self.v_cur || !self.is_leader() || self.new_view_proposed || !self.active() {
            return;
        }
        // Pick the highest certificate among the statuses (ours included).
        let best = self.statuses.values().flatten().max_by_key(|c| c.block.height).cloned();
        if let Some(best) = &best {
            let higher =
                self.highest_cert.as_ref().is_none_or(|c| best.block.height > c.block.height);
            if higher {
                self.highest_cert = Some(best.clone());
            }
            if best.block.height > self.tip_height {
                self.tip = best.block.id();
                self.tip_height = best.block.height;
            }
        }
        self.new_view_proposed = true;
        self.try_propose(ctx);
    }

    fn request_sync(&mut self, want: Digest, from: NodeId, ctx: &mut Ctx<'_>) {
        if from == self.id || !self.sync_requested.insert(want) {
            return;
        }
        self.metrics.sync_requests += 1;
        let msg = self.sign(HsPayload::SyncRequest { want }, ctx);
        ctx.send_to(from, msg);
    }

    fn on_sync_request(&mut self, _from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::SyncRequest { want } = &msg.payload else { return };
        if !self.verify_envelope(&msg, ctx) {
            return;
        }
        let blocks: Vec<Block> = self.store.ancestors(want, 32).into_iter().cloned().collect();
        if blocks.is_empty() {
            return;
        }
        let reply = self.sign(HsPayload::SyncResponse { blocks }, ctx);
        ctx.send_to(msg.signer, reply);
    }

    fn on_sync_response(&mut self, _from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::SyncResponse { blocks } = msg.payload else { return };
        let mut unblocked = Vec::new();
        for block in blocks {
            ctx.meter().charge_hash(block.wire_size());
            let id = self.store.insert(block);
            self.sync_requested.remove(&id);
            if let Some(waiting) = self.orphans.remove(&id) {
                unblocked.extend(waiting);
            }
        }
        for (from, m) in unblocked {
            self.on_propose(from, m, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Crash-recovery repair protocol (mirrors `eesmr_core`'s).
    // ------------------------------------------------------------------

    fn online(&self, ctx: &Ctx<'_>) -> bool {
        self.fault.online(ctx.now().as_micros())
    }

    /// Restart after an outage: volatile timers died with the process,
    /// the committed prefix is durable — re-arm and ask for the rest.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_commit_timers(ctx);
        self.forward_flush_armed = false;
        self.reset_blame_timer(self.config.steady_blame_multiple(), ctx);
        if let Some(source) = &mut self.workload {
            if let Some(delay) = source.next_arrival_in(ctx.now().as_micros()) {
                ctx.set_timer(SimDuration::from_micros(delay), HsTimer::Arrival);
            }
        }
        self.metrics.repair_requests += 1;
        let msg = self.sign(HsPayload::Repair { from_height: self.b_com_height }, ctx);
        ctx.flood(msg);
    }

    fn on_repair(&mut self, _from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::Repair { from_height } = msg.payload else { return };
        if !self.verify_envelope(&msg, ctx) || self.b_com_height <= from_height {
            return;
        }
        let mut blocks = Vec::new();
        let mut cur = self.b_com;
        while let Some(b) = self.store.get(&cur) {
            if b.height <= from_height || blocks.len() >= 256 {
                break;
            }
            blocks.push(b.clone());
            cur = b.parent;
        }
        blocks.reverse();
        if blocks.is_empty() {
            return;
        }
        self.metrics.repairs_served += 1;
        let reply = self.sign(HsPayload::RepairReply { blocks, view: self.v_cur }, ctx);
        ctx.send_to(msg.signer, reply);
    }

    fn on_repair_reply(&mut self, _from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        let HsPayload::RepairReply { blocks, view } = msg.payload else { return };
        // Self-certifying: hash-linked oldest first, rooted in a block we
        // already hold.
        let Some(first) = blocks.first() else { return };
        if !self.store.contains(&first.parent)
            || blocks.windows(2).any(|w| w[1].parent != w[0].id())
        {
            return;
        }
        let tip = blocks.last().expect("non-empty").clone();
        let mut unblocked = Vec::new();
        for block in blocks {
            ctx.meter().charge_hash(block.wire_size());
            let id = self.store.insert(block);
            self.sync_requested.remove(&id);
            if let Some(waiting) = self.orphans.remove(&id) {
                unblocked.extend(waiting);
            }
        }
        let tip_id = tip.id();
        self.commit_block(tip_id, ctx);
        if tip.height > self.tip_height {
            self.tip = tip_id;
            self.tip_height = tip.height;
        }
        // Jump straight to the network's view — it ran any view changes
        // while this node was down.
        if view > self.v_cur {
            self.v_cur = view;
            self.view_aborted = false;
            self.quit_scheduled = false;
            self.blames.clear();
            self.statuses.clear();
            self.new_view_proposed = false;
            self.txpool.requeue_unresolved();
            self.reset_blame_timer(self.config.steady_blame_multiple(), ctx);
            self.forward_backlog(ctx);
            let pending: Vec<(NodeId, HsMsg)> = {
                let (now, later): (Vec<_>, Vec<_>) =
                    self.future_views.drain(..).partition(|(_, m)| m.view <= self.v_cur);
                self.future_views = later;
                now
            };
            for (f, m) in pending {
                self.on_message(f, m, ctx);
            }
        }
        for (f, m) in unblocked {
            self.on_propose(f, m, ctx);
        }
    }
}

impl Actor for HsReplica {
    type Msg = HsMsg;
    type Timer = HsTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // The restart point must be armed even for a node that will be
        // offline when it fires — that is the whole point of it.
        if let Some(restart) = self.fault.restart_at_us() {
            ctx.set_timer(SimDuration::from_micros(restart), HsTimer::Restart);
        }
        if !self.active() || !self.online(ctx) {
            return;
        }
        self.reset_blame_timer(self.config.steady_blame_multiple(), ctx);
        if let Some(source) = &mut self.workload {
            if let Some(delay) = source.next_arrival_in(ctx.now().as_micros()) {
                ctx.set_timer(SimDuration::from_micros(delay), HsTimer::Arrival);
            }
        }
        self.try_propose(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: HsMsg, ctx: &mut Ctx<'_>) {
        if !self.active() || !self.online(ctx) {
            return;
        }
        match msg.payload {
            HsPayload::Propose { .. } => self.on_propose(from, msg, ctx),
            HsPayload::Vote { .. } => self.on_vote(from, msg, ctx),
            HsPayload::Blame { .. } => self.on_blame(from, msg, ctx),
            HsPayload::BlameQc(_) => self.on_blame_qc(from, msg, ctx),
            HsPayload::Status { .. } => self.on_status(from, msg, ctx),
            HsPayload::SyncRequest { .. } => self.on_sync_request(from, msg, ctx),
            HsPayload::SyncResponse { .. } => self.on_sync_response(from, msg, ctx),
            HsPayload::Forward { .. } => self.on_forward(msg, ctx),
            HsPayload::Repair { .. } => self.on_repair(from, msg, ctx),
            HsPayload::RepairReply { .. } => self.on_repair_reply(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: HsTimer, ctx: &mut Ctx<'_>) {
        // The restart timer fires exactly when the outage ends, so the
        // online gate admits it; timers that fire mid-outage die here.
        if !self.active() || !self.online(ctx) {
            return;
        }
        match token {
            HsTimer::Blame { view } => self.on_blame_timeout(view, ctx),
            HsTimer::Commit { view, block } => self.on_commit_timer(view, block, ctx),
            HsTimer::QuitWait { view } => self.on_quit_wait(view, ctx),
            HsTimer::LeaderStatus { view } => self.on_leader_status(view, ctx),
            HsTimer::Arrival => self.on_arrival(ctx),
            HsTimer::ForwardFlush => {
                self.forward_flush_armed = false;
                self.forward_backlog(ctx);
            }
            HsTimer::Restart => self.on_restart(ctx),
        }
    }

    fn gauges(&self) -> eesmr_net::ActorGauges {
        // Node-local state only — the telemetry determinism contract.
        // Sync HotStuff has no forward-retry timer, so that gauge stays 0.
        eesmr_net::ActorGauges {
            tx_in_flight: self.txpool.in_flight() as u64,
            pool_backlog: self.txpool.backlog() as u64,
            forward_retries: self.metrics.forward_retries,
            batch_fill_pct: self.metrics.last_batch_fill_pct as f64,
            view: self.v_cur,
        }
    }
}

impl crate::status::SmrStatus for HsReplica {
    fn committed_log(&self) -> &[Digest] {
        &self.committed_log
    }

    fn committed_block_height(&self) -> u64 {
        self.b_com_height
    }

    fn view(&self) -> u64 {
        self.v_cur
    }
}

/// Builds a system of replicas sharing a PKI.
pub fn build_hs_replicas(
    config: &HsConfig,
    pki: &Arc<KeyStore>,
    faults: impl Fn(NodeId) -> HsFault,
) -> Vec<HsReplica> {
    (0..config.n as NodeId)
        .map(|id| HsReplica::new(id, config.clone(), pki.clone(), faults(id)))
        .collect()
}
