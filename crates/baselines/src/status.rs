//! A small trait unifying the observable state of all SMR replicas in this
//! repository, so harnesses and tests can assert safety/liveness generically.

use eesmr_crypto::Digest;

/// Observable replication state.
pub trait SmrStatus {
    /// The committed log (block ids in commit order).
    fn committed_log(&self) -> &[Digest];

    /// Height of the highest committed block.
    fn committed_block_height(&self) -> u64;

    /// The replica's current view.
    fn view(&self) -> u64;
}

impl SmrStatus for eesmr_core::Replica {
    fn committed_log(&self) -> &[Digest] {
        self.committed()
    }

    fn committed_block_height(&self) -> u64 {
        self.committed_height()
    }

    fn view(&self) -> u64 {
        self.current_view()
    }
}

/// Asserts that all logs agree on their common prefix (SMR safety,
/// Definition 2.1 (1)).
///
/// # Panics
///
/// Panics with a diagnostic if two logs diverge.
pub fn assert_prefix_consistency<'a, S: SmrStatus + 'a>(replicas: impl IntoIterator<Item = &'a S>) {
    let logs: Vec<&[Digest]> = replicas.into_iter().map(|r| r.committed_log()).collect();
    check_prefix_consistency(&logs).expect("SMR safety violated");
}

/// Non-panicking prefix check; returns the first divergence found.
pub fn check_prefix_consistency(logs: &[&[Digest]]) -> Result<(), String> {
    for (i, a) in logs.iter().enumerate() {
        for (j, b) in logs.iter().enumerate().skip(i + 1) {
            let common = a.len().min(b.len());
            for idx in 0..common {
                if a[idx] != b[idx] {
                    return Err(format!(
                        "logs {i} and {j} diverge at position {idx}: {:?} vs {:?}",
                        a[idx], b[idx]
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_prefixes_pass() {
        let a = vec![Digest::of(b"1"), Digest::of(b"2")];
        let b = vec![Digest::of(b"1")];
        assert!(check_prefix_consistency(&[&a, &b]).is_ok());
        assert!(check_prefix_consistency(&[]).is_ok());
    }

    #[test]
    fn divergence_is_reported() {
        let a = vec![Digest::of(b"1"), Digest::of(b"2")];
        let b = vec![Digest::of(b"1"), Digest::of(b"x")];
        let err = check_prefix_consistency(&[&a, &b]).unwrap_err();
        assert!(err.contains("position 1"));
    }
}
