//! The trusted-baseline protocol (paper §5.1).
//!
//! "In this baseline protocol, we assume the existence of a trusted node.
//! … The baseline protocol assumes that all the CPS nodes are directly
//! connected to the trusted node using the expensive medium and not use
//! the links between the CPS nodes."
//!
//! Every consensus unit, each CPS node uploads its pending commands to the
//! trusted node, which orders them into a block, signs it once, and
//! multicasts it back; nodes verify the single trusted signature and
//! commit. The trusted node itself (node 0 by convention, the hub of a
//! star topology) is externally powered — harnesses exclude its meter when
//! reporting CPS energy, exactly as the paper's baseline accounting does.

use std::sync::Arc;

use eesmr_core::message::signing_bytes;
use eesmr_core::{
    AdaptiveBatcher, BatchPolicy, Block, BlockStore, Command, Commands, Metrics, MsgKind, TxPool,
    WorkloadSource,
};
use eesmr_crypto::{Digest, KeyPair, KeyStore, Signature};
use eesmr_net::{
    Actor, Context, Message, NodeId, SimDuration, SimTime, TraceClass, TraceEventKind,
};

/// Messages between CPS nodes and the trusted hub.
#[derive(Debug, Clone, PartialEq)]
pub enum TbPayload {
    /// A node's upload of pending commands.
    Request {
        /// The commands (Arc-backed so per-hop clones are refcount
        /// bumps).
        batch: Commands,
        /// Upload sequence number (one per consensus unit).
        seq: u64,
    },
    /// The trusted node's ordered block.
    Ordered {
        /// The block.
        block: Block,
    },
    /// A lagging spoke's catch-up request: "send the hub-signed chain
    /// above `from_height`" (issued after an outage or an out-of-order
    /// `Ordered`, which previously stalled the spoke forever).
    Repair {
        /// The spoke's committed height.
        from_height: u64,
    },
    /// The hub's answer: the ordered-chain suffix, oldest first.
    RepairReply {
        /// Blocks above the requested height, oldest first.
        blocks: Vec<Block>,
    },
}

/// Fault behaviour injected into a spoke (the externally powered hub is
/// always honest). The trusted baseline has no views, so faults are
/// time-keyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbFault {
    /// Follows the protocol.
    Honest,
    /// Stops uploading and processing from `from_us` on (models silent
    /// and vote-withholding adversaries, which the hub reduces to the
    /// same thing: a spoke that contributes nothing).
    Silent {
        /// First silent microsecond.
        from_us: u64,
    },
    /// Re-sends every upload `repeats` extra times (duplicate storms;
    /// the hub dedups by upload content, but the expensive link pays).
    Storm {
        /// Extra copies per upload.
        repeats: u32,
    },
    /// Crashes at `at_us`; with a `restart_at_us` the spoke comes back
    /// and repairs from the hub.
    Crash {
        /// Outage start (µs).
        at_us: u64,
        /// Restart time (µs), or `None` to stay down.
        restart_at_us: Option<u64>,
    },
}

impl TbFault {
    fn active(&self, now_us: u64) -> bool {
        match self {
            TbFault::Silent { from_us } => now_us < *from_us,
            TbFault::Crash { at_us, restart_at_us } => {
                now_us < *at_us || restart_at_us.is_some_and(|r| now_us >= r)
            }
            _ => true,
        }
    }

    fn storm_repeats(&self) -> u32 {
        match self {
            TbFault::Storm { repeats } => *repeats,
            _ => 0,
        }
    }

    fn restart_at_us(&self) -> Option<u64> {
        match self {
            TbFault::Crash { restart_at_us, .. } => *restart_at_us,
            _ => None,
        }
    }
}

/// A signed trusted-baseline message.
#[derive(Debug, Clone, PartialEq)]
pub struct TbMsg {
    /// Payload.
    pub payload: TbPayload,
    /// Sender.
    pub signer: NodeId,
    /// Signature.
    pub sig: Signature,
}

impl TbPayload {
    fn signing_digest(&self) -> Digest {
        match self {
            TbPayload::Request { batch, seq } => {
                let mut bytes = Vec::new();
                bytes.extend_from_slice(&seq.to_le_bytes());
                for c in batch {
                    bytes.extend_from_slice(c.bytes());
                }
                Digest::of_parts(&[b"tb-req", &bytes])
            }
            TbPayload::Ordered { block } => block.id(),
            TbPayload::Repair { from_height } => {
                Digest::of_parts(&[b"tb-repair", &from_height.to_le_bytes()])
            }
            TbPayload::RepairReply { blocks } => {
                let mut bytes = Vec::with_capacity(32 * blocks.len());
                for b in blocks {
                    bytes.extend_from_slice(b.id().as_bytes());
                }
                Digest::of_parts(&[b"tb-repair-reply", &bytes])
            }
        }
    }
}

impl TbMsg {
    fn new(payload: TbPayload, keypair: &KeyPair) -> Self {
        let digest = payload.signing_digest();
        let bytes = signing_bytes(MsgKind::Propose, 0, &digest);
        TbMsg { sig: keypair.sign(&bytes), signer: keypair.signer(), payload }
    }

    fn verify_sig(&self, pki: &KeyStore) -> bool {
        if self.sig.signer() != self.signer {
            return false;
        }
        let digest = self.payload.signing_digest();
        let bytes = signing_bytes(MsgKind::Propose, 0, &digest);
        pki.verify(&bytes, &self.sig)
    }
}

impl Message for TbMsg {
    fn wire_size(&self) -> usize {
        eesmr_net::WireCodec::encoded_len(self)
    }

    fn flood_key(&self) -> u64 {
        Digest::of_parts(&[&self.signer.to_le_bytes(), self.payload.signing_digest().as_bytes()])
            .to_u64()
    }

    fn phase(&self) -> eesmr_energy::EnergyPhase {
        use eesmr_energy::EnergyPhase;
        match &self.payload {
            // Spoke uploads feed the hub's next proposal; the hub's
            // ordered block is the commit announcement.
            TbPayload::Request { .. } => EnergyPhase::Propose,
            TbPayload::Ordered { .. } => EnergyPhase::Commit,
            TbPayload::Repair { .. } | TbPayload::RepairReply { .. } => EnergyPhase::Sync,
        }
    }
}

/// Timer tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbTimer {
    /// The hub's ordering tick.
    Order,
    /// A node's periodic upload.
    Upload,
    /// The next client-transaction arrival from the attached
    /// `WorkloadSource` (spokes only).
    Arrival,
    /// A crashed spoke coming back online (armed at start from the
    /// fault schedule; fires exactly when `TbFault::active` flips back).
    Restart,
}

/// Configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TbConfig {
    /// Total nodes including the hub (node 0).
    pub n: usize,
    /// Synthetic payload bytes per upload.
    pub payload_bytes: usize,
    /// Hub ordering period.
    pub order_period: SimDuration,
    /// How a spoke sizes each upload batch.
    pub batch_policy: BatchPolicy,
    /// Synthetic offered load: commands fabricated per upload when the
    /// pool is empty.
    pub offered_load: usize,
}

impl TbConfig {
    /// A configuration with the historical defaults: 16-command upload
    /// batches fed by a unit synthetic load.
    pub fn new(n: usize, payload_bytes: usize, order_period: SimDuration) -> Self {
        TbConfig {
            n,
            payload_bytes,
            order_period,
            batch_policy: BatchPolicy::Fixed(16),
            offered_load: 1,
        }
    }
}

/// The hub's id in the star topology.
pub const HUB: NodeId = 0;

/// One participant: the hub (node 0) or a CPS node.
pub struct TbNode {
    id: NodeId,
    config: TbConfig,
    pki: Arc<KeyStore>,
    store: BlockStore,
    tip: Digest,
    txpool: TxPool,
    batcher: AdaptiveBatcher,
    workload: Option<Box<dyn WorkloadSource>>,
    upload_seq: u64,
    pending: Vec<Command>,
    committed_log: Vec<Digest>,
    committed_height: u64,
    first_seen: std::collections::HashMap<Digest, SimTime>,
    metrics: Metrics,
    fault: TbFault,
    repair_inflight: bool,
}

impl core::fmt::Debug for TbNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TbNode")
            .field("id", &self.id)
            .field("committed_height", &self.committed_height)
            .finish()
    }
}

type Ctx<'a> = Context<'a, TbMsg, TbTimer>;

impl TbNode {
    /// Creates the hub or a CPS node.
    pub fn new(id: NodeId, config: TbConfig, pki: Arc<KeyStore>) -> Self {
        let store = BlockStore::new();
        let tip = store.genesis_id();
        let payload = config.payload_bytes;
        let offered = config.offered_load;
        TbNode {
            id,
            config,
            pki,
            store,
            tip,
            txpool: TxPool::synthetic(payload).with_offered_load(offered),
            batcher: AdaptiveBatcher::new(),
            workload: None,
            upload_seq: 0,
            pending: Vec::new(),
            committed_log: Vec::new(),
            committed_height: 0,
            first_seen: std::collections::HashMap::new(),
            metrics: Metrics::default(),
            fault: TbFault::Honest,
            repair_inflight: false,
        }
    }

    /// Committed log (hub and nodes agree by construction).
    pub fn committed(&self) -> &[Digest] {
        &self.committed_log
    }

    /// Committed height.
    pub fn committed_height(&self) -> u64 {
        self.committed_height
    }

    /// Looks up a stored block by id.
    pub fn block(&self, id: &Digest) -> Option<&Block> {
        self.store.get(id)
    }

    /// Metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn is_hub(&self) -> bool {
        self.id == HUB
    }

    /// Attaches a client-workload stream to this spoke (the externally
    /// powered hub orders, it does not originate): arrivals inject
    /// timestamped transactions and trigger uploads, replacing the
    /// synthetic `offered_load` feed.
    ///
    /// # Panics
    ///
    /// Panics if called on the hub.
    pub fn attach_workload(&mut self, source: Box<dyn WorkloadSource>) {
        assert!(!self.is_hub(), "the trusted hub does not originate transactions");
        self.txpool.client_only();
        self.workload = Some(source);
    }

    /// Histogram of end-to-end (birth → local commit) latencies of
    /// workload transactions injected at this spoke, in microseconds.
    pub fn tx_latencies(&self) -> &eesmr_trace::hist::LogHistogram {
        self.txpool.tx_latencies()
    }

    /// High-water mark of the pending-command backlog over the run.
    pub fn peak_backlog(&self) -> usize {
        self.txpool.peak_backlog()
    }

    /// One arrival event: inject, re-arm, and upload the fresh backlog
    /// to the hub.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let Some(source) = &mut self.workload else { return };
        let now_us = ctx.now().as_micros();
        let traced = ctx.traces(TraceClass::Commit);
        let delay = self.txpool.drive_arrival(source.as_mut(), &mut self.metrics, now_us, |cmd| {
            if traced {
                ctx.trace(TraceEventKind::TxInject { tx: cmd.fingerprint() });
            }
        });
        if let Some(delay) = delay {
            ctx.set_timer(SimDuration::from_micros(delay), TbTimer::Arrival);
        }
        self.upload(ctx);
    }

    fn upload(&mut self, ctx: &mut Ctx<'_>) {
        let want = self.batcher.next_size(self.txpool.backlog(), self.config.batch_policy);
        let batch = self.txpool.next_batch(want);
        // A workload-fed spoke only uploads real transactions; the
        // synthetic feed keeps its historical empty-batch heartbeat.
        if batch.is_empty() && self.workload.is_some() {
            return;
        }
        self.metrics.record_batch_fill(batch.len(), self.config.batch_policy.max_size());
        let seq = self.upload_seq;
        self.upload_seq += 1;
        if ctx.traces(TraceClass::Commit) {
            for cmd in &batch {
                ctx.trace(TraceEventKind::TxForward { tx: cmd.fingerprint(), leader: HUB });
            }
        }
        let msg =
            TbMsg::new(TbPayload::Request { batch: batch.into(), seq }, self.pki.keypair(self.id));
        ctx.meter().charge_sign(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        for _ in 0..self.fault.storm_repeats() {
            ctx.multicast(msg.clone());
        }
        ctx.multicast(msg); // the spoke's only edge points at the hub
    }

    /// Asks the hub for the signed chain suffix above our committed
    /// height. Deduped: at most one request outstanding per spoke.
    fn request_repair(&mut self, ctx: &mut Ctx<'_>) {
        if self.repair_inflight {
            return;
        }
        self.repair_inflight = true;
        self.metrics.repair_requests += 1;
        let msg = TbMsg::new(
            TbPayload::Repair { from_height: self.committed_height },
            self.pki.keypair(self.id),
        );
        ctx.meter().charge_sign(self.pki.scheme());
        ctx.meter().charge_hash(msg.wire_size());
        ctx.multicast(msg); // the spoke's only edge points at the hub
    }
}

impl Actor for TbNode {
    type Msg = TbMsg;
    type Timer = TbTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Armed before the fault gate: the sim starts at t = 0, so the
        // delay equals the absolute restart time and the timer fires
        // exactly when `TbFault::active` flips back on.
        if let Some(restart_us) = self.fault.restart_at_us() {
            ctx.set_timer(SimDuration::from_micros(restart_us), TbTimer::Restart);
        }
        if !self.fault.active(ctx.now().as_micros()) {
            return;
        }
        if self.is_hub() {
            ctx.set_timer(self.config.order_period, TbTimer::Order);
        } else {
            if let Some(source) = &mut self.workload {
                if let Some(delay) = source.next_arrival_in(ctx.now().as_micros()) {
                    ctx.set_timer(SimDuration::from_micros(delay), TbTimer::Arrival);
                }
            }
            self.upload(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: TbMsg, ctx: &mut Ctx<'_>) {
        if !self.fault.active(ctx.now().as_micros()) {
            return; // crashed or silent: the process is not there
        }
        match &msg.payload {
            TbPayload::Request { batch, .. } => {
                if !self.is_hub() || msg.signer == HUB {
                    return;
                }
                ctx.meter().charge_verify(self.pki.scheme());
                ctx.meter().charge_hash(msg.wire_size());
                if !msg.verify_sig(&self.pki) {
                    return;
                }
                self.pending.extend(batch.iter().cloned());
            }
            TbPayload::Ordered { block } => {
                if self.is_hub() || msg.signer != HUB {
                    return;
                }
                ctx.meter().charge_verify(self.pki.scheme());
                ctx.meter().charge_hash(msg.wire_size());
                if !msg.verify_sig(&self.pki) {
                    return;
                }
                let block = block.clone();
                if block.parent != self.tip {
                    // A gap in the hub's linear chain (we missed blocks
                    // during an outage or a lossy stretch): catch up
                    // from the hub instead of stalling forever.
                    if block.height > self.committed_height + 1 {
                        self.request_repair(ctx);
                    }
                    return;
                }
                let id = self.store.insert(block.clone());
                self.tip = id;
                self.committed_log.push(id);
                self.committed_height = block.height;
                self.metrics.blocks_committed += 1;
                self.metrics.committed_height = block.height;
                if let Some(seen) = self.first_seen.remove(&id) {
                    self.metrics.record_commit_latency(ctx.now().since(seen));
                }
                if ctx.traces(TraceClass::Commit) {
                    ctx.trace(TraceEventKind::Commit {
                        block: eesmr_core::block::fingerprint(&id),
                        height: block.height,
                    });
                }
                self.txpool.remove_committed(&block, ctx.now());
                // Upload the next unit after each ordered block.
                self.upload(ctx);
            }
            TbPayload::Repair { from_height } => {
                if !self.is_hub() || msg.signer == HUB {
                    return;
                }
                ctx.meter().charge_verify(self.pki.scheme());
                ctx.meter().charge_hash(msg.wire_size());
                if !msg.verify_sig(&self.pki) {
                    return;
                }
                if self.committed_height <= *from_height {
                    return; // nothing newer to serve
                }
                // Walk the committed chain from the tip down to the
                // requested height (capped to bound the reply; the
                // spoke re-requests if still behind).
                let mut blocks = Vec::new();
                let mut cursor = self.tip;
                while let Some(b) = self.store.get(&cursor) {
                    if b.height <= *from_height || blocks.len() >= 256 {
                        break;
                    }
                    cursor = b.parent;
                    blocks.push(b.clone());
                }
                blocks.reverse();
                self.metrics.repairs_served += 1;
                let reply =
                    TbMsg::new(TbPayload::RepairReply { blocks }, self.pki.keypair(self.id));
                ctx.meter().charge_sign(self.pki.scheme());
                ctx.meter().charge_hash(reply.wire_size());
                ctx.send_to(msg.signer, reply);
            }
            TbPayload::RepairReply { blocks } => {
                if self.is_hub() || msg.signer != HUB {
                    return;
                }
                ctx.meter().charge_verify(self.pki.scheme());
                ctx.meter().charge_hash(msg.wire_size());
                if !msg.verify_sig(&self.pki) {
                    return;
                }
                self.repair_inflight = false;
                for block in blocks {
                    if block.parent != self.tip {
                        continue; // must extend our committed tip in order
                    }
                    let block = block.clone();
                    let id = self.store.insert(block.clone());
                    self.tip = id;
                    self.committed_log.push(id);
                    self.committed_height = block.height;
                    self.metrics.blocks_committed += 1;
                    self.metrics.committed_height = block.height;
                    if ctx.traces(TraceClass::Commit) {
                        ctx.trace(TraceEventKind::Commit {
                            block: eesmr_core::block::fingerprint(&id),
                            height: block.height,
                        });
                    }
                    self.txpool.remove_committed(&block, ctx.now());
                }
                // Caught up (or as far as one capped reply gets us):
                // resume the upload loop.
                self.upload(ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TbTimer, ctx: &mut Ctx<'_>) {
        if !self.fault.active(ctx.now().as_micros()) {
            return; // timers armed before the outage die with the process
        }
        match token {
            TbTimer::Order => {
                if !self.is_hub() {
                    return;
                }
                if !self.pending.is_empty() {
                    let parent = self.store.get(&self.tip).expect("tip stored").clone();
                    let batch: Vec<Command> = self.pending.drain(..).collect();
                    let block = Block::extending(&parent, 0, parent.height + 1, batch);
                    ctx.meter().charge_hash(block.wire_size());
                    if ctx.traces(TraceClass::Commit) {
                        let block_fp = block.fingerprint();
                        for cmd in &block.payload {
                            ctx.trace(TraceEventKind::TxBatched {
                                tx: cmd.fingerprint(),
                                block: block_fp,
                            });
                        }
                        ctx.trace(TraceEventKind::Propose {
                            block: block_fp,
                            view: 0,
                            round: block.height,
                        });
                    }
                    let id = self.store.insert(block.clone());
                    self.tip = id;
                    self.committed_log.push(id);
                    self.committed_height = block.height;
                    self.metrics.blocks_committed += 1;
                    self.metrics.committed_height = block.height;
                    if ctx.traces(TraceClass::Commit) {
                        ctx.trace(TraceEventKind::Commit {
                            block: eesmr_core::block::fingerprint(&id),
                            height: block.height,
                        });
                    }
                    let msg = TbMsg::new(TbPayload::Ordered { block }, self.pki.keypair(self.id));
                    ctx.meter().charge_sign(self.pki.scheme());
                    ctx.meter().charge_hash(msg.wire_size());
                    ctx.multicast(msg); // the hub's edge reaches every spoke
                }
                ctx.set_timer(self.config.order_period, TbTimer::Order);
            }
            TbTimer::Upload => self.upload(ctx),
            TbTimer::Arrival => self.on_arrival(ctx),
            TbTimer::Restart => {
                // Back online: re-arm the workload feed and catch up on
                // everything the hub ordered during the outage.
                if let Some(source) = &mut self.workload {
                    if let Some(delay) = source.next_arrival_in(ctx.now().as_micros()) {
                        ctx.set_timer(SimDuration::from_micros(delay), TbTimer::Arrival);
                    }
                }
                self.repair_inflight = false;
                self.request_repair(ctx);
            }
        }
    }

    fn gauges(&self) -> eesmr_net::ActorGauges {
        // Node-local state only — the telemetry determinism contract.
        // The hub's ordering queue counts as its backlog; spokes report
        // their txpool. No forward-retry machinery in this baseline.
        eesmr_net::ActorGauges {
            tx_in_flight: self.txpool.in_flight() as u64,
            pool_backlog: if self.is_hub() {
                self.pending.len() as u64
            } else {
                self.txpool.backlog() as u64
            },
            forward_retries: self.metrics.forward_retries,
            batch_fill_pct: self.metrics.last_batch_fill_pct as f64,
            view: 1,
        }
    }
}

impl crate::status::SmrStatus for TbNode {
    fn committed_log(&self) -> &[Digest] {
        &self.committed_log
    }

    fn committed_block_height(&self) -> u64 {
        self.committed_height
    }

    fn view(&self) -> u64 {
        1 // the trusted baseline has no views
    }
}

/// Builds the hub (node 0) plus `n − 1` CPS nodes. `faults` assigns a
/// behaviour to each spoke; the externally powered hub is always honest
/// regardless of what the closure returns for node 0.
pub fn build_tb_nodes(
    config: &TbConfig,
    pki: &Arc<KeyStore>,
    faults: impl Fn(NodeId) -> TbFault,
) -> Vec<TbNode> {
    (0..config.n as NodeId)
        .map(|id| {
            let mut node = TbNode::new(id, config.clone(), pki.clone());
            if id != HUB {
                node.fault = faults(id);
            }
            node
        })
        .collect()
}
